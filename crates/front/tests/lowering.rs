//! End-to-end front-end tests: source text through lowering, checked
//! against the schedulers.

use lsms_front::{compile, InitialSource, InvariantSource};
use lsms_ir::{DepVia, OpKind, RegClass};
use lsms_machine::huff_machine;
use lsms_sched::{validate, SchedProblem, SlackScheduler};

/// The paper's Figure 1 loop.
const SAMPLE: &str = "loop sample(i = 3..n) {
    real x[], y[];
    x[i] = x[i-1] + y[i-2];
    y[i] = y[i-1] + x[i-2];
}";

#[test]
fn sample_loop_eliminates_all_loads() {
    let unit = compile(SAMPLE).unwrap();
    let body = &unit.loops[0].body;
    // Load/store elimination removes every load: x(i-1), x(i-2), y(i-1),
    // y(i-2) all come from registers.
    assert_eq!(
        body.ops().iter().filter(|o| o.kind == OpKind::Load).count(),
        0,
        "all reads should be register flows:\n{}",
        lsms_ir::to_dot(body)
    );
    assert_eq!(
        body.ops()
            .iter()
            .filter(|o| o.kind == OpKind::Store)
            .count(),
        2
    );
    assert!(body.has_recurrence());
    assert!(!body.has_conditional());
}

#[test]
fn sample_loop_has_cross_iteration_flows() {
    let unit = compile(SAMPLE).unwrap();
    let body = &unit.loops[0].body;
    // The two fadds feed each other at distance 2 and themselves at 1.
    let omegas: Vec<u32> = body
        .deps()
        .iter()
        .filter(|d| d.is_register_flow())
        .map(|d| d.omega)
        .collect();
    assert!(
        omegas.contains(&1),
        "self recurrences at omega 1: {omegas:?}"
    );
    assert!(
        omegas.contains(&2),
        "cross recurrences at omega 2: {omegas:?}"
    );
}

#[test]
fn sample_loop_schedules_like_the_paper() {
    let unit = compile(SAMPLE).unwrap();
    let body = &unit.loops[0].body;
    let machine = huff_machine();
    let problem = SchedProblem::new(body, &machine).unwrap();
    // Ops: 2 fadds (adder) + 2 stores (2 ports) + iv8 + 2 ref addrs
    // (2 addr ALUs: ceil(3/2) = 2) + brtop. ResMII = 2; RecMII: the
    // cross circuit fx -(2)-> fy -(2)-> fx has L=2, omega=4 -> 1; self
    // arcs 1/1 = 1. The paper's Figure 3 schedules this loop at II = 2.
    assert_eq!(problem.mii(), 2);
    let schedule = SlackScheduler::new().run(&problem).unwrap();
    assert_eq!(schedule.ii, 2);
    assert_eq!(validate(&problem, &schedule), Ok(()));
}

#[test]
fn ineligible_arrays_keep_loads_and_memory_deps() {
    // Two stores to x: elimination must not fire; loads stay, with
    // distance-labelled memory arcs.
    let unit = compile(
        "loop twostores(i = 2..n) {
             real x[], y[];
             x[i] = y[i] + x[i-1];
             x[i+1] = x[i] * 2.0;
         }",
    )
    .unwrap();
    let body = &unit.loops[0].body;
    assert!(body.ops().iter().filter(|o| o.kind == OpKind::Load).count() >= 2);
    let mem_arcs: Vec<_> = body
        .deps()
        .iter()
        .filter(|d| d.via == DepVia::Memory)
        .collect();
    assert!(!mem_arcs.is_empty(), "expected memory dependences");
    // store x[i+1] -> load x[i-1] at distance 2 must be present.
    assert!(
        mem_arcs.iter().any(|d| d.omega == 2),
        "expected an omega-2 memory arc: {mem_arcs:?}"
    );
}

#[test]
fn conditionals_are_if_converted() {
    let unit = compile(
        "loop clip(i = 1..n) {
             real x[], y[];
             param real t;
             if (x[i] > t) { y[i] = t; } else { y[i] = x[i]; }
         }",
    )
    .unwrap();
    let body = &unit.loops[0].body;
    assert!(body.has_conditional());
    // One compare, one pnot, two guarded stores.
    assert_eq!(
        body.ops()
            .iter()
            .filter(|o| o.kind == OpKind::CmpGt)
            .count(),
        1
    );
    assert_eq!(
        body.ops()
            .iter()
            .filter(|o| o.kind == OpKind::PredNot)
            .count(),
        1
    );
    let guarded: Vec<_> = body
        .ops()
        .iter()
        .filter(|o| o.predicate.is_some())
        .collect();
    assert_eq!(guarded.len(), 2);
    assert!(guarded.iter().all(|o| o.kind == OpKind::Store));
    // Schedulable.
    let machine = huff_machine();
    let problem = SchedProblem::new(body, &machine).unwrap();
    let schedule = SlackScheduler::new().run(&problem).unwrap();
    assert_eq!(validate(&problem, &schedule), Ok(()));
}

#[test]
fn predicated_scalar_assignment_merges_with_select() {
    let unit = compile(
        "loop maxloop(i = 1..n) {
             real x[];
             real m;
             if (x[i] > m) { m = x[i]; }
         }",
    )
    .unwrap();
    let body = &unit.loops[0].body;
    let selects: Vec<_> = body
        .ops()
        .iter()
        .filter(|o| o.kind == OpKind::Select)
        .collect();
    assert_eq!(selects.len(), 1);
    // The select's false-side input is the previous iteration's m: an
    // input with omega 1.
    let sel = selects[0];
    assert_eq!(sel.input_omegas.iter().filter(|&&w| w == 1).count(), 1);
    assert!(body.has_recurrence());
}

#[test]
fn scalar_reduction_creates_self_recurrence() {
    let unit = compile(
        "loop dot(i = 1..n) {
             real x[], y[];
             real s;
             s = s + x[i] * y[i];
         }",
    )
    .unwrap();
    let body = &unit.loops[0].body;
    // s's fadd must use its own result at omega 1.
    let fadds: Vec<_> = body
        .ops()
        .iter()
        .filter(|o| o.kind == OpKind::FAdd)
        .collect();
    assert_eq!(fadds.len(), 1);
    let fadd = fadds[0];
    assert!(fadd
        .inputs
        .iter()
        .zip(&fadd.input_omegas)
        .any(|(&v, &w)| Some(v) == fadd.result && w == 1));
    // Its carried initial value is recorded for the simulator.
    let loop0 = &unit.loops[0];
    assert!(loop0
        .initials
        .iter()
        .any(|(_, src)| matches!(src, InitialSource::Scalar(name) if name == "s")));
}

#[test]
fn addresses_use_one_shared_induction() {
    let unit = compile(
        "loop axpy(i = 1..n) {
             real x[], y[];
             param real a;
             y[i] = y[i] + a * x[i];
         }",
    )
    .unwrap();
    let body = &unit.loops[0].body;
    // iv8 + one AddrAdd per distinct reference (x[i], y[i] read+write
    // share one reference each... y[i] read and y[i] write share (y, 0)).
    let addr_adds = body
        .ops()
        .iter()
        .filter(|o| o.kind == OpKind::AddrAdd)
        .count();
    assert_eq!(
        addr_adds,
        3,
        "iv8 + x[i] + y[i]:\n{}",
        lsms_ir::to_dot(body)
    );
    // Invariants include the stride, two ref bases, and the parameter.
    let loop0 = &unit.loops[0];
    assert!(loop0
        .invariants
        .iter()
        .any(|(_, s)| matches!(s, InvariantSource::Stride)));
    assert_eq!(
        loop0
            .invariants
            .iter()
            .filter(|(_, s)| matches!(s, InvariantSource::RefBase { .. }))
            .count(),
        2
    );
    assert!(loop0
        .invariants
        .iter()
        .any(|(_, s)| matches!(s, InvariantSource::Param(p) if p == "a")));
}

#[test]
fn same_iteration_store_forwards_to_later_load() {
    let unit = compile(
        "loop fwd(i = 1..n) {
             real x[], y[];
             x[i] = y[i] * 2.0;
             y[i+1] = x[i] + 1.0;  // x[i] was just stored: forwarded
         }",
    )
    .unwrap();
    let body = &unit.loops[0].body;
    // x[i] is forwarded within the iteration and y[i] reads the value
    // stored (to y[i+1]) one iteration earlier — no loads remain at all.
    assert_eq!(
        body.ops().iter().filter(|o| o.kind == OpKind::Load).count(),
        0
    );
    // The same-iteration forward shows up as an omega-0 use of the stored
    // value by the fadd.
    let fadd = body.ops().iter().find(|o| o.kind == OpKind::FAdd).unwrap();
    assert!(fadd.input_omegas.contains(&0));
}

#[test]
fn constants_are_shared_invariants() {
    let unit = compile(
        "loop c(i = 1..n) {
             real x[];
             x[i] = x[i-1] * 2.0 + 2.0;
         }",
    )
    .unwrap();
    let loop0 = &unit.loops[0];
    let two_count = loop0
        .invariants
        .iter()
        .filter(|(_, s)| matches!(s, InvariantSource::ConstReal(x) if *x == 2.0))
        .count();
    assert_eq!(two_count, 1, "the literal 2.0 is materialised once");
    // Constants live in the GPR file.
    let (v, _) = loop0
        .invariants
        .iter()
        .find(|(_, s)| matches!(s, InvariantSource::ConstReal(_)))
        .unwrap();
    assert_eq!(loop0.body.value(*v).reg_class(), RegClass::Gpr);
}

#[test]
fn eliminated_constant_store_is_wrapped_in_copy() {
    // x[i] = 0.0 then a read of x[i-1]: the elimination target must be a
    // loop variant so pre-loop iterations can read initial memory.
    let unit = compile(
        "loop z(i = 1..n) {
             real x[], y[];
             x[i] = 0.0;
             y[i] = x[i-1];
         }",
    )
    .unwrap();
    let body = &unit.loops[0].body;
    assert_eq!(
        body.ops().iter().filter(|o| o.kind == OpKind::Load).count(),
        0
    );
    assert_eq!(
        body.ops().iter().filter(|o| o.kind == OpKind::Copy).count(),
        1
    );
    let loop0 = &unit.loops[0];
    assert!(loop0.initials.iter().any(|(_, s)| matches!(
        s,
        InitialSource::ArrayElem {
            array: 0,
            offset: 0
        }
    )));
}

#[test]
fn every_compiled_loop_is_schedulable() {
    let sources = [
        SAMPLE,
        "loop hydro(i = 1..n) { real x[], y[], z[]; param real q, r, t;
             x[i] = q + y[i] * (r * z[i+10] + t * z[i+11]); }",
        "loop tridiag(i = 2..n) { real x[], y[], z[]; x[i] = z[i] * (y[i] - x[i-1]); }",
        "loop sqrtloop(i = 1..n) { real x[], y[]; y[i] = sqrt(x[i] / 2.5); }",
        "loop intloop(i = 1..n) { int k[], m[]; k[i] = (m[i] * 3 + k[i-1]) % 7; }",
    ];
    let machine = huff_machine();
    for src in sources {
        let unit = compile(src).unwrap();
        for l in &unit.loops {
            l.body.validate().unwrap();
            let problem = SchedProblem::new(&l.body, &machine).unwrap();
            let schedule = SlackScheduler::new()
                .run(&problem)
                .unwrap_or_else(|e| panic!("{}: {e}", l.def.name));
            assert_eq!(validate(&problem, &schedule), Ok(()), "{}", l.def.name);
        }
    }
}

#[test]
fn meta_records_basic_blocks_and_trip_count() {
    let unit = compile(
        "loop m(i = 5..20) {
             real x[];
             if (x[i] > 0.0) { x[i] = 0.0; } else { x[i] = 1.0; }
         }",
    )
    .unwrap();
    let meta = unit.loops[0].body.meta();
    assert_eq!(meta.basic_blocks, 4);
    assert_eq!(meta.min_trip_count, Some(16));
}

#[test]
fn literal_real_subtrees_are_folded_at_compile_time() {
    let unit = compile(
        "loop fold(i = 2..n) {
             real w[], b[];
             w[i] = (0.0100 + 2.0 * 3.5) + b[i] * (w[i-1] - sqrt(4.0));
         }",
    )
    .unwrap();
    let body = &unit.loops[0].body;
    // No fsub/fmul/sqrt for the literal subtrees: only the two real fadd/
    // fsub/fmul that touch loop data remain.
    assert_eq!(
        body.ops()
            .iter()
            .filter(|o| o.kind == OpKind::FSqrt)
            .count(),
        0
    );
    let arith = body
        .ops()
        .iter()
        .filter(|o| matches!(o.kind, OpKind::FAdd | OpKind::FSub | OpKind::FMul))
        .count();
    assert_eq!(arith, 3, "{}", lsms_ir::to_listing(body));
    // The folded constants became invariants.
    let consts = unit.loops[0]
        .invariants
        .iter()
        .filter(|(_, s)| matches!(s, InvariantSource::ConstReal(_)))
        .count();
    assert_eq!(consts, 2, "7.01 and 2.0 (=sqrt 4)");
}

#[test]
fn folding_never_touches_polymorphic_int_literals() {
    let unit = compile("loop p(i = 1..9) { int k[]; k[i] = (2 + 3) * k[i-1]; }").unwrap();
    let body = &unit.loops[0].body;
    // 2 + 3 stays an IntAdd of constants (context-dependent type).
    assert_eq!(
        body.ops()
            .iter()
            .filter(|o| o.kind == OpKind::IntAdd)
            .count(),
        1
    );
}
