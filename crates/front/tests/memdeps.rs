//! Memory dependence analysis: every direction/kind/distance case the
//! lowering can produce, checked arc by arc.

use lsms_front::compile;
use lsms_ir::{DepKind, DepVia, LoopBody, OpKind};

fn body(src: &str) -> LoopBody {
    compile(src).unwrap().loops.remove(0).body
}

/// Memory arcs as (from-kind, to-kind, dep-kind, omega) tuples.
fn mem_arcs(body: &LoopBody) -> Vec<(OpKind, OpKind, DepKind, u32)> {
    body.deps()
        .iter()
        .filter(|d| d.via == DepVia::Memory)
        .map(|d| (body.op(d.from).kind, body.op(d.to).kind, d.kind, d.omega))
        .collect()
}

#[test]
fn store_to_later_load_same_iteration_is_flow() {
    // Two stores to x make it ineligible, keeping real loads around.
    let b = body(
        "loop t(i = 1..n) {
             real x[], y[];
             x[i] = y[i];
             x[i+1] = 1.0;
             y[i] = x[i] * 2.0;   // reads what the first store wrote
         }",
    );
    let arcs = mem_arcs(&b);
    assert!(
        arcs.contains(&(OpKind::Store, OpKind::Load, DepKind::Flow, 0)),
        "{arcs:?}"
    );
}

#[test]
fn cross_iteration_store_load_distance_is_exact() {
    let b = body(
        "loop t(i = 3..n) {
             real x[], y[];
             x[i] = y[i];
             x[i+1] = y[i] * 2.0;     // second store: x ineligible
             y[i] = x[i-3] + x[i-2];  // loads from 3 and 4 iterations back
         }",
    );
    let arcs = mem_arcs(&b);
    // store x[i] -> load x[i-3]: delta 3; store x[i+1] -> load x[i-3]:
    // delta 4; similarly 2 and 3 for x[i-2].
    for omega in [2, 3, 4] {
        assert!(
            arcs.iter().any(|&(f, t, k, w)| f == OpKind::Store
                && t == OpKind::Load
                && k == DepKind::Flow
                && w == omega),
            "missing flow omega {omega}: {arcs:?}"
        );
    }
}

#[test]
fn load_before_future_store_is_anti() {
    let b = body(
        "loop t(i = 1..n) {
             real x[], y[];
             y[i] = x[i+2];       // reads an element stored 2 iters later
             x[i] = y[i] * 0.5;
             x[i+1] = y[i];       // second store: ineligible
         }",
    );
    let arcs = mem_arcs(&b);
    assert!(
        arcs.iter().any(|&(f, t, k, w)| f == OpKind::Load
            && t == OpKind::Store
            && k == DepKind::Anti
            && (w == 1 || w == 2)),
        "{arcs:?}"
    );
}

#[test]
fn two_stores_same_element_are_output_ordered() {
    let b = body(
        "loop t(i = 1..n) {
             real x[], y[];
             x[i] = y[i];
             x[i] = y[i] * 2.0;   // same element, later statement
         }",
    );
    let arcs = mem_arcs(&b);
    assert!(
        arcs.contains(&(OpKind::Store, OpKind::Store, DepKind::Output, 0)),
        "{arcs:?}"
    );
}

#[test]
fn offset_stores_get_cross_iteration_output_arcs() {
    let b = body(
        "loop t(i = 1..n) {
             real x[], y[];
             x[i] = y[i];
             x[i+2] = y[i] * 2.0;
         }",
    );
    let arcs = mem_arcs(&b);
    // store x[i+2] (iter i) and store x[i] (iter i+2) hit the same
    // element: output arc at distance 2 from the +2 store to the +0 store.
    assert!(
        arcs.contains(&(OpKind::Store, OpKind::Store, DepKind::Output, 2)),
        "{arcs:?}"
    );
}

#[test]
fn loads_alone_never_make_memory_arcs() {
    let b = body(
        "loop t(i = 2..n) {
             real x[], y[];
             y[i] = x[i-1] + x[i] + x[i+1];
         }",
    );
    assert!(mem_arcs(&b).is_empty(), "{:?}", mem_arcs(&b));
}

#[test]
fn distinct_arrays_never_alias() {
    let b = body(
        "loop t(i = 1..n) {
             real x[], y[], z[];
             x[i] = z[i-1];
             x[i+1] = z[i];        // x ineligible
             y[i] = x[i-1];
             y[i+1] = x[i];        // y ineligible
         }",
    );
    // Memory arcs exist within x and within y, but never x<->y or with z.
    for d in b.deps().iter().filter(|d| d.via == DepVia::Memory) {
        let (f, t) = (b.op(d.from), b.op(d.to));
        // Recover which array each touches by the address operand's name.
        let array_of = |op: &lsms_ir::Op| {
            // Address value names look like "a.x+0": take the array part.
            let name = &b.value(op.inputs[0]).name;
            name.trim_start_matches("a.")
                .trim_end_matches(|c: char| c.is_ascii_digit())
                .trim_end_matches(['+', '-'])
                .to_owned()
        };
        assert_eq!(array_of(f), array_of(t), "cross-array arc {d:?}");
    }
}

#[test]
fn guarded_stores_still_order_against_loads() {
    let b = body(
        "loop t(i = 1..n) {
             real x[], y[];
             param real c;
             if (y[i] > c) { x[i] = y[i]; }
             y[i+1] = x[i-1];   // load of x must respect the guarded store
         }",
    );
    let arcs = mem_arcs(&b);
    assert!(
        arcs.iter().any(|&(f, t, k, w)| f == OpKind::Store
            && t == OpKind::Load
            && k == DepKind::Flow
            && w == 1),
        "{arcs:?}"
    );
}
