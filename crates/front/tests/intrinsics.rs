//! The min/max/abs intrinsics: parsing, lowering shape, and bitwise
//! execution equivalence.

use lsms_front::compile;
use lsms_ir::OpKind;
use lsms_machine::huff_machine;
use lsms_sim::{check_equivalence, check_equivalence_mve, RunConfig};

#[test]
fn minmax_lowers_to_compare_plus_select() {
    let unit = compile(
        "loop clamp(i = 1..n) {
             real x[], y[];
             param real lo, hi;
             y[i] = min(max(x[i], lo), hi);
         }",
    )
    .unwrap();
    let body = &unit.loops[0].body;
    assert_eq!(
        body.ops()
            .iter()
            .filter(|o| o.kind == OpKind::Select)
            .count(),
        2
    );
    assert_eq!(
        body.ops()
            .iter()
            .filter(|o| o.kind == OpKind::CmpGt)
            .count(),
        1
    );
    assert_eq!(
        body.ops()
            .iter()
            .filter(|o| o.kind == OpKind::CmpLt)
            .count(),
        1
    );
}

#[test]
fn abs_lowers_to_negate_plus_select() {
    let unit = compile("loop a(i = 1..n) { real x[], y[]; y[i] = abs(x[i]); }").unwrap();
    let body = &unit.loops[0].body;
    assert_eq!(
        body.ops()
            .iter()
            .filter(|o| o.kind == OpKind::Select)
            .count(),
        1
    );
    assert_eq!(
        body.ops().iter().filter(|o| o.kind == OpKind::FSub).count(),
        1
    );
}

#[test]
fn intrinsics_type_check() {
    // Mixed types rejected.
    assert!(compile("loop t(i=1..9){ real x[]; int k[]; x[i] = min(x[i], k[i]); }").is_err());
    // Int min/max/abs allowed.
    compile("loop t(i=1..9){ int k[], m[]; m[i] = max(abs(k[i-1]), 3); }").unwrap();
}

#[test]
fn intrinsics_compute_correctly_in_both_engines() {
    let sources = [
        "loop clamp(i = 1..n) {
             real x[], y[];
             param real lo, hi;
             y[i] = min(max(x[i], lo), hi);
         }",
        "loop l1(i = 1..n) {
             real x[], y[], d[];
             d[i] = abs(x[i] - y[i]);
         }",
        "loop intabs(i = 2..n) {
             int k[], m[];
             m[i] = abs(k[i] - m[i-1]) + min(k[i], 5);
         }",
        "loop runmin(i = 1..n) {
             real x[], out[];
             real lowest;
             lowest = min(lowest, x[i]);
             out[i] = lowest;
         }",
    ];
    let machine = huff_machine();
    for src in sources {
        let unit = compile(src).unwrap();
        for trip in [1, 3, 24] {
            let config = RunConfig {
                trip,
                seed: trip * 3 + 1,
                ..RunConfig::default()
            };
            check_equivalence(&unit.loops[0], &machine, &config)
                .unwrap_or_else(|e| panic!("rotating {}: {e}", unit.loops[0].def.name));
            check_equivalence_mve(&unit.loops[0], &machine, &config)
                .unwrap_or_else(|e| panic!("mve {}: {e}", unit.loops[0].def.name));
        }
    }
}

#[test]
fn intrinsics_roundtrip_through_the_printer() {
    let src = "loop p(i = 1..n) { real x[], y[]; y[i] = min(abs(x[i-1]), max(x[i], 2.0)); }";
    let unit = lsms_front::parse(&lsms_front::lex(src).unwrap()).unwrap();
    let printed = lsms_front::print_loop(&unit[0]);
    assert!(printed.contains("min(") && printed.contains("max(") && printed.contains("abs("));
    compile(&printed).unwrap();
}
