//! Error-path coverage: every diagnostic the front end can produce, with
//! its source location.

use lsms_front::{compile, FrontError};

fn err(src: &str) -> FrontError {
    compile(src).expect_err("source should be rejected")
}

#[test]
fn lexical_errors_carry_positions() {
    let e = err("loop f(i = 1..9) {\n    real x[];\n    x[i] = 1 @ 2;\n}");
    assert!(e.message.contains("unexpected character"), "{e}");
    assert_eq!(e.span.line, 3);
}

#[test]
fn syntax_errors() {
    assert!(err("bogus").message.contains("expected `loop`"));
    assert!(err("loop f(i = 1..9) {").message.contains("unterminated"));
    assert!(err("loop f(i = 1..9) { real x[]; x[i] 1.0; }")
        .message
        .contains("expected `=`"));
    assert!(err("loop f(i = 1..9) { real x[]; x[i] = ; }")
        .message
        .contains("expected expression"));
    assert!(err("loop f(i = ..9) { }")
        .message
        .contains("expected loop bound"));
    assert!(
        err("loop f(i = 1..9) { real x[]; if x[i] > 0.0 { x[i] = 0.0; } }")
            .message
            .contains("expected `(`")
    );
    assert!(
        err("loop f(i = 1..9) { real x[]; if (x[i] ? 0.0) { x[i] = 0.0; } }")
            .message
            .contains("unexpected character")
    );
}

#[test]
fn subscript_discipline_is_enforced() {
    assert!(err("loop f(i = 1..9) { real x[]; x[j] = 1.0; }")
        .message
        .contains("induction variable"));
    assert!(err("loop f(i = 1..9) { real x[]; x[i*2] = 1.0; }")
        .message
        .contains("expected"));
    assert!(err("loop f(i = 1..9) { real x[]; x[i+j] = 1.0; }")
        .message
        .contains("constant offset"));
}

#[test]
fn semantic_errors() {
    // Undeclared names.
    assert!(err("loop f(i=1..9){ real x[]; x[i] = q; }")
        .message
        .contains("undeclared scalar"));
    assert!(err("loop f(i=1..9){ real x[]; x[i] = z[i]; }")
        .message
        .contains("undeclared array"));
    assert!(err("loop f(i=1..9){ real x[]; z[i] = 1.0; }")
        .message
        .contains("undeclared array"));
    // Parameter assignment.
    assert!(err("loop f(i=1..9){ param real a; real x[]; a = x[i]; }")
        .message
        .contains("cannot assign to parameter"));
    // Induction variable misuse.
    assert!(err("loop f(i=1..9){ real x[]; x[i] = i; }")
        .message
        .contains("induction variable"));
    assert!(err("loop f(i=1..9){ real x[]; i = 1; }")
        .message
        .contains("induction variable"));
    // Type errors.
    assert!(err("loop f(i=1..9){ real x[]; int k[]; x[i] = k[i]; }")
        .message
        .contains("int value in real context"));
    assert!(err("loop f(i=1..9){ real x[]; int k[]; k[i] = x[i]; }")
        .message
        .contains("real value in int context"));
    assert!(
        err("loop f(i=1..9){ real x[]; int k[]; x[i] = x[i] + k[i]; }")
            .message
            .contains("mixed real/int")
    );
    assert!(err("loop f(i=1..9){ real x[]; x[i] = x[i] % 2.0; }")
        .message
        .contains('%'));
    assert!(err("loop f(i=1..9){ int k[]; k[i] = sqrt(k[i]); }")
        .message
        .contains("sqrt"));
    // Duplicates.
    assert!(err("loop f(i=1..9){ real x[]; param real x; x[i] = 0.0; }")
        .message
        .contains("declared twice"));
    // Arrays need subscripts.
    assert!(err("loop f(i=1..9){ real x[], y[]; y = x[i]; }")
        .message
        .contains("subscript"));
}

#[test]
fn rem_is_definitely_int_even_for_literals() {
    // `2 % 3` may not leak into a real context (its value is an integer
    // bit pattern).
    let e = err("loop f(i=1..9){ real x[]; x[i] = (2 % 3) * x[i-1]; }");
    assert!(
        e.message.contains("mixed real/int") || e.message.contains("int value"),
        "{e}"
    );
}

#[test]
fn multiple_loops_report_errors_in_the_right_one() {
    let e = err("loop ok(i = 1..9) { real x[]; x[i] = 1.0; }
         loop bad(i = 1..9) { real y[]; y[i] = undeclared; }");
    assert!(e.message.contains("undeclared scalar"), "{e}");
    assert_eq!(e.span.line, 2);
}

#[test]
fn valid_edge_cases_still_compile() {
    // Empty loop body.
    compile("loop empty(i = 1..9) { real x[]; }").unwrap();
    // Declared-but-unassigned scalar acts as a parameter.
    compile("loop p(i = 1..9) { real x[]; real s; x[i] = s; }").unwrap();
    // Whole expression is one literal.
    compile("loop c(i = 1..9) { int k[]; k[i] = 7; }").unwrap();
    // Deeply nested conditionals within the basic-block budget.
    compile(
        "loop nest(i = 1..9) { real x[];
             if (x[i] > 0.0) { if (x[i] > 1.0) { if (x[i] > 2.0) { x[i] = 2.0; } } }
         }",
    )
    .unwrap();
}
