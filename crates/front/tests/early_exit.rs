//! Early-exit loops (`break if`, §6 citing Tirumalai et al. [22]):
//! parsing rules, the lowered `live` predicate chain, and end-to-end
//! equivalence of the speculative pipeline against the reference.

use lsms_front::compile;
use lsms_ir::OpKind;
use lsms_machine::huff_machine;
use lsms_sim::{check_equivalence, check_equivalence_mve, RunConfig};

const SEARCH: &str = "loop search(i = 1..n) {
    real x[], out[];
    param real needle;
    out[i] = x[i] * 2.0;
    break if (x[i] >= needle);
}";

#[test]
fn break_lowers_to_a_carried_live_chain() {
    let unit = compile(SEARCH).unwrap();
    let body = &unit.loops[0].body;
    // live = pand(live@1, noexit@1): one PredAnd with both inputs at
    // omega 1 after resolution.
    let pands: Vec<_> = body
        .ops()
        .iter()
        .filter(|o| o.kind == OpKind::PredAnd)
        .collect();
    assert_eq!(pands.len(), 1, "{}", lsms_ir::to_listing(body));
    assert_eq!(pands[0].input_omegas, vec![1, 1]);
    // The store is guarded by live.
    let store = body.ops().iter().find(|o| o.kind == OpKind::Store).unwrap();
    assert_eq!(store.predicate, pands[0].result);
    // The chain is a *trivial* (self-arc) circuit — it constrains RecMII
    // but not the non-trivial-recurrence classification.
    assert!(!body.has_recurrence());
    assert!(body.has_conditional());
}

#[test]
fn break_must_be_last_and_unique() {
    assert!(
        compile("loop b(i = 1..9) { real x[]; break if (x[i] > 0.0); x[i] = 1.0; }")
            .unwrap_err()
            .message
            .contains("last top-level statement")
    );
    assert!(compile(
        "loop b(i = 1..9) { real x[];
             if (x[i] > 0.0) { break if (x[i] > 1.0); } }"
    )
    .unwrap_err()
    .message
    .contains("last top-level statement"));
    assert!(compile("loop b(i = 1..9) { real x[]; break; }")
        .unwrap_err()
        .message
        .contains("break if"));
}

#[test]
fn exit_pipeline_matches_the_reference_bitwise() {
    let machine = huff_machine();
    let sources = [
        SEARCH,
        // Exit on a running sum crossing a threshold: the exit condition
        // itself sits on a recurrence.
        "loop until(i = 1..n) {
             real x[], acc[];
             real s;
             s = s + x[i];
             acc[i] = s;
             break if (s > 10.0);
         }",
        // Exit combined with an ordinary conditional.
        "loop mixed(i = 1..n) {
             real x[], y[];
             param real t;
             if (x[i] > t) { y[i] = t; } else { y[i] = x[i]; }
             break if (x[i] < -40.0);
         }",
        // Integer exit condition.
        "loop ints(i = 2..n) {
             int k[], m[];
             m[i] = k[i] + m[i-1] % 100;
             break if (m[i] % 13 == 0);
         }",
    ];
    for src in sources {
        let unit = compile(src).unwrap();
        for trip in [1, 2, 5, 19, 60] {
            for seed in [1u64, 9, 42] {
                let config = RunConfig {
                    trip,
                    seed,
                    ..RunConfig::default()
                };
                check_equivalence(&unit.loops[0], &machine, &config).unwrap_or_else(|e| {
                    panic!(
                        "rotating {} trip {trip} seed {seed}: {e}",
                        unit.loops[0].def.name
                    )
                });
                check_equivalence_mve(&unit.loops[0], &machine, &config).unwrap_or_else(|e| {
                    panic!(
                        "mve {} trip {trip} seed {seed}: {e}",
                        unit.loops[0].def.name
                    )
                });
            }
        }
    }
}

#[test]
fn exit_squashes_only_post_exit_stores() {
    use lsms_sim::{make_workspace, run_reference};
    // With data forcing an exit at a known iteration, elements beyond it
    // must keep their initial values in the reference (and, per the
    // equivalence test above, in the pipeline).
    let unit = compile(SEARCH).unwrap();
    let compiled = &unit.loops[0];
    let mut ws = make_workspace(compiled, 20, 7);
    let needle = 1.0e9f64; // never fires with the default data
    ws.params.insert("needle".into(), needle.to_bits());
    // Make iteration lo+4 fire the exit.
    let lo = ws.lo as usize;
    ws.arrays[0][lo + 4] = (2.0e9f64).to_bits();
    let out = run_reference(compiled, &ws);
    // Iterations lo..=lo+4 stored; lo+5.. untouched.
    for k in 0..5 {
        assert_ne!(out[1][lo + k], ws.arrays[1][lo + k], "iteration {k} stored");
    }
    for k in 6..15 {
        assert_eq!(
            out[1][lo + k],
            ws.arrays[1][lo + k],
            "iteration {k} squashed"
        );
    }
    // And the full pipeline agrees (workspace-specific, so run manually).
    let machine = huff_machine();
    let problem = lsms_sched::SchedProblem::new(&compiled.body, &machine).unwrap();
    let schedule = lsms_sched::SlackScheduler::new().run(&problem).unwrap();
    let rr = lsms_regalloc::allocate_rotating(
        &problem,
        &schedule,
        lsms_ir::RegClass::Rr,
        lsms_regalloc::Strategy::default(),
    )
    .unwrap();
    let icr = lsms_regalloc::allocate_rotating(
        &problem,
        &schedule,
        lsms_ir::RegClass::Icr,
        lsms_regalloc::Strategy::default(),
    )
    .unwrap();
    let kernel = lsms_codegen::emit(&problem, &schedule, &rr, &icr).unwrap();
    let got = lsms_sim::run_kernel(compiled, &problem, &schedule, &kernel, &rr, &icr, &ws).unwrap();
    assert_eq!(got.arrays, out);
}

#[test]
fn break_roundtrips_through_the_printer() {
    let parsed = lsms_front::parse(&lsms_front::lex(SEARCH).unwrap()).unwrap();
    let printed = lsms_front::print_loop(&parsed[0]);
    assert!(printed.contains("break if ("), "{printed}");
    compile(&printed).unwrap();
}
