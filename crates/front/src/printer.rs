//! Pretty-printing the AST back to DSL source (unparsing).
//!
//! Useful for diagnostics, corpus inspection, and — paired with the
//! parser — for round-trip testing: `parse(print(ast)) == ast`.

use std::fmt::Write as _;

use crate::ast::{BinOp, Bound, Cond, Decl, Expr, LValue, LoopDef, RelOp, Stmt, Ty};

/// Renders one loop definition as DSL source text that re-parses to an
/// equivalent AST.
pub fn print_loop(def: &LoopDef) -> String {
    let mut out = String::new();
    let _ = write!(out, "loop {}({} = ", def.name, def.var);
    print_bound(&mut out, &def.lo);
    out.push_str("..");
    print_bound(&mut out, &def.hi);
    out.push_str(") {\n");
    for decl in &def.decls {
        match decl {
            Decl::Array { ty, names } => {
                let list: Vec<String> = names.iter().map(|n| format!("{n}[]")).collect();
                let _ = writeln!(out, "    {} {};", ty_name(*ty), list.join(", "));
            }
            Decl::Param { ty, names } => {
                let _ = writeln!(out, "    param {} {};", ty_name(*ty), names.join(", "));
            }
            Decl::Scalar { ty, names } => {
                let _ = writeln!(out, "    {} {};", ty_name(*ty), names.join(", "));
            }
        }
    }
    for stmt in &def.body {
        print_stmt(&mut out, stmt, 1);
    }
    out.push_str("}\n");
    out
}

fn ty_name(ty: Ty) -> &'static str {
    match ty {
        Ty::Real => "real",
        Ty::Int => "int",
    }
}

fn print_bound(out: &mut String, bound: &Bound) {
    match bound {
        Bound::Const(v) => {
            let _ = write!(out, "{v}");
        }
        Bound::Param(name) => out.push_str(name),
    }
}

fn print_stmt(out: &mut String, stmt: &Stmt, indent: usize) {
    let pad = "    ".repeat(indent);
    match stmt {
        Stmt::Assign { target, value, .. } => {
            out.push_str(&pad);
            match target {
                LValue::Elem { array, offset } => print_subscript(out, array, *offset),
                LValue::Scalar(name) => out.push_str(name),
            }
            out.push_str(" = ");
            print_expr(out, value);
            out.push_str(";\n");
        }
        Stmt::BreakIf { cond } => {
            out.push_str(&pad);
            out.push_str("break if (");
            print_cond(out, cond);
            out.push_str(");\n");
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            out.push_str(&pad);
            out.push_str("if (");
            print_cond(out, cond);
            out.push_str(") {\n");
            for s in then_body {
                print_stmt(out, s, indent + 1);
            }
            let _ = write!(out, "{pad}}}");
            if else_body.is_empty() {
                out.push('\n');
            } else {
                out.push_str(" else {\n");
                for s in else_body {
                    print_stmt(out, s, indent + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }
}

fn print_cond(out: &mut String, cond: &Cond) {
    print_expr(out, &cond.lhs);
    let rel = match cond.op {
        RelOp::Eq => "==",
        RelOp::Ne => "!=",
        RelOp::Lt => "<",
        RelOp::Le => "<=",
        RelOp::Gt => ">",
        RelOp::Ge => ">=",
    };
    let _ = write!(out, " {rel} ");
    print_expr(out, &cond.rhs);
}

fn print_subscript(out: &mut String, array: &str, offset: i64) {
    match offset {
        0 => {
            let _ = write!(out, "{array}[i]");
        }
        o if o > 0 => {
            let _ = write!(out, "{array}[i+{o}]");
        }
        o => {
            let _ = write!(out, "{array}[i-{}]", -o);
        }
    }
}

/// Parenthesizes conservatively: every binary node gets parentheses, so
/// precedence never needs reconstructing.
fn print_expr(out: &mut String, expr: &Expr) {
    match expr {
        Expr::Real(x) => {
            // Keep a decimal point so the literal re-lexes as a real.
            if x.fract() == 0.0 && x.is_finite() {
                let _ = write!(out, "{x:.1}");
            } else {
                let _ = write!(out, "{x}");
            }
        }
        Expr::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Scalar(name, _) => out.push_str(name),
        Expr::Elem { array, offset, .. } => print_subscript(out, array, *offset),
        Expr::Neg(inner) => {
            out.push_str("-(");
            print_expr(out, inner);
            out.push(')');
        }
        Expr::Bin(op, lhs, rhs) => {
            out.push('(');
            print_expr(out, lhs);
            let sym = match op {
                BinOp::Add => " + ",
                BinOp::Sub => " - ",
                BinOp::Mul => " * ",
                BinOp::Div => " / ",
                BinOp::Rem => " % ",
            };
            out.push_str(sym);
            print_expr(out, rhs);
            out.push(')');
        }
        Expr::Sqrt(inner) => {
            out.push_str("sqrt(");
            print_expr(out, inner);
            out.push(')');
        }
        Expr::MinMax { is_max, lhs, rhs } => {
            out.push_str(if *is_max { "max(" } else { "min(" });
            print_expr(out, lhs);
            out.push_str(", ");
            print_expr(out, rhs);
            out.push(')');
        }
        Expr::Abs(inner) => {
            out.push_str("abs(");
            print_expr(out, inner);
            out.push(')');
        }
    }
}

/// Source texts used by printer round-trip tests (the hand-written corpus
/// kernels, duplicated here to avoid a dependency cycle with
/// `lsms-loops`).
#[cfg(test)]
pub(crate) fn tests_corpus_sources() -> Vec<String> {
    vec![
        "loop h(i = 1..n) { real x[], y[], z[]; param real q, r, t;
             x[i] = q + y[i] * (r * z[i+10] + t * z[i+11]); }"
            .to_owned(),
        "loop t(i = 2..n) { real x[], y[], z[]; x[i] = z[i] * (y[i] - x[i-1]); }".to_owned(),
        "loop m(i = 1..n) { real x[], m[]; real best;
             if (x[i] > best) { best = x[i]; } m[i] = best; }"
            .to_owned(),
        "loop d(i = 6..n) { real x[], y[]; param real c;
             x[i] = x[i] - x[i-1] * y[i] - x[i-5] * y[i-1] * c; }"
            .to_owned(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lex, parse};

    /// Strips source spans so round-trip comparison ignores locations.
    fn strip_expr(e: &mut Expr) {
        match e {
            Expr::Scalar(_, span) => *span = crate::Span::default(),
            Expr::Elem { span, .. } => *span = crate::Span::default(),
            Expr::Neg(x) | Expr::Sqrt(x) | Expr::Abs(x) => strip_expr(x),
            Expr::Bin(_, l, r) | Expr::MinMax { lhs: l, rhs: r, .. } => {
                strip_expr(l);
                strip_expr(r);
            }
            Expr::Real(_) | Expr::Int(_) => {}
        }
    }

    fn strip(def: &mut LoopDef) {
        fn stmts(list: &mut [Stmt]) {
            for s in list {
                match s {
                    Stmt::Assign { value, span, .. } => {
                        strip_expr(value);
                        *span = crate::Span::default();
                    }
                    Stmt::If {
                        cond,
                        then_body,
                        else_body,
                    } => {
                        strip_expr(&mut cond.lhs);
                        strip_expr(&mut cond.rhs);
                        stmts(then_body);
                        stmts(else_body);
                    }
                    Stmt::BreakIf { cond } => {
                        strip_expr(&mut cond.lhs);
                        strip_expr(&mut cond.rhs);
                    }
                }
            }
        }
        stmts(&mut def.body);
    }

    fn roundtrip(src: &str) {
        let mut original = parse(&lex(src).unwrap()).unwrap();
        let printed = print_loop(&original[0]);
        let mut reparsed = parse(&lex(&printed).unwrap())
            .unwrap_or_else(|e| panic!("printed source does not parse: {e}\n{printed}"));
        strip(&mut original[0]);
        strip(&mut reparsed[0]);
        assert_eq!(
            original[0], reparsed[0],
            "round trip changed the AST:\n{printed}"
        );
    }

    #[test]
    fn roundtrips_the_kernel_shapes() {
        roundtrip(
            "loop sample(i = 3..n) {
                 real x[], y[];
                 x[i] = x[i-1] + y[i-2];
                 y[i] = y[i-1] + x[i-2];
             }",
        );
        roundtrip(
            "loop clip(i = 1..n) {
                 real x[], y[];
                 param real lo, hi;
                 if (x[i] < lo) { y[i] = lo; }
                 else { if (x[i] > hi) { y[i] = hi; } else { y[i] = x[i]; } }
             }",
        );
        roundtrip(
            "loop ints(i = 2..9) {
                 int k[], m[];
                 int s;
                 s = s + k[i] % 3;
                 m[i] = -(s) * 2 / (k[i-1] + 1);
             }",
        );
        roundtrip(
            "loop lits(i = 1..n) {
                 real x[];
                 x[i] = sqrt(x[i-1] * 2.0 + 0.125) - 3.0;
             }",
        );
    }

    #[test]
    fn roundtrips_every_named_kernel_and_generated_loop() {
        // The kernels and a generated batch cover the whole grammar.
        for k in crate::tests_corpus_sources() {
            roundtrip(&k);
        }
    }

    #[test]
    fn real_literals_keep_their_point() {
        let src = "loop r(i = 1..4) { real x[]; x[i] = 2.0; }";
        let def = &parse(&lex(src).unwrap()).unwrap()[0];
        let printed = print_loop(def);
        assert!(printed.contains("2.0"), "{printed}");
    }
}
