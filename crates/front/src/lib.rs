//! A FORTRAN-flavoured loop front end for the modulo schedulers.
//!
//! The paper evaluates its scheduler on DO loops from scientific FORTRAN
//! codes, compiled by Cydrome's FORTRAN77 compiler. This crate supplies the
//! equivalent substrate: a small loop DSL plus the analyses the scheduler
//! depends on —
//!
//! * lexer / parser / semantic checks for single inner loops over arrays
//!   with constant-distance subscripts (`x[i-2]`) and loop-carried scalars;
//! * **if-conversion** (§2.2): conditionals become predicate-defining
//!   compares plus guarded operations, keeping loop bodies branch-free;
//! * **load/store elimination** (§2.3): a load of `x[i-d]` whose elements
//!   the loop itself stores becomes a register use of the value computed
//!   `d` iterations earlier, leaving values live for more than II cycles —
//!   the reason rotating register files exist;
//! * **memory dependence analysis**: remaining loads/stores get
//!   flow/anti/output arcs with exact distances (ω);
//! * **address lowering**: one shared induction `iv8 = iv8 + 8` plus one
//!   address add per distinct array reference, with per-reference base
//!   constants in the GPR file.
//!
//! The result is a [`CompiledLoop`]: an `lsms-ir` body ready for
//! scheduling, plus the binding metadata (`initials`, `invariants`) that
//! lets `lsms-sim` execute generated code against concrete arrays.
//!
//! # Example
//!
//! ```
//! use lsms_front::compile;
//!
//! let unit = compile(
//!     "loop sample(i = 3..n) {
//!          real x[], y[];
//!          x[i] = x[i-1] + y[i-2];
//!          y[i] = y[i-1] + x[i-2];
//!      }",
//! )?;
//! let body = &unit.loops[0].body;
//! assert!(body.has_recurrence());
//! # Ok::<(), lsms_front::FrontError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod error;
mod fold;
mod lexer;
mod lower;
mod parser;
mod printer;
mod sema;

pub use ast::{BinOp, Bound, Cond, Decl, Expr, LValue, LoopDef, RelOp, Stmt, Ty};
pub use error::{FrontError, Span};
pub use lexer::{lex, Token, TokenKind};
pub use lower::{lower as lower_loop, CompiledLoop, CompiledUnit, InitialSource, InvariantSource};
pub use parser::parse;
pub use printer::print_loop;
pub use sema::{analyze, LoopInfo};

#[cfg(test)]
pub(crate) use printer::tests_corpus_sources;

/// Compiles DSL source text into scheduler-ready loop bodies.
///
/// Runs the full pipeline — lex, parse, semantic analysis, if-conversion,
/// load/store elimination, address lowering, dependence analysis — on every
/// `loop` in the source.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic error, with its source
/// location.
pub fn compile(source: &str) -> Result<CompiledUnit, FrontError> {
    let tokens = lex(source)?;
    let loops = parse(&tokens)?;
    let mut compiled = Vec::with_capacity(loops.len());
    for def in loops {
        let info = analyze(&def)?;
        compiled.push(lower::lower(def, &info)?);
    }
    Ok(CompiledUnit { loops: compiled })
}
