//! Abstract syntax for the loop DSL.
//!
//! One `loop` construct models a FORTRAN DO loop over an induction
//! variable with unit stride; array subscripts are restricted to
//! `i ± constant`, which keeps every dependence distance exact — the
//! property the paper's front end exploits for load/store elimination
//! (§2.3, footnote 3).

use crate::Span;

/// A scalar type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ty {
    /// 64-bit float (`real`).
    Real,
    /// 64-bit integer (`int`).
    Int,
}

/// A loop bound: a constant or a runtime parameter.
#[derive(Clone, Debug, PartialEq)]
pub enum Bound {
    /// Known at compile time.
    Const(i64),
    /// Named parameter supplied at run time.
    Param(String),
}

/// A declaration inside a loop.
#[derive(Clone, Debug, PartialEq)]
pub enum Decl {
    /// `real x[], y[];` — arrays indexed by the induction variable.
    Array {
        /// Element type.
        ty: Ty,
        /// Array names.
        names: Vec<String>,
    },
    /// `param real alpha;` — loop-invariant scalars.
    Param {
        /// Scalar type.
        ty: Ty,
        /// Parameter names.
        names: Vec<String>,
    },
    /// `real s;` — loop-carried scalars (assigned inside the loop).
    Scalar {
        /// Scalar type.
        ty: Ty,
        /// Scalar names.
        names: Vec<String>,
    },
}

/// An assignable location.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// `x[i + offset]`.
    Elem {
        /// Array name.
        array: String,
        /// Constant distance from the induction variable.
        offset: i64,
    },
    /// A loop-carried scalar.
    Scalar(String),
}

/// Binary arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (integers only)
    Rem,
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Real literal.
    Real(f64),
    /// Integer literal.
    Int(i64),
    /// Parameter or loop-carried scalar.
    Scalar(String, Span),
    /// `x[i + offset]`.
    Elem {
        /// Array name.
        array: String,
        /// Constant distance from the induction variable.
        offset: i64,
        /// Location, for diagnostics.
        span: Span,
    },
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary arithmetic.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `sqrt(e)` (reals only).
    Sqrt(Box<Expr>),
    /// `min(a, b)` / `max(a, b)` — lowered to compare + select.
    MinMax {
        /// True for `max`.
        is_max: bool,
        /// First operand.
        lhs: Box<Expr>,
        /// Second operand.
        rhs: Box<Expr>,
    },
    /// `abs(e)` — lowered to compare-against-zero + select.
    Abs(Box<Expr>),
}

/// A comparison guarding an `if`.
#[derive(Clone, Debug, PartialEq)]
pub struct Cond {
    /// Comparison operator.
    pub op: RelOp,
    /// Left operand.
    pub lhs: Expr,
    /// Right operand.
    pub rhs: Expr,
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `lvalue = expr;`
    Assign {
        /// Where the result goes.
        target: LValue,
        /// What to compute.
        value: Expr,
        /// Location, for diagnostics.
        span: Span,
    },
    /// `if (cond) { ... } else { ... }` — removed by if-conversion.
    If {
        /// The branch condition.
        cond: Cond,
        /// Taken statements.
        then_body: Vec<Stmt>,
        /// Not-taken statements (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `break if (cond);` — an early exit, taken *after* the iteration
    /// completes (post-tested). Lowered to a carried `live` predicate that
    /// squashes the stores of post-exit iterations, so the software
    /// pipeline may keep running speculatively (§6, citing Tirumalai et
    /// al. \[22\]).
    BreakIf {
        /// The exit condition, evaluated at the end of each iteration.
        cond: Cond,
    },
}

/// One `loop name(i = lo..hi) { decls stmts }` construct.
#[derive(Clone, Debug, PartialEq)]
pub struct LoopDef {
    /// Loop name, for diagnostics and reports.
    pub name: String,
    /// Induction variable name.
    pub var: String,
    /// Inclusive lower bound.
    pub lo: Bound,
    /// Inclusive upper bound.
    pub hi: Bound,
    /// Declarations.
    pub decls: Vec<Decl>,
    /// Statements.
    pub body: Vec<Stmt>,
}

impl LoopDef {
    /// Number of basic blocks the body would occupy *before*
    /// if-conversion, for the Table 2 complexity statistics: the entry
    /// block, plus then/else/join blocks per `if`, recursively.
    pub fn basic_blocks(&self) -> u32 {
        fn count(stmts: &[Stmt]) -> u32 {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Assign { .. } => 0,
                    Stmt::BreakIf { .. } => 1,
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => 2 + u32::from(!else_body.is_empty()) + count(then_body) + count(else_body),
                })
                .sum()
        }
        1 + count(&self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assign() -> Stmt {
        Stmt::Assign {
            target: LValue::Scalar("s".into()),
            value: Expr::Int(0),
            span: Span::default(),
        }
    }

    #[test]
    fn straight_line_is_one_block() {
        let def = LoopDef {
            name: "t".into(),
            var: "i".into(),
            lo: Bound::Const(1),
            hi: Bound::Param("n".into()),
            decls: vec![],
            body: vec![assign(), assign()],
        };
        assert_eq!(def.basic_blocks(), 1);
    }

    #[test]
    fn ifs_add_blocks() {
        let iff = Stmt::If {
            cond: Cond {
                op: RelOp::Lt,
                lhs: Expr::Int(0),
                rhs: Expr::Int(1),
            },
            then_body: vec![assign()],
            else_body: vec![assign()],
        };
        let def = LoopDef {
            name: "t".into(),
            var: "i".into(),
            lo: Bound::Const(1),
            hi: Bound::Const(9),
            decls: vec![],
            body: vec![iff],
        };
        // entry + then + else + join
        assert_eq!(def.basic_blocks(), 4);
    }
}
