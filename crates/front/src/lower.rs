//! Lowering: if-conversion, load/store elimination, address generation,
//! and dependence construction.
//!
//! The lowering walks statements in order under a *predicate context*
//! (§2.2): entering `if (c)` computes a predicate and guards the branch's
//! operations with it (`PredAnd`/`PredNot` compose nested and `else`
//! contexts); scalar assignments under a predicate merge with a `Select`
//! so every value keeps one SSA definition. Two placeholder mechanisms
//! resolve once the whole body has been seen:
//!
//! * **carried scalars** — reads before (re)definition use a placeholder
//!   that is rewritten to the scalar's final value at distance ω + 1;
//! * **eliminated loads** (§2.3) — a load of `x[i − d]` from an array the
//!   loop stores exactly once, unconditionally, at `x[i + s]` (with
//!   `d = s − load offset ≥ 1`) never touches memory: it is rewritten to
//!   the stored value at distance ω + d, exactly the optimization that
//!   makes values live longer than II and motivates rotating register
//!   files.
//!
//! Addressing: a shared induction `iv8 = iv8 +(ω=1) stride8` plus one
//! `AddrAdd(iv8, base_ref)` per distinct array reference, with
//! `base_ref = base(array) + 8·offset` constants in the GPR file.

use std::collections::BTreeMap;

use lsms_ir::{DepKind, DepVia, LoopBody, LoopBuilder, LoopMeta, OpId, OpKind, ValueId, ValueType};

use crate::ast::{BinOp, Bound, Expr, LValue, LoopDef, RelOp, Stmt, Ty};
use crate::sema::LoopInfo;
use crate::FrontError;

/// How to materialise a loop-invariant (GPR) value before entering the
/// loop; `lsms-sim` evaluates these bindings.
#[derive(Clone, Debug, PartialEq)]
pub enum InvariantSource {
    /// A real constant from the source text.
    ConstReal(f64),
    /// An integer constant from the source text.
    ConstInt(i64),
    /// A runtime parameter by name.
    Param(String),
    /// `base(array) + 8·offset`: the per-reference address base.
    RefBase {
        /// Array index into [`LoopInfo::arrays`].
        array: usize,
        /// Subscript offset of the reference.
        offset: i64,
    },
    /// The element stride (8 bytes).
    Stride,
}

/// Where the pre-loop *instances* of a loop-variant value come from:
/// instance `j < 0` of a value is read whenever a use's ω exceeds the
/// iteration number, so the simulator needs a source for it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InitialSource {
    /// Instance `j` is the initial memory content of
    /// `array[lo + j + offset]`.
    ArrayElem {
        /// Array index into [`LoopInfo::arrays`].
        array: usize,
        /// The *store* offset of the value's defining reference.
        offset: i64,
    },
    /// Instance `j < 0` is the user-supplied initial value of the carried
    /// scalar.
    Scalar(String),
    /// Instance `j` is `8 · (lo + j)` — the shared index induction.
    Index8,
    /// Instance `j < 0` is the constant true predicate — used to seed the
    /// early-exit `live` chain (no exit has fired before the loop).
    PredTrue,
}

/// One fully lowered loop: the scheduler-ready body plus the semantic
/// bindings the simulator needs.
#[derive(Clone, Debug)]
pub struct CompiledLoop {
    /// The branch-free SSA body with its dependence graph.
    pub body: LoopBody,
    /// The source AST (retained for the reference interpreter).
    pub def: LoopDef,
    /// Resolved symbols.
    pub info: LoopInfo,
    /// How to compute each loop-invariant value before the loop.
    pub invariants: Vec<(ValueId, InvariantSource)>,
    /// Pre-loop instance sources for loop-variant values.
    pub initials: Vec<(ValueId, InitialSource)>,
}

/// All loops compiled from one source text.
#[derive(Clone, Debug)]
pub struct CompiledUnit {
    /// The loops, in source order.
    pub loops: Vec<CompiledLoop>,
}

/// A value reference with its iteration distance.
#[derive(Clone, Copy, Debug)]
struct VRef {
    value: ValueId,
    omega: u32,
}

impl VRef {
    fn here(value: ValueId) -> Self {
        Self { value, omega: 0 }
    }

    fn pair(self) -> (ValueId, u32) {
        (self.value, self.omega)
    }
}

/// A static memory reference that survived elimination.
#[derive(Clone, Debug)]
struct MemRef {
    op: OpId,
    array: usize,
    offset: i64,
    is_store: bool,
    seq: usize,
}

struct Lowerer<'a> {
    b: LoopBuilder,
    def: &'a LoopDef,
    info: &'a LoopInfo,
    invariants: Vec<(ValueId, InvariantSource)>,
    initials: Vec<(ValueId, InitialSource)>,
    const_cache: BTreeMap<(u64, bool), ValueId>,
    params: BTreeMap<String, ValueId>,
    /// The shared `iv8` induction value, created on first array reference.
    iv8: Option<ValueId>,
    stride: Option<ValueId>,
    /// Per-(array, offset) address value.
    ref_addrs: BTreeMap<(usize, i64), ValueId>,
    /// Per-(array, offset) load CSE cache, invalidated on stores.
    load_cache: BTreeMap<(usize, i64), ValueId>,
    /// Elimination-eligible arrays: array -> (store offset).
    eligible: BTreeMap<usize, i64>,
    /// Eliminated-load placeholders: (array, load offset) -> placeholder.
    elim_placeholders: BTreeMap<(usize, i64), ValueId>,
    /// The value most recently stored to an eligible array this iteration.
    stored_value: BTreeMap<usize, ValueId>,
    /// The eligible array's single unconditional store operation; load
    /// elimination resolves against its *current* value input, which
    /// earlier placeholder rewrites may already have redirected.
    stored_op: BTreeMap<usize, OpId>,
    /// Carried-scalar placeholders and current environment.
    carry_placeholders: BTreeMap<String, ValueId>,
    env: BTreeMap<String, ValueId>,
    /// Emitted loads/stores for memory dependence analysis.
    mem_refs: Vec<MemRef>,
    /// Early exit (`break if`): the per-iteration `live` predicate, its
    /// carried placeholders, the exit condition's negation once seen, and
    /// a cache of `live ∧ ctx` compositions.
    live_now: Option<ValueId>,
    live_placeholders: Option<(ValueId, ValueId)>,
    exit_not_cond: Option<ValueId>,
    live_guard_cache: BTreeMap<Option<ValueId>, ValueId>,
    /// Monotone memory-reference counter: same-element (ω = 0) arcs point
    /// from the earlier reference to the later one in emission order,
    /// which follows execution order.
    seq: usize,
}

/// Lowers one analyzed loop to IR.
///
/// # Errors
///
/// Returns a [`FrontError`] for constructs that pass parsing but cannot be
/// lowered (none currently — the signature leaves room for lowering
/// limits such as op-count caps).
pub fn lower(def: LoopDef, info: &LoopInfo) -> Result<CompiledLoop, FrontError> {
    let def_for_lowerer = def.clone();
    let mut lo = Lowerer {
        b: LoopBuilder::new(def.name.clone()),
        def: &def_for_lowerer,
        info,
        invariants: Vec::new(),
        initials: Vec::new(),
        const_cache: BTreeMap::new(),
        params: BTreeMap::new(),
        iv8: None,
        stride: None,
        ref_addrs: BTreeMap::new(),
        load_cache: BTreeMap::new(),
        eligible: BTreeMap::new(),
        elim_placeholders: BTreeMap::new(),
        stored_value: BTreeMap::new(),
        stored_op: BTreeMap::new(),
        carry_placeholders: BTreeMap::new(),
        env: BTreeMap::new(),
        mem_refs: Vec::new(),
        live_now: None,
        live_placeholders: None,
        exit_not_cond: None,
        live_guard_cache: BTreeMap::new(),
        seq: 0,
    };
    lo.find_eligible_arrays();
    // Early exit: materialise the carried `live` predicate up front so
    // every store can be guarded by it. live(i) = live(i-1) ∧ ¬exit(i-1).
    if def.body.iter().any(|s| matches!(s, Stmt::BreakIf { .. })) {
        let pl_live = lo.b.named_value(ValueType::Pred, "live.in");
        let pl_notc = lo.b.named_value(ValueType::Pred, "noexit.in");
        let live = lo.b.named_value(ValueType::Pred, "live");
        lo.b.op(OpKind::PredAnd, &[pl_live, pl_notc], Some(live));
        lo.live_now = Some(live);
        lo.live_placeholders = Some((pl_live, pl_notc));
    }
    for (name, _) in &info.carried {
        let ty = lo.scalar_type(name);
        let placeholder = lo.b.named_value(ty, format!("{name}.in"));
        lo.carry_placeholders.insert(name.clone(), placeholder);
        lo.env.insert(name.clone(), placeholder);
    }
    let stmts = def.body.clone();
    for stmt in &stmts {
        lo.stmt(stmt, None)?;
    }
    lo.resolve_carries();
    lo.resolve_eliminated_loads();
    lo.resolve_exit();
    lo.memory_deps();
    // The loop-closing branch (§2.1).
    lo.b.op(OpKind::Brtop, &[], None);
    let min_trip = match (&def.lo, &def.hi) {
        (Bound::Const(a), Bound::Const(b)) => Some((b - a + 1).max(0) as u64),
        _ => None,
    };
    lo.b.meta(LoopMeta {
        basic_blocks: def.basic_blocks(),
        min_trip_count: min_trip,
    });
    let body = lo.b.finish_with_auto_flow();
    debug_assert_eq!(body.validate(), Ok(()));
    Ok(CompiledLoop {
        body,
        def,
        info: info.clone(),
        invariants: lo.invariants,
        initials: lo.initials,
    })
}

impl Lowerer<'_> {
    fn scalar_type(&self, name: &str) -> ValueType {
        match self.info.carried(name).unwrap_or(Ty::Real) {
            Ty::Real => ValueType::Float,
            Ty::Int => ValueType::Int,
        }
    }

    /// An array is elimination-eligible when it is stored exactly once and
    /// that store is unconditional (top-level).
    fn find_eligible_arrays(&mut self) {
        fn visit(stmts: &[Stmt], depth: u32, stores: &mut Vec<(String, i64, u32)>) {
            for stmt in stmts {
                match stmt {
                    Stmt::Assign {
                        target: LValue::Elem { array, offset },
                        ..
                    } => {
                        stores.push((array.clone(), *offset, depth));
                    }
                    Stmt::Assign { .. } | Stmt::BreakIf { .. } => {}
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        visit(then_body, depth + 1, stores);
                        visit(else_body, depth + 1, stores);
                    }
                }
            }
        }
        let mut stores = Vec::new();
        visit(&self.def.body, 0, &mut stores);
        for (idx, _) in self.info.arrays.iter().enumerate() {
            let name = &self.info.arrays[idx].0;
            let mine: Vec<_> = stores.iter().filter(|(a, _, _)| a == name).collect();
            if let [(_, offset, 0)] = mine.as_slice() {
                self.eligible.insert(idx, *offset);
            }
        }
    }

    fn constant(&mut self, ty: ValueType, bits: u64, source: InvariantSource) -> ValueId {
        let key = (bits, ty == ValueType::Float);
        if let Some(&v) = self.const_cache.get(&key) {
            return v;
        }
        let name = match &source {
            InvariantSource::ConstReal(x) => format!("c{x}"),
            InvariantSource::ConstInt(x) => format!("c{x}"),
            _ => "c".to_owned(),
        };
        let v = self.b.invariant(ty, name);
        self.invariants.push((v, source));
        self.const_cache.insert(key, v);
        v
    }

    fn real_const(&mut self, x: f64) -> ValueId {
        self.constant(ValueType::Float, x.to_bits(), InvariantSource::ConstReal(x))
    }

    fn int_const(&mut self, x: i64) -> ValueId {
        self.constant(ValueType::Int, x as u64, InvariantSource::ConstInt(x))
    }

    fn param(&mut self, name: &str) -> ValueId {
        if let Some(&v) = self.params.get(name) {
            return v;
        }
        let ty = match self.info.param(name).unwrap_or(Ty::Real) {
            Ty::Real => ValueType::Float,
            Ty::Int => ValueType::Int,
        };
        let v = self.b.invariant(ty, name);
        self.invariants
            .push((v, InvariantSource::Param(name.to_owned())));
        self.params.insert(name.to_owned(), v);
        v
    }

    /// The shared index induction `iv8(i) = iv8(i−1) + 8`.
    fn iv8(&mut self) -> ValueId {
        if let Some(v) = self.iv8 {
            return v;
        }
        let stride = {
            let v = self.b.invariant(ValueType::Addr, "stride8");
            self.invariants.push((v, InvariantSource::Stride));
            self.stride = Some(v);
            v
        };
        let iv = self.b.named_value(ValueType::Addr, "iv8");
        self.b
            .op_with_omegas(OpKind::AddrAdd, &[(iv, 1), (stride, 0)], Some(iv), None);
        self.initials.push((iv, InitialSource::Index8));
        self.iv8 = Some(iv);
        iv
    }

    /// The address of reference `array[i + offset]`:
    /// `AddrAdd(iv8, base + 8·offset)`, one per distinct reference.
    fn ref_addr(&mut self, array: usize, offset: i64) -> ValueId {
        if let Some(&v) = self.ref_addrs.get(&(array, offset)) {
            return v;
        }
        let iv = self.iv8();
        let base = self.b.invariant(
            ValueType::Addr,
            format!("&{}[{offset:+}]", self.info.arrays[array].0),
        );
        self.invariants
            .push((base, InvariantSource::RefBase { array, offset }));
        let addr = self.b.named_value(
            ValueType::Addr,
            format!("a.{}{offset:+}", self.info.arrays[array].0),
        );
        self.b.op(OpKind::AddrAdd, &[iv, base], Some(addr));
        self.ref_addrs.insert((array, offset), addr);
        addr
    }

    /// Reads `array[i + offset]`, applying load/store elimination, the
    /// same-iteration forward, load CSE, or a real load.
    fn read_elem(&mut self, array: usize, offset: i64) -> VRef {
        if let Some(&store_off) = self.eligible.get(&array) {
            let d = store_off - offset;
            if d >= 1 {
                let placeholder = *self
                    .elim_placeholders
                    .entry((array, offset))
                    .or_insert_with(|| {
                        let ty = match self.info.arrays[array].1 {
                            Ty::Real => ValueType::Float,
                            Ty::Int => ValueType::Int,
                        };
                        self.b.named_value(
                            ty,
                            format!("{}[{offset:+}].elim", self.info.arrays[array].0),
                        )
                    });
                return VRef::here(placeholder);
            }
            if d == 0 {
                if let Some(&v) = self.stored_value.get(&array) {
                    return VRef::here(v); // forwarded within the iteration
                }
            }
        }
        if let Some(&v) = self.load_cache.get(&(array, offset)) {
            return VRef::here(v);
        }
        let addr = self.ref_addr(array, offset);
        let ty = match self.info.arrays[array].1 {
            Ty::Real => ValueType::Float,
            Ty::Int => ValueType::Int,
        };
        let v = self
            .b
            .named_value(ty, format!("{}[{offset:+}]", self.info.arrays[array].0));
        let op = self.b.op(OpKind::Load, &[addr], Some(v));
        self.seq += 1;
        self.mem_refs.push(MemRef {
            op,
            array,
            offset,
            is_store: false,
            seq: self.seq,
        });
        self.load_cache.insert((array, offset), v);
        v.into_vref()
    }

    fn resolved_ty(&self, expr: &Expr, want: Ty) -> Ty {
        match crate::sema::type_of(expr, self.def, self.info) {
            Ok(crate::sema::ExprTy::Real) => Ty::Real,
            Ok(crate::sema::ExprTy::Int) => Ty::Int,
            _ => want,
        }
    }

    fn expr(&mut self, expr: &Expr, want: Ty, pred: Option<ValueId>) -> Result<VRef, FrontError> {
        match expr {
            Expr::Real(x) => Ok(VRef::here(self.real_const(*x))),
            Expr::Int(x) => Ok(VRef::here(match want {
                Ty::Real => self.real_const(*x as f64),
                Ty::Int => self.int_const(*x),
            })),
            Expr::Scalar(name, span) => {
                if self.info.param(name).is_some() && self.info.carried(name).is_none() {
                    Ok(VRef::here(self.param(name)))
                } else if let Some(&v) = self.env.get(name.as_str()) {
                    Ok(VRef::here(v))
                } else {
                    Err(FrontError::new(
                        *span,
                        format!("undeclared scalar `{name}`"),
                    ))
                }
            }
            Expr::Elem {
                array,
                offset,
                span,
            } => {
                let (idx, _) = self
                    .info
                    .array(array)
                    .ok_or_else(|| FrontError::new(*span, format!("undeclared array `{array}`")))?;
                Ok(self.read_elem(idx, *offset))
            }
            Expr::Neg(inner) => {
                let ty = self.resolved_ty(inner, want);
                let zero = match ty {
                    Ty::Real => self.real_const(0.0),
                    Ty::Int => self.int_const(0),
                };
                let x = self.expr(inner, ty, pred)?;
                let kind = if ty == Ty::Real {
                    OpKind::FSub
                } else {
                    OpKind::IntSub
                };
                Ok(self.emit(kind, &[VRef::here(zero), x], ty, pred))
            }
            Expr::Bin(op, lhs, rhs) => {
                // `%` is integer-only, pinning polymorphic literals.
                let want = if *op == BinOp::Rem { Ty::Int } else { want };
                let lt = self.resolved_ty(lhs, want);
                let rt = self.resolved_ty(rhs, want);
                // At least one side has a definite type (sema rejected
                // mixes); literals adopt it.
                let ty = match (
                    crate::sema::type_of(lhs, self.def, self.info),
                    crate::sema::type_of(rhs, self.def, self.info),
                ) {
                    (Ok(crate::sema::ExprTy::IntLit), Ok(crate::sema::ExprTy::IntLit)) => want,
                    (Ok(crate::sema::ExprTy::IntLit), _) => rt,
                    _ => lt,
                };
                let a = self.expr(lhs, ty, pred)?;
                let c = self.expr(rhs, ty, pred)?;
                let kind = match (op, ty) {
                    (BinOp::Add, Ty::Real) => OpKind::FAdd,
                    (BinOp::Add, Ty::Int) => OpKind::IntAdd,
                    (BinOp::Sub, Ty::Real) => OpKind::FSub,
                    (BinOp::Sub, Ty::Int) => OpKind::IntSub,
                    (BinOp::Mul, Ty::Real) => OpKind::FMul,
                    (BinOp::Mul, Ty::Int) => OpKind::IntMul,
                    (BinOp::Div, Ty::Real) => OpKind::FDiv,
                    (BinOp::Div, Ty::Int) => OpKind::IntDiv,
                    (BinOp::Rem, _) => OpKind::IntMod,
                };
                Ok(self.emit(kind, &[a, c], ty, pred))
            }
            Expr::Sqrt(inner) => {
                let x = self.expr(inner, Ty::Real, pred)?;
                let v = self.b.new_value(ValueType::Float);
                let inputs = [x.pair()];
                self.b.op_with_omegas(OpKind::FSqrt, &inputs, Some(v), pred);
                Ok(VRef::here(v))
            }
            Expr::MinMax { is_max, lhs, rhs } => {
                // min(a,b) = select(a < b, a, b); max swaps the compare.
                let lt = self.resolved_ty(lhs, want);
                let rt = self.resolved_ty(rhs, want);
                let ty = if lt == rt { lt } else { want };
                let a = self.expr(lhs, ty, pred)?;
                let c = self.expr(rhs, ty, pred)?;
                let p = self.b.new_value(ValueType::Pred);
                let cmp = if *is_max {
                    OpKind::CmpGt
                } else {
                    OpKind::CmpLt
                };
                self.b
                    .op_with_omegas(cmp, &[a.pair(), c.pair()], Some(p), pred);
                let v = self.emit_select(p, a, c, ty);
                Ok(v)
            }
            Expr::Abs(inner) => {
                // abs(x) = select(x < 0, 0 - x, x).
                let ty = self.resolved_ty(inner, want);
                let x = self.expr(inner, ty, pred)?;
                let zero = match ty {
                    Ty::Real => self.real_const(0.0),
                    Ty::Int => self.int_const(0),
                };
                let p = self.b.new_value(ValueType::Pred);
                self.b
                    .op_with_omegas(OpKind::CmpLt, &[x.pair(), (zero, 0)], Some(p), pred);
                let kind = if ty == Ty::Real {
                    OpKind::FSub
                } else {
                    OpKind::IntSub
                };
                let neg = self.emit(kind, &[VRef::here(zero), x], ty, pred);
                let v = self.emit_select(p, neg, x, ty);
                Ok(v)
            }
        }
    }

    /// `select(p, a, b)` with a fresh result of the given type.
    fn emit_select(&mut self, p: ValueId, a: VRef, b: VRef, ty: Ty) -> VRef {
        let vt = match ty {
            Ty::Real => ValueType::Float,
            Ty::Int => ValueType::Int,
        };
        let v = self.b.new_value(vt);
        self.b
            .op_with_omegas(OpKind::Select, &[(p, 0), a.pair(), b.pair()], Some(v), None);
        VRef::here(v)
    }

    fn emit(&mut self, kind: OpKind, args: &[VRef], ty: Ty, pred: Option<ValueId>) -> VRef {
        let vt = match ty {
            Ty::Real => ValueType::Float,
            Ty::Int => ValueType::Int,
        };
        let v = self.b.new_value(vt);
        let inputs: Vec<(ValueId, u32)> = args.iter().map(|r| r.pair()).collect();
        self.b.op_with_omegas(kind, &inputs, Some(v), pred);
        VRef::here(v)
    }

    fn stmt(&mut self, stmt: &Stmt, pred: Option<ValueId>) -> Result<(), FrontError> {
        match stmt {
            Stmt::Assign { target, value, .. } => {
                let value = &crate::fold::fold_expr(value);
                match target {
                    LValue::Elem { array, offset } => {
                        let (idx, ty) = self.info.array(array).expect("checked by sema");
                        let v = self.expr(value, ty, pred)?;
                        let addr = self.ref_addr(idx, *offset);
                        let inputs = [(addr, 0), v.pair()];
                        // With an early exit, stores additionally carry the
                        // `live` guard so post-exit iterations are
                        // squashed; `pred` (the if-conversion context)
                        // still decides load/store-elimination
                        // eligibility, because pre-exit semantics are
                        // unchanged.
                        let store_pred = self.compose_live_guard(pred);
                        let op = self
                            .b
                            .op_with_omegas(OpKind::Store, &inputs, None, store_pred);
                        self.seq += 1;
                        self.mem_refs.push(MemRef {
                            op,
                            array: idx,
                            offset: *offset,
                            is_store: true,
                            seq: self.seq,
                        });
                        if pred.is_none() && self.eligible.contains_key(&idx) {
                            self.stored_value.insert(idx, v.value);
                            self.stored_op.insert(idx, op);
                        }
                        // A store changes the array: cached loads go stale.
                        self.load_cache.retain(|&(a, _), _| a != idx);
                    }
                    LValue::Scalar(name) => {
                        let ty = self.info.carried(name).expect("checked by sema");
                        let v = self.expr(value, ty, pred)?;
                        match pred {
                            None => {
                                self.env.insert(name.clone(), v.value);
                            }
                            Some(p) => {
                                // Predicated scalar assignment: merge with
                                // the incoming value so SSA keeps a single
                                // definition per value.
                                let old = *self.env.get(name.as_str()).expect("env has carry");
                                let merged = self.b.new_value(self.scalar_type(name));
                                let inputs = [(p, 0), (v.value, v.omega), (old, 0)];
                                self.b
                                    .op_with_omegas(OpKind::Select, &inputs, Some(merged), None);
                                self.env.insert(name.clone(), merged);
                            }
                        }
                    }
                }
            }
            Stmt::BreakIf { cond } => {
                // Post-tested exit: evaluate the condition unguarded; the
                // chain resolution wires ¬cond into next iteration's
                // `live`.
                let lt = match crate::sema::type_of(&cond.lhs, self.def, self.info) {
                    Ok(crate::sema::ExprTy::Real) => Ty::Real,
                    Ok(crate::sema::ExprTy::Int) => Ty::Int,
                    _ => self.resolved_ty(&cond.rhs, Ty::Real),
                };
                let a = self.expr(&crate::fold::fold_expr(&cond.lhs), lt, None)?;
                let c = self.expr(&crate::fold::fold_expr(&cond.rhs), lt, None)?;
                let kind = match cond.op {
                    RelOp::Eq => OpKind::CmpEq,
                    RelOp::Ne => OpKind::CmpNe,
                    RelOp::Lt => OpKind::CmpLt,
                    RelOp::Le => OpKind::CmpLe,
                    RelOp::Gt => OpKind::CmpGt,
                    RelOp::Ge => OpKind::CmpGe,
                };
                let p = self.b.new_value(ValueType::Pred);
                self.b
                    .op_with_omegas(kind, &[a.pair(), c.pair()], Some(p), None);
                let notp = self.b.named_value(ValueType::Pred, "noexit");
                self.b.op(OpKind::PredNot, &[p], Some(notp));
                self.exit_not_cond = Some(notp);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                // If-conversion (§2.2): compute the branch predicate and
                // guard both arms, composing with any enclosing context.
                // The comparison type is the first operand's definite type,
                // else the second's, else real — the same rule the
                // reference interpreter applies, so literal-only operands
                // cannot make the two engines compare different types.
                let lt = match crate::sema::type_of(&cond.lhs, self.def, self.info) {
                    Ok(crate::sema::ExprTy::Real) => Ty::Real,
                    Ok(crate::sema::ExprTy::Int) => Ty::Int,
                    _ => self.resolved_ty(&cond.rhs, Ty::Real),
                };
                let a = self.expr(&crate::fold::fold_expr(&cond.lhs), lt, pred)?;
                let c = self.expr(&crate::fold::fold_expr(&cond.rhs), lt, pred)?;
                let kind = match cond.op {
                    RelOp::Eq => OpKind::CmpEq,
                    RelOp::Ne => OpKind::CmpNe,
                    RelOp::Lt => OpKind::CmpLt,
                    RelOp::Le => OpKind::CmpLe,
                    RelOp::Gt => OpKind::CmpGt,
                    RelOp::Ge => OpKind::CmpGe,
                };
                let p = self.b.new_value(ValueType::Pred);
                let inputs = [a.pair(), c.pair()];
                self.b.op_with_omegas(kind, &inputs, Some(p), None);
                let then_pred = match pred {
                    None => p,
                    Some(ctx) => {
                        let v = self.b.new_value(ValueType::Pred);
                        self.b.op(OpKind::PredAnd, &[ctx, p], Some(v));
                        v
                    }
                };
                for s in then_body {
                    self.stmt(s, Some(then_pred))?;
                }
                if !else_body.is_empty() {
                    let notp = self.b.new_value(ValueType::Pred);
                    self.b.op(OpKind::PredNot, &[p], Some(notp));
                    let else_pred = match pred {
                        None => notp,
                        Some(ctx) => {
                            let v = self.b.new_value(ValueType::Pred);
                            self.b.op(OpKind::PredAnd, &[ctx, notp], Some(v));
                            v
                        }
                    };
                    for s in else_body {
                        self.stmt(s, Some(else_pred))?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Rewrites carried-scalar placeholders to the scalar's final value at
    /// distance +1 and records the initial-value binding.
    fn resolve_carries(&mut self) {
        let carries: Vec<(String, ValueId)> = self
            .carry_placeholders
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        for (name, placeholder) in carries {
            let mut fin = *self
                .env
                .get(&name)
                .expect("carried scalar has a final value");
            if fin == placeholder {
                // Degenerate `s = s`: materialise the carry as a Copy so
                // the value is re-defined (and re-written into the
                // rotating file) every iteration; the replacement below
                // turns the Copy's own input into the self-recurrence.
                let v = self.b.new_value(self.scalar_type(&name));
                self.b.op(OpKind::Copy, &[placeholder], Some(v));
                fin = v;
            }
            let carrier = self.carrier_for(fin, InitialSource::Scalar(name));
            self.b.replace_uses(placeholder, carrier, 1);
        }
    }

    /// Rewrites eliminated-load placeholders to the stored value at
    /// distance +d and records where pre-loop instances come from.
    ///
    /// The stored value is read from the store operation's *current*
    /// input: when one array's store value is another array's eliminated
    /// load, an earlier rewrite has already redirected it (with an added
    /// distance). Any such accumulated ω is absorbed into a dedicated
    /// `Copy` carrier so that the carrier's instance `j` is exactly "the
    /// value stored at iteration `j`", keeping the pre-loop seed indices
    /// aligned with initial memory.
    fn resolve_eliminated_loads(&mut self) {
        let placeholders: Vec<((usize, i64), ValueId)> = self
            .elim_placeholders
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect();
        for ((array, load_off), placeholder) in placeholders {
            let store_off = self.eligible[&array];
            let d = (store_off - load_off) as u32;
            let store_op = *self
                .stored_op
                .get(&array)
                .expect("eligible arrays have exactly one unconditional store");
            let (stored, extra) = self.b.op_input(store_op, 1);
            let source = InitialSource::ArrayElem {
                array,
                offset: store_off,
            };
            let carrier = if extra == 0 {
                self.carrier_for(stored, source)
            } else {
                let copy = self.b.new_value(self.b.value_type(stored));
                self.b
                    .op_with_omegas(OpKind::Copy, &[(stored, extra)], Some(copy), None);
                self.initials.push((copy, source));
                copy
            };
            self.b.replace_uses(placeholder, carrier, d);
        }
    }

    /// The value whose pre-loop instances come from `source`.
    ///
    /// A single SSA value may be stored to several arrays (or double as a
    /// carried scalar), and each consumer's early iterations must read a
    /// *different* initial value — `x[lo-1]` is not `y[lo-1]`. Each value
    /// therefore carries at most one [`InitialSource`]; additional sources
    /// get their own `Copy` carrier, whose instances equal the base
    /// value's for `i ≥ 0` but whose seeds are independent.
    fn carrier_for(&mut self, base: ValueId, source: InitialSource) -> ValueId {
        let base = self.ensure_variant(base);
        match self.initials.iter().find(|(v, _)| *v == base) {
            Some((_, existing)) if *existing == source => base,
            None => {
                self.initials.push((base, source));
                base
            }
            Some(_) => {
                let copy = self.b.new_value(self.b.value_type(base));
                self.b.op(OpKind::Copy, &[base], Some(copy));
                self.initials.push((copy, source));
                copy
            }
        }
    }

    /// The store guard: `live ∧ ctx` when the loop has an early exit,
    /// else just `ctx`. Compositions are cached per context predicate.
    fn compose_live_guard(&mut self, ctx: Option<ValueId>) -> Option<ValueId> {
        let Some(live) = self.live_now else {
            return ctx;
        };
        if let Some(&cached) = self.live_guard_cache.get(&ctx) {
            return Some(cached);
        }
        let composed = match ctx {
            None => live,
            Some(c) => {
                let v = self.b.new_value(ValueType::Pred);
                self.b.op(OpKind::PredAnd, &[live, c], Some(v));
                v
            }
        };
        self.live_guard_cache.insert(ctx, composed);
        Some(composed)
    }

    /// Wires the early-exit chain: `live(i) = live(i−1) ∧ ¬exit(i−1)`,
    /// with both pre-loop instances seeded true.
    fn resolve_exit(&mut self) {
        let Some((pl_live, pl_notc)) = self.live_placeholders else {
            return;
        };
        let live = self.live_now.expect("placeholders imply a live chain");
        let notc = self
            .exit_not_cond
            .expect("sema guarantees the break statement was lowered");
        self.b.replace_uses(pl_live, live, 1);
        self.b.replace_uses(pl_notc, notc, 1);
        self.initials.push((live, InitialSource::PredTrue));
        self.initials.push((notc, InitialSource::PredTrue));
    }

    /// Elimination and carry targets must be loop-variant so the simulator
    /// can give their pre-loop instances distinct values; an invariant
    /// (e.g. `x[i] = 0.0`) is wrapped in a `Copy`.
    fn ensure_variant(&mut self, v: ValueId) -> ValueId {
        if self.b.is_defined(v) {
            return v;
        }
        let copy = self.b.new_value(self.b.value_type(v));
        self.b.op(OpKind::Copy, &[v], Some(copy));
        copy
    }

    /// Adds flow/anti/output arcs with exact distances between the
    /// remaining memory references of each array.
    fn memory_deps(&mut self) {
        for i in 0..self.mem_refs.len() {
            for j in 0..self.mem_refs.len() {
                if i == j {
                    continue;
                }
                let (p, q) = (&self.mem_refs[i], &self.mem_refs[j]);
                if p.array != q.array || (!p.is_store && !q.is_store) {
                    continue;
                }
                // p at iteration i touches element i + p.offset; q at
                // iteration i + delta touches the same element.
                let delta = p.offset - q.offset;
                let kind = match (p.is_store, q.is_store) {
                    (true, false) => DepKind::Flow,
                    (false, true) => DepKind::Anti,
                    (true, true) => DepKind::Output,
                    (false, false) => unreachable!(),
                };
                if delta > 0 {
                    self.b.dep(p.op, q.op, kind, DepVia::Memory, delta as u32);
                } else if delta == 0 && p.seq < q.seq {
                    self.b.dep(p.op, q.op, kind, DepVia::Memory, 0);
                }
            }
        }
    }
}

trait IntoVref {
    fn into_vref(self) -> VRef;
}

impl IntoVref for ValueId {
    fn into_vref(self) -> VRef {
        VRef::here(self)
    }
}
