//! Compile-time folding of literal-only real subexpressions.
//!
//! `x[i] = (2.62 - 0.88) - y[i]` should not re-subtract two constants
//! every iteration. Folding is restricted to subtrees whose type is
//! *definitely real* (they contain at least one real literal): pure
//! integer-literal subtrees stay unfolded because their meaning depends on
//! the surrounding context (`2/3` is `0` in an int context but `0.666…`
//! in a real one), and `%` pins types in ways folding must not disturb.
//!
//! Folding computes with exactly the f64 operations the reference
//! interpreter and the simulator would execute at run time (including
//! `-x = 0.0 − x` and the compare-based `min`/`max`/`abs`), so a folded
//! program is bitwise-identical in effect to the unfolded one.

use crate::ast::{BinOp, Expr};

/// Folds every foldable subtree of `expr`, bottom-up.
pub(crate) fn fold_expr(expr: &Expr) -> Expr {
    // First try to evaluate the whole subtree.
    if let Some(value) = eval_real_literal(expr) {
        return Expr::Real(value);
    }
    match expr {
        Expr::Neg(inner) => Expr::Neg(Box::new(fold_expr(inner))),
        Expr::Sqrt(inner) => Expr::Sqrt(Box::new(fold_expr(inner))),
        Expr::Abs(inner) => Expr::Abs(Box::new(fold_expr(inner))),
        Expr::Bin(op, lhs, rhs) => {
            Expr::Bin(*op, Box::new(fold_expr(lhs)), Box::new(fold_expr(rhs)))
        }
        Expr::MinMax { is_max, lhs, rhs } => Expr::MinMax {
            is_max: *is_max,
            lhs: Box::new(fold_expr(lhs)),
            rhs: Box::new(fold_expr(rhs)),
        },
        Expr::Real(_) | Expr::Int(_) | Expr::Scalar(..) | Expr::Elem { .. } => expr.clone(),
    }
}

/// Evaluates a literal-only subtree as a real, provided it is *definitely*
/// real (contains at least one real literal). Integer literals inside it
/// coerce to real, as they would at run time.
fn eval_real_literal(expr: &Expr) -> Option<f64> {
    fn walk(expr: &Expr, saw_real: &mut bool) -> Option<f64> {
        match expr {
            Expr::Real(x) => {
                *saw_real = true;
                Some(*x)
            }
            Expr::Int(v) => Some(*v as f64),
            Expr::Neg(inner) => Some(0.0 - walk(inner, saw_real)?),
            Expr::Sqrt(inner) => {
                *saw_real = true; // sqrt is real by definition
                Some(walk(inner, saw_real)?.sqrt())
            }
            Expr::Abs(inner) => {
                let x = walk(inner, saw_real)?;
                Some(if x < 0.0 { 0.0 - x } else { x })
            }
            Expr::Bin(op, lhs, rhs) => {
                let a = walk(lhs, saw_real)?;
                let b = walk(rhs, saw_real)?;
                match op {
                    BinOp::Add => Some(a + b),
                    BinOp::Sub => Some(a - b),
                    BinOp::Mul => Some(a * b),
                    BinOp::Div => Some(a / b),
                    // `%` pins operands to int; never fold through it.
                    BinOp::Rem => None,
                }
            }
            Expr::MinMax { is_max, lhs, rhs } => {
                let a = walk(lhs, saw_real)?;
                let b = walk(rhs, saw_real)?;
                // Same select semantics as the lowering/reference.
                let take_a = if *is_max { a > b } else { a < b };
                Some(if take_a { a } else { b })
            }
            Expr::Scalar(..) | Expr::Elem { .. } => None,
        }
    }
    let mut saw_real = false;
    let value = walk(expr, &mut saw_real)?;
    saw_real.then_some(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real(x: f64) -> Expr {
        Expr::Real(x)
    }
    fn int(v: i64) -> Expr {
        Expr::Int(v)
    }
    fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin(op, Box::new(l), Box::new(r))
    }

    #[test]
    fn folds_real_arithmetic() {
        assert_eq!(
            fold_expr(&bin(BinOp::Sub, real(2.62), real(0.88))),
            real(2.62 - 0.88)
        );
        assert_eq!(
            fold_expr(&bin(
                BinOp::Mul,
                real(2.0),
                bin(BinOp::Add, int(1), real(0.5))
            )),
            real(2.0 * 1.5)
        );
        assert_eq!(fold_expr(&Expr::Sqrt(Box::new(real(4.0)))), real(2.0));
        assert_eq!(fold_expr(&Expr::Neg(Box::new(real(0.0)))), real(0.0 - 0.0));
    }

    #[test]
    fn leaves_pure_int_subtrees_alone() {
        // `2 + 3` is polymorphic: its value depends on the context type.
        let e = bin(BinOp::Add, int(2), int(3));
        assert_eq!(fold_expr(&e), e);
        // And `%` is never folded through.
        let e = bin(BinOp::Rem, real(5.0), real(2.0));
        assert_eq!(fold_expr(&e), e);
    }

    #[test]
    fn folds_within_larger_expressions() {
        // (1.5 * 2.0) + x stays an add, but the left side becomes 3.0.
        let x = Expr::Scalar("x".into(), crate::Span::default());
        let e = bin(BinOp::Add, bin(BinOp::Mul, real(1.5), real(2.0)), x.clone());
        assert_eq!(fold_expr(&e), bin(BinOp::Add, real(3.0), x));
    }

    #[test]
    fn minmax_and_abs_fold_with_select_semantics() {
        let e = Expr::MinMax {
            is_max: false,
            lhs: Box::new(real(2.0)),
            rhs: Box::new(real(-1.0)),
        };
        assert_eq!(fold_expr(&e), real(-1.0));
        assert_eq!(fold_expr(&Expr::Abs(Box::new(real(-3.5)))), real(3.5));
    }
}
