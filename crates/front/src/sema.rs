//! Semantic analysis: symbol resolution and type checking.

use std::collections::BTreeMap;

use crate::ast::{BinOp, Bound, Decl, Expr, LValue, LoopDef, Stmt, Ty};
use crate::{FrontError, Span};

/// Resolved symbol information for one loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopInfo {
    /// Declared arrays, in declaration order.
    pub arrays: Vec<(String, Ty)>,
    /// Loop-invariant parameters: declared `param`s plus any parameter
    /// named in the loop bounds (always `int`).
    pub params: Vec<(String, Ty)>,
    /// Loop-carried scalars: every scalar assigned in the body.
    pub carried: Vec<(String, Ty)>,
}

impl LoopInfo {
    /// The index and element type of `name` among the arrays.
    pub fn array(&self, name: &str) -> Option<(usize, Ty)> {
        self.arrays
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| (i, self.arrays[i].1))
    }

    /// The type of `name` as a parameter.
    pub fn param(&self, name: &str) -> Option<Ty> {
        self.params.iter().find(|(n, _)| n == name).map(|&(_, t)| t)
    }

    /// The type of `name` as a loop-carried scalar.
    pub fn carried(&self, name: &str) -> Option<Ty> {
        self.carried
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, t)| t)
    }
}

/// Checks a parsed loop and resolves its symbols.
///
/// Scalars assigned in the body become loop-carried variants; their type
/// is taken from a `real s;` / `int s;` declaration when present and
/// defaults to `real`. Reading a scalar that is neither a parameter nor
/// assigned anywhere is an error, as are type mismatches, assignments to
/// parameters, `%` on reals, and `sqrt` on ints.
///
/// # Errors
///
/// Returns the first semantic error with its source location.
pub fn analyze(def: &LoopDef) -> Result<LoopInfo, FrontError> {
    let mut arrays: Vec<(String, Ty)> = Vec::new();
    let mut params: Vec<(String, Ty)> = Vec::new();
    let mut declared_scalars: BTreeMap<String, Ty> = BTreeMap::new();
    let origin = Span::default();

    let mut seen_names: Vec<String> = vec![def.var.clone()];
    let mut check_fresh = |name: &String| -> Result<(), FrontError> {
        if seen_names.contains(name) {
            return Err(FrontError::new(origin, format!("`{name}` declared twice")));
        }
        seen_names.push(name.clone());
        Ok(())
    };

    for decl in &def.decls {
        match decl {
            Decl::Array { ty, names } => {
                for n in names {
                    check_fresh(n)?;
                    arrays.push((n.clone(), *ty));
                }
            }
            Decl::Param { ty, names } => {
                for n in names {
                    check_fresh(n)?;
                    params.push((n.clone(), *ty));
                }
            }
            Decl::Scalar { ty, names } => {
                for n in names {
                    check_fresh(n)?;
                    declared_scalars.insert(n.clone(), *ty);
                }
            }
        }
    }
    // Bound parameters are implicit int params.
    for bound in [&def.lo, &def.hi] {
        if let Bound::Param(n) = bound {
            if !params.iter().any(|(p, _)| p == n)
                && !arrays.iter().any(|(a, _)| a == n)
                && !declared_scalars.contains_key(n)
            {
                params.push((n.clone(), Ty::Int));
            }
        }
    }

    // Collect assigned scalars.
    let mut carried: Vec<(String, Ty)> = Vec::new();
    collect_assigned(&def.body, &mut |name: &str, span: Span| {
        if params.iter().any(|(p, _)| p == name) {
            return Err(FrontError::new(
                span,
                format!("cannot assign to parameter `{name}`"),
            ));
        }
        if name == def.var {
            return Err(FrontError::new(
                span,
                "cannot assign to the induction variable",
            ));
        }
        if arrays.iter().any(|(a, _)| a == name) {
            return Err(FrontError::new(
                span,
                format!("array `{name}` needs a subscript"),
            ));
        }
        if !carried.iter().any(|(c, _)| c == name) {
            let ty = declared_scalars.get(name).copied().unwrap_or(Ty::Real);
            carried.push((name.to_owned(), ty));
        }
        Ok(())
    })?;
    // Declared scalars that are never assigned are effectively parameters.
    for (name, ty) in &declared_scalars {
        if !carried.iter().any(|(c, _)| c == name) {
            params.push((name.clone(), *ty));
        }
    }

    let info = LoopInfo {
        arrays,
        params,
        carried,
    };
    check_stmts(&def.body, def, &info)?;
    check_breaks(&def.body)?;
    Ok(info)
}

/// `break if` may appear at most once, at top level, as the last
/// statement — the post-tested-exit shape the lowering supports.
fn check_breaks(stmts: &[Stmt]) -> Result<(), FrontError> {
    fn no_breaks(stmts: &[Stmt]) -> Result<(), FrontError> {
        for s in stmts {
            match s {
                Stmt::BreakIf { .. } => {
                    return Err(FrontError::new(
                        Span::default(),
                        "`break if` must be the last top-level statement",
                    ))
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    no_breaks(then_body)?;
                    no_breaks(else_body)?;
                }
                Stmt::Assign { .. } => {}
            }
        }
        Ok(())
    }
    if let Some((last, rest)) = stmts.split_last() {
        no_breaks(rest)?;
        if let Stmt::If {
            then_body,
            else_body,
            ..
        } = last
        {
            no_breaks(then_body)?;
            no_breaks(else_body)?;
        }
    }
    Ok(())
}

fn collect_assigned(
    stmts: &[Stmt],
    sink: &mut impl FnMut(&str, Span) -> Result<(), FrontError>,
) -> Result<(), FrontError> {
    for stmt in stmts {
        match stmt {
            Stmt::Assign {
                target: LValue::Scalar(name),
                span,
                ..
            } => sink(name, *span)?,
            Stmt::Assign { .. } => {}
            Stmt::BreakIf { .. } => {}
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_assigned(then_body, sink)?;
                collect_assigned(else_body, sink)?;
            }
        }
    }
    Ok(())
}

fn check_stmts(stmts: &[Stmt], def: &LoopDef, info: &LoopInfo) -> Result<(), FrontError> {
    for stmt in stmts {
        match stmt {
            Stmt::Assign {
                target,
                value,
                span,
            } => {
                let want = match target {
                    LValue::Elem { array, .. } => {
                        info.array(array).map(|(_, ty)| ty).ok_or_else(|| {
                            FrontError::new(*span, format!("undeclared array `{array}`"))
                        })?
                    }
                    LValue::Scalar(name) => info
                        .carried(name)
                        .ok_or_else(|| FrontError::new(*span, format!("cannot assign `{name}`")))?,
                };
                let got = type_of(value, def, info)?;
                coerce(got, want, *span)?;
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let lt = type_of(&cond.lhs, def, info)?;
                let rt = type_of(&cond.rhs, def, info)?;
                unify(lt, rt, Span::default())?;
                check_stmts(then_body, def, info)?;
                check_stmts(else_body, def, info)?;
            }
            Stmt::BreakIf { cond } => {
                let lt = type_of(&cond.lhs, def, info)?;
                let rt = type_of(&cond.rhs, def, info)?;
                unify(lt, rt, Span::default())?;
            }
        }
    }
    Ok(())
}

/// The inferred type of an expression. Integer literals are polymorphic:
/// they may appear where a real is wanted (the lowering materialises them
/// as real constants).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ExprTy {
    /// Definitely real.
    Real,
    /// Definitely int.
    Int,
    /// An integer literal usable as either.
    IntLit,
}

fn coerce(got: ExprTy, want: Ty, span: Span) -> Result<(), FrontError> {
    match (got, want) {
        (ExprTy::Real, Ty::Real) | (ExprTy::Int, Ty::Int) | (ExprTy::IntLit, _) => Ok(()),
        (ExprTy::Real, Ty::Int) => Err(FrontError::new(span, "real value in int context")),
        (ExprTy::Int, Ty::Real) => Err(FrontError::new(span, "int value in real context")),
    }
}

fn unify(a: ExprTy, b: ExprTy, span: Span) -> Result<ExprTy, FrontError> {
    match (a, b) {
        (ExprTy::IntLit, other) | (other, ExprTy::IntLit) => Ok(other),
        (x, y) if x == y => Ok(x),
        _ => Err(FrontError::new(span, "mixed real/int operands")),
    }
}

pub(crate) fn type_of(expr: &Expr, def: &LoopDef, info: &LoopInfo) -> Result<ExprTy, FrontError> {
    match expr {
        Expr::Real(_) => Ok(ExprTy::Real),
        Expr::Int(_) => Ok(ExprTy::IntLit),
        Expr::Scalar(name, span) => {
            if name == &def.var {
                return Err(FrontError::new(
                    *span,
                    "the induction variable may only appear in subscripts",
                ));
            }
            info.param(name)
                .or_else(|| info.carried(name))
                .map(|ty| match ty {
                    Ty::Real => ExprTy::Real,
                    Ty::Int => ExprTy::Int,
                })
                .ok_or_else(|| FrontError::new(*span, format!("undeclared scalar `{name}`")))
        }
        Expr::Elem { array, span, .. } => info
            .array(array)
            .map(|(_, ty)| match ty {
                Ty::Real => ExprTy::Real,
                Ty::Int => ExprTy::Int,
            })
            .ok_or_else(|| FrontError::new(*span, format!("undeclared array `{array}`"))),
        Expr::Neg(inner) => type_of(inner, def, info),
        Expr::Bin(op, lhs, rhs) => {
            let lt = type_of(lhs, def, info)?;
            let rt = type_of(rhs, def, info)?;
            let ty = unify(lt, rt, Span::default())?;
            if *op == BinOp::Rem {
                if ty == ExprTy::Real {
                    return Err(FrontError::new(
                        Span::default(),
                        "`%` requires int operands",
                    ));
                }
                // `%` pins polymorphic literals to int: `2 % 3` is an int
                // value even in an otherwise-real context.
                return Ok(ExprTy::Int);
            }
            Ok(ty)
        }
        Expr::Sqrt(inner) => {
            let t = type_of(inner, def, info)?;
            if t == ExprTy::Int {
                return Err(FrontError::new(
                    Span::default(),
                    "`sqrt` requires a real operand",
                ));
            }
            Ok(ExprTy::Real)
        }
        Expr::MinMax { lhs, rhs, .. } => {
            let lt = type_of(lhs, def, info)?;
            let rt = type_of(rhs, def, info)?;
            unify(lt, rt, Span::default())
        }
        Expr::Abs(inner) => type_of(inner, def, info),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lex, parse};

    fn analyze_src(src: &str) -> Result<LoopInfo, FrontError> {
        let loops = parse(&lex(src).unwrap()).unwrap();
        analyze(&loops[0])
    }

    #[test]
    fn resolves_arrays_params_and_carried_scalars() {
        let info = analyze_src(
            "loop f(i = 1..n) {
                 real x[], y[];
                 param real alpha;
                 s = s + alpha * x[i];
                 y[i] = s;
             }",
        )
        .unwrap();
        assert_eq!(info.arrays.len(), 2);
        assert_eq!(info.param("alpha"), Some(Ty::Real));
        assert_eq!(info.param("n"), Some(Ty::Int), "bound param is implicit");
        assert_eq!(info.carried("s"), Some(Ty::Real));
    }

    #[test]
    fn scalar_declarations_fix_types() {
        let info = analyze_src(
            "loop f(i = 1..9) {
                 int k[];
                 int s;
                 s = s + k[i];
                 k[i] = s;
             }",
        )
        .unwrap();
        assert_eq!(info.carried("s"), Some(Ty::Int));
    }

    #[test]
    fn rejects_undeclared_names() {
        let err = analyze_src("loop f(i=1..9){ real x[]; x[i] = q; }").unwrap_err();
        assert!(err.message.contains("undeclared scalar `q`"), "{err}");
        let err = analyze_src("loop f(i=1..9){ real x[]; x[i] = z[i]; }").unwrap_err();
        assert!(err.message.contains("undeclared array `z`"), "{err}");
    }

    #[test]
    fn rejects_assignment_to_parameter() {
        let err = analyze_src("loop f(i=1..9){ param real a; real x[]; a = x[i]; }").unwrap_err();
        assert!(err.message.contains("cannot assign to parameter"), "{err}");
    }

    #[test]
    fn rejects_type_mixing() {
        let err =
            analyze_src("loop f(i=1..9){ real x[]; int k[]; x[i] = x[i-1] + k[i]; }").unwrap_err();
        assert!(err.message.contains("mixed real/int"), "{err}");
    }

    #[test]
    fn int_literals_are_polymorphic() {
        analyze_src("loop f(i=1..9){ real x[]; x[i] = x[i-1] + 2; }").unwrap();
        analyze_src("loop f(i=1..9){ int k[]; k[i] = k[i-1] + 2; }").unwrap();
    }

    #[test]
    fn rejects_real_modulo_and_int_sqrt() {
        let err = analyze_src("loop f(i=1..9){ real x[]; x[i] = x[i-1] % x[i-2]; }").unwrap_err();
        assert!(err.message.contains('%'), "{err}");
        let err = analyze_src("loop f(i=1..9){ int k[]; k[i] = sqrt(k[i-1]); }").unwrap_err();
        assert!(err.message.contains("sqrt"), "{err}");
    }

    #[test]
    fn rejects_induction_variable_in_expressions() {
        let err = analyze_src("loop f(i=1..9){ real x[]; x[i] = i; }").unwrap_err();
        assert!(err.message.contains("induction variable"), "{err}");
    }

    #[test]
    fn rejects_duplicate_declarations() {
        let err = analyze_src("loop f(i=1..9){ real x[]; int x[]; x[i] = 0; }").unwrap_err();
        assert!(err.message.contains("declared twice"), "{err}");
    }
}
