//! Tokenizer for the loop DSL.

use std::fmt;

use crate::{FrontError, Span};

/// The token classes of the DSL.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`loop`, `real`, `int`, `param`, `if`,
    /// `else`, `sqrt` are keywords; everything else is a name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal (contains a `.` or exponent).
    Real(f64),
    /// One of the fixed punctuation/operator spellings.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Real(v) => write!(f, "real {v}"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source location.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What was scanned.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}

/// The multi-character operators, longest first so maximal munch works.
const PUNCTS: [&str; 22] = [
    "..", "==", "!=", "<=", ">=", "&&", "||", "{", "}", "(", ")", "[", "]", ";", ",", "=", "<",
    ">", "+", "-", "*", "/",
];

/// Scans DSL source into tokens. `//` comments run to end of line.
///
/// # Errors
///
/// Returns a [`FrontError`] for unknown characters or malformed numbers.
pub fn lex(source: &str) -> Result<Vec<Token>, FrontError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        let span = Span { line, col };
        // Whitespace.
        if c == '\n' {
            i += 1;
            line += 1;
            col = 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        // Comments.
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == '%' {
            tokens.push(Token {
                kind: TokenKind::Punct("%"),
                span,
            });
            i += 1;
            col += 1;
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let begin = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let text = &source[begin..i];
            col += (i - begin) as u32;
            tokens.push(Token {
                kind: TokenKind::Ident(text.to_owned()),
                span,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let begin = i;
            let mut is_real = false;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            // A `.` starts a fraction only if not the `..` range operator.
            if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1] != b'.' {
                is_real = true;
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                is_real = true;
                i += 1;
                if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                    i += 1;
                }
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            let text = &source[begin..i];
            col += (i - begin) as u32;
            let kind = if is_real {
                TokenKind::Real(
                    text.parse()
                        .map_err(|_| FrontError::new(span, format!("bad real literal `{text}`")))?,
                )
            } else {
                TokenKind::Int(
                    text.parse()
                        .map_err(|_| FrontError::new(span, format!("bad int literal `{text}`")))?,
                )
            };
            tokens.push(Token { kind, span });
            continue;
        }
        // Punctuation, longest match first.
        for p in PUNCTS {
            if source[i..].starts_with(p) {
                tokens.push(Token {
                    kind: TokenKind::Punct(p),
                    span,
                });
                i += p.len();
                col += p.len() as u32;
                continue 'outer;
            }
        }
        return Err(FrontError::new(span, format!("unexpected character `{c}`")));
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span { line, col },
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn scans_the_basics() {
        assert_eq!(
            kinds("loop f(i = 3..n)"),
            vec![
                TokenKind::Ident("loop".into()),
                TokenKind::Ident("f".into()),
                TokenKind::Punct("("),
                TokenKind::Ident("i".into()),
                TokenKind::Punct("="),
                TokenKind::Int(3),
                TokenKind::Punct(".."),
                TokenKind::Ident("n".into()),
                TokenKind::Punct(")"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn distinguishes_reals_from_ranges() {
        assert_eq!(kinds("1.5"), vec![TokenKind::Real(1.5), TokenKind::Eof]);
        assert_eq!(
            kinds("1..5"),
            vec![
                TokenKind::Int(1),
                TokenKind::Punct(".."),
                TokenKind::Int(5),
                TokenKind::Eof
            ]
        );
        assert_eq!(kinds("2e3"), vec![TokenKind::Real(2000.0), TokenKind::Eof]);
    }

    #[test]
    fn scans_comparison_operators_greedily() {
        assert_eq!(
            kinds("<= < == ="),
            vec![
                TokenKind::Punct("<="),
                TokenKind::Punct("<"),
                TokenKind::Punct("=="),
                TokenKind::Punct("="),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("a // the rest is ignored\nb"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn tracks_line_and_column() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!(tokens[0].span, Span { line: 1, col: 1 });
        assert_eq!(tokens[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = lex("a # b").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.span, Span { line: 1, col: 3 });
    }
}
