//! Recursive-descent parser for the loop DSL.
//!
//! Grammar (EBNF):
//!
//! ```text
//! unit    := loop*
//! loop    := "loop" IDENT "(" IDENT "=" bound ".." bound ")" "{" decl* stmt* "}"
//! bound   := INT | IDENT
//! decl    := ("real" | "int") IDENT "[" "]" ("," IDENT "[" "]")* ";"
//!          | "param" ("real" | "int") IDENT ("," IDENT)* ";"
//! stmt    := lvalue "=" expr ";"
//!          | "if" "(" expr relop expr ")" block ("else" block)?
//!          | "break" "if" "(" expr relop expr ")" ";"
//! block   := "{" stmt* "}"
//! lvalue  := IDENT ("[" index "]")?
//! index   := IDENT (("+" | "-") INT)?
//! expr    := term (("+" | "-") term)*
//! term    := factor (("*" | "/" | "%") factor)*
//! factor  := "-" factor | atom
//! atom    := NUMBER | "sqrt" "(" expr ")" | "abs" "(" expr ")"
//!          | ("min" | "max") "(" expr "," expr ")"
//!          | IDENT ("[" index "]")? | "(" expr ")"
//! relop   := "==" | "!=" | "<" | "<=" | ">" | ">="
//! ```
//!
//! `sqrt`, `abs`, `min`, `max`, and `break` are contextual keywords: a
//! scalar with one of those names shadows the intrinsic.

use crate::ast::{BinOp, Bound, Cond, Decl, Expr, LValue, LoopDef, RelOp, Stmt, Ty};
use crate::{FrontError, Span, Token, TokenKind};

/// Parses a token stream into loop definitions.
///
/// # Errors
///
/// Returns the first syntax error with its location.
pub fn parse(tokens: &[Token]) -> Result<Vec<LoopDef>, FrontError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut loops = Vec::new();
    while !p.at_eof() {
        loops.push(p.loop_def()?);
    }
    Ok(loops)
}

struct Parser<'t> {
    tokens: &'t [Token],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn span(&self) -> Span {
        self.peek().span
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if !self.at_eof() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(&self.peek().kind, TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), FrontError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(FrontError::new(
                self.span(),
                format!("expected `{p}`, found {}", self.peek().kind),
            ))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, FrontError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(FrontError::new(
                self.span(),
                format!("expected {what}, found {other}"),
            )),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn loop_def(&mut self) -> Result<LoopDef, FrontError> {
        if !self.eat_keyword("loop") {
            return Err(FrontError::new(
                self.span(),
                format!("expected `loop`, found {}", self.peek().kind),
            ));
        }
        let name = self.expect_ident("loop name")?;
        self.expect_punct("(")?;
        let var = self.expect_ident("induction variable")?;
        self.expect_punct("=")?;
        let lo = self.bound()?;
        self.expect_punct("..")?;
        let hi = self.bound()?;
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let mut decls = Vec::new();
        while self.at_keyword("real") || self.at_keyword("int") || self.at_keyword("param") {
            decls.push(self.decl()?);
        }
        let mut body = Vec::new();
        while !self.eat_punct("}") {
            if self.at_eof() {
                return Err(FrontError::new(self.span(), "unterminated loop body"));
            }
            body.push(self.stmt(&var)?);
        }
        Ok(LoopDef {
            name,
            var,
            lo,
            hi,
            decls,
            body,
        })
    }

    fn bound(&mut self) -> Result<Bound, FrontError> {
        match &self.peek().kind {
            TokenKind::Int(v) => {
                let v = *v;
                self.bump();
                Ok(Bound::Const(v))
            }
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(Bound::Param(s))
            }
            other => Err(FrontError::new(
                self.span(),
                format!("expected loop bound, found {other}"),
            )),
        }
    }

    fn ty(&mut self) -> Result<Ty, FrontError> {
        if self.eat_keyword("real") {
            Ok(Ty::Real)
        } else if self.eat_keyword("int") {
            Ok(Ty::Int)
        } else {
            Err(FrontError::new(
                self.span(),
                format!("expected `real` or `int`, found {}", self.peek().kind),
            ))
        }
    }

    fn decl(&mut self) -> Result<Decl, FrontError> {
        if self.eat_keyword("param") {
            let ty = self.ty()?;
            let mut names = vec![self.expect_ident("parameter name")?];
            while self.eat_punct(",") {
                names.push(self.expect_ident("parameter name")?);
            }
            self.expect_punct(";")?;
            return Ok(Decl::Param { ty, names });
        }
        let ty = self.ty()?;
        let mut arrays = Vec::new();
        let mut scalars = Vec::new();
        loop {
            let name = self.expect_ident("array or scalar name")?;
            if self.eat_punct("[") {
                self.expect_punct("]")?;
                arrays.push(name);
            } else {
                scalars.push(name);
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(";")?;
        // A mixed declaration list is split into its array and scalar
        // halves; only one of the two is usually present.
        if arrays.is_empty() {
            Ok(Decl::Scalar { ty, names: scalars })
        } else if scalars.is_empty() {
            Ok(Decl::Array { ty, names: arrays })
        } else {
            Err(FrontError::new(
                self.span(),
                "mixing array and scalar names in one declaration is not supported",
            ))
        }
    }

    fn stmt(&mut self, var: &str) -> Result<Stmt, FrontError> {
        if self.eat_keyword("break") {
            if !self.eat_keyword("if") {
                return Err(FrontError::new(
                    self.span(),
                    "only conditional exits are supported: `break if (cond);`",
                ));
            }
            self.expect_punct("(")?;
            let lhs = self.expr(var)?;
            let op = self.relop()?;
            let rhs = self.expr(var)?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::BreakIf {
                cond: Cond { op, lhs, rhs },
            });
        }
        if self.eat_keyword("if") {
            self.expect_punct("(")?;
            let lhs = self.expr(var)?;
            let op = self.relop()?;
            let rhs = self.expr(var)?;
            self.expect_punct(")")?;
            let then_body = self.block(var)?;
            let else_body = if self.eat_keyword("else") {
                self.block(var)?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond: Cond { op, lhs, rhs },
                then_body,
                else_body,
            });
        }
        let span = self.span();
        let name = self.expect_ident("assignment target")?;
        let target = if self.eat_punct("[") {
            let offset = self.index(var)?;
            self.expect_punct("]")?;
            LValue::Elem {
                array: name,
                offset,
            }
        } else {
            LValue::Scalar(name)
        };
        self.expect_punct("=")?;
        let value = self.expr(var)?;
        self.expect_punct(";")?;
        Ok(Stmt::Assign {
            target,
            value,
            span,
        })
    }

    fn block(&mut self, var: &str) -> Result<Vec<Stmt>, FrontError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if self.at_eof() {
                return Err(FrontError::new(self.span(), "unterminated block"));
            }
            stmts.push(self.stmt(var)?);
        }
        Ok(stmts)
    }

    fn relop(&mut self) -> Result<RelOp, FrontError> {
        for (text, op) in [
            ("==", RelOp::Eq),
            ("!=", RelOp::Ne),
            ("<=", RelOp::Le),
            ("<", RelOp::Lt),
            (">=", RelOp::Ge),
            (">", RelOp::Gt),
        ] {
            if self.eat_punct(text) {
                return Ok(op);
            }
        }
        Err(FrontError::new(
            self.span(),
            format!("expected comparison operator, found {}", self.peek().kind),
        ))
    }

    /// `i`, `i + c`, or `i - c`.
    fn index(&mut self, var: &str) -> Result<i64, FrontError> {
        let span = self.span();
        let name = self.expect_ident("index variable")?;
        if name != var {
            return Err(FrontError::new(
                span,
                format!("subscripts must use the induction variable `{var}`, found `{name}`"),
            ));
        }
        let sign = if self.eat_punct("+") {
            1
        } else if self.eat_punct("-") {
            -1
        } else {
            return Ok(0);
        };
        match self.bump().kind {
            TokenKind::Int(v) => Ok(sign * v),
            other => Err(FrontError::new(
                span,
                format!("expected constant offset, found {other}"),
            )),
        }
    }

    fn expr(&mut self, var: &str) -> Result<Expr, FrontError> {
        let mut lhs = self.term(var)?;
        loop {
            let op = if self.eat_punct("+") {
                BinOp::Add
            } else if self.eat_punct("-") {
                BinOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.term(var)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn term(&mut self, var: &str) -> Result<Expr, FrontError> {
        let mut lhs = self.factor(var)?;
        loop {
            let op = if self.eat_punct("*") {
                BinOp::Mul
            } else if self.eat_punct("/") {
                BinOp::Div
            } else if self.eat_punct("%") {
                BinOp::Rem
            } else {
                return Ok(lhs);
            };
            let rhs = self.factor(var)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn factor(&mut self, var: &str) -> Result<Expr, FrontError> {
        if self.eat_punct("-") {
            return Ok(Expr::Neg(Box::new(self.factor(var)?)));
        }
        self.atom(var)
    }

    fn atom(&mut self, var: &str) -> Result<Expr, FrontError> {
        let span = self.span();
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::Real(v) => {
                self.bump();
                Ok(Expr::Real(v))
            }
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.expr(var)?;
                self.expect_punct(")")?;
                Ok(e)
            }
            TokenKind::Ident(name) if name == "sqrt" => {
                self.bump();
                self.expect_punct("(")?;
                let e = self.expr(var)?;
                self.expect_punct(")")?;
                Ok(Expr::Sqrt(Box::new(e)))
            }
            TokenKind::Ident(name) if name == "min" || name == "max" => {
                let is_max = name == "max";
                self.bump();
                self.expect_punct("(")?;
                let lhs = self.expr(var)?;
                self.expect_punct(",")?;
                let rhs = self.expr(var)?;
                self.expect_punct(")")?;
                Ok(Expr::MinMax {
                    is_max,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                })
            }
            TokenKind::Ident(name) if name == "abs" => {
                self.bump();
                self.expect_punct("(")?;
                let e = self.expr(var)?;
                self.expect_punct(")")?;
                Ok(Expr::Abs(Box::new(e)))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat_punct("[") {
                    let offset = self.index(var)?;
                    self.expect_punct("]")?;
                    Ok(Expr::Elem {
                        array: name,
                        offset,
                        span,
                    })
                } else {
                    Ok(Expr::Scalar(name, span))
                }
            }
            other => Err(FrontError::new(
                span,
                format!("expected expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;

    fn parse_src(src: &str) -> Result<Vec<LoopDef>, FrontError> {
        parse(&lex(src).unwrap())
    }

    #[test]
    fn parses_the_sample_loop() {
        let loops = parse_src(
            "loop sample(i = 3..n) {
                 real x[], y[];
                 x[i] = x[i-1] + y[i-2];
                 y[i] = y[i-1] + x[i-2];
             }",
        )
        .unwrap();
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.name, "sample");
        assert_eq!(l.lo, Bound::Const(3));
        assert_eq!(l.hi, Bound::Param("n".into()));
        assert_eq!(l.body.len(), 2);
        match &l.body[0] {
            Stmt::Assign {
                target: LValue::Elem { array, offset },
                value,
                ..
            } => {
                assert_eq!(array, "x");
                assert_eq!(*offset, 0);
                assert!(matches!(value, Expr::Bin(BinOp::Add, _, _)));
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn parses_conditionals() {
        let loops = parse_src(
            "loop f(i = 1..n) {
                 real x[];
                 param real t;
                 if (x[i] > t) { x[i] = t; } else { x[i] = 0.0; }
             }",
        )
        .unwrap();
        match &loops[0].body[0] {
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                assert_eq!(cond.op, RelOp::Gt);
                assert_eq!(then_body.len(), 1);
                assert_eq!(else_body.len(), 1);
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn precedence_is_mul_over_add() {
        let loops = parse_src("loop f(i=1..9){ real x[]; x[i] = 1.0 + 2.0 * 3.0; }").unwrap();
        match &loops[0].body[0] {
            Stmt::Assign {
                value: Expr::Bin(BinOp::Add, l, r),
                ..
            } => {
                assert!(matches!(**l, Expr::Real(_)));
                assert!(matches!(**r, Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn rejects_non_induction_subscripts() {
        let err = parse_src("loop f(i=1..9){ real x[]; x[j] = 1.0; }").unwrap_err();
        assert!(err.message.contains("induction variable"));
    }

    #[test]
    fn rejects_unterminated_body() {
        let err = parse_src("loop f(i=1..9){ real x[]; x[i] = 1.0;").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn parses_multiple_loops() {
        let loops = parse_src(
            "loop a(i=1..4){ real x[]; x[i] = 1.0; }
             loop b(i=1..4){ real y[]; y[i] = 2.0; }",
        )
        .unwrap();
        assert_eq!(loops.len(), 2);
    }

    #[test]
    fn parses_negation_and_sqrt() {
        let loops = parse_src("loop f(i=1..9){ real x[]; x[i] = -sqrt(x[i-1] * 2.0); }").unwrap();
        match &loops[0].body[0] {
            Stmt::Assign {
                value: Expr::Neg(inner),
                ..
            } => {
                assert!(matches!(**inner, Expr::Sqrt(_)));
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }
}
