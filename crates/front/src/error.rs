//! Front-end errors with source locations.

use std::fmt;

/// A half-open source location: line and column, both 1-based.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Any error the front end can report: lexical, syntactic, or semantic.
#[derive(Clone, Debug, PartialEq)]
pub struct FrontError {
    /// Where the problem was found.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl FrontError {
    pub(crate) fn new(span: Span, message: impl Into<String>) -> Self {
        Self {
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for FrontError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for FrontError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_displays_location_first() {
        let e = FrontError::new(Span { line: 3, col: 7 }, "unexpected token");
        assert_eq!(e.to_string(), "3:7: unexpected token");
    }
}
