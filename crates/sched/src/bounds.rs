//! Absolute lower bounds on II (§3.1): `ResMII`, `RecMII`, and `MII`.
//!
//! `RecMII` is computed two independent ways, cross-checked by tests:
//!
//! 1. **Circuit enumeration** — scan every elementary recurrence circuit
//!    (Johnson's algorithm; the paper cites Tiernan) and take
//!    `max ⌈L / Ω⌉` over circuits with total latency `L` and total
//!    iteration distance `Ω`. "Although a graph can contain exponentially
//!    many elementary circuits, most loop bodies have very few" — so a
//!    circuit-count cap guards against the exponential case.
//! 2. **Minimum cost-to-time ratio** (Lawler) — the smallest `II` for which
//!    no circuit has positive weight under arc weights `latency − ω·II`,
//!    found by binary search with a Bellman–Ford positive-cycle test; valid
//!    because circuit weights are non-increasing in `II`.

use lsms_ir::{tarjan_scc, LoopBody};
use lsms_machine::{critical_classes, Machine};

use crate::SchedProblem;

/// Re-export of the resource-contention bound (computed in `lsms-machine`).
pub use lsms_machine::res_mii;

/// `MII = max(ResMII, RecMII)`: the absolute lower bound on the initiation
/// interval. In practice almost all loops achieve it (§3.1).
pub fn mii(problem: &SchedProblem<'_>) -> u32 {
    problem.mii()
}

/// The recurrence-circuit bound on II, by elementary-circuit enumeration
/// with a fallback to the min-ratio method if the circuit count explodes.
///
/// Returns `None` when some circuit has `Ω = 0` but positive latency: no
/// initiation interval can satisfy it (the loop body is malformed).
pub fn rec_mii(problem: &SchedProblem<'_>) -> Option<u32> {
    const CIRCUIT_CAP: usize = 200_000;
    match rec_mii_by_enumeration(problem, CIRCUIT_CAP) {
        Ok(result) => result,
        Err(CircuitCapExceeded) => rec_mii_min_ratio(problem),
    }
}

/// Error from [`rec_mii_by_enumeration`]: the graph had more elementary
/// circuits than the requested cap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CircuitCapExceeded;

/// `RecMII` by scanning every elementary circuit (§3.1). Inner `None`
/// signals an unsatisfiable zero-ω circuit.
///
/// # Errors
///
/// Returns [`CircuitCapExceeded`] if more than `cap` circuits exist.
pub fn rec_mii_by_enumeration(
    problem: &SchedProblem<'_>,
    cap: usize,
) -> Result<Option<u32>, CircuitCapExceeded> {
    let mut best: u32 = 1;
    let mut infeasible = false;
    let mut count = 0usize;
    enumerate_circuits(problem, &mut |latency, omega| {
        count += 1;
        if omega == 0 {
            if latency > 0 {
                infeasible = true;
            }
        } else {
            let bound = (latency.max(0) as u64).div_ceil(u64::from(omega));
            best = best.max(bound as u32);
        }
        count <= cap
    });
    if count > cap {
        return Err(CircuitCapExceeded);
    }
    Ok(if infeasible { None } else { Some(best) })
}

/// `RecMII` by the minimum cost-to-time-ratio method (§3.1, citing
/// Lawler): binary search for the smallest II at which Bellman–Ford finds
/// no positive cycle under weights `latency − ω·II`. Returns `None` for a
/// positive-latency zero-ω circuit, which stays positive at every II.
pub fn rec_mii_min_ratio(problem: &SchedProblem<'_>) -> Option<u32> {
    let n = problem.num_real_ops();
    if n == 0 {
        return Some(1);
    }
    // Only real arcs can be on circuits (Start has no in-arcs, Stop no
    // out-arcs).
    let arcs: Vec<_> = problem
        .arcs()
        .iter()
        .filter(|a| a.from < n && a.to < n)
        .collect();
    let has_positive_cycle = |ii: i64| -> bool {
        // Longest-path Bellman–Ford from a virtual source connected to all
        // nodes with weight 0: dist starts at 0 everywhere.
        let mut dist = vec![0i64; n];
        for round in 0..=n {
            let mut changed = false;
            for arc in &arcs {
                let w = arc.latency - i64::from(arc.omega) * ii;
                if dist[arc.from] + w > dist[arc.to] {
                    dist[arc.to] = dist[arc.from] + w;
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
            if round == n {
                return true;
            }
        }
        false
    };
    let max_latency: i64 = arcs.iter().map(|a| a.latency.max(0)).sum::<i64>().max(1);
    if has_positive_cycle(max_latency) {
        return None; // a zero-ω circuit keeps its positive weight forever
    }
    let (mut lo, mut hi) = (1i64, max_latency); // hi is feasible
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if has_positive_cycle(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Some(lo as u32)
}

/// Number of operations lying on non-trivial recurrence circuits (Table 2's
/// "# Ops on Recurrences"): members of dependence-graph SCCs of size ≥ 2.
pub fn ops_on_recurrences(body: &LoopBody) -> usize {
    tarjan_scc(body)
        .into_iter()
        .filter(|scc| scc.len() >= 2)
        .map(|scc| scc.len())
        .sum()
}

/// Number of operations using a critical resource at the given II
/// (Table 2's "# Critical Ops at MII"); see
/// [`critical_classes`] for the 0.90·II
/// rule.
pub fn critical_ops(machine: &Machine, body: &LoopBody, ii: u32) -> usize {
    let critical = critical_classes(machine, body, ii);
    body.ops()
        .iter()
        .filter(|op| critical[machine.desc(op.kind).class.index()])
        .count()
}

/// Enumerates elementary circuits of the real-operation multigraph with
/// Johnson's algorithm, invoking `emit(total_latency, total_omega)` per
/// circuit. `emit` returns `false` to abort early. Parallel arcs are kept
/// distinct, so two arcs between the same pair yield two circuits.
fn enumerate_circuits(problem: &SchedProblem<'_>, emit: &mut dyn FnMut(i64, u32) -> bool) {
    let n = problem.num_real_ops();
    // Self-arcs are elementary circuits of length one; Johnson's main loop
    // handles only length >= 2.
    for arc in problem.arcs() {
        if arc.from == arc.to && arc.from < n && !emit(arc.latency, arc.omega) {
            return;
        }
    }
    // adj[v] = (w, latency, omega) for each non-self arc v -> w.
    let adj: Vec<Vec<(usize, i64, u32)>> = (0..n)
        .map(|v| {
            problem
                .arcs_from(v)
                .filter(|a| a.to < n && a.to != v)
                .map(|a| (a.to, a.latency, a.omega))
                .collect()
        })
        .collect();

    struct J<'e> {
        adj: Vec<Vec<(usize, i64, u32)>>,
        blocked: Vec<bool>,
        blist: Vec<Vec<usize>>,
        root: usize,
        emit: &'e mut dyn FnMut(i64, u32) -> bool,
        aborted: bool,
    }
    impl J<'_> {
        fn unblock(&mut self, v: usize) {
            self.blocked[v] = false;
            let list = std::mem::take(&mut self.blist[v]);
            for w in list {
                if self.blocked[w] {
                    self.unblock(w);
                }
            }
        }
        /// DFS from `v` with accumulated (latency, omega); returns true if
        /// any circuit was closed below `v`.
        fn circuit(&mut self, v: usize, lat: i64, omega: u32) -> bool {
            if self.aborted {
                return false;
            }
            let mut found = false;
            self.blocked[v] = true;
            for i in 0..self.adj[v].len() {
                let (w, l, o) = self.adj[v][i];
                if w < self.root {
                    continue; // Johnson: only nodes >= current root
                }
                if w == self.root {
                    if !(self.emit)(lat + l, omega + o) {
                        self.aborted = true;
                        return found;
                    }
                    found = true;
                } else if !self.blocked[w] && self.circuit(w, lat + l, omega + o) {
                    found = true;
                }
                if self.aborted {
                    return found;
                }
            }
            if found {
                self.unblock(v);
            } else {
                for i in 0..self.adj[v].len() {
                    let (w, _, _) = self.adj[v][i];
                    if w >= self.root && !self.blist[w].contains(&v) {
                        self.blist[w].push(v);
                    }
                }
            }
            found
        }
    }

    let mut j = J {
        adj,
        blocked: vec![false; n],
        blist: vec![Vec::new(); n],
        root: 0,
        emit,
        aborted: false,
    };
    for root in 0..n {
        j.root = root;
        j.blocked.iter_mut().for_each(|b| *b = false);
        j.blist.iter_mut().for_each(|l| l.clear());
        j.circuit(root, 0, 0);
        if j.aborted {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_ir::{LoopBuilder, OpKind, ValueType};
    use lsms_machine::huff_machine;

    fn ring(k: usize, omega_back: u32) -> lsms_ir::LoopBody {
        let mut b = LoopBuilder::new("ring");
        let mut vals = Vec::new();
        let mut ops = Vec::new();
        let seed = b.invariant(ValueType::Float, "seed");
        for i in 0..k {
            let v = b.new_value(ValueType::Float);
            let prev = *vals.last().unwrap_or(&seed);
            let o = b.op(OpKind::FAdd, &[prev, seed], Some(v));
            vals.push(v);
            if i > 0 {
                b.flow_dep(ops[i - 1], o, 0);
            }
            ops.push(o);
        }
        b.flow_dep(ops[k - 1], ops[0], omega_back);
        b.finish()
    }

    #[test]
    fn ring_rec_mii_is_ceiling_of_latency_over_omega() {
        let m = huff_machine();
        // 5 fadds, latency 1 each: L = 5, omega 2 -> ceil(5/2) = 3.
        let body = ring(5, 2);
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(p.rec_mii(), 3);
        assert_eq!(rec_mii_min_ratio(&p), Some(3));
        // omega 1 -> 5.
        let body = ring(5, 1);
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(p.rec_mii(), 5);
        assert_eq!(rec_mii_min_ratio(&p), Some(5));
    }

    #[test]
    fn self_arc_bounds_rec_mii() {
        let m = huff_machine();
        let mut b = LoopBuilder::new("acc");
        let f = b.invariant(ValueType::Float, "f");
        let s = b.new_value(ValueType::Float);
        let o = b.op(OpKind::FMul, &[s, f], Some(s)); // latency 2
        b.flow_dep(o, o, 1);
        let body = b.finish();
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(p.rec_mii(), 2);
        assert_eq!(rec_mii_min_ratio(&p), Some(2));
    }

    #[test]
    fn acyclic_rec_mii_is_one() {
        let m = huff_machine();
        let mut b = LoopBuilder::new("line");
        let f = b.invariant(ValueType::Float, "f");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let o1 = b.op(OpKind::FMul, &[f, f], Some(x));
        let o2 = b.op(OpKind::FAdd, &[x, f], Some(y));
        b.flow_dep(o1, o2, 0);
        let body = b.finish();
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(p.rec_mii(), 1);
        assert_eq!(rec_mii_min_ratio(&p), Some(1));
    }

    #[test]
    fn overlapping_circuits_take_the_max() {
        let m = huff_machine();
        // Two circuits sharing op0: (0,1) omega 1 lat 2+2=4 -> 4, and
        // (0,1,2) omega 3, lat 6 -> 2.
        let mut b = LoopBuilder::new("two");
        let v0 = b.new_value(ValueType::Float);
        let v1 = b.new_value(ValueType::Float);
        let v2 = b.new_value(ValueType::Float);
        let o0 = b.op(OpKind::FMul, &[v1, v1], Some(v0));
        let o1 = b.op(OpKind::FMul, &[v0, v2], Some(v1));
        let o2 = b.op(OpKind::FMul, &[v1, v1], Some(v2));
        b.flow_dep(o0, o1, 0);
        b.flow_dep(o1, o0, 1);
        b.flow_dep(o1, o2, 0);
        b.flow_dep(o2, o1, 3); // hmm: circuit 0->1->0 and 1->2->1
        let body = b.finish();
        let p = SchedProblem::new(&body, &m).unwrap();
        // Circuit A: o0->o1 (lat 2, w 0) + o1->o0 (lat 2, w 1): 4/1 = 4.
        // Circuit B: o1->o2 (lat 2, w 0) + o2->o1 (lat 2, w 3): ceil(4/3)=2.
        assert_eq!(p.rec_mii(), 4);
        assert_eq!(rec_mii_min_ratio(&p), Some(4));
    }

    #[test]
    fn parallel_arcs_yield_distinct_circuits() {
        let m = huff_machine();
        let mut b = LoopBuilder::new("par");
        let v0 = b.new_value(ValueType::Float);
        let v1 = b.new_value(ValueType::Float);
        let o0 = b.op(OpKind::FMul, &[v1, v1], Some(v0));
        let o1 = b.op(OpKind::FMul, &[v0, v0], Some(v1));
        b.flow_dep(o0, o1, 0);
        b.flow_dep(o1, o0, 4); // ratio (2+2)/4 = 1
        b.flow_dep(o1, o0, 1); // ratio (2+2)/1 = 4  <- tighter
        let body = b.finish();
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(p.rec_mii(), 4);
        assert_eq!(rec_mii_min_ratio(&p), Some(4));
    }

    #[test]
    fn circuit_cap_falls_back_cleanly() {
        let m = huff_machine();
        let body = ring(6, 2);
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(rec_mii_by_enumeration(&p, 0), Err(CircuitCapExceeded));
        assert_eq!(rec_mii(&p), rec_mii_min_ratio(&p));
    }

    #[test]
    fn ops_on_recurrences_counts_scc_members() {
        let body = ring(5, 2);
        assert_eq!(ops_on_recurrences(&body), 5);
        let mut b = LoopBuilder::new("none");
        let f = b.invariant(ValueType::Float, "f");
        let x = b.new_value(ValueType::Float);
        b.op(OpKind::FAdd, &[f, f], Some(x));
        assert_eq!(ops_on_recurrences(&b.finish()), 0);
    }

    #[test]
    fn critical_ops_at_mii() {
        let m = huff_machine();
        // Four loads on two ports: ResMII = 2, loads are critical
        // (4/2 = 2 >= 0.9*2); the lone fadd is not.
        let mut b = LoopBuilder::new("c");
        let a = b.invariant(ValueType::Addr, "a");
        for _ in 0..4 {
            let x = b.new_value(ValueType::Float);
            b.op(OpKind::Load, &[a], Some(x));
        }
        let f = b.new_value(ValueType::Float);
        let g = b.new_value(ValueType::Float);
        b.op(OpKind::FAdd, &[f, f], Some(g));
        let body = b.finish();
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(p.mii(), 2);
        assert_eq!(critical_ops(&m, &body, 2), 4);
    }
}
