//! The bidirectional slack scheduler (§4–§5): the paper's contribution.

use std::fmt;

use lsms_ir::ValueId;

use crate::engine::{run_framework, Direction, EngineState, EngineWorkspace, Heuristic};
use crate::{DecisionStats, MinDistCache, SchedProblem, SchedStats, Schedule};

/// How the scheduler decides which end of an operation's slack window to
/// scan from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DirectionPolicy {
    /// The §5.2 bidirectional lifetime heuristic: place an operation early
    /// or late depending on whether its stretchable inputs outnumber its
    /// stretchable outputs.
    #[default]
    Bidirectional,
    /// Always place as early as possible — the unidirectional legacy of
    /// list scheduling. §7: without the bidirectional heuristics the slack
    /// scheduler "generates nearly the same register pressure as Cydrome's
    /// scheduler", making this the ablation policy.
    AlwaysEarly,
    /// Always place as late as possible (for experiments; not in the
    /// paper).
    AlwaysLate,
}

/// How II grows after a failed attempt (§4.2, footnote 6: incrementing
/// by 1 "lowered the total II by 45 at the expense of 29% more time spent
/// in the scheduler").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IiIncrement {
    /// The paper's production setting: `max(⌊0.04·II⌋, 1)`.
    #[default]
    FourPercent,
    /// Exhaustive: try every II.
    ByOne,
}

/// Tunables of the slack scheduler.
#[derive(Clone, Debug)]
pub struct SlackConfig {
    /// Direction policy (default: bidirectional).
    pub direction: DirectionPolicy,
    /// II escalation policy (default: the paper's 4% steps).
    pub increment: IiIncrement,
    /// Central-loop iteration budget per II attempt, as a multiple of the
    /// operation count; exhausting it triggers Step 6 (restart at a larger
    /// II). Default 32.
    pub budget_factor: u64,
    /// Hard cap on attempted IIs; `None` derives `4·MII + 64`. Reaching the
    /// cap without success fails the loop, which Table 4 reports for
    /// Cydrome's scheduler on 14 loops.
    pub max_ii: Option<u32>,
}

impl Default for SlackConfig {
    fn default() -> Self {
        Self {
            direction: DirectionPolicy::Bidirectional,
            increment: IiIncrement::FourPercent,
            budget_factor: 10,
            max_ii: None,
        }
    }
}

/// Failure to software-pipeline a loop within the II cap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedFailure {
    /// The last initiation interval attempted.
    pub last_ii: u32,
    /// Work counters accumulated across all attempts.
    pub stats: SchedStats,
    /// True when a wall-clock deadline (not the II cap) stopped the
    /// escalation — see
    /// [`run_cached_with_deadline`](SlackScheduler::run_cached_with_deadline).
    /// Larger IIs were still available; callers may degrade to a cheaper
    /// backend instead of reporting the loop unschedulable.
    pub deadline_capped: bool,
}

impl fmt::Display for SchedFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "failed to pipeline; last attempted II = {}",
            self.last_ii
        )
    }
}

impl std::error::Error for SchedFailure {}

/// The bidirectional slack scheduler.
///
/// Characterised by always choosing an operation with the minimum number
/// of issue slots available to it, approximated by the §4.3 *dynamic
/// priority*: current slack, halved for operations on critical resources,
/// halved again for divider users, ties broken by smallest Lstart. The
/// §5.2 lifetime heuristic then decides whether the operation hunts for an
/// issue cycle from the early or the late end of its slack window.
///
/// # Example
///
/// ```
/// use lsms_ir::{LoopBuilder, OpKind, ValueType};
/// use lsms_machine::huff_machine;
/// use lsms_sched::{SchedProblem, SlackScheduler};
///
/// let mut b = LoopBuilder::new("axpy-ish");
/// let a = b.invariant(ValueType::Float, "a");
/// let x = b.new_value(ValueType::Float);
/// let y = b.new_value(ValueType::Float);
/// let mul = b.op(OpKind::FMul, &[a, x], Some(y));
/// let body = b.finish();
/// let machine = huff_machine();
/// let problem = SchedProblem::new(&body, &machine)?;
/// let schedule = SlackScheduler::new().run(&problem)?;
/// assert_eq!(schedule.ii, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct SlackScheduler {
    config: SlackConfig,
}

impl SlackScheduler {
    /// A scheduler with the default (bidirectional) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scheduler with an explicit configuration.
    pub fn with_config(config: SlackConfig) -> Self {
        Self { config }
    }

    /// Schedules the problem, starting at MII and escalating by
    /// `max(⌊0.04·II⌋, 1)` per §4.2.
    ///
    /// # Errors
    ///
    /// Returns [`SchedFailure`] if no feasible schedule is found up to the
    /// configured II cap.
    pub fn run(&self, problem: &SchedProblem<'_>) -> Result<Schedule, SchedFailure> {
        self.run_with_decisions(problem).0
    }

    /// As [`run`](Self::run), but sharing `cache` so the MinDist matrices
    /// computed during the II search are reused by other schedulers and by
    /// pressure analyses of the same problem.
    ///
    /// # Errors
    ///
    /// Returns [`SchedFailure`] if no feasible schedule is found up to the
    /// configured II cap.
    pub fn run_cached(
        &self,
        problem: &SchedProblem<'_>,
        cache: &MinDistCache,
    ) -> Result<Schedule, SchedFailure> {
        self.run_with_decisions_cached(problem, cache).0
    }

    /// Schedules the problem as *straight-line code*: one iteration, no
    /// overlap.
    ///
    /// §8: "the bidirectional slack-scheduling framework ... can be
    /// applied to straight-line code as well as loops" — the context
    /// where Integrated Prepass Scheduling was studied. Implemented by
    /// running one attempt at an initiation interval too large for any
    /// reservation to wrap, so the modulo resource table degenerates to a
    /// plain per-cycle table and lifetimes stop wrapping.
    ///
    /// # Errors
    ///
    /// Returns [`SchedFailure`] only if even a horizon four times the
    /// serial length fails — which would indicate a framework bug rather
    /// than a hard instance.
    pub fn run_straight_line(&self, problem: &SchedProblem<'_>) -> Result<Schedule, SchedFailure> {
        self.run_straight_line_in(problem, &mut EngineWorkspace::new())
    }

    /// As [`run_straight_line`](Self::run_straight_line), drawing every
    /// per-attempt allocation from a caller-owned [`EngineWorkspace`]
    /// (reuse is allocation-only: results are byte-identical).
    ///
    /// # Errors
    ///
    /// As [`run_straight_line`](Self::run_straight_line).
    pub fn run_straight_line_in(
        &self,
        problem: &SchedProblem<'_>,
        ws: &mut EngineWorkspace,
    ) -> Result<Schedule, SchedFailure> {
        // A horizon no schedule needs to exceed: every operation run
        // back to back.
        let serial: u64 = problem
            .body()
            .ops()
            .iter()
            .map(|op| {
                let desc = problem.machine().desc(op.kind);
                u64::from(desc.latency).max(desc.reservation.len() as u64)
            })
            .sum();
        let horizon = u32::try_from(serial + 8).unwrap_or(u32::MAX / 8);
        let mut decisions = DecisionStats::default();
        let mut heuristic = SlackHeuristic {
            policy: self.config.direction,
        };
        // Straight-line forcing advances one cycle per ejection, so packing
        // long non-pipelined reservations (the divider's 17-cycle window)
        // can need far more central-loop iterations than modulo scheduling
        // does; scale the budget by the longest reservation pattern.
        let max_pattern = problem
            .body()
            .ops()
            .iter()
            .map(|op| problem.machine().desc(op.kind).reservation.len() as u64)
            .max()
            .unwrap_or(1);
        // Straight-line horizons are disjoint from the modulo II range, so
        // a shared cache would only retain useless giant matrices; use a
        // private one.
        crate::engine::run_framework_from(
            problem,
            &mut heuristic,
            self.config.budget_factor.max(4) * max_pattern.max(4),
            horizon,
            horizon.saturating_mul(4),
            self.config.increment,
            true,
            None,
            &MinDistCache::new(),
            &mut decisions,
            ws,
        )
    }

    /// As [`run_cached`](Self::run_cached), with an optional wall-clock
    /// deadline checked at every II escalation. Past the deadline a failed
    /// attempt gives up with
    /// [`deadline_capped`](SchedFailure::deadline_capped) set rather than
    /// trying larger IIs — the mechanism behind the session's
    /// budget-driven backend degradation.
    ///
    /// # Errors
    ///
    /// Returns [`SchedFailure`] if no feasible schedule is found before
    /// the II cap or the deadline.
    pub fn run_cached_with_deadline(
        &self,
        problem: &SchedProblem<'_>,
        cache: &MinDistCache,
        deadline: Option<std::time::Instant>,
    ) -> Result<Schedule, SchedFailure> {
        self.run_core(problem, cache, deadline).0
    }

    /// Like [`run`](Self::run), also returning the §5.2 heuristic decision
    /// tallies (used by the `heuristic_stats` experiment).
    pub fn run_with_decisions(
        &self,
        problem: &SchedProblem<'_>,
    ) -> (Result<Schedule, SchedFailure>, DecisionStats) {
        self.run_with_decisions_cached(problem, &MinDistCache::new())
    }

    /// Like [`run_with_decisions`](Self::run_with_decisions) with a shared
    /// MinDist cache.
    pub fn run_with_decisions_cached(
        &self,
        problem: &SchedProblem<'_>,
        cache: &MinDistCache,
    ) -> (Result<Schedule, SchedFailure>, DecisionStats) {
        self.run_core(problem, cache, None)
    }

    fn run_core(
        &self,
        problem: &SchedProblem<'_>,
        cache: &MinDistCache,
        deadline: Option<std::time::Instant>,
    ) -> (Result<Schedule, SchedFailure>, DecisionStats) {
        self.run_in(problem, cache, deadline, &mut EngineWorkspace::new())
    }

    /// The workspace-reusing entry point behind every other `run_*`
    /// method, used directly by [`ModuloScheduler`](crate::ModuloScheduler)
    /// adapters: schedules with an optional escalation deadline, drawing
    /// allocations from `ws`, and returns the result together with the
    /// §5.2 decision tallies.
    pub fn run_in(
        &self,
        problem: &SchedProblem<'_>,
        cache: &MinDistCache,
        deadline: Option<std::time::Instant>,
        ws: &mut EngineWorkspace,
    ) -> (Result<Schedule, SchedFailure>, DecisionStats) {
        let mut decisions = DecisionStats::default();
        let max_ii = self
            .config
            .max_ii
            .unwrap_or(4 * problem.mii() + 64)
            .max(problem.mii());
        let mut heuristic = SlackHeuristic {
            policy: self.config.direction,
        };
        let result = run_framework(
            problem,
            &mut heuristic,
            self.config.budget_factor,
            max_ii,
            self.config.increment,
            deadline,
            cache,
            &mut decisions,
            ws,
        );
        (result, decisions)
    }

    /// One modulo-scheduling attempt pinned at exactly `ii` — no
    /// escalation. This is the warm-start entry point: a caller holding
    /// a previously *achieved* II (from a schedule-cache ledger) tries
    /// it directly, and because the framework is deterministic per
    /// (problem, heuristic, II), success reproduces the byte-identical
    /// schedule the escalating run would have ended on. On failure the
    /// caller falls back to the full MII escalation.
    pub fn run_at_ii_in(
        &self,
        problem: &SchedProblem<'_>,
        cache: &MinDistCache,
        ii: u32,
        ws: &mut EngineWorkspace,
    ) -> (Result<Schedule, SchedFailure>, DecisionStats) {
        let mut decisions = DecisionStats::default();
        let mut heuristic = SlackHeuristic {
            policy: self.config.direction,
        };
        let result = crate::engine::run_framework_from(
            problem,
            &mut heuristic,
            self.config.budget_factor,
            ii,
            ii,
            self.config.increment,
            false,
            None,
            cache,
            &mut decisions,
            ws,
        );
        (result, decisions)
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &SlackConfig {
        &self.config
    }
}

struct SlackHeuristic {
    policy: DirectionPolicy,
}

impl Heuristic for SlackHeuristic {
    fn begin_attempt(&mut self, _st: &EngineState<'_, '_>) {}

    fn choose(&mut self, st: &EngineState<'_, '_>, decisions: &mut DecisionStats) -> usize {
        let mut best = usize::MAX;
        let mut best_key = (i64::MAX, i64::MAX, usize::MAX);
        let mut ties = 0u32;
        for node in st.unplaced() {
            let priority = st.dynamic_priority(node);
            if priority < best_key.0 {
                ties = 1;
            } else if priority == best_key.0 {
                ties += 1;
            }
            // Ties are broken by choosing the operation with the smallest
            // Lstart: "this top-down bias interacts well with the
            // scheduler's backtracking policy" (§4.3). The node index makes
            // the key total, so the winner is independent of the order
            // `unplaced()` yields nodes in (the indexed ready set permutes
            // under swap-remove; `ties` counts nodes at the global minimum
            // priority, which is also order-invariant).
            let key = (priority, st.lstart[node], node);
            if key < best_key {
                best_key = key;
                best = node;
            }
        }
        decisions.selections += 1;
        if ties == 1 {
            decisions.unique_min_priority += 1;
        }
        best
    }

    fn direction(
        &mut self,
        st: &EngineState<'_, '_>,
        node: usize,
        decisions: &mut DecisionStats,
    ) -> Direction {
        if st.slack(node) <= 0 {
            decisions.zero_slack += 1;
            lsms_trace::add("slack", "zero_slack", 1);
            return Direction::Early;
        }
        match self.policy {
            DirectionPolicy::AlwaysEarly => Direction::Early,
            DirectionPolicy::AlwaysLate => Direction::Late,
            DirectionPolicy::Bidirectional => bidirectional_direction(st, node, decisions),
        }
    }
}

/// The §5.2 lifetime-sensitive direction choice.
///
/// Only *stretchable* register flow dependences count: loop invariants live
/// in the GPR file (and never appear as arcs), duplicate inputs of the same
/// value count once, and self-recurrences have fixed lengths.
fn bidirectional_direction(
    st: &EngineState<'_, '_>,
    node: usize,
    decisions: &mut DecisionStats,
) -> Direction {
    let problem = st.problem;
    let body = problem.body();
    let n = problem.num_real_ops();
    let ii = i64::from(st.ii);

    // Pseudo nodes (Stop) have no lifetimes to protect: place early to
    // minimise the overall schedule length.
    if node >= n {
        decisions.isolated_early += 1;
        return Direction::Early;
    }
    let op_id = lsms_ir::OpId::new(node);

    // Stretchable inputs, deduplicated by value.
    let mut seen: Vec<ValueId> = Vec::new();
    let mut inputs = 0usize;
    for dep in body.deps_to(op_id) {
        if !dep.is_register_flow() || dep.is_self_arc() {
            continue;
        }
        let v = dep.value.expect("register flow arcs carry a value");
        if seen.contains(&v) {
            continue; // duplicate input: do not count a lifetime twice
        }
        seen.push(v);
        let d = dep.from.index();
        // If Estart(d) + MinLT(v) >= omega*II + Lstart(node), this use can
        // never be the one stretching v's lifetime.
        let minlt = st.minlt[v.index()].expect("flow-used value has a MinLT");
        let pinned = st.effective_estart(d) + minlt >= i64::from(dep.omega) * ii + st.lstart[node];
        if !pinned {
            inputs += 1;
        }
    }
    // Stretchable outputs: in SSA form, placing the operation early always
    // stretches its result's lifetime, provided someone else consumes it.
    let outputs = usize::from(
        body.deps_from(op_id)
            .any(|dep| dep.is_register_flow() && !dep.is_self_arc()),
    );

    if inputs == 0 && outputs == 0 {
        // E.g. an accumulator not referenced until the loop exits: place
        // early to minimise the overall schedule length.
        decisions.isolated_early += 1;
        lsms_trace::add("slack", "isolated_early", 1);
        return Direction::Early;
    }
    if inputs > outputs {
        decisions.early_more_inputs += 1;
        lsms_trace::add("slack", "early_more_inputs", 1);
        return Direction::Early;
    }
    if inputs < outputs {
        decisions.late_more_outputs += 1;
        lsms_trace::add("slack", "late_more_outputs", 1);
        return Direction::Late;
    }

    // Tie: the placement cannot affect final pressure, so minimise
    // backtracking by placing near whichever neighbour group is less
    // likely to be ejected — the one with the larger placed fraction.
    let placed_fraction = |nodes: &[usize]| -> (usize, usize) {
        let placed = nodes.iter().filter(|&&z| st.is_placed(z)).count();
        (placed, nodes.len())
    };
    let mut preds: Vec<usize> = body
        .deps_to(op_id)
        .map(|d| d.from.index())
        .filter(|&z| z != node)
        .collect();
    preds.sort_unstable();
    preds.dedup();
    let mut succs: Vec<usize> = body
        .deps_from(op_id)
        .map(|d| d.to.index())
        .filter(|&z| z != node)
        .collect();
    succs.sort_unstable();
    succs.dedup();
    let (pp, pn) = placed_fraction(&preds);
    let (sp, sn) = placed_fraction(&succs);
    // Compare pp/pn vs sp/sn without floating point; empty groups count 0.
    let lhs = pp * sn.max(1);
    let rhs = sp * pn.max(1);
    if lhs > rhs {
        decisions.tie_early += 1;
        Direction::Early
    } else if lhs < rhs {
        decisions.tie_late += 1;
        Direction::Late
    } else if pp == 0 && sp == 0 {
        // Place early if and only if no predecessor or successor has yet
        // been placed.
        decisions.tie_early += 1;
        Direction::Early
    } else {
        decisions.tie_late += 1;
        Direction::Late
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate, SchedProblem};
    use lsms_ir::{LoopBuilder, OpKind, ValueType};
    use lsms_machine::huff_machine;

    /// The paper's Figure 1 loop after load/store elimination: two fadds
    /// feeding each other across two iterations, plus the stores.
    fn figure1_body() -> lsms_ir::LoopBody {
        let mut b = LoopBuilder::new("sample");
        let ax = b.invariant(ValueType::Addr, "&x");
        let ay = b.invariant(ValueType::Addr, "&y");
        let x = b.named_value(ValueType::Float, "x");
        let y = b.named_value(ValueType::Float, "y");
        let fx = b.op(OpKind::FAdd, &[x, y], Some(x)); // x(i) = x(i-1)+y(i-2)
        let fy = b.op(OpKind::FAdd, &[y, x], Some(y)); // y(i) = y(i-1)+x(i-2)
        let sx = b.op(OpKind::Store, &[ax, x], None);
        let sy = b.op(OpKind::Store, &[ay, y], None);
        b.flow_dep(fx, fx, 1);
        b.flow_dep(fy, fx, 2);
        b.flow_dep(fy, fy, 1);
        b.flow_dep(fx, fy, 2);
        b.flow_dep(fx, sx, 0);
        b.flow_dep(fy, sy, 0);
        b.finish()
    }

    #[test]
    fn schedules_straight_line_loop_at_mii() {
        let mut b = LoopBuilder::new("line");
        let a = b.invariant(ValueType::Addr, "a");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let ld = b.op(OpKind::Load, &[a], Some(x));
        let add = b.op(OpKind::FAdd, &[x, x], Some(y));
        let st = b.op(OpKind::Store, &[a, y], None);
        b.flow_dep(ld, add, 0);
        b.flow_dep(add, st, 0);
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let s = SlackScheduler::new().run(&p).unwrap();
        assert_eq!(s.ii, p.mii());
        assert_eq!(validate(&p, &s), Ok(()));
        // Dependences respected in absolute time.
        assert!(s.times[1] - s.times[0] >= 13);
        assert!(s.times[2] > s.times[1]);
    }

    #[test]
    fn figure1_schedules_at_ii_2() {
        let body = figure1_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        // RecMII: self arcs give 1; cross pair gives (1+1)/(2+2) -> 1.
        // ResMII: 2 stores on 2 ports = 1, 2 fadds on 1 adder = 2.
        assert_eq!(p.mii(), 2);
        let s = SlackScheduler::new().run(&p).unwrap();
        assert_eq!(s.ii, 2);
        assert_eq!(validate(&p, &s), Ok(()));
    }

    #[test]
    fn recurrence_limited_loop_achieves_rec_mii() {
        // A 4-op recurrence circuit of fmuls: L = 8, omega 1 -> RecMII 8.
        let mut b = LoopBuilder::new("rec");
        let mut vals = Vec::new();
        for _ in 0..4 {
            vals.push(b.new_value(ValueType::Float));
        }
        let mut ops = Vec::new();
        for i in 0..4 {
            let prev = vals[(i + 3) % 4];
            let o = b.op(OpKind::FMul, &[prev, prev], Some(vals[i]));
            ops.push(o);
        }
        for i in 0..3 {
            b.flow_dep(ops[i], ops[i + 1], 0);
        }
        b.flow_dep(ops[3], ops[0], 1);
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(p.rec_mii(), 8);
        let s = SlackScheduler::new().run(&p).unwrap();
        assert_eq!(s.ii, 8);
        assert_eq!(validate(&p, &s), Ok(()));
    }

    #[test]
    fn saturated_adder_schedules_at_res_mii() {
        // 6 independent fadds on one adder: ResMII = 6.
        let mut b = LoopBuilder::new("sat");
        let f = b.invariant(ValueType::Float, "f");
        for _ in 0..6 {
            let r = b.new_value(ValueType::Float);
            b.op(OpKind::FAdd, &[f, f], Some(r));
        }
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(p.mii(), 6);
        let s = SlackScheduler::new().run(&p).unwrap();
        assert_eq!(s.ii, 6);
        assert_eq!(validate(&p, &s), Ok(()));
    }

    #[test]
    fn divider_loop_schedules() {
        let mut b = LoopBuilder::new("div");
        let a = b.invariant(ValueType::Addr, "a");
        let x = b.new_value(ValueType::Float);
        let q = b.new_value(ValueType::Float);
        let ld = b.op(OpKind::Load, &[a], Some(x));
        let dv = b.op(OpKind::FDiv, &[x, x], Some(q));
        let st = b.op(OpKind::Store, &[a, q], None);
        b.flow_dep(ld, dv, 0);
        b.flow_dep(dv, st, 0);
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(p.mii(), 17);
        let s = SlackScheduler::new().run(&p).unwrap();
        assert_eq!(s.ii, 17);
        assert_eq!(validate(&p, &s), Ok(()));
    }

    #[test]
    fn all_direction_policies_produce_valid_schedules() {
        let body = figure1_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        for policy in [
            DirectionPolicy::Bidirectional,
            DirectionPolicy::AlwaysEarly,
            DirectionPolicy::AlwaysLate,
        ] {
            let s = SlackScheduler::with_config(SlackConfig {
                direction: policy,
                ..SlackConfig::default()
            })
            .run(&p)
            .unwrap();
            assert_eq!(validate(&p, &s), Ok(()), "{policy:?}");
        }
    }

    #[test]
    fn decision_stats_are_recorded() {
        let body = figure1_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let (result, decisions) = SlackScheduler::new().run_with_decisions(&p);
        result.unwrap();
        assert!(decisions.selections > 0);
        assert_eq!(
            decisions.selections,
            decisions.zero_slack + decisions.with_slack()
        );
    }

    #[test]
    fn straight_line_mode_never_wraps() {
        let body = figure1_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let s = SlackScheduler::new().run_straight_line(&p).unwrap();
        assert_eq!(validate(&p, &s), Ok(()));
        // One iteration, no overlap: the schedule fits within the "II".
        assert!(s.length() <= i64::from(s.ii));
        // Dependences hold in plain (non-modulo) time for omega-0 arcs.
        assert!(s.times[2] > s.times[0], "store follows its fadd");
    }

    #[test]
    fn straight_line_bidirectional_saves_pressure() {
        // A load feeding a long chain: late placement shortens x's
        // lifetime in the block too.
        let mut b = LoopBuilder::new("blk");
        let a = b.invariant(ValueType::Addr, "a");
        let x = b.new_value(ValueType::Float);
        let ld = b.op(OpKind::Load, &[a], Some(x));
        let seed = b.new_value(ValueType::Float);
        let mut prev_val = seed;
        let mut prev_op = None;
        for _ in 0..20 {
            let v = b.new_value(ValueType::Float);
            let o = b.op(OpKind::FAdd, &[prev_val, prev_val], Some(v));
            if let Some(po) = prev_op {
                b.flow_dep(po, o, 0);
            }
            prev_val = v;
            prev_op = Some(o);
        }
        let sum = b.new_value(ValueType::Float);
        let join = b.op(OpKind::FAdd, &[x, prev_val], Some(sum));
        b.flow_dep(ld, join, 0);
        b.flow_dep(prev_op.unwrap(), join, 0);
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let bi = SlackScheduler::new().run_straight_line(&p).unwrap();
        let early = SlackScheduler::with_config(SlackConfig {
            direction: DirectionPolicy::AlwaysEarly,
            ..SlackConfig::default()
        })
        .run_straight_line(&p)
        .unwrap();
        let lt = |s: &Schedule| s.times[21] - s.times[0];
        assert!(
            lt(&bi) <= lt(&early),
            "bidirectional {} vs early {}",
            lt(&bi),
            lt(&early)
        );
        assert_eq!(
            lt(&bi),
            13,
            "load issues exactly its latency before the join"
        );
    }

    #[test]
    fn empty_loop_schedules_trivially() {
        let body = LoopBuilder::new("empty").finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let s = SlackScheduler::new().run(&p).unwrap();
        assert_eq!(s.ii, 1);
        assert!(s.times.is_empty());
    }

    #[test]
    fn lifetime_heuristic_places_loads_late_and_stores_early() {
        // load -> long chain -> store. A unidirectional (early) scheduler
        // issues the load at cycle 0 even when its consumer cannot start
        // until much later; the bidirectional heuristic delays it.
        let mut b = LoopBuilder::new("stretch");
        let a = b.invariant(ValueType::Addr, "a");
        let x = b.new_value(ValueType::Float);
        let ld = b.op(OpKind::Load, &[a], Some(x));
        // A chain of 30 fadds from an unrelated live-in keeps the critical
        // path long so the load has slack.
        let seed = b.new_value(ValueType::Float);
        let mut prev_val = seed;
        let mut prev_op = None;
        for _ in 0..30 {
            let v = b.new_value(ValueType::Float);
            let o = b.op(OpKind::FAdd, &[prev_val, prev_val], Some(v));
            if let Some(po) = prev_op {
                b.flow_dep(po, o, 0);
            }
            prev_val = v;
            prev_op = Some(o);
        }
        let sum = b.new_value(ValueType::Float);
        let join = b.op(OpKind::FAdd, &[x, prev_val], Some(sum));
        b.flow_dep(ld, join, 0);
        b.flow_dep(prev_op.unwrap(), join, 0);
        let st = b.op(OpKind::Store, &[a, sum], None);
        b.flow_dep(join, st, 0);
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();

        let bi = SlackScheduler::new().run(&p).unwrap();
        let early = SlackScheduler::with_config(SlackConfig {
            direction: DirectionPolicy::AlwaysEarly,
            ..SlackConfig::default()
        })
        .run(&p)
        .unwrap();
        assert_eq!(validate(&p, &bi), Ok(()));
        assert_eq!(validate(&p, &early), Ok(()));
        // x's lifetime = join_time - load_time; the bidirectional schedule
        // must not stretch it beyond the latency-imposed minimum by more
        // than the early schedule does.
        let lt = |s: &Schedule| s.times[31] - s.times[0];
        assert!(
            lt(&bi) <= lt(&early),
            "bidirectional lifetime {} > early lifetime {}",
            lt(&bi),
            lt(&early)
        );
        assert_eq!(
            lt(&bi),
            13,
            "load should issue exactly 13 cycles before its use"
        );
    }
}
