//! Schedules and an independent validity checker.

use std::fmt;

use lsms_machine::{Mrt, UnitAssignment};

use crate::{SchedProblem, SchedStats};

/// A modulo schedule: an issue cycle for every operation at a common
/// initiation interval.
///
/// Issue cycles refer to the *first* iteration; iteration `i` issues each
/// operation `i · II` cycles later. The kernel packs operation `x` into
/// kernel cycle `time(x) mod II` at stage `time(x) div II`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// The achieved initiation interval.
    pub ii: u32,
    /// Issue cycle per operation, indexed by `OpId::index`.
    pub times: Vec<i64>,
    /// The functional-unit instance binding this schedule was built
    /// against. The binding is chosen *per II attempt* (still before any
    /// placement, as §4.3 requires) because which operations may share an
    /// instance depends on II; empty means "use the problem's default
    /// binding".
    pub assignments: Vec<UnitAssignment>,
    /// Counters describing how hard the scheduler worked (§6).
    pub stats: SchedStats,
}

impl Schedule {
    /// The schedule length: one past the last issue cycle (0 for an empty
    /// loop).
    pub fn length(&self) -> i64 {
        self.times.iter().map(|&t| t + 1).max().unwrap_or(0)
    }

    /// Number of kernel stages: `⌈length / II⌉`.
    pub fn stages(&self) -> u32 {
        (self.length() as u64).div_ceil(u64::from(self.ii)) as u32
    }

    /// The stage (`time div II`) of the operation at index `op`.
    pub fn stage(&self, op: usize) -> u32 {
        (self.times[op] / i64::from(self.ii)) as u32
    }

    /// The kernel cycle (`time mod II`) of the operation at index `op`.
    pub fn kernel_cycle(&self, op: usize) -> u32 {
        (self.times[op] % i64::from(self.ii)) as u32
    }
}

/// A violated schedule constraint, from [`validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// `times` has the wrong length for the problem.
    WrongShape,
    /// An operation was scheduled at a negative cycle.
    NegativeTime(usize),
    /// The dependence `from → to` is violated:
    /// `time(to) − time(from) < latency − ω·II`.
    DependenceViolated {
        /// Source node (problem index).
        from: usize,
        /// Sink node (problem index).
        to: usize,
    },
    /// Two operations need the same unit instance at the same cycle
    /// modulo II.
    ResourceConflict {
        /// First operation (problem index).
        a: usize,
        /// Second operation (problem index).
        b: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::WrongShape => f.write_str("schedule has wrong number of times"),
            ScheduleError::NegativeTime(op) => write!(f, "op {op} scheduled before cycle 0"),
            ScheduleError::DependenceViolated { from, to } => {
                write!(f, "dependence {from} -> {to} violated")
            }
            ScheduleError::ResourceConflict { a, b } => {
                write!(f, "ops {a} and {b} collide on a unit modulo II")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Checks a schedule against the problem from first principles: every
/// dependence arc satisfies `time(to) − time(from) ≥ latency − ω·II`, every
/// issue cycle is non-negative, and replaying all reservations into a fresh
/// [`Mrt`] finds no collisions.
///
/// This checker shares no code with the schedulers, so it serves as an
/// independent oracle for unit and property tests.
///
/// # Errors
///
/// Returns the first violated constraint.
pub fn validate(problem: &SchedProblem<'_>, schedule: &Schedule) -> Result<(), ScheduleError> {
    let n = problem.num_real_ops();
    if schedule.times.len() != n {
        return Err(ScheduleError::WrongShape);
    }
    if !schedule.assignments.is_empty() && schedule.assignments.len() != n {
        return Err(ScheduleError::WrongShape);
    }
    for (op, &t) in schedule.times.iter().enumerate() {
        if t < 0 {
            return Err(ScheduleError::NegativeTime(op));
        }
    }
    for arc in problem.arcs() {
        if arc.from >= n || arc.to >= n {
            continue; // Start/Stop arcs constrain nothing once placed
        }
        let gap = schedule.times[arc.to] - schedule.times[arc.from];
        if gap < arc.weight(schedule.ii) {
            return Err(ScheduleError::DependenceViolated {
                from: arc.from,
                to: arc.to,
            });
        }
    }
    let mut mrt = Mrt::new(problem.machine(), schedule.ii);
    for op in 0..n {
        let desc = problem.desc(op);
        let assignment = schedule
            .assignments
            .get(op)
            .copied()
            .unwrap_or_else(|| problem.assignment(op));
        let conflicts = mrt.conflicts(
            lsms_ir::OpId::new(op),
            desc,
            assignment.instance,
            schedule.times[op],
        );
        if let Some(&other) = conflicts.first() {
            return Err(ScheduleError::ResourceConflict {
                a: other.index(),
                b: op,
            });
        }
        mrt.place(
            lsms_ir::OpId::new(op),
            desc,
            assignment.instance,
            schedule.times[op],
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_ir::{LoopBuilder, OpKind, ValueType};
    use lsms_machine::huff_machine;

    fn two_load_body() -> lsms_ir::LoopBody {
        let mut b = LoopBuilder::new("t");
        let a = b.invariant(ValueType::Addr, "a");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let l1 = b.op(OpKind::Load, &[a], Some(x));
        let add = b.op(OpKind::FAdd, &[x, y], Some(y));
        b.flow_dep(l1, add, 0);
        b.finish()
    }

    fn sched(ii: u32, times: Vec<i64>) -> Schedule {
        Schedule {
            ii,
            times,
            assignments: Vec::new(),
            stats: SchedStats::default(),
        }
    }

    #[test]
    fn valid_schedule_passes() {
        let body = two_load_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(validate(&p, &sched(1, vec![0, 13])), Ok(()));
    }

    #[test]
    fn latency_violation_is_caught() {
        let body = two_load_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(
            validate(&p, &sched(1, vec![0, 12])),
            Err(ScheduleError::DependenceViolated { from: 0, to: 1 })
        );
    }

    #[test]
    fn omega_relaxes_the_constraint() {
        // add uses the load's value from 2 iterations earlier: at II = 7,
        // the gap needed is 13 - 14 < 0.
        let mut b = LoopBuilder::new("t");
        let a = b.invariant(ValueType::Addr, "a");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let l1 = b.op(OpKind::Load, &[a], Some(x));
        let add = b.op(OpKind::FAdd, &[x, y], Some(y));
        b.flow_dep(l1, add, 2);
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(validate(&p, &sched(7, vec![0, 0])), Ok(()));
        // At II = 6 the constraint is gap >= 13 - 12 = 1.
        assert!(validate(&p, &sched(6, vec![0, 1])).is_ok());
        assert_eq!(
            validate(&p, &sched(6, vec![0, 0])),
            Err(ScheduleError::DependenceViolated { from: 0, to: 1 })
        );
    }

    #[test]
    fn modulo_resource_conflict_is_caught() {
        // Three loads, two ports: two of them share port 0 (round-robin)
        // and must not coincide modulo II.
        let mut b = LoopBuilder::new("t");
        let a = b.invariant(ValueType::Addr, "a");
        for _ in 0..3 {
            let x = b.new_value(ValueType::Float);
            b.op(OpKind::Load, &[a], Some(x));
        }
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        // Ops 0 and 2 are both on port 0.
        assert_eq!(
            validate(&p, &sched(2, vec![0, 0, 2])),
            Err(ScheduleError::ResourceConflict { a: 0, b: 2 })
        );
        assert_eq!(validate(&p, &sched(2, vec![0, 0, 1])), Ok(()));
    }

    #[test]
    fn negative_time_is_caught() {
        let body = two_load_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(
            validate(&p, &sched(1, vec![-1, 13])),
            Err(ScheduleError::NegativeTime(0))
        );
    }

    #[test]
    fn schedule_geometry() {
        let s = sched(4, vec![0, 13]);
        assert_eq!(s.length(), 14);
        assert_eq!(s.stages(), 4);
        assert_eq!(s.stage(1), 3);
        assert_eq!(s.kernel_cycle(1), 1);
    }
}
