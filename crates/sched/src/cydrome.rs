//! A Cydrome-style baseline scheduler (§8, \[6\]): the paper's "Old
//! Scheduler".
//!
//! Cydrome's production scheduler shares the backtracking operation-driven
//! framework but uses very different heuristics:
//!
//! * a **static priority** favouring operations whose *initial* slack is
//!   minimal — it cannot detect when a recurrence circuit becomes "fixed"
//!   by a placement, because it never re-reads the bounds;
//! * to be safe, it places **all operations on recurrence circuits before
//!   any other operation**;
//! * placement is **unidirectional**: always as early as possible.
//!
//! The paper measures it backtracking 3.7× as much as the slack scheduler
//! and failing to pipeline 14 of the 1,525 loops.

use lsms_ir::tarjan_scc;

use crate::engine::{run_framework, Direction, EngineState, EngineWorkspace, Heuristic};
use crate::{DecisionStats, MinDistCache, SchedFailure, SchedProblem, Schedule};

/// The baseline scheduler reproducing Cydrome's behaviour as described in
/// §8.
///
/// # Example
///
/// ```
/// use lsms_ir::{LoopBuilder, OpKind, ValueType};
/// use lsms_machine::huff_machine;
/// use lsms_sched::{CydromeScheduler, SchedProblem};
///
/// let mut b = LoopBuilder::new("t");
/// let a = b.invariant(ValueType::Float, "a");
/// let x = b.new_value(ValueType::Float);
/// b.op(OpKind::FMul, &[a, a], Some(x));
/// let body = b.finish();
/// let machine = huff_machine();
/// let problem = SchedProblem::new(&body, &machine)?;
/// let schedule = CydromeScheduler::new().run(&problem)?;
/// assert_eq!(schedule.ii, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct CydromeScheduler {
    /// Central-loop iteration budget per II attempt, as a multiple of the
    /// operation count (same meaning as
    /// [`SlackConfig::budget_factor`](crate::SlackConfig::budget_factor)).
    pub budget_factor: u64,
    /// Hard cap on attempted IIs; `None` derives `4·MII + 64`.
    pub max_ii: Option<u32>,
}

impl CydromeScheduler {
    /// A baseline scheduler with default limits.
    pub fn new() -> Self {
        Self {
            budget_factor: 10,
            max_ii: None,
        }
    }

    /// Schedules the problem with the static-priority, always-early
    /// heuristics.
    ///
    /// # Errors
    ///
    /// Returns [`SchedFailure`] if no feasible schedule is found up to the
    /// II cap — the fate of 14 loops in Table 4.
    pub fn run(&self, problem: &SchedProblem<'_>) -> Result<Schedule, SchedFailure> {
        self.run_cached(problem, &MinDistCache::new())
    }

    /// As [`run`](Self::run), but sharing `cache` so MinDist matrices
    /// already computed for this problem (e.g. by the slack scheduler) are
    /// reused instead of recomputed.
    ///
    /// # Errors
    ///
    /// Returns [`SchedFailure`] if no feasible schedule is found up to the
    /// II cap — the fate of 14 loops in Table 4.
    pub fn run_cached(
        &self,
        problem: &SchedProblem<'_>,
        cache: &MinDistCache,
    ) -> Result<Schedule, SchedFailure> {
        self.run_cached_in(problem, cache, &mut EngineWorkspace::new())
    }

    /// As [`run_cached`](Self::run_cached), drawing every per-attempt
    /// allocation from a caller-owned [`EngineWorkspace`] (reuse is
    /// allocation-only: results are byte-identical). This is the entry
    /// point [`ModuloScheduler`](crate::ModuloScheduler) adapters use.
    ///
    /// # Errors
    ///
    /// As [`run_cached`](Self::run_cached).
    pub fn run_cached_in(
        &self,
        problem: &SchedProblem<'_>,
        cache: &MinDistCache,
        ws: &mut EngineWorkspace,
    ) -> Result<Schedule, SchedFailure> {
        let mut decisions = DecisionStats::default();
        let max_ii = self
            .max_ii
            .unwrap_or(4 * problem.mii() + 64)
            .max(problem.mii());
        let mut heuristic = CydromeHeuristic::new(problem);
        run_framework(
            problem,
            &mut heuristic,
            self.budget_factor.max(1),
            max_ii,
            crate::IiIncrement::default(),
            None,
            cache,
            &mut decisions,
            ws,
        )
    }

    /// One attempt pinned at exactly `ii` — the warm-start entry point
    /// (see [`SlackScheduler::run_at_ii_in`](crate::SlackScheduler::run_at_ii_in)).
    ///
    /// # Errors
    ///
    /// Returns [`SchedFailure`] if the single attempt at `ii` fails.
    pub fn run_at_ii_in(
        &self,
        problem: &SchedProblem<'_>,
        cache: &MinDistCache,
        ii: u32,
        ws: &mut EngineWorkspace,
    ) -> Result<Schedule, SchedFailure> {
        let mut decisions = DecisionStats::default();
        let mut heuristic = CydromeHeuristic::new(problem);
        crate::engine::run_framework_from(
            problem,
            &mut heuristic,
            self.budget_factor.max(1),
            ii,
            ii,
            crate::IiIncrement::default(),
            false,
            None,
            cache,
            &mut decisions,
            ws,
        )
    }
}

struct CydromeHeuristic {
    /// True for nodes on non-trivial recurrence circuits.
    on_recurrence: Vec<bool>,
    /// Static rank per node, smaller = scheduled sooner; frozen at the
    /// start of each II attempt.
    rank: Vec<u64>,
}

impl CydromeHeuristic {
    fn new(problem: &SchedProblem<'_>) -> Self {
        let n = problem.num_nodes();
        let mut on_recurrence = vec![false; n];
        for scc in tarjan_scc(problem.body()) {
            if scc.len() >= 2 {
                for op in scc {
                    on_recurrence[op.index()] = true;
                }
            }
        }
        Self {
            on_recurrence,
            rank: vec![0; n],
        }
    }
}

impl Heuristic for CydromeHeuristic {
    fn begin_attempt(&mut self, st: &EngineState<'_, '_>) {
        lsms_trace::add("cydrome", "attempts", 1);
        // Static priority from the *initial* slack: recurrence operations
        // first (smallest initial slack first), then the rest, Stop last.
        let n = st.problem.num_nodes();
        let stop = st.problem.stop();
        for node in 0..n {
            let slack = (st.lstart[node] - st.estart[node]).max(0) as u64;
            let group: u64 = if node == stop {
                2
            } else if self.on_recurrence[node] {
                0
            } else {
                1
            };
            // group ≫ slack ≫ index, packed into one sortable key.
            self.rank[node] = (group << 60) | (slack.min(1 << 30) << 20) | node as u64;
        }
    }

    fn choose(&mut self, st: &EngineState<'_, '_>, decisions: &mut DecisionStats) -> usize {
        decisions.selections += 1;
        // The rank embeds the node index in its low 20 bits, so every rank
        // is unique and the minimum does not depend on the (arbitrary)
        // order the indexed ready set yields unplaced nodes in.
        st.unplaced()
            .min_by_key(|&node| self.rank[node])
            .expect("choose called with work remaining")
    }

    fn direction(
        &mut self,
        _st: &EngineState<'_, '_>,
        _node: usize,
        _decisions: &mut DecisionStats,
    ) -> Direction {
        Direction::Early
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate, SlackScheduler};
    use lsms_ir::{LoopBuilder, OpKind, ValueType};
    use lsms_machine::huff_machine;

    fn chain_with_recurrence() -> lsms_ir::LoopBody {
        let mut b = LoopBuilder::new("t");
        let a = b.invariant(ValueType::Addr, "a");
        let x = b.new_value(ValueType::Float);
        let acc = b.new_value(ValueType::Float);
        let tmp = b.new_value(ValueType::Float);
        let ld = b.op(OpKind::Load, &[a], Some(x));
        let mul = b.op(OpKind::FMul, &[x, acc], Some(tmp));
        let add = b.op(OpKind::FAdd, &[tmp, acc], Some(acc));
        b.flow_dep(ld, mul, 0);
        b.flow_dep(mul, add, 0);
        b.flow_dep(add, mul, 1);
        b.flow_dep(add, add, 1);
        b.finish()
    }

    #[test]
    fn baseline_produces_valid_schedules() {
        let body = chain_with_recurrence();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let s = CydromeScheduler::new().run(&p).unwrap();
        assert_eq!(validate(&p, &s), Ok(()));
        assert!(s.ii >= p.mii());
    }

    #[test]
    fn baseline_never_beats_slack_on_these_loops() {
        let body = chain_with_recurrence();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let baseline = CydromeScheduler::new().run(&p).unwrap();
        let slack = SlackScheduler::new().run(&p).unwrap();
        assert!(slack.ii <= baseline.ii);
    }

    #[test]
    fn recurrence_ops_are_placed_first() {
        let body = chain_with_recurrence();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let mut h = CydromeHeuristic::new(&p);
        // mul (1) and add (2) are on the circuit; ld (0) is not.
        assert!(h.on_recurrence[1] && h.on_recurrence[2]);
        assert!(!h.on_recurrence[0]);
        let _ = &mut h;
    }

    #[test]
    fn straight_line_is_still_optimal_for_baseline() {
        // Without recurrences or contention the baseline also meets MII.
        let mut b = LoopBuilder::new("line");
        let a = b.invariant(ValueType::Addr, "a");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let ld = b.op(OpKind::Load, &[a], Some(x));
        let add = b.op(OpKind::FAdd, &[x, x], Some(y));
        let st = b.op(OpKind::Store, &[a, y], None);
        b.flow_dep(ld, add, 0);
        b.flow_dep(add, st, 0);
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let s = CydromeScheduler::new().run(&p).unwrap();
        assert_eq!(s.ii, p.mii());
        assert_eq!(validate(&p, &s), Ok(()));
    }
}
