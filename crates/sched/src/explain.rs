//! Human-readable schedule reports: kernel timelines, lifetime tables,
//! and the LiveVector — the views a compiler engineer reads when tuning a
//! pipeline (and the views this crate's documentation uses to explain the
//! paper's Figures 3 and 4).

use std::fmt::Write as _;

use lsms_ir::RegClass;

use crate::pressure::{lifetimes, live_vector, measure_cached, min_lifetimes};
use crate::{MinDistCache, SchedProblem, Schedule};

/// Renders the kernel as a cycle × operation timeline: one line per kernel
/// cycle, listing each operation with its stage, a textual Gantt of the
/// modulo schedule.
pub fn kernel_timeline(problem: &SchedProblem<'_>, schedule: &Schedule) -> String {
    let body = problem.body();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "kernel: II = {}, stages = {}, length = {}",
        schedule.ii,
        schedule.stages(),
        schedule.length()
    );
    for cycle in 0..schedule.ii {
        let _ = write!(out, "  cycle {cycle:>3} |");
        let mut ops: Vec<_> = body
            .ops()
            .iter()
            .filter(|op| schedule.kernel_cycle(op.id.index()) == cycle)
            .collect();
        ops.sort_by_key(|op| (schedule.stage(op.id.index()), op.id));
        for op in ops {
            let _ = write!(out, " [s{}]{}", schedule.stage(op.id.index()), op.kind);
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the per-value lifetime table (the data behind Figure 3): each
/// live value's definition cycle, length, MinLT lower bound, and how many
/// rotating registers its wrap implies.
pub fn lifetime_table(problem: &SchedProblem<'_>, schedule: &Schedule) -> String {
    lifetime_table_cached(problem, schedule, &MinDistCache::new())
}

/// As [`lifetime_table`] with a shared MinDist cache.
pub fn lifetime_table_cached(
    problem: &SchedProblem<'_>,
    schedule: &Schedule,
    cache: &MinDistCache,
) -> String {
    let body = problem.body();
    let ii = i64::from(schedule.ii);
    let lt = lifetimes(problem, schedule);
    let md = cache.get(problem, schedule.ii);
    let minlt = min_lifetimes(problem, &md);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>5} {:>8} {:>8} {:>6} {:>6}",
        "value", "def", "lifetime", "MinLT", "regs", "class"
    );
    for v in body.values() {
        let Some(def) = v.def else { continue };
        let Some(len) = lt[v.id.index()] else {
            continue;
        };
        if len <= 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>8} {:>8} {:>6} {:>6}",
            v.name,
            schedule.times[def.index()],
            len,
            minlt[v.id.index()].unwrap_or(0),
            (len + ii - 1) / ii,
            v.reg_class(),
        );
    }
    out
}

/// Renders the LiveVector (Figure 4): simultaneously live values at each
/// kernel cycle, with a bar chart.
pub fn live_vector_chart(problem: &SchedProblem<'_>, schedule: &Schedule) -> String {
    let lt = lifetimes(problem, schedule);
    let vector = live_vector(problem, schedule, &lt, RegClass::Rr);
    let mut out = String::new();
    let _ = writeln!(out, "LiveVector (RR file):");
    for (cycle, &count) in vector.iter().enumerate() {
        let _ = writeln!(
            out,
            "  cycle {cycle:>3} | {:<40} {count}",
            "#".repeat(count.min(40) as usize)
        );
    }
    out
}

/// As [`report`], prefixed with the identity of the backend that produced
/// the schedule — the driver uses this so `--emit report` names whichever
/// registered backend ran, not just the built-in slack scheduler.
pub fn report_for_backend(
    problem: &SchedProblem<'_>,
    schedule: &Schedule,
    backend: &dyn crate::ModuloScheduler,
) -> String {
    let mut out = format!(
        "backend `{}`: {}\n",
        backend.name(),
        backend.describe().summary
    );
    out.push_str(&report(problem, schedule));
    out
}

/// A one-stop textual report: bounds, timeline, lifetimes, pressure.
pub fn report(problem: &SchedProblem<'_>, schedule: &Schedule) -> String {
    // One cache spans both MinDist consumers (pressure, lifetime table).
    let cache = MinDistCache::new();
    let pressure = measure_cached(problem, schedule, &cache);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "loop `{}`: {} ops, ResMII {} RecMII {} MII {} -> II {}",
        problem.body().name(),
        problem.num_real_ops(),
        problem.res_mii(),
        problem.rec_mii(),
        problem.mii(),
        schedule.ii,
    );
    out.push_str(&kernel_timeline(problem, schedule));
    out.push('\n');
    out.push_str(&lifetime_table_cached(problem, schedule, &cache));
    out.push('\n');
    out.push_str(&live_vector_chart(problem, schedule));
    let _ = writeln!(
        out,
        "\nMaxLive {} (MinAvg {}), AvgLive {:.1}, GPRs {}, ICR {} (incl. {} stage preds)",
        pressure.rr_max_live,
        pressure.rr_min_avg,
        pressure.rr_avg_live(),
        pressure.gprs,
        pressure.icr_max_live,
        pressure.stages,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SlackScheduler;
    use lsms_ir::{LoopBuilder, OpKind, ValueType};
    use lsms_machine::huff_machine;

    fn sample() -> lsms_ir::LoopBody {
        let mut b = LoopBuilder::new("sample");
        let x = b.named_value(ValueType::Float, "x");
        let y = b.named_value(ValueType::Float, "y");
        let fx = b.op(OpKind::FAdd, &[x, y], Some(x));
        let fy = b.op(OpKind::FAdd, &[y, x], Some(y));
        b.flow_dep(fx, fx, 1);
        b.flow_dep(fy, fy, 1);
        b.flow_dep(fx, fy, 2);
        b.flow_dep(fy, fx, 2);
        b.finish()
    }

    #[test]
    fn report_contains_every_section() {
        let body = sample();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let s = SlackScheduler::new().run(&p).unwrap();
        let r = report(&p, &s);
        assert!(r.contains("kernel: II ="));
        assert!(r.contains("LiveVector"));
        assert!(r.contains("MaxLive"));
        assert!(r.contains("lifetime"));
        assert!(r.contains("sample"));
    }

    #[test]
    fn timeline_lists_each_cycle_once() {
        let body = sample();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let s = SlackScheduler::new().run(&p).unwrap();
        let t = kernel_timeline(&p, &s);
        for c in 0..s.ii {
            assert_eq!(t.matches(&format!("cycle {c:>3} |")).count(), 1);
        }
    }

    #[test]
    fn lifetime_table_shows_recurrence_values() {
        let body = sample();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let s = SlackScheduler::new().run(&p).unwrap();
        let t = lifetime_table(&p, &s);
        assert!(t.contains('x'));
        assert!(t.contains('y'));
        assert!(t.contains("RR"));
    }
}
