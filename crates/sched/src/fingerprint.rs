//! Content-addressed cache keys for schedules.
//!
//! Huff's framework is deterministic per (dependence graph, machine,
//! heuristic, II-escalation policy): rerunning a scheduler on the same
//! inputs reproduces the byte-identical schedule. That makes a schedule
//! safe to memoize under a key that captures *exactly* those inputs —
//! the alpha-invariant structure of the body
//! ([`lsms_ir::fingerprint`]), the machine description, the backend
//! name with its configured options, and the straight-line flag.
//!
//! The key is salted with [`FINGERPRINT_SALT`]; bump the salt whenever
//! a scheduling algorithm, heuristic, or escalation policy changes
//! behaviour, and every persisted cache entry from older builds becomes
//! unreachable instead of wrong.

use lsms_ir::{Fingerprint, FpHasher, LoopBody};
use lsms_machine::Machine;

use crate::IiIncrement;

/// Domain-separation salt for schedule cache keys. Versioned: bump on
/// any behavioural change to the schedulers so stale persisted entries
/// miss instead of replaying outdated results.
pub const FINGERPRINT_SALT: &str = "lsms-sched-fp/1";

/// Absorbs everything about `machine` the schedulers can observe:
/// name, functional-unit classes (name and unit count), and the full
/// opcode table (class, latency, reservation pattern) in the table's
/// stable iteration order.
pub fn write_machine(h: &mut FpHasher, machine: &Machine) {
    h.write_str(machine.name());
    h.write_u64(machine.classes().len() as u64);
    for class in machine.classes() {
        h.write_str(&class.name);
        h.write_u64(u64::from(class.count));
    }
    let mut ops = 0u64;
    let mut table = FpHasher::new("machine-table");
    for (kind, desc) in machine.op_table() {
        ops += 1;
        table.write_str(kind.mnemonic());
        table.write_u64(desc.class.index() as u64);
        table.write_u64(u64::from(desc.latency));
        table.write_u64(desc.reservation.len() as u64);
        for &r in &desc.reservation {
            table.write_u64(u64::from(r));
        }
    }
    h.write_u64(ops);
    h.write_u64(table.finish().0 as u64);
    h.write_u64((table.finish().0 >> 64) as u64);
}

/// The fingerprint of one scheduling *problem*: body structure plus
/// machine description. Alpha-renamed copies of the same loop collide.
pub fn problem_fingerprint(body: &LoopBody, machine: &Machine) -> Fingerprint {
    let mut h = FpHasher::new(FINGERPRINT_SALT);
    write_machine(&mut h, machine);
    lsms_ir::fingerprint::write_structure(&mut h, body);
    h.finish()
}

/// The full cache key for one backend run: the problem fingerprint
/// combined with the backend's registry name, its `key=value` options
/// (order-sensitive, as `configure` applies them in order), and the
/// straight-line flag.
pub fn schedule_key(
    problem: Fingerprint,
    backend: &str,
    options: &[(String, String)],
    straight_line: bool,
) -> Fingerprint {
    let mut h = FpHasher::new(FINGERPRINT_SALT);
    h.write_u64(problem.0 as u64);
    h.write_u64((problem.0 >> 64) as u64);
    h.write_str(backend);
    h.write_u64(options.len() as u64);
    for (k, v) in options {
        h.write_str(k);
        h.write_str(v);
    }
    h.write_u64(u64::from(straight_line));
    h.finish()
}

/// True if `target` is one of the IIs a cold escalation from `mii`
/// would attempt under `increment` (§4.2) before stopping at `max_ii`.
///
/// Warm starts only pin the II to values the cold run could have ended
/// on; a ledger entry outside the sequence (hand-edited, or from a
/// different increment policy) is rejected so warm and cold runs stay
/// byte-identical.
pub fn ii_reachable_by_escalation(
    mii: u32,
    max_ii: u32,
    increment: IiIncrement,
    target: u32,
) -> bool {
    if target > max_ii {
        return false;
    }
    if increment == IiIncrement::ByOne {
        return target >= mii.max(1);
    }
    let mut ii = mii.max(1);
    loop {
        if ii == target {
            return true;
        }
        if ii >= target || ii >= max_ii {
            return false;
        }
        ii = (ii + (ii * 4 / 100).max(1)).min(max_ii);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_ir::{LoopBuilder, OpKind, ValueType};
    use lsms_machine::huff_machine;

    fn tiny(name: &str, val: &str) -> LoopBody {
        let mut b = LoopBuilder::new(name);
        let a = b.invariant(ValueType::Float, val);
        let t = b.new_value(ValueType::Float);
        b.op(OpKind::FAdd, &[a, a], Some(t));
        b.finish()
    }

    #[test]
    fn alpha_equivalent_problems_share_a_key() {
        let m = huff_machine();
        let a = problem_fingerprint(&tiny("one", "a"), &m);
        let b = problem_fingerprint(&tiny("two", "zz"), &m);
        assert_eq!(a, b);
    }

    #[test]
    fn key_separates_backend_options_and_mode() {
        let m = huff_machine();
        let p = problem_fingerprint(&tiny("k", "a"), &m);
        let base = schedule_key(p, "slack", &[], false);
        assert_ne!(base, schedule_key(p, "early", &[], false));
        assert_ne!(base, schedule_key(p, "slack", &[], true));
        let opts = vec![("budget-factor".to_owned(), "3".to_owned())];
        assert_ne!(base, schedule_key(p, "slack", &opts, false));
        assert_eq!(base, schedule_key(p, "slack", &[], false));
    }

    #[test]
    fn machine_differences_separate_problems() {
        use lsms_machine::MachineBuilder;
        let body = tiny("m", "a");
        let m1 = huff_machine();
        let mut mb = MachineBuilder::new("custom");
        let fu = mb.class("ALU", 1);
        let kinds: Vec<OpKind> = m1.op_table().map(|(k, _)| k).collect();
        mb.pipelined(fu, 2, &kinds);
        let m2 = mb.finish();
        assert_ne!(
            problem_fingerprint(&body, &m1),
            problem_fingerprint(&body, &m2)
        );
    }

    #[test]
    fn escalation_sequence_membership() {
        // From MII 10, four-percent steps are 10, 11, 12, ... (4% of
        // small IIs floors to 0, so the step clamps to 1).
        assert!(ii_reachable_by_escalation(
            10,
            104,
            IiIncrement::FourPercent,
            10
        ));
        assert!(ii_reachable_by_escalation(
            10,
            104,
            IiIncrement::FourPercent,
            11
        ));
        assert!(!ii_reachable_by_escalation(
            10,
            104,
            IiIncrement::FourPercent,
            9
        ));
        assert!(!ii_reachable_by_escalation(
            10,
            104,
            IiIncrement::FourPercent,
            200
        ));
        // From 100 the step is 4: 104 is reachable, 105 is not.
        assert!(ii_reachable_by_escalation(
            100,
            200,
            IiIncrement::FourPercent,
            104
        ));
        assert!(!ii_reachable_by_escalation(
            100,
            200,
            IiIncrement::FourPercent,
            105
        ));
        // The sequence clamps at max_ii, so max_ii itself is reachable.
        assert!(ii_reachable_by_escalation(
            100,
            106,
            IiIncrement::FourPercent,
            106
        ));
        // ByOne reaches everything in range.
        assert!(ii_reachable_by_escalation(3, 10, IiIncrement::ByOne, 7));
        assert!(!ii_reachable_by_escalation(3, 10, IiIncrement::ByOne, 2));
    }
}
