//! Modulo schedulers: the bidirectional slack scheduler of Huff,
//! *Lifetime-Sensitive Modulo Scheduling* (PLDI 1993), its unidirectional
//! ablation, and a Cydrome-style baseline.
//!
//! The crate is organised around [`SchedProblem`] — a loop body paired with
//! a machine description, its arcs resolved to `(latency, ω)` labels and
//! augmented with the `Start`/`Stop` pseudo-operations of §4.1. On top of
//! the problem sit:
//!
//! * the absolute lower bounds of §3: [`res_mii`], [`rec_mii`] (computed
//!   independently by elementary-circuit enumeration and by the minimum
//!   cost-to-time-ratio method), and `MII = max(ResMII, RecMII)`;
//! * the [`MinDist`] relation — all-pairs longest paths with arc weight
//!   `latency − ω·II` — and its parametric form [`ParametricMinDist`],
//!   one envelope computation per problem serving every II of a sweep;
//! * the [slack-scheduling framework](slack) (§4) with the bidirectional
//!   lifetime heuristic (§5), and the [Cydrome baseline](cydrome) (§8);
//! * schedule-independent and schedule-dependent register-pressure measures
//!   (§3.2, §5.1): `MinLT`, `MinAvg`, the `LiveVector`, and `MaxLive`;
//! * an independent [schedule validator](validate).
//!
//! # Example
//!
//! ```
//! use lsms_ir::{LoopBuilder, OpKind, ValueType};
//! use lsms_machine::huff_machine;
//! use lsms_sched::{SchedProblem, SlackScheduler};
//!
//! let mut b = LoopBuilder::new("demo");
//! let a = b.invariant(ValueType::Addr, "a");
//! let x = b.new_value(ValueType::Float);
//! let y = b.new_value(ValueType::Float);
//! let ld = b.op(OpKind::Load, &[a], Some(x));
//! let add = b.op(OpKind::FAdd, &[x, x], Some(y));
//! let st = b.op(OpKind::Store, &[a, y], None);
//! b.flow_dep(ld, add, 0);
//! b.flow_dep(add, st, 0);
//! let body = b.finish();
//!
//! let machine = huff_machine();
//! let problem = SchedProblem::new(&body, &machine)?;
//! let schedule = SlackScheduler::new().run(&problem)?;
//! assert_eq!(schedule.ii, problem.mii());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod bounds;
pub mod cydrome;
mod engine;
pub mod explain;
pub mod fingerprint;
pub mod mindist;
pub mod pressure;
pub mod problem;
pub mod schedule;
pub mod slack;
pub mod stats;
pub mod svg;

pub use backend::{
    BackendCaps, BackendInfo, BackendRun, CydromeBackend, ModuloScheduler, SchedContext,
    SlackBackend,
};
pub use bounds::{mii, rec_mii, rec_mii_min_ratio, res_mii};
pub use cydrome::CydromeScheduler;
pub use engine::{BoundsMode, EngineWorkspace};
pub use fingerprint::{
    ii_reachable_by_escalation, problem_fingerprint, schedule_key, FINGERPRINT_SALT,
};
pub use mindist::{MinDist, MinDistCache, MinDistCacheStats, ParametricMinDist};
pub use pressure::PressureReport;
pub use problem::{Arc, ProblemError, SchedProblem};
pub use schedule::{validate, Schedule, ScheduleError};
pub use slack::{DirectionPolicy, IiIncrement, SchedFailure, SlackConfig, SlackScheduler};
pub use stats::{DecisionStats, SchedStats};
