//! The scheduling problem: a loop body bound to a machine.

use std::fmt;

use lsms_ir::{LoopBody, OpId};
use lsms_machine::{assign_units, dep_latency, Machine, OpDesc, UnitAssignment};

/// A dependence arc with its latency resolved against the target machine.
///
/// Node indices are *problem* indices: `0..n` are the body's operations (in
/// [`OpId::index`] order), `n` is `Start`, and `n + 1` is `Stop` (§4.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Arc {
    /// Source node.
    pub from: usize,
    /// Sink node.
    pub to: usize,
    /// Machine latency of the dependence.
    pub latency: i64,
    /// Iteration distance ω.
    pub omega: u32,
}

impl Arc {
    /// The arc's weight in the longest-paths formulation at a candidate II:
    /// `latency − ω·II`.
    pub fn weight(&self, ii: u32) -> i64 {
        self.latency - i64::from(self.omega) * i64::from(ii)
    }
}

/// Errors detected while building a [`SchedProblem`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProblemError {
    /// The loop body failed structural validation.
    Body(lsms_ir::BodyError),
    /// The dependence graph has a circuit whose total ω is zero — no
    /// initiation interval can satisfy it.
    ZeroOmegaCycle,
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::Body(e) => write!(f, "invalid loop body: {e}"),
            ProblemError::ZeroOmegaCycle => {
                f.write_str("dependence circuit with zero total omega (unschedulable)")
            }
        }
    }
}

impl std::error::Error for ProblemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProblemError::Body(e) => Some(e),
            ProblemError::ZeroOmegaCycle => None,
        }
    }
}

/// A loop body paired with a machine: arcs resolved to `(latency, ω)`,
/// operations bound to unit instances, `Start`/`Stop` pseudo-operations
/// added, and the §3.1 lower bounds precomputed.
#[derive(Clone, Debug)]
pub struct SchedProblem<'a> {
    body: &'a LoopBody,
    machine: &'a Machine,
    assignments: Vec<UnitAssignment>,
    arcs: Vec<Arc>,
    out: Vec<Vec<usize>>,
    inn: Vec<Vec<usize>>,
    res_mii: u32,
    rec_mii: u32,
}

impl<'a> SchedProblem<'a> {
    /// Builds the problem: validates the body, resolves arc latencies,
    /// assigns unit instances, adds `Start`/`Stop` arcs, and computes
    /// `ResMII` and `RecMII`.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::Body`] if the body is structurally invalid
    /// and [`ProblemError::ZeroOmegaCycle`] if a dependence circuit has
    /// zero total ω.
    pub fn new(body: &'a LoopBody, machine: &'a Machine) -> Result<Self, ProblemError> {
        body.validate().map_err(ProblemError::Body)?;
        let n = body.num_ops();
        let start = n;
        let stop = n + 1;
        let mut arcs = Vec::with_capacity(body.deps().len() + 2 * n);
        for dep in body.deps() {
            arcs.push(Arc {
                from: dep.from.index(),
                to: dep.to.index(),
                latency: dep_latency(machine, body, dep),
                omega: dep.omega,
            });
        }
        for op in body.ops() {
            // Start precedes everything at distance 0; Stop succeeds
            // everything by the operation's own latency, so that
            // Estart(Stop) is the schedule's makespan.
            arcs.push(Arc {
                from: start,
                to: op.id.index(),
                latency: 0,
                omega: 0,
            });
            arcs.push(Arc {
                from: op.id.index(),
                to: stop,
                latency: i64::from(machine.latency(op.kind)),
                omega: 0,
            });
        }
        if n == 0 {
            arcs.push(Arc {
                from: start,
                to: stop,
                latency: 0,
                omega: 0,
            });
        }
        let total = n + 2;
        let mut out = vec![Vec::new(); total];
        let mut inn = vec![Vec::new(); total];
        for (i, arc) in arcs.iter().enumerate() {
            out[arc.from].push(i);
            inn[arc.to].push(i);
        }
        let mut problem = Self {
            body,
            machine,
            assignments: assign_units(machine, body),
            arcs,
            out,
            inn,
            res_mii: lsms_machine::res_mii(machine, body),
            rec_mii: 0,
        };
        problem.rec_mii = crate::bounds::rec_mii(&problem).ok_or(ProblemError::ZeroOmegaCycle)?;
        Ok(problem)
    }

    /// The underlying loop body.
    pub fn body(&self) -> &'a LoopBody {
        self.body
    }

    /// The target machine.
    pub fn machine(&self) -> &'a Machine {
        self.machine
    }

    /// Number of real (non-pseudo) operations.
    pub fn num_real_ops(&self) -> usize {
        self.body.num_ops()
    }

    /// Total node count including `Start` and `Stop`.
    pub fn num_nodes(&self) -> usize {
        self.body.num_ops() + 2
    }

    /// The `Start` pseudo-operation's node index (fixed at cycle 0).
    pub fn start(&self) -> usize {
        self.body.num_ops()
    }

    /// The `Stop` pseudo-operation's node index.
    pub fn stop(&self) -> usize {
        self.body.num_ops() + 1
    }

    /// True for the `Start`/`Stop` pseudo nodes, which consume no machine
    /// resources.
    pub fn is_pseudo(&self, node: usize) -> bool {
        node >= self.body.num_ops()
    }

    /// All arcs, including the `Start`/`Stop` arcs.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Arc indices leaving `node`.
    pub fn arcs_from(&self, node: usize) -> impl Iterator<Item = &Arc> + '_ {
        self.out[node].iter().map(|&i| &self.arcs[i])
    }

    /// Arc indices entering `node`.
    pub fn arcs_to(&self, node: usize) -> impl Iterator<Item = &Arc> + '_ {
        self.inn[node].iter().map(|&i| &self.arcs[i])
    }

    /// The unit instance the operation at problem index `node` was bound
    /// to before scheduling.
    ///
    /// # Panics
    ///
    /// Panics for pseudo nodes, which are never bound to units.
    pub fn assignment(&self, node: usize) -> UnitAssignment {
        assert!(!self.is_pseudo(node), "pseudo nodes use no units");
        self.assignments[node]
    }

    /// The machine description of the operation at problem index `node`.
    ///
    /// # Panics
    ///
    /// Panics for pseudo nodes.
    pub fn desc(&self, node: usize) -> &OpDesc {
        assert!(!self.is_pseudo(node), "pseudo nodes use no units");
        self.machine.desc(self.body.ops()[node].kind)
    }

    /// The resource-contention bound ResMII (§3.1).
    pub fn res_mii(&self) -> u32 {
        self.res_mii
    }

    /// The recurrence-circuit bound RecMII (§3.1).
    pub fn rec_mii(&self) -> u32 {
        self.rec_mii
    }

    /// `MII = max(ResMII, RecMII)`: the absolute lower bound on II.
    pub fn mii(&self) -> u32 {
        self.res_mii.max(self.rec_mii)
    }

    /// The problem index of the loop's `brtop`, if the body has one. The
    /// slack framework never ejects it (§4.4).
    pub fn brtop(&self) -> Option<usize> {
        self.body.brtop().map(OpId::index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_ir::{LoopBuilder, OpKind, ValueType};
    use lsms_machine::huff_machine;

    #[test]
    fn start_stop_arcs_cover_every_op() {
        let mut b = LoopBuilder::new("t");
        let a = b.invariant(ValueType::Addr, "a");
        let x = b.new_value(ValueType::Float);
        b.op(OpKind::Load, &[a], Some(x));
        b.op(OpKind::Store, &[a, x], None);
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(p.num_nodes(), 4);
        // Start reaches both ops; both ops reach Stop.
        assert_eq!(p.arcs_from(p.start()).count(), 2);
        assert_eq!(p.arcs_to(p.stop()).count(), 2);
        // Load -> Stop carries the load latency.
        let load_to_stop = p
            .arcs_to(p.stop())
            .find(|arc| arc.from == 0)
            .expect("missing load->stop arc");
        assert_eq!(load_to_stop.latency, 13);
    }

    #[test]
    fn zero_omega_cycle_is_rejected() {
        let mut b = LoopBuilder::new("bad");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let o1 = b.op(OpKind::FAdd, &[y, y], Some(x));
        let o2 = b.op(OpKind::FMul, &[x, x], Some(y));
        b.flow_dep(o1, o2, 0);
        b.flow_dep(o2, o1, 0);
        let body = b.finish();
        let m = huff_machine();
        assert_eq!(
            SchedProblem::new(&body, &m).unwrap_err(),
            ProblemError::ZeroOmegaCycle
        );
    }

    #[test]
    fn arc_weight_subtracts_omega_times_ii() {
        let arc = Arc {
            from: 0,
            to: 1,
            latency: 13,
            omega: 2,
        };
        assert_eq!(arc.weight(5), 3);
        assert_eq!(arc.weight(7), -1);
    }

    #[test]
    fn empty_body_is_schedulable() {
        let body = LoopBuilder::new("empty").finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(p.mii(), 1);
        assert_eq!(p.num_real_ops(), 0);
    }

    #[test]
    fn mii_is_max_of_both_bounds() {
        // A single fdiv: ResMII = 17 dominates.
        let mut b = LoopBuilder::new("d");
        let f = b.invariant(ValueType::Float, "f");
        let r = b.new_value(ValueType::Float);
        b.op(OpKind::FDiv, &[f, f], Some(r));
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(p.res_mii(), 17);
        assert_eq!(p.rec_mii(), 1);
        assert_eq!(p.mii(), 17);
    }
}
