//! The operation-driven scheduling framework with limited backtracking
//! (§4.2–§4.4), shared by the slack scheduler and the Cydrome baseline.
//!
//! The framework owns the six-step central loop:
//!
//! 1. choose an operation (delegated to a [`Heuristic`]);
//! 2. search for an issue cycle within its Estart/Lstart bounds, scanning
//!    in the direction the heuristic picks;
//! 3. if no conflict-free cycle exists, force the operation in and eject
//!    whatever conflicts (never `brtop`);
//! 4. place it and update the modulo resource table;
//! 5. update the Estart/Lstart bounds of the unplaced operations;
//! 6. if the iteration budget is exhausted, restart at a larger II.

use lsms_ir::OpId;
use lsms_machine::{critical_classes, Mrt, UnitAssignment};

use std::sync::Arc;

use crate::mindist::NO_PATH;
use crate::{DecisionStats, MinDist, MinDistCache, SchedProblem, SchedStats, Schedule};

/// Which end of the `[Estart, Lstart]` window to scan from (§5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Scan from Estart upward: place as early as possible.
    Early,
    /// Scan from Lstart downward: place as late as possible.
    Late,
}

/// How the engine maintains the Estart/Lstart bounds and sweeps for
/// dependence violations after a forced placement.
///
/// The two implementations are *bit-identical in outcome* — same bounds,
/// same ejection sets, same schedules — and differ only in cost: sparse
/// iterates the [`Reachability`](crate::mindist::Reachability) lists of
/// non-`NO_PATH` cells, the dense reference probes whole matrix rows.
/// The dense path is retained as a test oracle and for the dense-vs-sparse
/// microbenchmark; production runs use the default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BoundsMode {
    /// Reachability-indexed propagation (the production path).
    #[default]
    Sparse,
    /// The retained dense reference implementation.
    DenseReference,
    /// Run sparse on the live state *and* dense on a shadow copy after
    /// every bounds routine, panicking on any divergence. Test-only by
    /// construction (it is the slowest of the three).
    CrossCheck,
}

/// A scheduler personality plugged into the framework: how to pick the
/// next operation and which direction to scan.
pub(crate) trait Heuristic {
    /// Called at the start of each II attempt, before any placement.
    fn begin_attempt(&mut self, st: &EngineState<'_, '_>);

    /// Picks an unplaced node (a real operation or `Stop`).
    fn choose(&mut self, st: &EngineState<'_, '_>, decisions: &mut DecisionStats) -> usize;

    /// Picks the scan direction for the chosen node.
    fn direction(
        &mut self,
        st: &EngineState<'_, '_>,
        node: usize,
        decisions: &mut DecisionStats,
    ) -> Direction;
}

/// Recycled allocations carried across II attempts of one escalation run
/// (the warm start): every `Vec` and the modulo resource table survive a
/// failed attempt and are re-initialized in place for the next II.
///
/// Reuse is *allocation-only* by design. All contents — bounds, unit
/// assignments, placement history — are recomputed from scratch each
/// attempt, so a warm-started run produces schedules byte-identical to a
/// cold-started one; what escalation no longer pays is the dozen fresh
/// allocations per attempt (the MinDist matrix itself is the
/// [`MinDistCache`]'s two-tier job).
///
/// The workspace is public (with opaque contents) so that callers outside
/// this crate — notably [`ModuloScheduler`](crate::ModuloScheduler)
/// implementations and the pipeline's backend registry — can own one and
/// thread it through repeated scheduler runs.
#[derive(Debug, Default)]
pub struct EngineWorkspace {
    time: Vec<Option<i64>>,
    estart: Vec<i64>,
    lstart: Vec<i64>,
    last_place: Vec<Option<i64>>,
    critical: Vec<bool>,
    minlt: Vec<Option<i64>>,
    assignments: Vec<UnitAssignment>,
    unplaced: Vec<bool>,
    /// The indexed ready set: the unplaced nodes, dense.
    ready: Vec<u32>,
    /// Position of each node in `ready`, or [`PLACED`].
    ready_pos: Vec<u32>,
    conflict_buf: Vec<OpId>,
    /// Scratch for the forcing path's dependence-violation sweep.
    eject_buf: Vec<usize>,
    /// Shadow bound buffers for [`BoundsMode::CrossCheck`].
    check_estart: Vec<i64>,
    check_lstart: Vec<i64>,
    /// Scratch for the per-attempt unit-assignment ordering.
    order: Vec<usize>,
    /// Scratch for the per-class round-robin cursors.
    next_instance: Vec<u32>,
    mrt: Option<Mrt>,
    bounds_mode: BoundsMode,
}

impl EngineWorkspace {
    /// An empty workspace; allocations grow on first use and are recycled
    /// by every subsequent run that borrows it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the bounds-maintenance implementation for every run drawing
    /// from this workspace. The default ([`BoundsMode::Sparse`]) is the
    /// production path; the other modes exist for equivalence tests and
    /// the dense-vs-sparse microbenchmark — all three produce
    /// byte-identical schedules.
    pub fn set_bounds_mode(&mut self, mode: BoundsMode) {
        self.bounds_mode = mode;
    }

    /// The bounds-maintenance mode runs from this workspace use.
    pub fn bounds_mode(&self) -> BoundsMode {
        self.bounds_mode
    }
}

/// `ready_pos` sentinel for a node not in the ready set.
const PLACED: u32 = u32::MAX;

/// Mutable scheduling state for one II attempt, visible to heuristics.
pub(crate) struct EngineState<'p, 'a> {
    pub problem: &'p SchedProblem<'a>,
    pub ii: u32,
    pub md: Arc<MinDist>,
    /// Issue time per node (`None` = unplaced). `Start` is fixed at 0.
    pub time: Vec<Option<i64>>,
    /// Earliest start bound per node; meaningful only while unplaced.
    pub estart: Vec<i64>,
    /// Latest start bound per node; meaningful only while unplaced.
    pub lstart: Vec<i64>,
    /// The controlled `Lstart(Stop)` (§4.2).
    pub lstart_stop: i64,
    /// Last cycle each node was placed at, for the §4.4 forcing rule.
    pub last_place: Vec<Option<i64>>,
    /// Per-node: assigned to a critical resource class at this II (§4.3)?
    pub critical: Vec<bool>,
    /// `MinLT(v)` per value id at this II (§5.1); `None` when the value
    /// has no register flow uses.
    pub minlt: Vec<Option<i64>>,
    /// True when `ResMII > 1` — enables the extra-slack provision and the
    /// critical-op slack halving.
    pub contended: bool,
    /// Scheduling a basic block rather than a pipelined loop (§8).
    straight_line: bool,
    /// Per-attempt functional-unit instance binding: round-robin within
    /// each class in (Estart mod II, Estart) order, so operations likely
    /// to contend for the same kernel cycle land on different instances.
    assignments: Vec<UnitAssignment>,
    mrt: Mrt,
    /// O(1) unplaced-membership test, kept in lockstep with the ready set.
    unplaced: Vec<bool>,
    unplaced_count: usize,
    /// The indexed ready set: exactly the unplaced nodes, in arbitrary
    /// order (swap-remove on place, push on eject). `choose` iterates this
    /// instead of filtering an `n`-bool scan; heuristic selection keys are
    /// total (node index as the final component), so the permuted order
    /// cannot change which node wins.
    ready: Vec<u32>,
    /// Position of each node in `ready`, or [`PLACED`].
    ready_pos: Vec<u32>,
    /// Bounds-maintenance implementation (see [`BoundsMode`]).
    bounds_mode: BoundsMode,
    /// MinDist cells read while maintaining bounds and sweeping for
    /// dependence violations this attempt (flushed into
    /// [`SchedStats::bounds_cells_touched`]).
    cells_touched: u64,
    /// Scratch list reused by the forcing path's conflict queries so the
    /// central loop stays allocation-free after setup.
    conflict_buf: Vec<OpId>,
    /// Scratch for the forcing path's dependence-violation sweep.
    eject_buf: Vec<usize>,
    /// Shadow bound buffers for [`BoundsMode::CrossCheck`].
    check_estart: Vec<i64>,
    check_lstart: Vec<i64>,
}

impl<'p, 'a> EngineState<'p, 'a> {
    /// Cold-start construction (used by unit tests): a throwaway
    /// workspace, so every vector is freshly allocated.
    #[cfg(test)]
    fn new(
        problem: &'p SchedProblem<'a>,
        ii: u32,
        straight_line: bool,
        cache: &MinDistCache,
    ) -> Option<Self> {
        Self::new_in(
            problem,
            ii,
            straight_line,
            cache,
            &mut EngineWorkspace::default(),
        )
    }

    /// Builds the state for one II attempt, drawing every allocation from
    /// `ws` (see [`EngineWorkspace`]: contents are recomputed, only the
    /// capacity is reused).
    fn new_in(
        problem: &'p SchedProblem<'a>,
        ii: u32,
        straight_line: bool,
        cache: &MinDistCache,
        ws: &mut EngineWorkspace,
    ) -> Option<Self> {
        let md = cache.get(problem, ii);
        if !md.is_feasible() {
            return None;
        }
        let n = problem.num_nodes();
        let start = problem.start();
        let stop = problem.stop();
        let body = problem.body();
        let machine = problem.machine();
        let contended = problem.res_mii() > 1;

        let mut time = std::mem::take(&mut ws.time);
        time.clear();
        time.resize(n, None);
        time[start] = Some(0);

        let mut estart = std::mem::take(&mut ws.estart);
        estart.clear();
        estart.extend((0..n).map(|x| md.get(start, x).max(0)));
        // §4.2: with no resource contention the loop can always meet its
        // critical path; otherwise provide extra slack by rounding
        // Lstart(Stop) up to a multiple of II. In straight-line mode the
        // "II" is a never-wrapping horizon, so the deadline is instead the
        // larger of the critical path and the resource bound on makespan,
        // plus a little slack.
        let lstart_stop = if straight_line {
            let floor = estart[stop].max(i64::from(problem.res_mii()));
            floor + floor / 8 + 2
        } else if contended {
            round_up(estart[stop], i64::from(ii))
        } else {
            estart[stop]
        };
        let mut lstart = std::mem::take(&mut ws.lstart);
        lstart.clear();
        lstart.extend((0..n).map(|x| lstart_stop - md.get(x, stop)));

        let class_critical = critical_classes(machine, body, ii);
        let mut critical = std::mem::take(&mut ws.critical);
        critical.clear();
        critical.extend((0..n).map(|x| {
            x < problem.num_real_ops()
                && class_critical[machine.desc(body.ops()[x].kind).class.index()]
        }));

        // MinLT(v) = max over flow deps (d -> u, omega) of omega*II +
        // MinDist(d, u) (§5.1).
        let mut minlt = std::mem::take(&mut ws.minlt);
        crate::pressure::min_lifetimes_into(problem, &md, &mut minlt);

        // Bind operations to unit instances for this attempt. Estart mod
        // II approximates the kernel cycle an operation will want, so
        // spreading congruent operations across instances avoids
        // avoidable modulo collisions on tight recurrence circuits.
        let n_real = problem.num_real_ops();
        let mut order = std::mem::take(&mut ws.order);
        order.clear();
        order.extend(0..n_real);
        order.sort_by_key(|&x| (estart[x].rem_euclid(i64::from(ii)), estart[x], x));
        let mut next = std::mem::take(&mut ws.next_instance);
        next.clear();
        next.resize(machine.classes().len(), 0);
        let mut assignments = std::mem::take(&mut ws.assignments);
        assignments.clear();
        assignments.resize(n_real, UnitAssignment::default());
        for &x in &order {
            let class = machine.desc(body.ops()[x].kind).class;
            let count = machine.classes()[class.index()].count;
            assignments[x] = UnitAssignment {
                class,
                instance: next[class.index()] % count,
            };
            next[class.index()] += 1;
        }
        ws.order = order;
        ws.next_instance = next;

        let mrt = match ws.mrt.take() {
            Some(mut mrt) => {
                mrt.reset(machine, ii);
                mrt
            }
            None => Mrt::new(machine, ii),
        };

        let mut last_place = std::mem::take(&mut ws.last_place);
        last_place.clear();
        last_place.resize(n, None);
        let mut unplaced = std::mem::take(&mut ws.unplaced);
        unplaced.clear();
        unplaced.resize(n, true);
        unplaced[start] = false;
        let unplaced_count = n - 1;
        // The ready set starts in ascending node order (matching the old
        // bool-scan); later swap-removes permute it freely.
        let mut ready = std::mem::take(&mut ws.ready);
        ready.clear();
        let mut ready_pos = std::mem::take(&mut ws.ready_pos);
        ready_pos.clear();
        ready_pos.resize(n, PLACED);
        for (x, pos) in ready_pos.iter_mut().enumerate() {
            if x != start {
                *pos = ready.len() as u32;
                ready.push(x as u32);
            }
        }
        let mut conflict_buf = std::mem::take(&mut ws.conflict_buf);
        conflict_buf.clear();
        let mut eject_buf = std::mem::take(&mut ws.eject_buf);
        eject_buf.clear();
        Some(Self {
            problem,
            ii,
            md,
            time,
            estart,
            lstart,
            lstart_stop,
            last_place,
            critical,
            minlt,
            contended,
            straight_line,
            assignments,
            mrt,
            unplaced,
            unplaced_count,
            ready,
            ready_pos,
            bounds_mode: ws.bounds_mode,
            cells_touched: 0,
            conflict_buf,
            eject_buf,
            check_estart: std::mem::take(&mut ws.check_estart),
            check_lstart: std::mem::take(&mut ws.check_lstart),
        })
    }

    /// Returns every allocation to `ws` for the next attempt to reuse.
    fn recycle(self, ws: &mut EngineWorkspace) {
        ws.time = self.time;
        ws.estart = self.estart;
        ws.lstart = self.lstart;
        ws.last_place = self.last_place;
        ws.critical = self.critical;
        ws.minlt = self.minlt;
        ws.assignments = self.assignments;
        ws.unplaced = self.unplaced;
        ws.ready = self.ready;
        ws.ready_pos = self.ready_pos;
        ws.conflict_buf = self.conflict_buf;
        ws.eject_buf = self.eject_buf;
        ws.check_estart = self.check_estart;
        ws.check_lstart = self.check_lstart;
        ws.mrt = Some(self.mrt);
    }

    /// Iterates over the indices of unplaced nodes, driven by the indexed
    /// ready set — O(unplaced), not O(n).
    ///
    /// The order is *arbitrary* (swap-removes permute the set), which is
    /// safe because every heuristic selection key is total: the node index
    /// is its final tie-break component, so the minimum is order-invariant.
    pub fn unplaced(&self) -> impl Iterator<Item = usize> + '_ {
        self.ready.iter().map(|&x| x as usize)
    }

    /// True if the node is currently placed (Start always is).
    pub fn is_placed(&self, node: usize) -> bool {
        self.time[node].is_some()
    }

    /// The current slack of an unplaced node: `Lstart − Estart`, possibly
    /// negative when constraints have crossed.
    pub fn slack(&self, node: usize) -> i64 {
        self.lstart[node] - self.estart[node]
    }

    /// The §4.3 dynamic priority: slack, halved for critical operations
    /// (only under resource contention), halved again for divider users.
    pub fn dynamic_priority(&self, node: usize) -> i64 {
        let slack = self.slack(node);
        if slack <= 0 {
            return slack;
        }
        let mut priority = slack;
        if self.contended && self.critical[node] {
            priority /= 2;
        }
        if node < self.problem.num_real_ops() && self.problem.body().ops()[node].kind.uses_divider()
        {
            priority /= 2;
        }
        priority
    }

    /// Effective earliest start: placement time if placed, else the bound.
    pub fn effective_estart(&self, node: usize) -> i64 {
        self.time[node].unwrap_or(self.estart[node])
    }

    fn fits(&self, node: usize, t: i64) -> bool {
        if self.problem.is_pseudo(node) {
            return true;
        }
        self.mrt.fits(
            OpId::new(node),
            self.problem.desc(node),
            self.assignments[node].instance,
            t,
        )
    }

    fn place(&mut self, node: usize, t: i64) {
        debug_assert!(self.unplaced[node]);
        if !self.problem.is_pseudo(node) {
            self.mrt.place(
                OpId::new(node),
                self.problem.desc(node),
                self.assignments[node].instance,
                t,
            );
        }
        self.time[node] = Some(t);
        self.last_place[node] = Some(t);
        self.unplaced[node] = false;
        self.unplaced_count -= 1;
        // Swap-remove from the ready set, patching the moved node's index.
        let pos = self.ready_pos[node] as usize;
        self.ready.swap_remove(pos);
        if let Some(&moved) = self.ready.get(pos) {
            self.ready_pos[moved as usize] = pos as u32;
        }
        self.ready_pos[node] = PLACED;
    }

    fn eject(&mut self, node: usize) {
        let t = self.time[node].expect("ejecting an unplaced node");
        if !self.problem.is_pseudo(node) {
            self.mrt.remove(
                OpId::new(node),
                self.problem.desc(node),
                self.assignments[node].instance,
                t,
            );
        }
        self.time[node] = None;
        self.unplaced[node] = true;
        self.unplaced_count += 1;
        self.ready_pos[node] = self.ready.len() as u32;
        self.ready.push(node as u32);
    }

    /// §4.1 incremental update after placing `node` at `t`: tighten the
    /// bounds of every unplaced node.
    fn tighten_bounds_after(&mut self, node: usize, t: i64) {
        match self.bounds_mode {
            BoundsMode::Sparse => self.sparse_tighten_after(node, t),
            BoundsMode::DenseReference => {
                let (mut estart, mut lstart) = self.take_bounds();
                self.cells_touched += self.dense_tighten_after(node, t, &mut estart, &mut lstart);
                self.put_bounds(estart, lstart);
            }
            BoundsMode::CrossCheck => {
                let (mut estart, mut lstart) = self.shadow_bounds();
                self.sparse_tighten_after(node, t);
                self.dense_tighten_after(node, t, &mut estart, &mut lstart);
                self.assert_shadow_matches("tighten_bounds_after", estart, lstart);
            }
        }
        self.maybe_grow_lstart_stop();
    }

    /// Sparse §4.1 tightening: only the nodes sharing a path with `node`
    /// can have their bounds moved by its placement, and the reachability
    /// lists carry the distances, so the whole update reads exactly the
    /// reachable cells.
    fn sparse_tighten_after(&mut self, node: usize, t: i64) {
        let md = Arc::clone(&self.md);
        let reach = md.reach();
        for &(u, fwd) in reach.succs(node) {
            let u = u as usize;
            if self.unplaced[u] {
                self.estart[u] = self.estart[u].max(t + fwd);
            }
        }
        for &(u, back) in reach.preds(node) {
            let u = u as usize;
            if self.unplaced[u] {
                self.lstart[u] = self.lstart[u].min(t - back);
            }
        }
        self.cells_touched += (reach.succs(node).len() + reach.preds(node).len()) as u64;
    }

    /// Dense §4.1 tightening (the reference implementation): probe both
    /// cells of every unplaced node. Returns cells read.
    fn dense_tighten_after(
        &self,
        node: usize,
        t: i64,
        estart: &mut [i64],
        lstart: &mut [i64],
    ) -> u64 {
        let n = self.problem.num_nodes();
        let mut touched = 0u64;
        for u in 0..n {
            if !self.unplaced[u] {
                continue;
            }
            touched += 2;
            let fwd = self.md.get(node, u);
            if fwd != NO_PATH {
                estart[u] = estart[u].max(t + fwd);
            }
            let back = self.md.get(u, node);
            if back != NO_PATH {
                lstart[u] = lstart[u].min(t - back);
            }
        }
        touched
    }

    /// Full recomputation of the bounds of all unplaced nodes from the
    /// placed set, used after ejections (§4.4): the from-scratch Estart
    /// refresh, the shared Lstart refresh, then the §4.2 deadline check.
    fn recompute_bounds(&mut self) {
        match self.bounds_mode {
            BoundsMode::Sparse => self.sparse_refresh_estarts(),
            BoundsMode::DenseReference => {
                let (mut estart, lstart) = self.take_bounds();
                self.cells_touched += self.dense_refresh_estarts(&mut estart);
                self.put_bounds(estart, lstart);
            }
            BoundsMode::CrossCheck => {
                let (mut estart, lstart) = self.shadow_bounds();
                self.sparse_refresh_estarts();
                self.dense_refresh_estarts(&mut estart);
                self.assert_shadow_matches("recompute_bounds/estart", estart, lstart);
            }
        }
        self.refresh_lstarts();
        self.maybe_grow_lstart_stop();
    }

    /// From-scratch Estart for every unplaced node: `MinDist(Start, u)`
    /// floored at 0, raised by every placed node that reaches `u`.
    fn sparse_refresh_estarts(&mut self) {
        let md = Arc::clone(&self.md);
        let start = self.problem.start();
        for i in 0..self.ready.len() {
            let u = self.ready[i] as usize;
            self.estart[u] = md.get(start, u).max(0);
        }
        self.cells_touched += self.ready.len() as u64;
        let reach = md.reach();
        let n = self.problem.num_nodes();
        for z in 0..n {
            let Some(t) = self.time[z] else { continue };
            for &(u, fwd) in reach.succs(z) {
                let u = u as usize;
                if self.unplaced[u] {
                    self.estart[u] = self.estart[u].max(t + fwd);
                }
            }
            self.cells_touched += reach.succs(z).len() as u64;
        }
    }

    /// Dense from-scratch Estart refresh (reference). Returns cells read.
    fn dense_refresh_estarts(&self, estart: &mut [i64]) -> u64 {
        let n = self.problem.num_nodes();
        let start = self.problem.start();
        let mut touched = 0u64;
        for (u, slot) in estart.iter_mut().enumerate() {
            if !self.unplaced[u] {
                continue;
            }
            let mut e = self.md.get(start, u).max(0);
            touched += 1;
            for z in 0..n {
                let Some(t) = self.time[z] else { continue };
                touched += 1;
                let fwd = self.md.get(z, u);
                if fwd != NO_PATH {
                    e = e.max(t + fwd);
                }
            }
            *slot = e;
        }
        touched
    }

    /// From-scratch Lstart refresh for every unplaced node — the single
    /// definition shared by [`recompute_bounds`](Self::recompute_bounds)
    /// and [`maybe_grow_lstart_stop`](Self::maybe_grow_lstart_stop)
    /// (which used to carry duplicate copies of this loop):
    /// `Lstart(u) = min(Lstart(Stop) − MinDist(u, Stop),
    /// min over placed z of t_z − MinDist(u, z))`.
    fn refresh_lstarts(&mut self) {
        match self.bounds_mode {
            BoundsMode::Sparse => self.sparse_refresh_lstarts(),
            BoundsMode::DenseReference => {
                let (estart, mut lstart) = self.take_bounds();
                self.cells_touched += self.dense_refresh_lstarts(&mut lstart);
                self.put_bounds(estart, lstart);
            }
            BoundsMode::CrossCheck => {
                let (estart, mut lstart) = self.shadow_bounds();
                self.sparse_refresh_lstarts();
                self.dense_refresh_lstarts(&mut lstart);
                self.assert_shadow_matches("refresh_lstarts", estart, lstart);
            }
        }
    }

    fn sparse_refresh_lstarts(&mut self) {
        let md = Arc::clone(&self.md);
        let stop = self.problem.stop();
        for i in 0..self.ready.len() {
            let u = self.ready[i] as usize;
            self.lstart[u] = self.lstart_stop - md.get(u, stop);
        }
        self.cells_touched += self.ready.len() as u64;
        let reach = md.reach();
        let n = self.problem.num_nodes();
        for z in 0..n {
            let Some(t) = self.time[z] else { continue };
            for &(u, back) in reach.preds(z) {
                let u = u as usize;
                if self.unplaced[u] {
                    self.lstart[u] = self.lstart[u].min(t - back);
                }
            }
            self.cells_touched += reach.preds(z).len() as u64;
        }
    }

    /// Dense from-scratch Lstart refresh (reference). Returns cells read.
    fn dense_refresh_lstarts(&self, lstart: &mut [i64]) -> u64 {
        let n = self.problem.num_nodes();
        let stop = self.problem.stop();
        let mut touched = 0u64;
        for (u, slot) in lstart.iter_mut().enumerate() {
            if !self.unplaced[u] {
                continue;
            }
            let mut l = self.lstart_stop - self.md.get(u, stop);
            touched += 1;
            for z in 0..n {
                let Some(t) = self.time[z] else { continue };
                touched += 1;
                let back = self.md.get(u, z);
                if back != NO_PATH {
                    l = l.min(t - back);
                }
            }
            *slot = l;
        }
        touched
    }

    /// §4.2: `Lstart(Stop)` is reset only when `Estart(Stop)` is pushed out
    /// beyond it (being pushed beyond Stop's *placement* is handled by
    /// ejecting Stop during forcing). Loosening `Lstart(Stop)` can only
    /// loosen other Lstarts; refresh them all through the shared helper.
    fn maybe_grow_lstart_stop(&mut self) {
        let stop = self.problem.stop();
        if self.unplaced[stop] && self.estart[stop] > self.lstart_stop {
            self.lstart_stop = if self.straight_line {
                // Keep the same proportional slack the attempt started
                // with; a bare critical-path deadline leaves zero slack
                // after every ejection and the attempt thrashes.
                let floor = self.estart[stop].max(i64::from(self.problem.res_mii()));
                floor + floor / 8 + 2
            } else if !self.contended {
                self.estart[stop]
            } else {
                round_up(self.estart[stop], i64::from(self.ii))
            };
            self.refresh_lstarts();
        }
    }

    /// Moves the live bound vectors out for a dense-reference update (the
    /// dense routines take `&self` plus explicit buffers, sidestepping the
    /// aliasing between `self.md` and `self.estart`).
    fn take_bounds(&mut self) -> (Vec<i64>, Vec<i64>) {
        (
            std::mem::take(&mut self.estart),
            std::mem::take(&mut self.lstart),
        )
    }

    fn put_bounds(&mut self, estart: Vec<i64>, lstart: Vec<i64>) {
        self.estart = estart;
        self.lstart = lstart;
    }

    /// Copies the pre-update bounds into the recycled shadow buffers, for
    /// the dense reference to update in parallel with the sparse path.
    fn shadow_bounds(&mut self) -> (Vec<i64>, Vec<i64>) {
        let mut estart = std::mem::take(&mut self.check_estart);
        estart.clear();
        estart.extend_from_slice(&self.estart);
        let mut lstart = std::mem::take(&mut self.check_lstart);
        lstart.clear();
        lstart.extend_from_slice(&self.lstart);
        (estart, lstart)
    }

    /// Cross-check assertion: after a bounds routine, the sparse result on
    /// the live state must equal the dense result on the shadow copy,
    /// entry for entry.
    fn assert_shadow_matches(&mut self, routine: &str, estart: Vec<i64>, lstart: Vec<i64>) {
        assert_eq!(self.estart, estart, "{routine}: Estart diverged");
        assert_eq!(self.lstart, lstart, "{routine}: Lstart diverged");
        self.check_estart = estart;
        self.check_lstart = lstart;
    }

    /// Collects (into `self.eject_buf`, ascending and deduplicated) every
    /// placed node whose dependence constraints a forced placement of `x`
    /// at `t` violates. `MinDist` reflects the transitive closure, so this
    /// reaches beyond immediate successors (§4.4). Sparse mode walks `x`'s
    /// reachability lists; the dense reference scans every node; both
    /// produce the same ascending victim order, so ejection traces are
    /// identical across modes.
    fn collect_dependence_victims(&mut self, x: usize, t: i64) {
        let start = self.problem.start();
        let mut victims = std::mem::take(&mut self.eject_buf);
        victims.clear();
        let md = Arc::clone(&self.md);
        match self.bounds_mode {
            BoundsMode::Sparse => {
                self.sparse_victims(&md, x, t, &mut victims);
            }
            BoundsMode::DenseReference => {
                self.cells_touched += self.dense_victims(&md, x, t, start, &mut victims);
            }
            BoundsMode::CrossCheck => {
                self.sparse_victims(&md, x, t, &mut victims);
                let mut dense = Vec::new();
                self.dense_victims(&md, x, t, start, &mut dense);
                assert_eq!(victims, dense, "dependence-violation sweep diverged");
            }
        }
        self.eject_buf = victims;
    }

    fn sparse_victims(&mut self, md: &MinDist, x: usize, t: i64, victims: &mut Vec<usize>) {
        let start = self.problem.start();
        let reach = md.reach();
        for &(z, fwd) in reach.succs(x) {
            let z = z as usize;
            if z == start {
                continue;
            }
            if let Some(tz) = self.time[z] {
                if t + fwd > tz {
                    victims.push(z);
                }
            }
        }
        for &(z, back) in reach.preds(x) {
            let z = z as usize;
            if z == start {
                continue;
            }
            if let Some(tz) = self.time[z] {
                if tz + back > t {
                    victims.push(z);
                }
            }
        }
        self.cells_touched += (reach.succs(x).len() + reach.preds(x).len()) as u64;
        // A node violated in both directions appears in both lists; the
        // dense scan visits each node once in ascending order — match it.
        victims.sort_unstable();
        victims.dedup();
    }

    /// Dense violation sweep (reference). Returns cells read.
    fn dense_victims(
        &self,
        md: &MinDist,
        x: usize,
        t: i64,
        start: usize,
        victims: &mut Vec<usize>,
    ) -> u64 {
        let n = self.problem.num_nodes();
        let mut touched = 0u64;
        for z in 0..n {
            if z == x || z == start {
                continue;
            }
            let Some(tz) = self.time[z] else { continue };
            touched += 2;
            let fwd = md.get(x, z);
            let back = md.get(z, x);
            if (fwd != NO_PATH && t + fwd > tz) || (back != NO_PATH && tz + back > t) {
                victims.push(z);
            }
        }
        touched
    }
}

fn round_up(x: i64, m: i64) -> i64 {
    x.div_euclid(m) * m + if x.rem_euclid(m) == 0 { 0 } else { m }
}

/// Outcome of one II attempt.
enum Attempt {
    Success(Vec<i64>, Vec<UnitAssignment>),
    BudgetExhausted,
    InfeasibleIi,
}

/// Runs one II attempt: the §4.2 central loop under an iteration budget.
/// Failed attempts return their allocations to `ws` for the next II.
#[allow(clippy::too_many_arguments)]
fn attempt(
    problem: &SchedProblem<'_>,
    ii: u32,
    heuristic: &mut dyn Heuristic,
    budget: u64,
    straight_line: bool,
    cache: &MinDistCache,
    ws: &mut EngineWorkspace,
    stats: &mut SchedStats,
    decisions: &mut DecisionStats,
) -> Attempt {
    let Some(mut st) = EngineState::new_in(problem, ii, straight_line, cache, ws) else {
        return Attempt::InfeasibleIi;
    };
    let _attempt_span = lsms_trace::span_with("sched.attempt", &[("ii", i64::from(ii))]);
    heuristic.begin_attempt(&st);
    let brtop = problem.brtop();
    let mut iterations = 0u64;

    while st.unplaced_count > 0 {
        iterations += 1;
        stats.central_iterations += 1;
        if iterations > budget {
            stats.bounds_cells_touched += st.cells_touched;
            st.recycle(ws);
            return Attempt::BudgetExhausted;
        }
        // Step 1: choose an operation. The ready set holds exactly the
        // unplaced nodes, so this is what the heuristic will scan.
        stats.choose_scan_len += st.ready.len() as u64;
        let x = heuristic.choose(&st, decisions);
        debug_assert!(st.unplaced[x]);
        // Step 2: search for an issue cycle within the bounds.
        let direction = heuristic.direction(&st, x, decisions);
        lsms_trace::add(
            "sched",
            match direction {
                Direction::Early => "dir_early",
                Direction::Late => "dir_late",
            },
            1,
        );
        let e = st.estart[x];
        let l = st.lstart[x];
        let mut found = None;
        if l >= e {
            // At most II consecutive cycles need scanning (§5.2).
            let window = i64::from(ii) - 1;
            match direction {
                Direction::Early => {
                    let hi = l.min(e + window);
                    for t in e..=hi {
                        if st.fits(x, t) {
                            found = Some(t);
                            break;
                        }
                    }
                }
                Direction::Late => {
                    let lo = e.max(l - window);
                    for t in (lo..=l).rev() {
                        if st.fits(x, t) {
                            found = Some(t);
                            break;
                        }
                    }
                }
            }
        }
        match found {
            Some(t) => {
                // Step 4 & 5: place and tighten bounds.
                lsms_trace::instant(
                    "sched.place",
                    &[
                        ("op", x as i64),
                        ("cycle", t),
                        ("late", i64::from(direction == Direction::Late)),
                        ("slack", l - e),
                    ],
                );
                lsms_trace::add("sched", "placements", 1);
                st.place(x, t);
                st.tighten_bounds_after(x, t);
            }
            None => {
                // Step 3: force the operation in, ejecting conflicts.
                stats.step3_invocations += 1;
                lsms_trace::instant("sched.mrt_conflict", &[("op", x as i64), ("estart", e)]);
                lsms_trace::add("sched", "mrt_conflicts", 1);
                let mut t = st.last_place[x].map_or(e, |last| e.max(last + 1));
                // brtop cannot be ejected; search successive cycles to
                // avoid resource conflicts with it (§4.4 footnote).
                if !st.problem.is_pseudo(x) {
                    if let Some(br) = brtop {
                        while st.mrt.conflicts_contain(
                            OpId::new(x),
                            st.problem.desc(x),
                            st.assignments[x].instance,
                            t,
                            OpId::new(br),
                        ) {
                            t += 1;
                        }
                    }
                    // Eject the resource conflicts (into the reused scratch
                    // list — no allocation per forcing step).
                    let mut conflicts = std::mem::take(&mut st.conflict_buf);
                    st.mrt.conflicts_into(
                        OpId::new(x),
                        st.problem.desc(x),
                        st.assignments[x].instance,
                        t,
                        &mut conflicts,
                    );
                    for &z in &conflicts {
                        lsms_trace::instant(
                            "sched.eject",
                            &[("op", z.index() as i64), ("by", x as i64), ("cycle", t)],
                        );
                        lsms_trace::add("sched", "ejections", 1);
                        st.eject(z.index());
                        stats.ejected_ops += 1;
                    }
                    st.conflict_buf = conflicts;
                }
                lsms_trace::instant(
                    "sched.place",
                    &[("op", x as i64), ("cycle", t), ("forced", 1)],
                );
                lsms_trace::add_all("sched", &[("placements", 1), ("forced_placements", 1)]);
                st.place(x, t);
                // Eject every placed operation whose dependence constraints
                // the forced placement violates. `MinDist` reflects the
                // transitive closure, so this reaches beyond immediate
                // successors, which "tends to reduce the overall amount of
                // backtracking and improve the final schedule" (§4.4).
                st.collect_dependence_victims(x, t);
                let victims = std::mem::take(&mut st.eject_buf);
                for &z in &victims {
                    debug_assert!(
                        Some(z) != brtop,
                        "dependence conflict with brtop cannot be repaired"
                    );
                    lsms_trace::instant(
                        "sched.eject",
                        &[("op", z as i64), ("by", x as i64), ("cycle", t)],
                    );
                    lsms_trace::add("sched", "ejections", 1);
                    st.eject(z);
                    stats.ejected_ops += 1;
                }
                st.eject_buf = victims;
                st.recompute_bounds();
            }
        }
    }
    stats.bounds_cells_touched += st.cells_touched;
    let times: Vec<i64> = (0..problem.num_real_ops())
        .map(|op| st.time[op].expect("all real ops placed"))
        .collect();
    Attempt::Success(times, st.assignments)
}

/// The II escalation loop shared by both schedulers: start at `MII` and on
/// failure increment per the policy (§4.2 and its footnote 6) up to
/// `max_ii`. An optional wall-clock `deadline` caps escalation: once it
/// has passed, a failed attempt fails the run with
/// [`deadline_capped`](crate::SchedFailure::deadline_capped) set instead
/// of trying larger IIs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_framework(
    problem: &SchedProblem<'_>,
    heuristic: &mut dyn Heuristic,
    budget_factor: u64,
    max_ii: u32,
    increment: crate::IiIncrement,
    deadline: Option<std::time::Instant>,
    cache: &MinDistCache,
    decisions: &mut DecisionStats,
    ws: &mut EngineWorkspace,
) -> Result<Schedule, crate::SchedFailure> {
    run_framework_from(
        problem,
        heuristic,
        budget_factor,
        problem.mii().max(1),
        max_ii,
        increment,
        false,
        deadline,
        cache,
        decisions,
        ws,
    )
}

/// As [`run_framework`], but starting the II search at `start_ii` — used
/// by the straight-line mode, whose "II" is just a horizon too large to
/// wrap.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_framework_from(
    problem: &SchedProblem<'_>,
    heuristic: &mut dyn Heuristic,
    budget_factor: u64,
    start_ii: u32,
    max_ii: u32,
    increment: crate::IiIncrement,
    straight_line: bool,
    deadline: Option<std::time::Instant>,
    cache: &MinDistCache,
    decisions: &mut DecisionStats,
    // The warm-start workspace: allocations survive failed attempts (and,
    // when the caller keeps the workspace, whole runs).
    ws: &mut EngineWorkspace,
) -> Result<Schedule, crate::SchedFailure> {
    let started = std::time::Instant::now();
    let mut stats = SchedStats::default();
    let budget = budget_factor * (problem.num_real_ops() as u64 + 1);
    let mut ii = start_ii.max(1);
    loop {
        stats.attempts += 1;
        match attempt(
            problem,
            ii,
            heuristic,
            budget,
            straight_line,
            cache,
            ws,
            &mut stats,
            decisions,
        ) {
            Attempt::Success(times, assignments) => {
                stats.elapsed = started.elapsed();
                let schedule = Schedule {
                    ii,
                    times,
                    assignments,
                    stats,
                };
                debug_assert_eq!(crate::validate(problem, &schedule), Ok(()));
                return Ok(schedule);
            }
            Attempt::BudgetExhausted | Attempt::InfeasibleIi => {
                stats.step6_restarts += 1;
                if ii >= max_ii {
                    stats.elapsed = started.elapsed();
                    lsms_trace::instant("sched.fail", &[("last_ii", i64::from(ii))]);
                    lsms_trace::add("sched", "pipeline_failures", 1);
                    return Err(crate::SchedFailure {
                        last_ii: ii,
                        stats,
                        deadline_capped: false,
                    });
                }
                if let Some(d) = deadline {
                    if std::time::Instant::now() >= d {
                        stats.elapsed = started.elapsed();
                        lsms_trace::instant("sched.budget_capped", &[("last_ii", i64::from(ii))]);
                        lsms_trace::add("sched", "budget_capped", 1);
                        return Err(crate::SchedFailure {
                            last_ii: ii,
                            stats,
                            deadline_capped: true,
                        });
                    }
                }
                let step = match increment {
                    crate::IiIncrement::FourPercent => (ii * 4 / 100).max(1),
                    crate::IiIncrement::ByOne => 1,
                };
                let next_ii = (ii + step).min(max_ii);
                // `warm` reports whether the next attempt reuses this
                // one's allocations; `parametric` whether MinDist at
                // next_ii will be an envelope evaluation rather than a
                // fresh Floyd–Warshall. Gated so the untraced hot path
                // does not take the cache lock just to build arguments.
                if lsms_trace::enabled() {
                    lsms_trace::instant(
                        "sched.ii_escalate",
                        &[
                            ("from", i64::from(ii)),
                            ("to", i64::from(next_ii)),
                            ("warm", i64::from(ws.mrt.is_some())),
                            ("parametric", i64::from(cache.has_parametric())),
                        ],
                    );
                    lsms_trace::add("sched", "ii_escalations", 1);
                }
                ii = next_ii;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_ir::{LoopBuilder, OpKind, ValueType};
    use lsms_machine::huff_machine;

    #[test]
    fn round_up_to_multiples() {
        assert_eq!(round_up(0, 4), 0);
        assert_eq!(round_up(1, 4), 4);
        assert_eq!(round_up(4, 4), 4);
        assert_eq!(round_up(5, 4), 8);
        assert_eq!(round_up(17, 5), 20);
    }

    /// load -> fadd -> store with a spare independent fadd.
    fn chain_body() -> lsms_ir::LoopBody {
        let mut b = LoopBuilder::new("chain");
        let a = b.invariant(ValueType::Addr, "a");
        let f = b.invariant(ValueType::Float, "f");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let spare = b.new_value(ValueType::Float);
        let ld = b.op(OpKind::Load, &[a], Some(x));
        let add = b.op(OpKind::FAdd, &[x, x], Some(y));
        let st = b.op(OpKind::Store, &[a, y], None);
        b.op(OpKind::FAdd, &[f, f], Some(spare));
        b.flow_dep(ld, add, 0);
        b.flow_dep(add, st, 0);
        b.finish()
    }

    #[test]
    fn initial_bounds_follow_the_critical_path() {
        let body = chain_body();
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).unwrap();
        let st = EngineState::new(&problem, problem.mii(), false, &MinDistCache::new()).unwrap();
        // Estart: load 0, fadd 13, store 14; Stop at 15.
        assert_eq!(st.estart[0], 0);
        assert_eq!(st.estart[1], 13);
        assert_eq!(st.estart[2], 14);
        assert_eq!(st.estart[problem.stop()], 15);
        // ResMII = 2 > 1: Lstart(Stop) rounds 15 up to a multiple of II.
        assert_eq!(st.lstart_stop, round_up(15, i64::from(problem.mii())));
        // The chain ops have slack equal to the rounding provision; the
        // spare fadd has nearly the whole window.
        assert!(st.slack(0) >= 0 && st.slack(0) <= i64::from(problem.mii()));
        assert!(st.slack(3) >= st.slack(1));
    }

    #[test]
    fn dynamic_priority_halves_for_divider_ops() {
        let mut b = LoopBuilder::new("div");
        let f = b.invariant(ValueType::Float, "f");
        let q = b.new_value(ValueType::Float);
        let r = b.new_value(ValueType::Float);
        b.op(OpKind::FDiv, &[f, f], Some(q));
        b.op(OpKind::FAdd, &[f, f], Some(r));
        let body = b.finish();
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).unwrap();
        let st = EngineState::new(&problem, problem.mii(), false, &MinDistCache::new()).unwrap();
        // Same slack shape, but the divider op's priority is at most half
        // the raw slack (possibly quartered if the divider is critical).
        let slack_div = st.slack(0);
        if slack_div > 0 {
            assert!(st.dynamic_priority(0) <= slack_div / 2);
        }
        assert!(st.dynamic_priority(1) <= st.slack(1));
    }

    #[test]
    fn per_attempt_assignment_spreads_congruent_ops() {
        // Four independent loads, II = 2: the two ops wanting cycle 0
        // (estart 0 mod 2) must land on different ports.
        let mut b = LoopBuilder::new("mem");
        let a = b.invariant(ValueType::Addr, "a");
        for _ in 0..4 {
            let x = b.new_value(ValueType::Float);
            b.op(OpKind::Load, &[a], Some(x));
        }
        let body = b.finish();
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).unwrap();
        let st = EngineState::new(&problem, 2, false, &MinDistCache::new()).unwrap();
        // All four are congruent (estart 0); round-robin alternates
        // instances 0,1,0,1 in order.
        let instances: Vec<u32> = (0..4).map(|i| st.assignments[i].instance).collect();
        assert_eq!(instances.iter().filter(|&&i| i == 0).count(), 2);
        assert_eq!(instances.iter().filter(|&&i| i == 1).count(), 2);
    }

    #[test]
    fn infeasible_ii_yields_no_state() {
        let mut b = LoopBuilder::new("rec");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let o1 = b.op(OpKind::FMul, &[y, y], Some(x));
        let o2 = b.op(OpKind::FMul, &[x, x], Some(y));
        b.flow_dep(o1, o2, 0);
        b.flow_dep(o2, o1, 1);
        let body = b.finish();
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).unwrap();
        assert_eq!(problem.rec_mii(), 4);
        assert!(EngineState::new(&problem, 3, false, &MinDistCache::new()).is_none());
        assert!(EngineState::new(&problem, 4, false, &MinDistCache::new()).is_some());
    }

    #[test]
    fn ready_set_mirrors_unplaced_through_place_and_eject() {
        let body = chain_body();
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).unwrap();
        let cache = MinDistCache::new();
        let mut st = EngineState::new(&problem, problem.mii(), false, &cache).unwrap();
        let check = |st: &EngineState<'_, '_>| {
            let n = st.problem.num_nodes();
            assert_eq!(st.ready.len(), st.unplaced_count);
            for (pos, &node) in st.ready.iter().enumerate() {
                assert!(st.unplaced[node as usize]);
                assert_eq!(st.ready_pos[node as usize], pos as u32);
            }
            for node in 0..n {
                if !st.unplaced[node] {
                    assert_eq!(st.ready_pos[node], PLACED);
                }
            }
        };
        check(&st);
        // Start is pre-placed and never in the ready set.
        assert!(!st.ready.contains(&(problem.start() as u32)));
        st.place(0, 0);
        st.tighten_bounds_after(0, 0);
        check(&st);
        assert!(!st.ready.contains(&0));
        st.place(1, 13);
        check(&st);
        st.eject(0);
        st.recompute_bounds();
        check(&st);
        assert!(st.ready.contains(&0));
        assert!(st.unplaced().any(|x| x == 0));
    }

    /// Drives the same placement/ejection sequence through a CrossCheck
    /// state (every bounds routine self-asserts sparse == dense) and a
    /// DenseReference state, then compares all three bound vectors.
    #[test]
    fn sparse_bounds_match_the_dense_reference() {
        let body = chain_body();
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).unwrap();
        let cache = MinDistCache::new();
        let mut states: Vec<EngineState<'_, '_>> = [
            BoundsMode::Sparse,
            BoundsMode::DenseReference,
            BoundsMode::CrossCheck,
        ]
        .into_iter()
        .map(|mode| {
            let mut ws = EngineWorkspace::new();
            ws.set_bounds_mode(mode);
            assert_eq!(ws.bounds_mode(), mode);
            let ws = Box::leak(Box::new(ws));
            EngineState::new_in(&problem, problem.mii(), false, &cache, ws).unwrap()
        })
        .collect();
        for st in &mut states {
            st.place(0, 0);
            st.tighten_bounds_after(0, 0);
            st.place(3, 1);
            st.tighten_bounds_after(3, 1);
            st.eject(0);
            st.recompute_bounds();
            st.collect_dependence_victims(1, 20);
        }
        let (sparse, rest) = states.split_first().unwrap();
        for other in rest {
            assert_eq!(sparse.estart, other.estart);
            assert_eq!(sparse.lstart, other.lstart);
            assert_eq!(sparse.lstart_stop, other.lstart_stop);
            assert_eq!(sparse.eject_buf, other.eject_buf);
        }
        // Dense probing inspects strictly more cells than the sparse walk
        // on this sparse chain problem.
        assert!(states[1].cells_touched > states[0].cells_touched);
        assert!(states[0].cells_touched > 0);
    }

    #[test]
    fn straight_line_deadline_is_near_the_serial_floor() {
        let body = chain_body();
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).unwrap();
        let st = EngineState::new(&problem, 1000, true, &MinDistCache::new()).unwrap();
        let floor = st.estart[problem.stop()].max(i64::from(problem.res_mii()));
        assert_eq!(st.lstart_stop, floor + floor / 8 + 2);
        // Far below the huge horizon: late placements cannot drift to the
        // end of the window.
        assert!(st.lstart_stop < 100);
    }
}
