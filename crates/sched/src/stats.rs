//! Scheduler work counters, mirroring the measurements of §6.

use std::ops::AddAssign;
use std::time::Duration;

/// Counters describing one scheduling run (one loop, possibly several II
/// attempts). §6 reports these aggregated over the 1,525-loop corpus:
/// central-loop iterations, Step 3 (ejection) invocations, operations
/// ejected, and Step 6 (II increment) restarts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Iterations of the scheduler's central loop (§4.2), i.e. operations
    /// placed, counting re-placements after ejection.
    pub central_iterations: u64,
    /// Times Step 3 ran: no conflict-free issue cycle existed and room had
    /// to be made by ejection.
    pub step3_invocations: u64,
    /// Operations ejected from the partial schedule.
    pub ejected_ops: u64,
    /// Times Step 6 ran: the attempt was abandoned and II incremented.
    pub step6_restarts: u64,
    /// Number of II values attempted (at least 1).
    pub attempts: u32,
    /// `MinDist` cells read by bounds propagation (tightening, post-eject
    /// recomputation, forcing sweeps). Sparse mode counts reachability-list
    /// entries; the dense reference counts matrix probes — the dense/sparse
    /// ratio is the work the reachability index avoids.
    pub bounds_cells_touched: u64,
    /// Sum over central-loop iterations of the ready-set length scanned by
    /// `choose` — the selection cost the indexed ready set bounds.
    pub choose_scan_len: u64,
    /// Wall-clock time spent scheduling.
    pub elapsed: Duration,
}

impl SchedStats {
    /// True if the loop scheduled without any backtracking — §6: "for 889
    /// of the loops ... no backtracking was required".
    pub fn backtrack_free(&self) -> bool {
        self.step3_invocations == 0 && self.step6_restarts == 0
    }

    /// Total backtracking work: Step 3 (ejection) invocations plus Step 6
    /// (II increment) restarts — the quality observatory's per-loop
    /// backtrack count.
    pub fn backtracks(&self) -> u64 {
        self.step3_invocations + self.step6_restarts
    }
}

impl AddAssign<&SchedStats> for SchedStats {
    fn add_assign(&mut self, rhs: &SchedStats) {
        self.central_iterations += rhs.central_iterations;
        self.step3_invocations += rhs.step3_invocations;
        self.ejected_ops += rhs.ejected_ops;
        self.step6_restarts += rhs.step6_restarts;
        self.attempts += rhs.attempts;
        self.bounds_cells_touched += rhs.bounds_cells_touched;
        self.choose_scan_len += rhs.choose_scan_len;
        self.elapsed += rhs.elapsed;
    }
}

/// Tallies of the §5.2 bidirectional-heuristic decisions and the §4.3
/// dynamic-priority tie statistics, aggregated over candidate selections.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DecisionStats {
    /// Candidate had zero slack, so no direction choice arose (§5.2 reports
    /// 46%).
    pub zero_slack: u64,
    /// Placed early: no stretchable inputs or outputs at all.
    pub isolated_early: u64,
    /// Placed early: more stretchable inputs than outputs (paper: 30%).
    pub early_more_inputs: u64,
    /// Placed late: fewer stretchable inputs than outputs (paper: 4%).
    pub late_more_outputs: u64,
    /// Stretchability tie broken toward the better-placed neighbour group
    /// (paper: 20% ties), split by the resulting direction.
    pub tie_early: u64,
    /// See [`tie_early`](Self::tie_early).
    pub tie_late: u64,
    /// The minimum dynamic priority identified a unique operation (§4.3
    /// reports 48%).
    pub unique_min_priority: u64,
    /// Total candidate selections.
    pub selections: u64,
}

impl DecisionStats {
    /// Total direction decisions that actually had slack to spend.
    pub fn with_slack(&self) -> u64 {
        self.isolated_early
            + self.early_more_inputs
            + self.late_more_outputs
            + self.tie_early
            + self.tie_late
    }

    /// Early placements among decisions with slack (the paper observes the
    /// heuristics "favor an early placement twice as often as a late
    /// placement").
    pub fn early(&self) -> u64 {
        self.isolated_early + self.early_more_inputs + self.tie_early
    }

    /// Late placements among decisions with slack.
    pub fn late(&self) -> u64 {
        self.late_more_outputs + self.tie_late
    }
}

impl AddAssign<&DecisionStats> for DecisionStats {
    fn add_assign(&mut self, rhs: &DecisionStats) {
        self.zero_slack += rhs.zero_slack;
        self.isolated_early += rhs.isolated_early;
        self.early_more_inputs += rhs.early_more_inputs;
        self.late_more_outputs += rhs.late_more_outputs;
        self.tie_early += rhs.tie_early;
        self.tie_late += rhs.tie_late;
        self.unique_min_priority += rhs.unique_min_priority;
        self.selections += rhs.selections;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backtrack_free_requires_no_step3_and_no_step6() {
        let mut s = SchedStats::default();
        assert!(s.backtrack_free());
        s.step3_invocations = 1;
        assert!(!s.backtrack_free());
        s.step3_invocations = 0;
        s.step6_restarts = 1;
        assert!(!s.backtrack_free());
    }

    #[test]
    fn stats_accumulate() {
        let mut total = SchedStats::default();
        let one = SchedStats {
            central_iterations: 10,
            step3_invocations: 2,
            ejected_ops: 3,
            step6_restarts: 1,
            attempts: 2,
            bounds_cells_touched: 40,
            choose_scan_len: 30,
            elapsed: Duration::from_millis(5),
        };
        total += &one;
        total += &one;
        assert_eq!(total.central_iterations, 20);
        assert_eq!(total.attempts, 4);
        assert_eq!(total.bounds_cells_touched, 80);
        assert_eq!(total.choose_scan_len, 60);
        assert_eq!(total.elapsed, Duration::from_millis(10));
    }

    #[test]
    fn decision_splits_sum() {
        let d = DecisionStats {
            zero_slack: 5,
            isolated_early: 1,
            early_more_inputs: 3,
            late_more_outputs: 2,
            tie_early: 4,
            tie_late: 1,
            unique_min_priority: 9,
            selections: 16,
        };
        assert_eq!(d.with_slack(), 11);
        assert_eq!(d.early(), 8);
        assert_eq!(d.late(), 3);
        assert_eq!(d.with_slack() + d.zero_slack, d.selections);
    }
}
