//! SVG rendering of schedules: a Gantt chart of one iteration plus the
//! lifetime bars of Figure 3 — handy for documentation and for eyeballing
//! what the bidirectional heuristic does to lifetimes.

use std::fmt::Write as _;

use lsms_ir::RegClass;

use crate::pressure::lifetimes;
use crate::{SchedProblem, Schedule};

const CELL_W: i64 = 14;
const ROW_H: i64 = 18;
const LEFT: i64 = 120;
const TOP: i64 = 30;

/// Fill colours per functional-unit class index (cycled).
const PALETTE: [&str; 6] = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1", "#76b7b2",
];

fn rect(out: &mut String, x: i64, y: i64, w: i64, h: i64, fill: &str, title: &str) {
    let _ = write!(
        out,
        r##"<rect x="{x}" y="{y}" width="{w}" height="{h}" fill="{fill}" stroke="#333" stroke-width="0.5"><title>{title}</title></rect>"##
    );
}

fn label(out: &mut String, x: i64, y: i64, text: &str) {
    let _ = write!(
        out,
        r##"<text x="{x}" y="{y}" font-family="monospace" font-size="11" fill="#222">{text}</text>"##
    );
}

/// Renders one iteration's issue schedule (top) and the RR-value lifetimes
/// (bottom) as a standalone SVG document. Vertical gridlines mark kernel
/// (II) boundaries, so values spilling across them are exactly the ones
/// that need rotating registers.
pub fn to_svg(problem: &SchedProblem<'_>, schedule: &Schedule) -> String {
    to_svg_impl(problem, schedule, None)
}

/// As [`to_svg`], with the producing backend's name in the header label so
/// charts from different registered backends are distinguishable.
pub fn to_svg_for_backend(
    problem: &SchedProblem<'_>,
    schedule: &Schedule,
    backend: &dyn crate::ModuloScheduler,
) -> String {
    to_svg_impl(problem, schedule, Some(backend.name()))
}

fn to_svg_impl(problem: &SchedProblem<'_>, schedule: &Schedule, backend: Option<&str>) -> String {
    let body = problem.body();
    let machine = problem.machine();
    let length = schedule.length().max(1);
    let lt = lifetimes(problem, schedule);

    let live: Vec<_> = body
        .values()
        .iter()
        .filter(|v| v.reg_class() == RegClass::Rr)
        .filter(|v| v.def.is_some() && lt[v.id.index()].unwrap_or(0) > 0)
        .collect();
    let rows = body.num_ops() as i64 + live.len() as i64 + 3;
    let width = LEFT + length * CELL_W + 40;
    let height = TOP + rows * ROW_H + 40;

    let mut out = String::new();
    let _ = write!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"##
    );
    rect(&mut out, 0, 0, width, height, "#ffffff", "");
    label(
        &mut out,
        LEFT,
        TOP - 12,
        &format!(
            "loop {} — II {} ({} stages), MaxLive {}{}",
            body.name(),
            schedule.ii,
            schedule.stages(),
            crate::pressure::measure(problem, schedule).rr_max_live,
            backend.map(|b| format!(" — {b}")).unwrap_or_default(),
        ),
    );

    // Kernel boundary gridlines.
    let mut t = 0;
    while t <= length {
        let x = LEFT + t * CELL_W;
        let _ = write!(
            out,
            r##"<line x1="{x}" y1="{TOP}" x2="{x}" y2="{}" stroke="#bbb" stroke-dasharray="3,3"/>"##,
            TOP + rows * ROW_H
        );
        label(&mut out, x - 3, TOP + rows * ROW_H + 14, &t.to_string());
        t += i64::from(schedule.ii);
    }

    // Operation issue marks (one cell at issue, a lighter tail for the
    // latency).
    let mut y = TOP;
    for op in body.ops() {
        let t = schedule.times[op.id.index()];
        let desc = machine.desc(op.kind);
        let color = PALETTE[desc.class.index() % PALETTE.len()];
        label(&mut out, 8, y + 13, &format!("{} {}", op.id, op.kind));
        let lat = i64::from(desc.latency).max(1);
        rect(
            &mut out,
            LEFT + t * CELL_W,
            y + 2,
            CELL_W * lat,
            ROW_H - 4,
            "#dddddd",
            &format!("{} latency {}", op.kind, desc.latency),
        );
        rect(
            &mut out,
            LEFT + t * CELL_W,
            y + 2,
            CELL_W,
            ROW_H - 4,
            color,
            &format!("{} issues at {}", op.kind, t),
        );
        y += ROW_H;
    }

    y += ROW_H; // gap
    label(&mut out, 8, y + 13, "lifetimes:");
    y += ROW_H;
    for v in live {
        let def = v.def.expect("filtered");
        let start = schedule.times[def.index()];
        let len = lt[v.id.index()].unwrap_or(0);
        label(&mut out, 8, y + 13, &v.name);
        rect(
            &mut out,
            LEFT + start * CELL_W,
            y + 4,
            len * CELL_W,
            ROW_H - 8,
            "#8cd17d",
            &format!("{} live [{start}, {})", v.name, start + len),
        );
        y += ROW_H;
    }
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SlackScheduler;
    use lsms_ir::{LoopBuilder, OpKind, ValueType};
    use lsms_machine::huff_machine;

    #[test]
    fn svg_is_well_formed_and_complete() {
        let mut b = LoopBuilder::new("viz");
        let a = b.invariant(ValueType::Addr, "a");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let ld = b.op(OpKind::Load, &[a], Some(x));
        let add = b.op(OpKind::FAdd, &[x, x], Some(y));
        let st = b.op(OpKind::Store, &[a, y], None);
        b.flow_dep(ld, add, 0);
        b.flow_dep(add, st, 0);
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let s = SlackScheduler::new().run(&p).unwrap();
        let svg = to_svg(&p, &s);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // One issue mark + one tail per op, plus background.
        assert!(svg.matches("<rect").count() > 2 * body.num_ops());
        // Both lifetimes rendered (x and y are live).
        assert!(svg.contains("live ["));
        // Balanced tags.
        assert_eq!(
            svg.matches("<rect").count(),
            svg.matches("/>").count() + svg.matches("</rect>").count()
                - svg.matches("<line").count()
        );
    }

    #[test]
    fn gridlines_fall_on_ii_multiples() {
        let mut b = LoopBuilder::new("grid");
        let f = b.invariant(ValueType::Float, "f");
        for _ in 0..4 {
            let r = b.new_value(ValueType::Float);
            b.op(OpKind::FAdd, &[f, f], Some(r));
        }
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let s = SlackScheduler::new().run(&p).unwrap();
        let svg = to_svg(&p, &s);
        assert!(svg.matches("stroke-dasharray").count() >= 2);
    }
}
