//! The `MinDist` relation (§4.1): all-pairs longest paths at a given II.

use crate::SchedProblem;

/// Sentinel for "no path in the dependence graph" (the paper's −∞).
///
/// Chosen far from `i64::MIN` so sums of path weights cannot overflow.
pub const NO_PATH: i64 = i64::MIN / 4;

/// For each pair of operations `x` and `y`, `MinDist(x, y)` is the minimum
/// number of cycles (possibly negative) by which `x` must precede `y` in
/// any feasible schedule, or [`NO_PATH`] if the dependence graph has no
/// path from `x` to `y`.
///
/// Computing MinDist is an all-pairs *longest*-paths problem over arcs of
/// weight `latency − ω·II`; because `II ≥ RecMII` makes every cycle weight
/// non-positive, the computation is well defined (§4.1). The matrix must be
/// recomputed for each attempted II — reasonable overhead, since most loops
/// achieve MII.
#[derive(Clone, Debug)]
pub struct MinDist {
    n: usize,
    ii: u32,
    feasible: bool,
    d: Vec<i64>,
}

impl MinDist {
    /// Computes the relation for `problem` at candidate initiation interval
    /// `ii` with Floyd–Warshall over all nodes including `Start`/`Stop`.
    ///
    /// `MinDist(x, x)` is fixed at 0 for every operation, as in the paper;
    /// if `ii < RecMII` some diagonal entry would want to be positive, which
    /// [`is_feasible`](Self::is_feasible) reports.
    pub fn compute(problem: &SchedProblem<'_>, ii: u32) -> Self {
        assert!(ii > 0, "II must be positive");
        let n = problem.num_nodes();
        let mut d = vec![NO_PATH; n * n];
        for arc in problem.arcs() {
            let idx = arc.from * n + arc.to;
            d[idx] = d[idx].max(arc.weight(ii));
        }
        let mut feasible = true;
        for i in 0..n {
            // A positive self-arc weight means even II is too small for a
            // trivial circuit; record infeasibility but pin the diagonal.
            if d[i * n + i] > 0 {
                feasible = false;
            }
            d[i * n + i] = d[i * n + i].max(0);
        }
        for k in 0..n {
            for i in 0..n {
                let dik = d[i * n + k];
                if dik == NO_PATH {
                    continue;
                }
                let (row_k, row_i) = if i < k {
                    let (a, b) = d.split_at_mut(k * n);
                    (&b[..n], &mut a[i * n..i * n + n])
                } else if i > k {
                    let (a, b) = d.split_at_mut(i * n);
                    (&a[k * n..k * n + n], &mut b[..n])
                } else {
                    continue; // i == k: d[i][k] + d[k][j] = d[i][j] already
                };
                for j in 0..n {
                    if row_k[j] != NO_PATH {
                        let via = dik + row_k[j];
                        if via > row_i[j] {
                            row_i[j] = via;
                        }
                    }
                }
            }
        }
        for i in 0..n {
            if d[i * n + i] > 0 {
                feasible = false;
                d[i * n + i] = 0;
            }
        }
        Self { n, ii, feasible, d }
    }

    /// The II this matrix was computed for.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// False when some recurrence circuit is longer than `ω·II` at this II —
    /// i.e. `ii < RecMII` — so no feasible schedule exists.
    pub fn is_feasible(&self) -> bool {
        self.feasible
    }

    /// `MinDist(x, y)`, or [`NO_PATH`] when the graph has no `x → y` path.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> i64 {
        debug_assert!(x < self.n && y < self.n);
        self.d[x * self.n + y]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_ir::{LoopBuilder, OpKind, ValueType};
    use lsms_machine::huff_machine;

    /// load -> fadd -> store chain.
    fn chain_body() -> lsms_ir::LoopBody {
        let mut b = LoopBuilder::new("chain");
        let a = b.invariant(ValueType::Addr, "a");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let ld = b.op(OpKind::Load, &[a], Some(x));
        let add = b.op(OpKind::FAdd, &[x, x], Some(y));
        let st = b.op(OpKind::Store, &[a, y], None);
        b.flow_dep(ld, add, 0);
        b.flow_dep(add, st, 0);
        b.finish()
    }

    #[test]
    fn chain_distances_accumulate_latencies() {
        let body = chain_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let md = MinDist::compute(&p, 1);
        assert!(md.is_feasible());
        assert_eq!(md.get(0, 1), 13); // load latency
        assert_eq!(md.get(0, 2), 14); // + fadd latency
        assert_eq!(md.get(2, 0), NO_PATH);
        // Start -> store via the chain beats the direct 0-arc.
        assert_eq!(md.get(p.start(), 2), 14);
        // store -> Stop carries the store latency.
        assert_eq!(md.get(2, p.stop()), 1);
        assert_eq!(md.get(p.start(), p.stop()), 15);
    }

    #[test]
    fn omega_discounts_by_ii() {
        // fadd feeding itself two iterations later via a partner op.
        let mut b = LoopBuilder::new("rec");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let o1 = b.op(OpKind::FAdd, &[y, y], Some(x));
        let o2 = b.op(OpKind::FMul, &[x, x], Some(y));
        b.flow_dep(o1, o2, 0); // latency 1
        b.flow_dep(o2, o1, 2); // latency 2, omega 2
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        // Circuit length 3, omega 2: RecMII = ceil(3/2) = 2.
        assert_eq!(p.rec_mii(), 2);
        let md = MinDist::compute(&p, 2);
        assert!(md.is_feasible());
        assert_eq!(md.get(0, 1), 1);
        assert_eq!(md.get(1, 0), 2 - 2 * 2); // latency 2 − ω·II
        let md3 = MinDist::compute(&p, 3);
        assert_eq!(md3.get(1, 0), 2 - 2 * 3);
    }

    #[test]
    fn infeasible_ii_is_reported() {
        let mut b = LoopBuilder::new("rec");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let o1 = b.op(OpKind::FMul, &[y, y], Some(x)); // latency 2
        let o2 = b.op(OpKind::FMul, &[x, x], Some(y)); // latency 2
        b.flow_dep(o1, o2, 0);
        b.flow_dep(o2, o1, 1);
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(p.rec_mii(), 4);
        assert!(!MinDist::compute(&p, 3).is_feasible());
        assert!(MinDist::compute(&p, 4).is_feasible());
    }

    #[test]
    fn diagonal_is_zero() {
        let body = chain_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let md = MinDist::compute(&p, 5);
        for i in 0..p.num_nodes() {
            assert_eq!(md.get(i, i), 0);
        }
    }

    #[test]
    fn estart_lstart_shape_on_sample() {
        // Estart(x) = MinDist(Start, x) is non-negative for every op.
        let body = chain_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let md = MinDist::compute(&p, 3);
        for i in 0..p.num_real_ops() {
            assert!(md.get(p.start(), i) >= 0);
            assert!(md.get(i, p.stop()) >= 0);
        }
    }
}
