//! The `MinDist` relation (§4.1): all-pairs longest paths at a given II.

use crate::SchedProblem;
use std::sync::{Arc, Mutex};

/// Sentinel for "no path in the dependence graph" (the paper's −∞).
///
/// Chosen far from `i64::MIN` so sums of path weights cannot overflow.
pub const NO_PATH: i64 = i64::MIN / 4;

/// For each pair of operations `x` and `y`, `MinDist(x, y)` is the minimum
/// number of cycles (possibly negative) by which `x` must precede `y` in
/// any feasible schedule, or [`NO_PATH`] if the dependence graph has no
/// path from `x` to `y`.
///
/// Computing MinDist is an all-pairs *longest*-paths problem over arcs of
/// weight `latency − ω·II`; because `II ≥ RecMII` makes every cycle weight
/// non-positive, the computation is well defined (§4.1). The matrix depends
/// only on `(problem, II)`, so within one scheduling run it is computed at
/// most once per candidate II — see [`MinDistCache`].
#[derive(Clone, Debug)]
pub struct MinDist {
    n: usize,
    ii: u32,
    feasible: bool,
    d: Vec<i64>,
}

impl MinDist {
    /// Computes the relation for `problem` at candidate initiation interval
    /// `ii` with Floyd–Warshall over all nodes including `Start`/`Stop`.
    ///
    /// `MinDist(x, x)` is fixed at 0 for every operation, as in the paper;
    /// if `ii < RecMII` some diagonal entry would want to be positive, which
    /// [`is_feasible`](Self::is_feasible) reports.
    pub fn compute(problem: &SchedProblem<'_>, ii: u32) -> Self {
        Self::compute_into(problem, ii, Vec::new())
    }

    /// Like [`compute`](Self::compute) but recycles `buf` as the matrix
    /// storage, avoiding a fresh allocation when a same-size buffer from an
    /// earlier II attempt is available.
    pub fn compute_into(problem: &SchedProblem<'_>, ii: u32, mut buf: Vec<i64>) -> Self {
        assert!(ii > 0, "II must be positive");
        let n = problem.num_nodes();
        buf.clear();
        buf.resize(n * n, NO_PATH);
        let mut d = buf;
        for arc in problem.arcs() {
            let idx = arc.from * n + arc.to;
            d[idx] = d[idx].max(arc.weight(ii));
        }
        let mut feasible = true;
        for i in 0..n {
            // A positive self-arc weight means even II is too small for a
            // trivial circuit; record infeasibility but pin the diagonal.
            if d[i * n + i] > 0 {
                feasible = false;
            }
            d[i * n + i] = d[i * n + i].max(0);
        }
        for k in 0..n {
            // Row k contributes through via = d[i][k] + d[k][j]; if its only
            // finite entry is the zero diagonal, every candidate collapses to
            // d[i][k] + 0 <= d[i][k] and the whole pass is a no-op. Dependence
            // graphs are sparse, so many rows (e.g. Stop, stores) skip here.
            let row = &d[k * n..k * n + n];
            let useful = row
                .iter()
                .enumerate()
                .any(|(j, &w)| w != NO_PATH && (j != k || w != 0));
            if !useful {
                continue;
            }
            for i in 0..n {
                let dik = d[i * n + k];
                if dik == NO_PATH {
                    continue;
                }
                let (row_k, row_i) = if i < k {
                    let (a, b) = d.split_at_mut(k * n);
                    (&b[..n], &mut a[i * n..i * n + n])
                } else if i > k {
                    let (a, b) = d.split_at_mut(i * n);
                    (&a[k * n..k * n + n], &mut b[..n])
                } else {
                    continue; // i == k: d[i][k] + d[k][j] = d[i][j] already
                };
                for j in 0..n {
                    if row_k[j] != NO_PATH {
                        let via = dik + row_k[j];
                        if via > row_i[j] {
                            row_i[j] = via;
                        }
                    }
                }
            }
        }
        for i in 0..n {
            if d[i * n + i] > 0 {
                feasible = false;
                d[i * n + i] = 0;
            }
        }
        Self { n, ii, feasible, d }
    }

    /// The II this matrix was computed for.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// False when some recurrence circuit is longer than `ω·II` at this II —
    /// i.e. `ii < RecMII` — so no feasible schedule exists.
    pub fn is_feasible(&self) -> bool {
        self.feasible
    }

    /// `MinDist(x, y)`, or [`NO_PATH`] when the graph has no `x → y` path.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> i64 {
        debug_assert!(x < self.n && y < self.n);
        self.d[x * self.n + y]
    }
}

#[derive(Default)]
struct CacheInner {
    /// Computed matrices for this problem, keyed by II. IIs are probed in a
    /// short monotone sequence per evaluation, so a small vector beats a map.
    entries: Vec<(u32, Arc<MinDist>)>,
    /// Retired matrix buffers available for reuse by the next compute.
    pool: Vec<Vec<i64>>,
    /// Number of Floyd–Warshall runs actually performed.
    computed: u64,
}

/// Shares one [`MinDist`] per `(problem, II)` across everything that needs
/// it during a scheduling run: the scheduling engine's II search, pressure
/// measurement, the MinAvg bound, and diagnostic reports.
///
/// The cache is keyed by II only, so one cache must serve exactly one
/// [`SchedProblem`] — create a fresh cache per problem (they are cheap) or
/// call [`reset`](Self::reset) between problems to recycle the matrix
/// buffers. Interior mutability makes `get` usable through a shared
/// reference, and the lock is held across the compute so concurrent callers
/// asking for the same II still trigger exactly one Floyd–Warshall.
#[derive(Default)]
pub struct MinDistCache {
    inner: Mutex<CacheInner>,
}

impl MinDistCache {
    /// An empty cache with no retained buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// The matrix for `(problem, ii)`, computing it on first request and
    /// returning the shared copy on every later one.
    pub fn get(&self, problem: &SchedProblem<'_>, ii: u32) -> Arc<MinDist> {
        let mut inner = self.inner.lock().expect("MinDist cache poisoned");
        if let Some((_, md)) = inner.entries.iter().find(|(key, _)| *key == ii) {
            return Arc::clone(md);
        }
        let buf = inner.pool.pop().unwrap_or_default();
        let md = Arc::new(MinDist::compute_into(problem, ii, buf));
        inner.computed += 1;
        inner.entries.push((ii, Arc::clone(&md)));
        md
    }

    /// How many matrices were actually computed (cache misses) so far.
    /// Survives [`reset`](Self::reset), so a corpus run can assert it equals
    /// the number of distinct `(problem, II)` pairs encountered.
    pub fn computed(&self) -> u64 {
        self.inner.lock().expect("MinDist cache poisoned").computed
    }

    /// Drops all entries so the cache can serve a different problem, moving
    /// each matrix buffer that is no longer shared into the reuse pool.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("MinDist cache poisoned");
        let entries = std::mem::take(&mut inner.entries);
        for (_, md) in entries {
            if let Ok(md) = Arc::try_unwrap(md) {
                inner.pool.push(md.d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_ir::{LoopBuilder, OpKind, ValueType};
    use lsms_machine::huff_machine;

    /// load -> fadd -> store chain.
    fn chain_body() -> lsms_ir::LoopBody {
        let mut b = LoopBuilder::new("chain");
        let a = b.invariant(ValueType::Addr, "a");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let ld = b.op(OpKind::Load, &[a], Some(x));
        let add = b.op(OpKind::FAdd, &[x, x], Some(y));
        let st = b.op(OpKind::Store, &[a, y], None);
        b.flow_dep(ld, add, 0);
        b.flow_dep(add, st, 0);
        b.finish()
    }

    #[test]
    fn chain_distances_accumulate_latencies() {
        let body = chain_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let md = MinDist::compute(&p, 1);
        assert!(md.is_feasible());
        assert_eq!(md.get(0, 1), 13); // load latency
        assert_eq!(md.get(0, 2), 14); // + fadd latency
        assert_eq!(md.get(2, 0), NO_PATH);
        // Start -> store via the chain beats the direct 0-arc.
        assert_eq!(md.get(p.start(), 2), 14);
        // store -> Stop carries the store latency.
        assert_eq!(md.get(2, p.stop()), 1);
        assert_eq!(md.get(p.start(), p.stop()), 15);
    }

    #[test]
    fn omega_discounts_by_ii() {
        // fadd feeding itself two iterations later via a partner op.
        let mut b = LoopBuilder::new("rec");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let o1 = b.op(OpKind::FAdd, &[y, y], Some(x));
        let o2 = b.op(OpKind::FMul, &[x, x], Some(y));
        b.flow_dep(o1, o2, 0); // latency 1
        b.flow_dep(o2, o1, 2); // latency 2, omega 2
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        // Circuit length 3, omega 2: RecMII = ceil(3/2) = 2.
        assert_eq!(p.rec_mii(), 2);
        let md = MinDist::compute(&p, 2);
        assert!(md.is_feasible());
        assert_eq!(md.get(0, 1), 1);
        assert_eq!(md.get(1, 0), 2 - 2 * 2); // latency 2 − ω·II
        let md3 = MinDist::compute(&p, 3);
        assert_eq!(md3.get(1, 0), 2 - 2 * 3);
    }

    #[test]
    fn infeasible_ii_is_reported() {
        let mut b = LoopBuilder::new("rec");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let o1 = b.op(OpKind::FMul, &[y, y], Some(x)); // latency 2
        let o2 = b.op(OpKind::FMul, &[x, x], Some(y)); // latency 2
        b.flow_dep(o1, o2, 0);
        b.flow_dep(o2, o1, 1);
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(p.rec_mii(), 4);
        assert!(!MinDist::compute(&p, 3).is_feasible());
        assert!(MinDist::compute(&p, 4).is_feasible());
    }

    #[test]
    fn diagonal_is_zero() {
        let body = chain_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let md = MinDist::compute(&p, 5);
        for i in 0..p.num_nodes() {
            assert_eq!(md.get(i, i), 0);
        }
    }

    #[test]
    fn estart_lstart_shape_on_sample() {
        // Estart(x) = MinDist(Start, x) is non-negative for every op.
        let body = chain_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let md = MinDist::compute(&p, 3);
        for i in 0..p.num_real_ops() {
            assert!(md.get(p.start(), i) >= 0);
            assert!(md.get(i, p.stop()) >= 0);
        }
    }

    #[test]
    fn cache_computes_each_ii_once_and_recycles_buffers() {
        let body = chain_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let cache = MinDistCache::new();
        let a = cache.get(&p, 3);
        let b = cache.get(&p, 3);
        let c = cache.get(&p, 4);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.computed(), 2);
        assert_eq!(a.get(0, 1), 13);
        // After dropping the outstanding handles, reset pools the buffers
        // and the next compute still answers correctly.
        drop((a, b, c));
        cache.reset();
        let d = cache.get(&p, 3);
        assert_eq!(d.get(0, 1), 13);
        assert_eq!(cache.computed(), 3);
    }

    #[test]
    fn compute_into_matches_compute() {
        let body = chain_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let fresh = MinDist::compute(&p, 2);
        // A dirty oversized buffer must not leak stale entries.
        let dirty = vec![42i64; 1000];
        let reused = MinDist::compute_into(&p, 2, dirty);
        assert_eq!(fresh.is_feasible(), reused.is_feasible());
        for x in 0..p.num_nodes() {
            for y in 0..p.num_nodes() {
                assert_eq!(fresh.get(x, y), reused.get(x, y));
            }
        }
    }
}
