//! The `MinDist` relation (§4.1): all-pairs longest paths at a given II.
//!
//! Two ways to produce the matrix coexist here. [`MinDist::compute`] is
//! the direct Floyd–Warshall at one fixed II. [`ParametricMinDist`]
//! exploits that every path's weight `Σ latency − II·Σ ω` is *linear in
//! II*: one envelope-valued Floyd–Warshall per problem captures, for each
//! `(x, y)`, the convex upper envelope of `(latency, distance)` path
//! pairs, after which `MinDist(x, y; II) = max_k (lat_k − dist_k·II)`
//! evaluates in O(envelope) for any II ≥ RecMII — and RecMII itself falls
//! out analytically as the smallest II with no positive diagonal.
//! [`MinDistCache`] picks between the two tiers.

use crate::SchedProblem;
use std::sync::{Arc, Mutex};

/// Sentinel for "no path in the dependence graph" (the paper's −∞).
///
/// Chosen far from `i64::MIN` so sums of path weights cannot overflow.
pub const NO_PATH: i64 = i64::MIN / 4;

/// For each pair of operations `x` and `y`, `MinDist(x, y)` is the minimum
/// number of cycles (possibly negative) by which `x` must precede `y` in
/// any feasible schedule, or [`NO_PATH`] if the dependence graph has no
/// path from `x` to `y`.
///
/// Computing MinDist is an all-pairs *longest*-paths problem over arcs of
/// weight `latency − ω·II`; because `II ≥ RecMII` makes every cycle weight
/// non-positive, the computation is well defined (§4.1). The matrix depends
/// only on `(problem, II)`, so within one scheduling run it is computed at
/// most once per candidate II — see [`MinDistCache`].
#[derive(Clone, Debug)]
pub struct MinDist {
    n: usize,
    ii: u32,
    feasible: bool,
    d: Vec<i64>,
    reach: Reachability,
}

/// Compact reachability index over a [`MinDist`] matrix: per node, the
/// CSR lists of `(other, distance)` pairs whose cell is not [`NO_PATH`],
/// diagonal excluded — the transitive closure of the dependence graph,
/// annotated with the longest-path distances at the matrix's II.
///
/// Dependence graphs are sparse, so most matrix cells are `NO_PATH`; the
/// scheduling engine's bound maintenance iterates these lists instead of
/// probing whole matrix rows. Distances ride along in the pairs so the
/// hot loops never re-probe the dense matrix. Built once per materialized
/// matrix (O(n²), trivial next to the Floyd–Warshall or envelope
/// evaluation that produced it) and shared through the matrix's `Arc`.
#[derive(Clone, Debug, Default)]
pub struct Reachability {
    /// `succs[succ_offsets[x]..succ_offsets[x+1]]` = the `(y, MinDist(x, y))`
    /// pairs with a path `x → y`.
    succ_offsets: Vec<u32>,
    succs: Vec<(u32, i64)>,
    /// `preds[pred_offsets[y]..pred_offsets[y+1]]` = the `(x, MinDist(x, y))`
    /// pairs with a path `x → y`.
    pred_offsets: Vec<u32>,
    preds: Vec<(u32, i64)>,
}

impl Reachability {
    /// Builds both CSR sides from a dense `n × n` matrix.
    fn build(n: usize, d: &[i64]) -> Self {
        debug_assert_eq!(d.len(), n * n);
        let mut succ_offsets = vec![0u32; n + 1];
        let mut pred_offsets = vec![0u32; n + 1];
        for x in 0..n {
            for y in 0..n {
                if x != y && d[x * n + y] != NO_PATH {
                    succ_offsets[x + 1] += 1;
                    pred_offsets[y + 1] += 1;
                }
            }
        }
        for i in 0..n {
            succ_offsets[i + 1] += succ_offsets[i];
            pred_offsets[i + 1] += pred_offsets[i];
        }
        let mut succs = vec![(0u32, 0i64); succ_offsets[n] as usize];
        let mut preds = vec![(0u32, 0i64); pred_offsets[n] as usize];
        let mut succ_cursor: Vec<u32> = succ_offsets[..n].to_vec();
        let mut pred_cursor: Vec<u32> = pred_offsets[..n].to_vec();
        for x in 0..n {
            for y in 0..n {
                let w = d[x * n + y];
                if x != y && w != NO_PATH {
                    succs[succ_cursor[x] as usize] = (y as u32, w);
                    succ_cursor[x] += 1;
                    preds[pred_cursor[y] as usize] = (x as u32, w);
                    pred_cursor[y] += 1;
                }
            }
        }
        Self {
            succ_offsets,
            succs,
            pred_offsets,
            preds,
        }
    }

    /// The `(y, MinDist(x, y))` pairs reachable *from* `x` (`x` excluded).
    #[inline]
    pub fn succs(&self, x: usize) -> &[(u32, i64)] {
        &self.succs[self.succ_offsets[x] as usize..self.succ_offsets[x + 1] as usize]
    }

    /// The `(y, MinDist(y, x))` pairs that reach `x` (`x` excluded).
    #[inline]
    pub fn preds(&self, x: usize) -> &[(u32, i64)] {
        &self.preds[self.pred_offsets[x] as usize..self.pred_offsets[x + 1] as usize]
    }

    /// Total reachable (off-diagonal, non-`NO_PATH`) cells in the matrix.
    pub fn cells(&self) -> usize {
        self.succs.len()
    }
}

impl MinDist {
    /// Computes the relation for `problem` at candidate initiation interval
    /// `ii` with Floyd–Warshall over all nodes including `Start`/`Stop`.
    ///
    /// `MinDist(x, x)` is fixed at 0 for every operation, as in the paper;
    /// if `ii < RecMII` some diagonal entry would want to be positive, which
    /// [`is_feasible`](Self::is_feasible) reports.
    pub fn compute(problem: &SchedProblem<'_>, ii: u32) -> Self {
        Self::compute_into(problem, ii, Vec::new())
    }

    /// Like [`compute`](Self::compute) but recycles `buf` as the matrix
    /// storage, avoiding a fresh allocation when a same-size buffer from an
    /// earlier II attempt is available.
    pub fn compute_into(problem: &SchedProblem<'_>, ii: u32, mut buf: Vec<i64>) -> Self {
        assert!(ii > 0, "II must be positive");
        let n = problem.num_nodes();
        buf.clear();
        buf.resize(n * n, NO_PATH);
        let mut d = buf;
        for arc in problem.arcs() {
            let idx = arc.from * n + arc.to;
            d[idx] = d[idx].max(arc.weight(ii));
        }
        let mut feasible = true;
        for i in 0..n {
            // A positive self-arc weight means even II is too small for a
            // trivial circuit; record infeasibility but pin the diagonal.
            if d[i * n + i] > 0 {
                feasible = false;
            }
            d[i * n + i] = d[i * n + i].max(0);
        }
        for k in 0..n {
            // Row k contributes through via = d[i][k] + d[k][j]; if its only
            // finite entry is the zero diagonal, every candidate collapses to
            // d[i][k] + 0 <= d[i][k] and the whole pass is a no-op. Dependence
            // graphs are sparse, so many rows (e.g. Stop, stores) skip here.
            let row = &d[k * n..k * n + n];
            let useful = row
                .iter()
                .enumerate()
                .any(|(j, &w)| w != NO_PATH && (j != k || w != 0));
            if !useful {
                continue;
            }
            for i in 0..n {
                let dik = d[i * n + k];
                if dik == NO_PATH {
                    continue;
                }
                let (row_k, row_i) = if i < k {
                    let (a, b) = d.split_at_mut(k * n);
                    (&b[..n], &mut a[i * n..i * n + n])
                } else if i > k {
                    let (a, b) = d.split_at_mut(i * n);
                    (&a[k * n..k * n + n], &mut b[..n])
                } else {
                    continue; // i == k: d[i][k] + d[k][j] = d[i][j] already
                };
                for j in 0..n {
                    if row_k[j] != NO_PATH {
                        let via = dik + row_k[j];
                        if via > row_i[j] {
                            row_i[j] = via;
                        }
                    }
                }
            }
        }
        for i in 0..n {
            if d[i * n + i] > 0 {
                feasible = false;
                d[i * n + i] = 0;
            }
        }
        let reach = Reachability::build(n, &d);
        Self {
            n,
            ii,
            feasible,
            d,
            reach,
        }
    }

    /// The II this matrix was computed for.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// False when some recurrence circuit is longer than `ω·II` at this II —
    /// i.e. `ii < RecMII` — so no feasible schedule exists.
    pub fn is_feasible(&self) -> bool {
        self.feasible
    }

    /// `MinDist(x, y)`, or [`NO_PATH`] when the graph has no `x → y` path.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> i64 {
        debug_assert!(x < self.n && y < self.n);
        self.d[x * self.n + y]
    }

    /// The matrix's reachability index: per node, the compact successor
    /// and predecessor lists of non-[`NO_PATH`] cells.
    #[inline]
    pub fn reach(&self) -> &Reachability {
        &self.reach
    }

    /// Recovers the matrix storage, for recycling through
    /// [`compute_into`](Self::compute_into) or
    /// [`ParametricMinDist::materialize_into`].
    pub fn into_buf(self) -> Vec<i64> {
        self.d
    }
}

/// Cells whose envelope outgrows this abandon the parametric construction
/// (the problem falls back to per-II Floyd–Warshall). With pruning
/// restricted to `[RecMII − 1, ∞)` envelopes stay tiny — repeated
/// traversals of one recurrence circuit are concurrent lines through
/// `(L/ω, value)` and collapse to two hull members, and path families
/// that only win at small IIs never enter the hull — so the cap exists
/// only to bound pathological inputs.
const MAX_ENVELOPE: usize = 64;

/// Prunes a candidate set of `(latency, distance)` lines to the convex
/// upper envelope of `II ↦ latency − distance·II` over the domain
/// `II ≥ low`.
///
/// Pruning is a congruence for the envelope-valued Floyd–Warshall: if a
/// line is pointwise dominated by the set's maximum on `[low, ∞)`, every
/// sum involving it is dominated by the corresponding sums, so dropping
/// it mid-computation never changes any later pointwise maximum on that
/// domain. The choice of `low` is the whole game: over `[1, ∞)` corpus
/// loops keep 30–60 hull lines per cell and the construction drowns;
/// over `[RecMII − 1, ∞)` — one step below the only IIs the envelope is
/// ever evaluated at — almost everything collapses into the cell's best
/// line or two. `low` must sit strictly below RecMII, not at it: at
/// feasible IIs the diagonal's `(0, 0)` line dominates every cycle line,
/// and pruning the cycles away would destroy the analytic RecMII. One
/// step below, the cycle whose crossing point *is* RecMII still beats
/// `(0, 0)` and survives.
fn prune_envelope(cand: &mut Vec<(i64, i64)>, low: i64) {
    // One line per distance: the largest latency (descending distance =
    // ascending slope order for the hull sweep below).
    cand.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(b.0.cmp(&a.0)));
    cand.dedup_by(|next, prev| next.1 == prev.1);
    if cand.len() <= 1 {
        return;
    }
    // Upper-hull sweep over lines in ascending-slope order. With
    // a, b, c adjacent and slope(a) < slope(b) < slope(c), b is redundant
    // exactly when c overtakes a no later than b does:
    // (La−Lc)/(da−dc) ≤ (La−Lb)/(da−db), cross-multiplied to stay in
    // integers (both denominators are positive).
    let mut m = 0usize;
    for i in 0..cand.len() {
        let c = cand[i];
        while m >= 2 {
            let a = cand[m - 2];
            let b = cand[m - 1];
            let lhs = i128::from(a.0 - c.0) * i128::from(a.1 - b.1);
            let rhs = i128::from(a.0 - b.0) * i128::from(a.1 - c.1);
            if lhs <= rhs {
                m -= 1;
            } else {
                break;
            }
        }
        cand[m] = c;
        m += 1;
    }
    cand.truncate(m);
    // Hull segments run left to right in index order; restrict to
    // II ≥ low by dropping leading lines already overtaken at the edge.
    let eval = |(lat, dist): (i64, i64)| lat - dist * low;
    let mut start = 0usize;
    while start + 1 < cand.len() && eval(cand[start + 1]) >= eval(cand[start]) {
        start += 1;
    }
    if start > 0 {
        cand.drain(..start);
    }
}

/// The parametric MinDist: per `(x, y)`, the convex upper envelope of
/// `(latency, distance)` pairs over all dependence paths, computed once
/// per problem by an envelope-valued Floyd–Warshall.
///
/// For `II ≥ RecMII` the envelope maximum equals the fixed-II
/// Floyd–Warshall entry exactly: every cycle weight is non-positive
/// there, so the longest *walk* the relaxation closes over is realized
/// by a simple path, and all simple paths are in the envelope. Below
/// RecMII walk values diverge and the envelope is not a valid MinDist —
/// [`MinDistCache`] falls back to Floyd–Warshall for those IIs.
#[derive(Clone, Debug)]
pub struct ParametricMinDist {
    n: usize,
    rec_mii: u32,
    /// CSR-style cell index: pairs of cell `(x, y)` live at
    /// `pairs[offsets[x·n+y] .. offsets[x·n+y+1]]`; an empty range means
    /// no path.
    offsets: Vec<u32>,
    pairs: Vec<(i64, i64)>,
}

impl ParametricMinDist {
    /// Builds the envelope matrix for `problem`, or `None` when some
    /// cell's envelope exceeds [`MAX_ENVELOPE`] (callers then keep using
    /// the per-II Floyd–Warshall).
    pub fn compute(problem: &SchedProblem<'_>) -> Option<Self> {
        let n = problem.num_nodes();
        // Envelopes are pruned over [RecMII − 1, ∞): the matrix is only
        // ever evaluated at II ≥ RecMII, and keeping one II of margin
        // below preserves exactly the cycle lines whose crossing points
        // determine RecMII (see `prune_envelope`). The problem's RecMII
        // comes from the independent min-ratio circuit analysis; the
        // derivation below re-obtains it from the pruned diagonal.
        let low = i64::from(problem.rec_mii()).max(2) - 1;
        let mut cells: Vec<Vec<(i64, i64)>> = vec![Vec::new(); n * n];
        for arc in problem.arcs() {
            cells[arc.from * n + arc.to].push((arc.latency, i64::from(arc.omega)));
        }
        for i in 0..n {
            // The empty path: mirrors the fixed-II diagonal pin at 0.
            cells[i * n + i].push((0, 0));
        }
        for cell in &mut cells {
            prune_envelope(cell, low);
        }
        // Structure-of-arrays mirror of each cell's *first* hull line —
        // the winner at the domain edge (`prune_envelope` trims the hull
        // so index 0 attains the maximum at `low`): its value at `low`
        // (`i64::MIN` = no path), its distance, and the cell's line
        // count. The hot no-improvement test below then reads three flat
        // arrays instead of chasing `Vec<Vec>` pointers, which keeps the
        // envelope Floyd–Warshall within a small factor of the fixed-II
        // one when (as on real loops) almost every cell is one line.
        let mut val = vec![i64::MIN; n * n];
        let mut dst = vec![0i64; n * n];
        let mut env = vec![0u32; n * n];
        for (idx, cell) in cells.iter().enumerate() {
            if let Some(&(lat, dist)) = cell.first() {
                val[idx] = lat - dist * low;
                dst[idx] = dist;
            }
            env[idx] = u32::try_from(cell.len()).ok()?;
        }
        let sync = |cells: &[Vec<(i64, i64)>],
                    val: &mut [i64],
                    dst: &mut [i64],
                    env: &mut [u32],
                    idx: usize| {
            let (lat, dist) = cells[idx][0];
            val[idx] = lat - dist * low;
            dst[idx] = dist;
            env[idx] = cells[idx].len() as u32;
        };
        let mut scratch: Vec<(i64, i64)> = Vec::new();
        for k in 0..n {
            // Mirrors the fixed-II usefulness skip: a row whose only line
            // is the trivial diagonal cannot improve any cell.
            let useful = (0..n).any(|j| {
                let c = &cells[k * n + j];
                !c.is_empty() && (j != k || *c != [(0, 0)])
            });
            if !useful {
                continue;
            }
            for i in 0..n {
                let ik = i * n + k;
                if i == k || val[ik] == i64::MIN {
                    continue;
                }
                let (va, da, one_a) = (val[ik], dst[ik], env[ik] == 1);
                for j in 0..n {
                    if j == k {
                        continue;
                    }
                    let kj = k * n + j;
                    let vb = val[kj];
                    if vb == i64::MIN {
                        continue;
                    }
                    let ij = i * n + j;
                    if one_a && env[kj] == 1 {
                        // The single candidate line, compared against the
                        // cell's edge winner — the envelope analogue of
                        // the fixed-II `via > d[i][j]` test. A line `c`
                        // is pointwise dominated on [low, ∞) by `e` iff
                        // `d_e ≤ d_c` (slope) and `e` wins at the edge.
                        let vc = va + vb;
                        let dc = da + dst[kj];
                        if dst[ij] <= dc && val[ij] >= vc {
                            continue;
                        }
                        if env[ij] <= 1 {
                            // Two-line hull, resolved inline: the edge
                            // winner does not dominate `c`, so either `c`
                            // dominates it (replace) or the lines cross
                            // right of `low` (keep both, steeper — larger
                            // distance — first, as it wins at the edge).
                            let a = cells[ik][0];
                            let b = cells[kj][0];
                            let c = (a.0 + b.0, a.1 + b.1);
                            let cell = &mut cells[ij];
                            match cell.first().copied() {
                                None => cell.push(c),
                                Some(e) if c.1 <= e.1 && vc >= val[ij] => cell[0] = c,
                                Some(e) if c.1 > e.1 => cell.insert(0, c),
                                Some(_) => cell.push(c),
                            }
                            sync(&cells, &mut val, &mut dst, &mut env, ij);
                            continue;
                        }
                    }
                    // Some cell holds a real envelope: check every line
                    // combination for one the cell does not dominate —
                    // when all are dominated the prune below would drop
                    // them, so skip the merge and the write.
                    let cell_ij = &cells[ij];
                    let improves = cells[ik].iter().any(|&(la, da)| {
                        cells[kj].iter().any(|&(lb, db)| {
                            let (lc, dc) = (la + lb, da + db);
                            !cell_ij
                                .iter()
                                .any(|&(le, de)| de <= dc && le - de * low >= lc - dc * low)
                        })
                    });
                    if !improves {
                        continue;
                    }
                    // Row k and column k are never written during
                    // iteration k (i == k and j == k are skipped), so the
                    // reads below see iteration k−1 values, as
                    // Floyd–Warshall requires.
                    scratch.clear();
                    scratch.extend_from_slice(&cells[ij]);
                    for &(la, da) in &cells[ik] {
                        for &(lb, db) in &cells[kj] {
                            scratch.push((la + lb, da + db));
                        }
                    }
                    prune_envelope(&mut scratch, low);
                    if scratch.len() > MAX_ENVELOPE {
                        return None;
                    }
                    let cell = &mut cells[ij];
                    cell.clear();
                    cell.extend_from_slice(&scratch);
                    sync(&cells, &mut val, &mut dst, &mut env, ij);
                }
            }
        }
        // RecMII is analytic: the smallest II at which no diagonal line
        // is positive, i.e. max over cycle lines of ⌈lat/dist⌉. Pruning
        // preserved the pointwise maximum on [low, ∞) with low strictly
        // below RecMII, so every surviving positive line crosses zero in
        // (low, RecMII] and the maximum crossing is exactly RecMII —
        // re-deriving, from the hull, what min-ratio circuit analysis
        // computed for the problem.
        let mut rec_mii = 1u32;
        for i in 0..n {
            for &(lat, dist) in &cells[i * n + i] {
                if lat <= 0 {
                    continue;
                }
                if dist == 0 {
                    // A positive zero-ω circuit: no II works. Problem
                    // construction rejects these; bail defensively.
                    return None;
                }
                // ⌈lat/dist⌉ with both strictly positive.
                rec_mii = rec_mii.max(u32::try_from((lat + dist - 1) / dist).ok()?);
            }
        }
        let mut offsets = Vec::with_capacity(n * n + 1);
        let mut pairs = Vec::new();
        offsets.push(0u32);
        for cell in &cells {
            pairs.extend_from_slice(cell);
            offsets.push(u32::try_from(pairs.len()).ok()?);
        }
        Some(Self {
            n,
            rec_mii,
            offsets,
            pairs,
        })
    }

    /// The smallest II at which every recurrence circuit fits — equal to
    /// [`SchedProblem::rec_mii`], but read off the envelope diagonal.
    pub fn rec_mii(&self) -> u32 {
        self.rec_mii
    }

    /// The envelope for one cell: `(latency, distance)` per surviving
    /// path family, empty when the graph has no `x → y` path.
    pub fn envelope(&self, x: usize, y: usize) -> &[(i64, i64)] {
        debug_assert!(x < self.n && y < self.n);
        let idx = x * self.n + y;
        &self.pairs[self.offsets[idx] as usize..self.offsets[idx + 1] as usize]
    }

    /// The largest per-cell envelope — a diagnostic for how far the
    /// matrix is from the common 1–2 lines per cell.
    pub fn max_envelope_len(&self) -> usize {
        (0..self.n * self.n)
            .map(|idx| (self.offsets[idx + 1] - self.offsets[idx]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// `MinDist(x, y)` at `ii`, evaluated from the envelope. Exact for
    /// `ii ≥ RecMII`.
    #[inline]
    pub fn eval(&self, x: usize, y: usize, ii: u32) -> i64 {
        let lines = self.envelope(x, y);
        if lines.is_empty() {
            return NO_PATH;
        }
        let at = i64::from(ii);
        let mut best = i64::MIN;
        for &(lat, dist) in lines {
            best = best.max(lat - dist * at);
        }
        best
    }

    /// Evaluates the whole envelope at `ii` into a dense [`MinDist`],
    /// recycling `buf` as the matrix storage. O(n²·envelope) instead of
    /// the Floyd–Warshall's O(n³).
    ///
    /// # Panics
    ///
    /// Panics when `ii < RecMII` — the envelope is only a valid MinDist
    /// at feasible IIs.
    pub fn materialize_into(&self, ii: u32, mut buf: Vec<i64>) -> MinDist {
        assert!(
            ii >= self.rec_mii,
            "parametric MinDist materialized below RecMII"
        );
        let n = self.n;
        buf.clear();
        buf.resize(n * n, NO_PATH);
        let x = i64::from(ii);
        for (idx, slot) in buf.iter_mut().enumerate() {
            let lo = self.offsets[idx] as usize;
            let hi = self.offsets[idx + 1] as usize;
            if lo == hi {
                continue;
            }
            let mut best = i64::MIN;
            for &(lat, dist) in &self.pairs[lo..hi] {
                best = best.max(lat - dist * x);
            }
            *slot = best;
        }
        let reach = Reachability::build(n, &buf);
        MinDist {
            n,
            ii,
            feasible: true,
            d: buf,
            reach,
        }
    }
}

/// Counters describing how a [`MinDistCache`] served its requests.
///
/// `misses == fw_computes + materializations` always: every miss builds
/// exactly one dense matrix, by Floyd–Warshall or by evaluating the
/// parametric envelope.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinDistCacheStats {
    /// Requests answered from an already-built matrix.
    pub hits: u64,
    /// Requests that had to produce a new matrix.
    pub misses: u64,
    /// Misses served by a full fixed-II Floyd–Warshall.
    pub fw_computes: u64,
    /// Parametric envelope constructions attempted (at most one per
    /// problem, triggered by the fourth distinct II).
    pub parametric_builds: u64,
    /// Misses served by evaluating the parametric envelope at the II.
    pub materializations: u64,
}

/// Where the cache stands on the per-problem parametric matrix.
#[derive(Default)]
enum ParametricState {
    /// Fewer than four distinct IIs seen — no real sweep under way yet.
    #[default]
    NotBuilt,
    /// Built; misses at `II ≥ RecMII` materialize from it.
    Ready(Arc<ParametricMinDist>),
    /// Construction overflowed [`MAX_ENVELOPE`]; always use Floyd–Warshall.
    Unavailable,
}

#[derive(Default)]
struct CacheInner {
    /// Computed matrices for this problem, keyed by II. IIs are probed in a
    /// short monotone sequence per evaluation, so a small vector beats a map.
    entries: Vec<(u32, Arc<MinDist>)>,
    /// Retired matrix buffers available for reuse by the next compute.
    pool: Vec<Vec<i64>>,
    parametric: ParametricState,
    stats: MinDistCacheStats,
}

/// Shares one [`MinDist`] per `(problem, II)` across everything that needs
/// it during a scheduling run: the scheduling engine's II search, pressure
/// measurement, the MinAvg bound, and diagnostic reports.
///
/// The cache is two-tiered. The first three distinct IIs pay plain
/// Floyd–Warshalls — the single-II fast path (most corpus loops schedule
/// straight at MII) and short escalations both cost exactly what they
/// used to, and the envelope build costs a few Floyd–Warshalls so it
/// must not fire for them. The *fourth* distinct II signals a real
/// escalation sweep: the cache builds the [`ParametricMinDist`] envelope
/// once, and from then on every new II materializes in O(n²·envelope)
/// instead of O(n³). IIs below the parametric RecMII (and problems whose
/// envelope overflows) fall back to Floyd–Warshall, so every entry is
/// bit-identical to the direct computation either way.
///
/// The cache is keyed by II only, so one cache must serve exactly one
/// [`SchedProblem`] — create a fresh cache per problem (they are cheap) or
/// call [`reset`](Self::reset) between problems to recycle the matrix
/// buffers. Interior mutability makes `get` usable through a shared
/// reference, and the lock is held across the compute so concurrent callers
/// asking for the same II still trigger exactly one build.
#[derive(Default)]
pub struct MinDistCache {
    inner: Mutex<CacheInner>,
}

impl MinDistCache {
    /// An empty cache with no retained buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// The matrix for `(problem, ii)`, computing it on first request and
    /// returning the shared copy on every later one.
    pub fn get(&self, problem: &SchedProblem<'_>, ii: u32) -> Arc<MinDist> {
        let mut guard = self.inner.lock().expect("MinDist cache poisoned");
        let inner = &mut *guard;
        if let Some((_, md)) = inner.entries.iter().find(|(key, _)| *key == ii) {
            inner.stats.hits += 1;
            return Arc::clone(md);
        }
        inner.stats.misses += 1;
        if matches!(inner.parametric, ParametricState::NotBuilt) && inner.entries.len() >= 3 {
            // Fourth distinct II: a real escalation sweep is under way —
            // build the envelope once and serve the rest of the sweep
            // from it. The build costs a few Floyd–Warshalls, so the
            // threshold sits where the corpus's distinct-II distribution
            // says it pays: short escalations (two or three IIs, the vast
            // majority) must not fund a build they cannot amortize, while
            // loops still escalating at the fourth II almost always keep
            // going, and they are exactly the expensive tail.
            inner.stats.parametric_builds += 1;
            inner.parametric = match ParametricMinDist::compute(problem) {
                Some(p) => ParametricState::Ready(Arc::new(p)),
                None => ParametricState::Unavailable,
            };
        }
        let buf = inner.pool.pop().unwrap_or_default();
        let md = match &inner.parametric {
            ParametricState::Ready(p) if ii >= p.rec_mii() => {
                inner.stats.materializations += 1;
                Arc::new(p.materialize_into(ii, buf))
            }
            _ => {
                inner.stats.fw_computes += 1;
                Arc::new(MinDist::compute_into(problem, ii, buf))
            }
        };
        inner.entries.push((ii, Arc::clone(&md)));
        md
    }

    /// How many matrices were actually computed (cache misses) so far.
    /// Survives [`reset`](Self::reset), so a corpus run can assert it equals
    /// the number of distinct `(problem, II)` pairs encountered.
    pub fn computed(&self) -> u64 {
        let inner = self.inner.lock().expect("MinDist cache poisoned");
        inner.stats.fw_computes + inner.stats.materializations
    }

    /// A snapshot of the request counters. Like [`computed`](Self::computed)
    /// the counters survive [`reset`](Self::reset), so they aggregate over
    /// every problem a recycled cache served.
    pub fn stats(&self) -> MinDistCacheStats {
        self.inner.lock().expect("MinDist cache poisoned").stats
    }

    /// True once the parametric envelope is built and serving this problem.
    pub fn has_parametric(&self) -> bool {
        matches!(
            self.inner
                .lock()
                .expect("MinDist cache poisoned")
                .parametric,
            ParametricState::Ready(_)
        )
    }

    /// Drops all entries so the cache can serve a different problem, moving
    /// each matrix buffer that is no longer shared into the reuse pool.
    /// The parametric envelope is dropped too (it belongs to the problem);
    /// the counters survive.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("MinDist cache poisoned");
        inner.parametric = ParametricState::NotBuilt;
        let entries = std::mem::take(&mut inner.entries);
        for (_, md) in entries {
            if let Ok(md) = Arc::try_unwrap(md) {
                inner.pool.push(md.d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_ir::{LoopBuilder, OpKind, ValueType};
    use lsms_machine::huff_machine;

    /// load -> fadd -> store chain.
    fn chain_body() -> lsms_ir::LoopBody {
        let mut b = LoopBuilder::new("chain");
        let a = b.invariant(ValueType::Addr, "a");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let ld = b.op(OpKind::Load, &[a], Some(x));
        let add = b.op(OpKind::FAdd, &[x, x], Some(y));
        let st = b.op(OpKind::Store, &[a, y], None);
        b.flow_dep(ld, add, 0);
        b.flow_dep(add, st, 0);
        b.finish()
    }

    #[test]
    fn chain_distances_accumulate_latencies() {
        let body = chain_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let md = MinDist::compute(&p, 1);
        assert!(md.is_feasible());
        assert_eq!(md.get(0, 1), 13); // load latency
        assert_eq!(md.get(0, 2), 14); // + fadd latency
        assert_eq!(md.get(2, 0), NO_PATH);
        // Start -> store via the chain beats the direct 0-arc.
        assert_eq!(md.get(p.start(), 2), 14);
        // store -> Stop carries the store latency.
        assert_eq!(md.get(2, p.stop()), 1);
        assert_eq!(md.get(p.start(), p.stop()), 15);
    }

    #[test]
    fn omega_discounts_by_ii() {
        // fadd feeding itself two iterations later via a partner op.
        let mut b = LoopBuilder::new("rec");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let o1 = b.op(OpKind::FAdd, &[y, y], Some(x));
        let o2 = b.op(OpKind::FMul, &[x, x], Some(y));
        b.flow_dep(o1, o2, 0); // latency 1
        b.flow_dep(o2, o1, 2); // latency 2, omega 2
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        // Circuit length 3, omega 2: RecMII = ceil(3/2) = 2.
        assert_eq!(p.rec_mii(), 2);
        let md = MinDist::compute(&p, 2);
        assert!(md.is_feasible());
        assert_eq!(md.get(0, 1), 1);
        assert_eq!(md.get(1, 0), 2 - 2 * 2); // latency 2 − ω·II
        let md3 = MinDist::compute(&p, 3);
        assert_eq!(md3.get(1, 0), 2 - 2 * 3);
    }

    #[test]
    fn infeasible_ii_is_reported() {
        let mut b = LoopBuilder::new("rec");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let o1 = b.op(OpKind::FMul, &[y, y], Some(x)); // latency 2
        let o2 = b.op(OpKind::FMul, &[x, x], Some(y)); // latency 2
        b.flow_dep(o1, o2, 0);
        b.flow_dep(o2, o1, 1);
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        assert_eq!(p.rec_mii(), 4);
        assert!(!MinDist::compute(&p, 3).is_feasible());
        assert!(MinDist::compute(&p, 4).is_feasible());
    }

    #[test]
    fn diagonal_is_zero() {
        let body = chain_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let md = MinDist::compute(&p, 5);
        for i in 0..p.num_nodes() {
            assert_eq!(md.get(i, i), 0);
        }
    }

    #[test]
    fn estart_lstart_shape_on_sample() {
        // Estart(x) = MinDist(Start, x) is non-negative for every op.
        let body = chain_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let md = MinDist::compute(&p, 3);
        for i in 0..p.num_real_ops() {
            assert!(md.get(p.start(), i) >= 0);
            assert!(md.get(i, p.stop()) >= 0);
        }
    }

    #[test]
    fn cache_computes_each_ii_once_and_recycles_buffers() {
        let body = chain_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let cache = MinDistCache::new();
        let a = cache.get(&p, 3);
        let b = cache.get(&p, 3);
        let c = cache.get(&p, 4);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.computed(), 2);
        assert_eq!(a.get(0, 1), 13);
        // After dropping the outstanding handles, reset pools the buffers
        // and the next compute still answers correctly.
        drop((a, b, c));
        cache.reset();
        let d = cache.get(&p, 3);
        assert_eq!(d.get(0, 1), 13);
        assert_eq!(cache.computed(), 3);
    }

    /// Asserts every entry (and the feasibility flag) of a materialized
    /// matrix against the Floyd–Warshall oracle at the same II.
    fn assert_matches_oracle(p: &SchedProblem<'_>, md: &MinDist, ii: u32) {
        let oracle = MinDist::compute(p, ii);
        assert_eq!(md.is_feasible(), oracle.is_feasible(), "feasible at {ii}");
        for x in 0..p.num_nodes() {
            for y in 0..p.num_nodes() {
                assert_eq!(md.get(x, y), oracle.get(x, y), "({x},{y}) at II {ii}");
            }
        }
    }

    #[test]
    fn parametric_matches_floyd_warshall_on_chain() {
        let body = chain_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let pm = ParametricMinDist::compute(&p).expect("tiny envelope");
        assert_eq!(pm.rec_mii(), p.rec_mii().max(1));
        for ii in pm.rec_mii()..pm.rec_mii() + 9 {
            assert_matches_oracle(&p, &pm.materialize_into(ii, Vec::new()), ii);
        }
    }

    #[test]
    fn parametric_rec_mii_is_analytic() {
        // The infeasible_ii_is_reported recurrence: RecMII = 4.
        let mut b = LoopBuilder::new("rec");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let o1 = b.op(OpKind::FMul, &[y, y], Some(x));
        let o2 = b.op(OpKind::FMul, &[x, x], Some(y));
        b.flow_dep(o1, o2, 0);
        b.flow_dep(o2, o1, 1);
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let pm = ParametricMinDist::compute(&p).expect("tiny envelope");
        assert_eq!(pm.rec_mii(), 4);
        assert_eq!(pm.rec_mii(), p.rec_mii());
        for ii in 4..10 {
            assert_matches_oracle(&p, &pm.materialize_into(ii, Vec::new()), ii);
            for x in 0..p.num_nodes() {
                for y in 0..p.num_nodes() {
                    assert_eq!(pm.eval(x, y, ii), MinDist::compute(&p, ii).get(x, y));
                }
            }
        }
    }

    #[test]
    fn envelope_prune_keeps_the_pointwise_maximum() {
        // Concurrent lines from repeating a (3, 2) cycle: all meet at
        // x = 3/2, so only the extremes survive.
        let mut cand = vec![(0, 0), (3, 2), (6, 4), (9, 6)];
        prune_envelope(&mut cand, 1);
        for x in 1..12i64 {
            let pruned = cand.iter().map(|&(l, d)| l - d * x).max().unwrap();
            let full = [(0, 0), (3, 2), (6, 4), (9, 6)]
                .iter()
                .map(|&(l, d): &(i64, i64)| l - d * x)
                .max()
                .unwrap();
            assert_eq!(pruned, full, "at x = {x}");
        }
        assert!(cand.len() <= 2, "concurrent lines must collapse: {cand:?}");
        // A line dominated everywhere on x >= 1 disappears.
        let mut dominated = vec![(10, 2), (0, 5)];
        prune_envelope(&mut dominated, 1);
        assert_eq!(dominated, vec![(10, 2)]);
        // A steep line that wins below the domain edge but never on it is
        // dropped once the edge moves right of the crossover.
        let mut edge = vec![(12, 1), (20, 5)];
        prune_envelope(&mut edge, 1);
        assert_eq!(edge, vec![(20, 5), (12, 1)], "crossover at x = 2 kept");
        let mut edge = vec![(12, 1), (20, 5)];
        prune_envelope(&mut edge, 3);
        assert_eq!(edge, vec![(12, 1)], "steep line loses everywhere at x >= 3");
    }

    #[test]
    fn cache_builds_parametric_on_fourth_distinct_ii() {
        let body = chain_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let cache = MinDistCache::new();
        let a = cache.get(&p, 3);
        assert!(!cache.has_parametric(), "one II is not a sweep");
        let _hit = cache.get(&p, 3);
        assert!(!cache.has_parametric(), "hits do not trigger the build");
        let b = cache.get(&p, 5);
        assert!(!cache.has_parametric(), "two IIs are not a sweep yet");
        let c = cache.get(&p, 6);
        assert!(!cache.has_parametric(), "three IIs are not a sweep yet");
        let d = cache.get(&p, 7);
        assert!(cache.has_parametric());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.fw_computes, 3);
        assert_eq!(stats.parametric_builds, 1);
        assert_eq!(stats.materializations, 1);
        assert_eq!(stats.misses, stats.fw_computes + stats.materializations);
        for (md, ii) in [(&a, 3), (&b, 5), (&c, 6), (&d, 7)] {
            assert_matches_oracle(&p, md, ii);
        }
        // Reset forgets the envelope (next problem may differ) but keeps
        // the counters.
        cache.reset();
        assert!(!cache.has_parametric());
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn cache_falls_back_to_floyd_warshall_below_rec_mii() {
        // RecMII = 4 recurrence; request 5, 6 and 8, then 3 — the fourth
        // distinct II builds the envelope, but 3 is infeasible and must
        // come from the FW fallback with the diagonal pinned and
        // feasibility reported. A fifth, feasible II materializes.
        let mut b = LoopBuilder::new("rec");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let o1 = b.op(OpKind::FMul, &[y, y], Some(x));
        let o2 = b.op(OpKind::FMul, &[x, x], Some(y));
        b.flow_dep(o1, o2, 0);
        b.flow_dep(o2, o1, 1);
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let cache = MinDistCache::new();
        let _ = cache.get(&p, 5);
        let _ = cache.get(&p, 6);
        let _ = cache.get(&p, 8);
        assert!(!cache.has_parametric());
        let low = cache.get(&p, 3);
        assert!(cache.has_parametric());
        assert!(!low.is_feasible());
        assert_matches_oracle(&p, &low, 3);
        let high = cache.get(&p, 7);
        assert_matches_oracle(&p, &high, 7);
        let stats = cache.stats();
        assert_eq!(stats.fw_computes, 4, "IIs 5, 6, 8 cold + II 3 fallback");
        assert_eq!(stats.materializations, 1, "II 7 from the envelope");
    }

    /// The reachability CSR must mirror the dense matrix exactly: every
    /// off-diagonal non-`NO_PATH` cell appears in both the successor and
    /// the predecessor list with the matrix's distance, and nothing else.
    fn assert_reach_mirrors_matrix(md: &MinDist) {
        let n = md.n;
        let r = md.reach();
        let mut cells = 0usize;
        for x in 0..n {
            for y in 0..n {
                let w = md.get(x, y);
                let in_succs = r.succs(x).contains(&(y as u32, w));
                let in_preds = r.preds(y).contains(&(x as u32, w));
                if x != y && w != NO_PATH {
                    cells += 1;
                    assert!(in_succs, "({x},{y}) missing from succs");
                    assert!(in_preds, "({x},{y}) missing from preds");
                } else {
                    assert!(!r.succs(x).iter().any(|&(z, _)| z as usize == y));
                    assert!(!r.preds(y).iter().any(|&(z, _)| z as usize == x));
                }
            }
        }
        assert_eq!(r.cells(), cells);
        assert_eq!(r.cells(), r.preds.len());
    }

    #[test]
    fn reachability_mirrors_the_matrix() {
        let body = chain_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let md = MinDist::compute(&p, 3);
        assert_reach_mirrors_matrix(&md);
        // The chain's closure: load reaches fadd, store and Stop.
        let succs_of_load: Vec<usize> = md
            .reach()
            .succs(0)
            .iter()
            .map(|&(y, _)| y as usize)
            .collect();
        assert!(succs_of_load.contains(&1));
        assert!(succs_of_load.contains(&2));
        assert!(succs_of_load.contains(&p.stop()));
        // Distances ride along so the engine never re-probes the matrix.
        assert!(md.reach().succs(0).contains(&(1, 13)));
        assert!(md.reach().preds(1).contains(&(0, 13)));
        // Nothing reaches the load except Start.
        assert_eq!(md.reach().preds(0).len(), 1);
        assert_eq!(md.reach().preds(0)[0].0 as usize, p.start());
    }

    #[test]
    fn materialized_reachability_matches_floyd_warshall() {
        // A recurrence keeps some cells NO_PATH and some negative; the
        // envelope-materialized matrix must index both identically to the
        // Floyd–Warshall tier.
        let mut b = LoopBuilder::new("rec");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let o1 = b.op(OpKind::FMul, &[y, y], Some(x));
        let o2 = b.op(OpKind::FMul, &[x, x], Some(y));
        b.flow_dep(o1, o2, 0);
        b.flow_dep(o2, o1, 1);
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let pm = ParametricMinDist::compute(&p).expect("tiny envelope");
        for ii in pm.rec_mii()..pm.rec_mii() + 4 {
            let materialized = pm.materialize_into(ii, Vec::new());
            assert_reach_mirrors_matrix(&materialized);
            assert_reach_mirrors_matrix(&MinDist::compute(&p, ii));
        }
    }

    #[test]
    fn compute_into_matches_compute() {
        let body = chain_body();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let fresh = MinDist::compute(&p, 2);
        // A dirty oversized buffer must not leak stale entries.
        let dirty = vec![42i64; 1000];
        let reused = MinDist::compute_into(&p, 2, dirty);
        assert_eq!(fresh.is_feasible(), reused.is_feasible());
        for x in 0..p.num_nodes() {
            for y in 0..p.num_nodes() {
                assert_eq!(fresh.get(x, y), reused.get(x, y));
            }
        }
    }
}
