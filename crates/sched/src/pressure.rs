//! Register-pressure accounting (§3.2, §5.1): lifetimes, the `LiveVector`,
//! `MaxLive`, and the schedule-independent `MinLT`/`MinAvg` lower bounds.
//!
//! Lifetimes follow the paper's Figure 3 convention: a value's register is
//! reserved from its defining operation's *issue* cycle until its last
//! use's issue cycle (`ω·II` later for cross-iteration uses), so the
//! length of `v`'s lifetime is `max over flow uses (time(u) + ω·II) −
//! time(d)`.
//!
//! Because register allocation for modulo-scheduled loops almost always
//! achieves `MaxLive` (§3.2, citing Rau et al. PLDI'92 — verified here by
//! `lsms-regalloc`), the paper approximates a schedule's register pressure
//! by `MaxLive`, and measures scheduler quality as `MaxLive − MinAvg`
//! (Figure 5).

use lsms_ir::{RegClass, ValueType};

use crate::mindist::NO_PATH;
use crate::{MinDist, MinDistCache, SchedProblem, Schedule};

/// Pressure measurements for one scheduled loop.
#[derive(Clone, Debug, PartialEq)]
pub struct PressureReport {
    /// The schedule's initiation interval.
    pub ii: u32,
    /// The RR-file `LiveVector`: simultaneously-live loop variants at each
    /// of the II kernel cycles.
    pub rr_live_vector: Vec<u32>,
    /// `MaxLive` for the RR file: the maximum of the `LiveVector` (§3.2).
    pub rr_max_live: u32,
    /// `MinAvg = Σ ⌈MinLT(v)/II⌉` over RR values: the schedule-independent
    /// lower bound on final RR pressure.
    pub rr_min_avg: u32,
    /// Total RR lifetime length; `AvgLive = total / II`.
    pub rr_total_lifetime: i64,
    /// Longest single RR lifetime under this schedule.
    pub rr_max_lifetime: i64,
    /// RR values that carry a lifetime (the denominator of the mean
    /// lifetime `rr_total_lifetime / rr_lifetime_count`).
    pub rr_lifetime_count: u32,
    /// `MaxLive` over source-level predicate values plus one stage
    /// predicate per kernel stage (the ICR file, Figure 8).
    pub icr_max_live: u32,
    /// Number of kernel stages (`⌈schedule length / II⌉`).
    pub stages: u32,
    /// Loop invariants occupying the GPR file (Figure 7).
    pub gprs: u32,
}

impl PressureReport {
    /// `AvgLive`: the LiveVector's average, `Σ lifetimes / II` (§3.2 —
    /// "MaxLive is usually very close to the LiveVector's average").
    pub fn rr_avg_live(&self) -> f64 {
        self.rr_total_lifetime as f64 / f64::from(self.ii)
    }

    /// Figure 5's metric: how far the schedule's RR pressure sits above
    /// the schedule-independent lower bound. Never negative: `MaxLive ≥
    /// ⌈AvgLive⌉ ≥ MinAvg`.
    pub fn excess(&self) -> i64 {
        i64::from(self.rr_max_live) - i64::from(self.rr_min_avg)
    }
}

/// `MinLT(v)` for every value at a given II: `max over flow deps (d→u, ω)`
/// of `ω·II + MinDist(d, u)` (§5.1); `None` for values without register
/// flow uses.
pub fn min_lifetimes(problem: &SchedProblem<'_>, md: &MinDist) -> Vec<Option<i64>> {
    let mut minlt = Vec::new();
    min_lifetimes_into(problem, md, &mut minlt);
    minlt
}

/// As [`min_lifetimes`], recycling `out` as the result storage so the
/// scheduling engine's II escalation does not allocate per attempt.
pub fn min_lifetimes_into(problem: &SchedProblem<'_>, md: &MinDist, out: &mut Vec<Option<i64>>) {
    let body = problem.body();
    let ii = i64::from(md.ii());
    out.clear();
    out.resize(body.values().len(), None);
    for dep in body.deps() {
        if !dep.is_register_flow() {
            continue;
        }
        let v = dep.value.expect("register flow arcs carry a value");
        let dist = md.get(dep.from.index(), dep.to.index());
        if dist == NO_PATH {
            continue;
        }
        let lt = i64::from(dep.omega) * ii + dist;
        let slot = &mut out[v.index()];
        *slot = Some(slot.map_or(lt, |old: i64| old.max(lt)));
    }
}

/// The schedule-independent `MinAvg` lower bound on RR pressure at a
/// given II: `⌈Σ MinLT(v) / II⌉` over loop variants in the RR file.
///
/// This is a *strict* lower bound on any schedule's MaxLive, via the
/// chain `MaxLive ≥ ⌈AvgLive⌉ = ⌈Σ LT(v)/II⌉ ≥ ⌈Σ MinLT(v)/II⌉` (§3.2's
/// three observations; the LiveVector's maximum dominates its average,
/// and every actual lifetime dominates its MinLT).
pub fn min_avg(problem: &SchedProblem<'_>, ii: u32) -> u32 {
    min_avg_cached(problem, ii, &MinDistCache::new())
}

/// As [`min_avg`] with a shared MinDist cache, so callers that already
/// scheduled at `ii` do not pay a second Floyd–Warshall.
pub fn min_avg_cached(problem: &SchedProblem<'_>, ii: u32, cache: &MinDistCache) -> u32 {
    let md = cache.get(problem, ii);
    let minlt = min_lifetimes(problem, &md);
    sum_ceil(problem, &minlt, ii, RegClass::Rr)
}

fn sum_ceil(
    problem: &SchedProblem<'_>,
    lifetimes: &[Option<i64>],
    ii: u32,
    class: RegClass,
) -> u32 {
    let total: u64 = problem
        .body()
        .values()
        .iter()
        .filter(|v| v.def.is_some() && v.reg_class() == class)
        .filter_map(|v| lifetimes[v.id.index()])
        .map(|lt| lt.max(0) as u64)
        .sum();
    total.div_ceil(u64::from(ii)) as u32
}

/// The actual lifetime length of every value under a schedule: `max over
/// flow uses (time(u) + ω·II) − time(d)`, or `None` for values with no
/// in-loop register flow use (their register dies immediately, or they are
/// invariants).
pub fn lifetimes(problem: &SchedProblem<'_>, schedule: &Schedule) -> Vec<Option<i64>> {
    let body = problem.body();
    let ii = i64::from(schedule.ii);
    let mut lt = vec![None; body.values().len()];
    for dep in body.deps() {
        if !dep.is_register_flow() {
            continue;
        }
        let v = dep.value.expect("register flow arcs carry a value");
        let span = schedule.times[dep.to.index()] + i64::from(dep.omega) * ii
            - schedule.times[dep.from.index()];
        let slot = &mut lt[v.index()];
        *slot = Some(slot.map_or(span, |old: i64| old.max(span)));
    }
    lt
}

/// Builds the `LiveVector` for values of `class`: wrap the lifetimes
/// generated by the first iteration around a vector of length II (§3.2,
/// Figure 4).
pub fn live_vector(
    problem: &SchedProblem<'_>,
    schedule: &Schedule,
    lifetimes: &[Option<i64>],
    class: RegClass,
) -> Vec<u32> {
    let ii = schedule.ii as usize;
    let mut vector = vec![0u32; ii];
    for v in problem.body().values() {
        if v.reg_class() != class {
            continue;
        }
        let Some(def) = v.def else { continue };
        let Some(lt) = lifetimes[v.id.index()] else {
            continue;
        };
        if lt <= 0 {
            continue;
        }
        let full = (lt as usize) / ii;
        let rem = (lt as usize) % ii;
        for slot in vector.iter_mut() {
            *slot += full as u32;
        }
        let begin = schedule.times[def.index()].rem_euclid(ii as i64) as usize;
        for k in 0..rem {
            vector[(begin + k) % ii] += 1;
        }
    }
    vector
}

/// Number of GPRs the loop occupies: loop invariants referenced by the
/// body, plus loop variants never defined inside the loop (live-in
/// scalars kept static). Schedule-independent.
pub fn gpr_count(problem: &SchedProblem<'_>) -> u32 {
    let body = problem.body();
    let mut used = vec![false; body.values().len()];
    for op in body.ops() {
        for v in op.reads() {
            used[v.index()] = true;
        }
    }
    body.values()
        .iter()
        .filter(|v| used[v.id.index()] && v.def.is_none() && v.ty != ValueType::Pred)
        .count() as u32
}

/// Measures a schedule's register pressure across all three register
/// files.
pub fn measure(problem: &SchedProblem<'_>, schedule: &Schedule) -> PressureReport {
    measure_cached(problem, schedule, &MinDistCache::new())
}

/// As [`measure`] with a shared MinDist cache: the matrix for
/// `schedule.ii` is almost always already present from the scheduling run
/// that produced the schedule.
pub fn measure_cached(
    problem: &SchedProblem<'_>,
    schedule: &Schedule,
    cache: &MinDistCache,
) -> PressureReport {
    let body = problem.body();
    let ii = schedule.ii;
    let lt = lifetimes(problem, schedule);
    let rr_live_vector = live_vector(problem, schedule, &lt, RegClass::Rr);
    let rr_max_live = rr_live_vector.iter().copied().max().unwrap_or(0);
    let mut rr_total_lifetime: i64 = 0;
    let mut rr_max_lifetime: i64 = 0;
    let mut rr_lifetime_count: u32 = 0;
    for l in body
        .values()
        .iter()
        .filter(|v| v.def.is_some() && v.reg_class() == RegClass::Rr)
        .filter_map(|v| lt[v.id.index()])
        .map(|l| l.max(0))
    {
        rr_total_lifetime += l;
        rr_max_lifetime = rr_max_lifetime.max(l);
        rr_lifetime_count += 1;
    }

    let md = cache.get(problem, ii);
    let minlt = min_lifetimes(problem, &md);
    let rr_min_avg = sum_ceil(problem, &minlt, ii, RegClass::Rr);

    let icr_vector = live_vector(problem, schedule, &lt, RegClass::Icr);
    let stages = schedule.stages();
    let icr_max_live = icr_vector.iter().copied().max().unwrap_or(0) + stages;

    let gprs = gpr_count(problem);

    lsms_trace::instant(
        "pressure.measured",
        &[
            ("ii", i64::from(ii)),
            ("max_live", i64::from(rr_max_live)),
            ("min_avg", i64::from(rr_min_avg)),
            ("stages", i64::from(stages)),
        ],
    );
    lsms_trace::add("pressure", "measurements", 1);
    lsms_trace::observe("pressure_max_live", u64::from(rr_max_live));
    lsms_trace::observe(
        "pressure_excess",
        u64::from(rr_max_live.saturating_sub(rr_min_avg)),
    );

    PressureReport {
        ii,
        rr_live_vector,
        rr_max_live,
        rr_min_avg,
        rr_total_lifetime,
        rr_max_lifetime,
        rr_lifetime_count,
        icr_max_live,
        stages,
        gprs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SchedStats, SlackScheduler};
    use lsms_ir::{LoopBuilder, OpKind, ValueType};
    use lsms_machine::huff_machine;

    /// The paper's Figure 1/3/4 sample loop: x(i) = x(i-1)+y(i-2),
    /// y(i) = y(i-1)+x(i-2), with the paper's hand schedule (fx at 0, fy
    /// at 1, II = 2).
    fn sample() -> lsms_ir::LoopBody {
        let mut b = LoopBuilder::new("sample");
        let x = b.named_value(ValueType::Float, "x");
        let y = b.named_value(ValueType::Float, "y");
        let fx = b.op(OpKind::FAdd, &[x, y], Some(x));
        let fy = b.op(OpKind::FAdd, &[y, x], Some(y));
        b.flow_dep(fx, fx, 1);
        b.flow_dep(fy, fy, 1);
        b.flow_dep(fx, fy, 2);
        b.flow_dep(fy, fx, 2);
        b.finish()
    }

    #[test]
    fn figure_4_live_vector() {
        let body = sample();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        // The paper's schedule: fx at cycle 0, fy at cycle 1, II = 2.
        let s = Schedule {
            ii: 2,
            times: vec![0, 1],
            assignments: Vec::new(),
            stats: SchedStats::default(),
        };
        let lt = lifetimes(&p, &s);
        // x: defined at 0; used by fx at 0+1*2=2 and fy at 1+2*2=5 -> 5.
        assert_eq!(lt[0], Some(5));
        // y: defined at 1; used by fy at 1+2=3 and fx at 0+4=4 -> 3.
        assert_eq!(lt[1], Some(3));
        // LiveVector: x covers [0,5): cols 0,1 twice + col 0 once = (3,2);
        // y covers [1,4): cols (1),(0),(1)-> col1 2, col0 1.
        let v = live_vector(&p, &s, &lt, lsms_ir::RegClass::Rr);
        assert_eq!(v, vec![4, 4]);
        let report = measure(&p, &s);
        assert_eq!(report.rr_max_live, 4);
        // The paper's Figure 4 computes exactly LiveVector = <4 4>.
    }

    #[test]
    fn min_avg_matches_hand_computation() {
        let body = sample();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        // At II = 2 the arcs weigh: self 1-2 = -1, cross 1-4 = -3, so
        // MinDist(fx,fy) = MinDist(fy,fx) = -3 and MinDist(d,d) = 0.
        // MinLT(x) = max(1*2 + 0, 2*2 + (-3)) = 2; same for y.
        // MinAvg = ceil((2 + 2)/2) = 2 — genuinely below the schedule's
        // MaxLive of 4, because MinDist cannot see that the recurrence
        // pins fx and fy into the same iteration.
        assert_eq!(min_avg(&p, 2), 2);
    }

    #[test]
    fn actual_lifetimes_dominate_minlt() {
        let body = sample();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let s = SlackScheduler::new().run(&p).unwrap();
        let md = MinDist::compute(&p, s.ii);
        let actual = lifetimes(&p, &s);
        let lower = min_lifetimes(&p, &md);
        for (a, l) in actual.iter().zip(&lower) {
            if let (Some(a), Some(l)) = (a, l) {
                assert!(a >= l, "actual {a} < MinLT {l}");
            }
        }
    }

    #[test]
    fn max_live_bounds_avg_live() {
        let body = sample();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let s = SlackScheduler::new().run(&p).unwrap();
        let report = measure(&p, &s);
        assert!(f64::from(report.rr_max_live) >= report.rr_avg_live());
        assert!(f64::from(report.rr_max_live) < report.rr_avg_live() + f64::from(s.ii));
    }

    #[test]
    fn invariants_count_as_gprs_not_rrs() {
        let mut b = LoopBuilder::new("inv");
        let c = b.invariant(ValueType::Float, "c");
        let a = b.invariant(ValueType::Addr, "a");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let ld = b.op(OpKind::Load, &[a], Some(x));
        let mul = b.op(OpKind::FMul, &[x, c], Some(y));
        let st = b.op(OpKind::Store, &[a, y], None);
        b.flow_dep(ld, mul, 0);
        b.flow_dep(mul, st, 0);
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let s = SlackScheduler::new().run(&p).unwrap();
        let report = measure(&p, &s);
        assert_eq!(report.gprs, 2); // c and a
                                    // x lives 13 cycles, y lives 1: at II = 2 MaxLive must be >= 7.
        assert!(
            report.rr_max_live >= 7,
            "rr_max_live = {}",
            report.rr_max_live
        );
    }

    #[test]
    fn predicates_count_in_icr() {
        let mut b = LoopBuilder::new("pred");
        let f = b.invariant(ValueType::Float, "f");
        let pv = b.new_value(ValueType::Pred);
        let r = b.new_value(ValueType::Float);
        let cmp = b.op(OpKind::CmpLt, &[f, f], Some(pv));
        let g = b.op_guarded(OpKind::FAdd, &[f, f], Some(r), Some(pv));
        b.flow_dep(cmp, g, 0);
        let body = b.finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let s = SlackScheduler::new().run(&p).unwrap();
        let report = measure(&p, &s);
        assert!(report.icr_max_live >= 1);
        // The predicate is not RR pressure.
        assert_eq!(report.rr_max_live, 0);
    }

    #[test]
    fn empty_schedule_has_empty_report() {
        let body = LoopBuilder::new("empty").finish();
        let m = huff_machine();
        let p = SchedProblem::new(&body, &m).unwrap();
        let s = Schedule {
            ii: 1,
            times: vec![],
            assignments: Vec::new(),
            stats: SchedStats::default(),
        };
        let report = measure(&p, &s);
        assert_eq!(report.rr_max_live, 0);
        assert_eq!(report.gprs, 0);
        assert_eq!(report.rr_min_avg, 0);
    }
}
