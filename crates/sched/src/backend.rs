//! The pluggable scheduler seam: the [`ModuloScheduler`] trait every
//! backend — built-in or external — implements, plus the adapters that
//! expose the slack scheduler (§4–§5) and the Cydrome baseline (§8)
//! through it.
//!
//! The paper frames lifetime-sensitive scheduling as one strategy among
//! several; this trait makes the seam real. A backend is a `Send + Sync`
//! trait object: it names itself, documents itself
//! ([`describe`](ModuloScheduler::describe)), declares what it can do
//! ([`capabilities`](ModuloScheduler::capabilities)), accepts `key=value`
//! options ([`configure`](ModuloScheduler::configure)), and schedules one
//! problem per [`run`](ModuloScheduler::run) call. The pipeline's
//! `BackendRegistry` holds `Arc<dyn ModuloScheduler>` values and derives
//! pass names (`schedule:<name>`), trace span labels, and `--list-backends`
//! rows from the trait, so an exact (SAT/ILP) scheduler or a test stub
//! drops in without touching the session's dispatch code.

use std::sync::Arc;
use std::time::Instant;

use crate::engine::EngineWorkspace;
use crate::{
    DecisionStats, DirectionPolicy, MinDistCache, SchedFailure, SchedProblem, Schedule,
    SlackConfig, SlackScheduler,
};

/// What a backend can do, surfaced by `--list-backends` and checked by
/// the session before it relies on a feature.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackendCaps {
    /// The backend reuses a caller-owned [`EngineWorkspace`] across II
    /// attempts (allocation-only warm start).
    pub warm_start: bool,
    /// The backend honours [`SchedContext::deadline`] by giving up with
    /// [`SchedFailure::deadline_capped`] set, enabling budget-driven
    /// degradation to a fallback backend.
    pub budget_degradation: bool,
    /// The backend can schedule a body as straight-line code (§8) when
    /// [`SchedContext::straight_line`] is set.
    pub straight_line: bool,
    /// The backend reports meaningful §5.2 decision tallies in
    /// [`BackendRun::decisions`].
    pub decision_stats: bool,
}

impl BackendCaps {
    /// The capability flags as a compact `[a, b, c]` list for
    /// `--list-backends`.
    pub fn flags(&self) -> String {
        let mut out = Vec::new();
        if self.warm_start {
            out.push("warm-start");
        }
        if self.budget_degradation {
            out.push("budget-degradation");
        }
        if self.straight_line {
            out.push("straight-line");
        }
        if self.decision_stats {
            out.push("decision-stats");
        }
        format!("[{}]", out.join(", "))
    }
}

/// Self-documentation a backend provides for `--explain-pass` and
/// `--list-backends`.
#[derive(Clone, Debug)]
pub struct BackendInfo {
    /// One-line summary.
    pub summary: String,
    /// Longer description; empty means "no explanation available".
    pub details: String,
}

/// Per-run context handed to [`ModuloScheduler::run`]: the interned pass
/// label trace spans and reports use, the optional escalation deadline,
/// and whether the session wants straight-line scheduling.
#[derive(Clone, Copy, Debug)]
pub struct SchedContext {
    /// The interned pass name (`schedule:<backend>`); the caller opens a
    /// trace span under this label around `run`, and backends may use it
    /// to label their own events.
    pub pass: &'static str,
    /// Wall-clock deadline on II escalation, when a `--pass-budget`
    /// covers the pass. Backends without
    /// [`BackendCaps::budget_degradation`] may ignore it.
    pub deadline: Option<Instant>,
    /// Schedule as a single basic block (no iteration overlap). Only set
    /// for backends with [`BackendCaps::straight_line`].
    pub straight_line: bool,
    /// An II this problem is known to schedule at (from a warm-start
    /// ledger). Backends that honour it try one attempt pinned at this
    /// II first and fall back to full MII escalation if the attempt
    /// fails or the hint is outside the escalation sequence — so the
    /// resulting schedule is byte-identical either way, just cheaper to
    /// reach. Backends may ignore the hint entirely.
    pub warm_ii: Option<u32>,
}

impl SchedContext {
    /// A context with no deadline and modulo (not straight-line) mode.
    pub fn new(pass: &'static str) -> Self {
        Self {
            pass,
            deadline: None,
            straight_line: false,
            warm_ii: None,
        }
    }

    /// The same context with a warm-start II hint.
    pub fn with_warm_ii(mut self, warm_ii: Option<u32>) -> Self {
        self.warm_ii = warm_ii;
        self
    }
}

/// What one backend run produced: the schedule (or failure, kept as
/// data) plus the §5.2 decision tallies (zeroed for backends without
/// [`BackendCaps::decision_stats`]).
#[derive(Debug)]
pub struct BackendRun {
    /// The schedule, or why there is none.
    pub result: Result<Schedule, SchedFailure>,
    /// Heuristic decision tallies accumulated across the run.
    pub decisions: DecisionStats,
}

/// A pluggable modulo-scheduling backend.
///
/// Implementations must be cheap to share (`Arc`) and safe to call from
/// the parallel corpus pool; all per-run mutable state lives in the
/// caller-owned [`EngineWorkspace`] or on the stack.
pub trait ModuloScheduler: Send + Sync + std::fmt::Debug {
    /// The backend's registry name (`slack`, `cydrome`, ...). Must be
    /// stable, unique, and free of `:`/`,`/`=`/whitespace — it becomes
    /// the `schedule:<name>` pass label.
    fn name(&self) -> &str;

    /// Self-documentation for `--explain-pass` and `--list-backends`.
    fn describe(&self) -> BackendInfo;

    /// What the backend supports.
    fn capabilities(&self) -> BackendCaps;

    /// A copy of this backend reconfigured by `key=value` options (from
    /// `--backend NAME:key=val,...`). Unknown keys and malformed values
    /// are errors; the message is wrapped in the session's diagnostic.
    ///
    /// # Errors
    ///
    /// A human-readable description of the offending option.
    fn configure(&self, options: &[(String, String)]) -> Result<Arc<dyn ModuloScheduler>, String>;

    /// The slack configuration equivalent to this backend, when there is
    /// one — the simulate-verify pass replays scheduling through
    /// [`SlackConfig`], so only slack-family backends can verify.
    fn verify_config(&self) -> Option<SlackConfig> {
        None
    }

    /// Schedules one problem. Failure is data ([`BackendRun::result`]),
    /// not a panic; the session records counters either way.
    fn run(
        &self,
        problem: &SchedProblem<'_>,
        cache: &MinDistCache,
        ws: &mut EngineWorkspace,
        ctx: &SchedContext,
    ) -> BackendRun;
}

/// Shared option parsing for the built-in backends' `configure`.
fn parse_common_option(
    key: &str,
    value: &str,
    budget_factor: &mut u64,
    max_ii: &mut Option<u32>,
) -> Result<bool, String> {
    match key {
        "budget-factor" => {
            *budget_factor = value
                .parse()
                .map_err(|_| format!("invalid value `{value}` for `budget-factor`"))?;
            Ok(true)
        }
        "max-ii" => {
            *max_ii = Some(
                value
                    .parse()
                    .map_err(|_| format!("invalid value `{value}` for `max-ii`"))?,
            );
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// The slack scheduler (§4–§5) as a backend. Three registry instances
/// exist — `slack`, `early`, `late` — one per direction policy, so the
/// pass-name mapping of the pre-registry enum is preserved exactly.
///
/// Options: `increment=four-percent|by-one`, `budget-factor=N`,
/// `max-ii=N`.
#[derive(Clone, Debug)]
pub struct SlackBackend {
    name: &'static str,
    summary: &'static str,
    details: &'static str,
    config: SlackConfig,
}

impl SlackBackend {
    /// The `slack` backend: the paper's bidirectional scheduler.
    pub fn bidirectional() -> Self {
        Self {
            name: "slack",
            summary: "bidirectional slack modulo scheduling (§4-§5)",
            details: "The paper's lifetime-sensitive scheduler: operations are \
                      placed early or late depending on whether stretchable \
                      inputs outnumber stretchable outputs, with limited \
                      ejection backtracking and 4% II escalation (codes E0501 \
                      on failure, E0502 if validation of a produced schedule \
                      fails).",
            config: SlackConfig::default(),
        }
    }

    /// The `early` backend: the §7 always-early ablation.
    pub fn early() -> Self {
        Self {
            name: "early",
            summary: "always-early slack scheduling (the §7 ablation)",
            details: "The slack scheduler with the direction heuristic pinned \
                      to early placement — the unidirectional legacy of list \
                      scheduling, used to isolate the value of \
                      bidirectionality.",
            config: SlackConfig {
                direction: DirectionPolicy::AlwaysEarly,
                ..SlackConfig::default()
            },
        }
    }

    /// The `late` backend: always-late placement.
    pub fn late() -> Self {
        Self {
            name: "late",
            summary: "always-late slack scheduling",
            details: "The slack scheduler with the direction heuristic pinned \
                      to late placement.",
            config: SlackConfig {
                direction: DirectionPolicy::AlwaysLate,
                ..SlackConfig::default()
            },
        }
    }

    /// The backend's current slack configuration.
    pub fn config(&self) -> &SlackConfig {
        &self.config
    }
}

impl ModuloScheduler for SlackBackend {
    fn name(&self) -> &str {
        self.name
    }

    fn describe(&self) -> BackendInfo {
        BackendInfo {
            summary: self.summary.to_owned(),
            details: self.details.to_owned(),
        }
    }

    fn capabilities(&self) -> BackendCaps {
        BackendCaps {
            warm_start: true,
            budget_degradation: true,
            straight_line: true,
            decision_stats: true,
        }
    }

    fn configure(&self, options: &[(String, String)]) -> Result<Arc<dyn ModuloScheduler>, String> {
        let mut config = self.config.clone();
        for (key, value) in options {
            let mut max_ii = config.max_ii;
            if parse_common_option(key, value, &mut config.budget_factor, &mut max_ii)? {
                config.max_ii = max_ii;
                continue;
            }
            match key.as_str() {
                "increment" => {
                    config.increment = match value.as_str() {
                        "four-percent" => crate::IiIncrement::FourPercent,
                        "by-one" => crate::IiIncrement::ByOne,
                        _ => {
                            return Err(format!(
                                "invalid value `{value}` for `increment` \
                                 (want four-percent or by-one)"
                            ))
                        }
                    }
                }
                _ => {
                    return Err(format!(
                        "unknown option `{key}` \
                         (options: increment, budget-factor, max-ii)"
                    ))
                }
            }
        }
        Ok(Arc::new(Self { config, ..*self }))
    }

    fn verify_config(&self) -> Option<SlackConfig> {
        Some(self.config.clone())
    }

    fn run(
        &self,
        problem: &SchedProblem<'_>,
        cache: &MinDistCache,
        ws: &mut EngineWorkspace,
        ctx: &SchedContext,
    ) -> BackendRun {
        if ctx.straight_line {
            return BackendRun {
                result: SlackScheduler::with_config(self.config.clone())
                    .run_straight_line_in(problem, ws),
                decisions: DecisionStats::default(),
            };
        }
        let scheduler = SlackScheduler::with_config(self.config.clone());
        if let Some(warm) = ctx.warm_ii.filter(|&w| {
            let max_ii = self
                .config
                .max_ii
                .unwrap_or(4 * problem.mii() + 64)
                .max(problem.mii());
            ctx.deadline.is_none()
                && crate::ii_reachable_by_escalation(
                    problem.mii(),
                    max_ii,
                    self.config.increment,
                    w,
                )
        }) {
            let (result, decisions) = scheduler.run_at_ii_in(problem, cache, warm, ws);
            if let Ok(schedule) = result {
                return BackendRun {
                    result: Ok(schedule),
                    decisions,
                };
            }
            // Stale hint: discard the warm attempt's tallies and rerun
            // the full cold escalation so the outcome matches a cold run.
        }
        let (result, decisions) = scheduler.run_in(problem, cache, ctx.deadline, ws);
        BackendRun { result, decisions }
    }
}

/// The Cydrome-style baseline (§8) as the `cydrome` backend — the cheap
/// scheduler budget-capped sessions degrade to.
///
/// Options: `budget-factor=N`, `max-ii=N`.
#[derive(Clone, Debug)]
pub struct CydromeBackend {
    scheduler: crate::CydromeScheduler,
}

impl CydromeBackend {
    /// The baseline backend with default limits.
    pub fn new() -> Self {
        Self {
            scheduler: crate::CydromeScheduler::new(),
        }
    }
}

impl Default for CydromeBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl ModuloScheduler for CydromeBackend {
    fn name(&self) -> &str {
        "cydrome"
    }

    fn describe(&self) -> BackendInfo {
        BackendInfo {
            summary: "Cydrome-style baseline scheduler (§8)".to_owned(),
            details: "The 'old scheduler' the paper compares against: \
                      operation-driven placement without lifetime \
                      sensitivity."
                .to_owned(),
        }
    }

    fn capabilities(&self) -> BackendCaps {
        BackendCaps {
            warm_start: true,
            budget_degradation: false,
            straight_line: false,
            decision_stats: false,
        }
    }

    fn configure(&self, options: &[(String, String)]) -> Result<Arc<dyn ModuloScheduler>, String> {
        let mut scheduler = self.scheduler.clone();
        for (key, value) in options {
            if !parse_common_option(
                key,
                value,
                &mut scheduler.budget_factor,
                &mut scheduler.max_ii,
            )? {
                return Err(format!(
                    "unknown option `{key}` (options: budget-factor, max-ii)"
                ));
            }
        }
        Ok(Arc::new(Self { scheduler }))
    }

    fn run(
        &self,
        problem: &SchedProblem<'_>,
        cache: &MinDistCache,
        ws: &mut EngineWorkspace,
        ctx: &SchedContext,
    ) -> BackendRun {
        if let Some(warm) = ctx.warm_ii.filter(|&w| {
            let max_ii = self
                .scheduler
                .max_ii
                .unwrap_or(4 * problem.mii() + 64)
                .max(problem.mii());
            ctx.deadline.is_none()
                && crate::ii_reachable_by_escalation(
                    problem.mii(),
                    max_ii,
                    crate::IiIncrement::default(),
                    w,
                )
        }) {
            if let Ok(schedule) = self.scheduler.run_at_ii_in(problem, cache, warm, ws) {
                return BackendRun {
                    result: Ok(schedule),
                    decisions: DecisionStats::default(),
                };
            }
        }
        BackendRun {
            result: self.scheduler.run_cached_in(problem, cache, ws),
            decisions: DecisionStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_ir::{LoopBuilder, OpKind, ValueType};
    use lsms_machine::huff_machine;

    fn sample_body() -> lsms_ir::LoopBody {
        let mut b = LoopBuilder::new("t");
        let a = b.invariant(ValueType::Addr, "a");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let ld = b.op(OpKind::Load, &[a], Some(x));
        let add = b.op(OpKind::FAdd, &[x, x], Some(y));
        let st = b.op(OpKind::Store, &[a, y], None);
        b.flow_dep(ld, add, 0);
        b.flow_dep(add, st, 0);
        b.finish()
    }

    #[test]
    fn adapters_match_their_direct_schedulers() {
        let body = sample_body();
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).unwrap();
        let cache = MinDistCache::new();

        let direct = SlackScheduler::new().run_cached(&problem, &cache).unwrap();
        let via_trait = SlackBackend::bidirectional()
            .run(
                &problem,
                &cache,
                &mut EngineWorkspace::new(),
                &SchedContext::new("schedule:slack"),
            )
            .result
            .unwrap();
        assert_eq!(direct.ii, via_trait.ii);
        assert_eq!(direct.times, via_trait.times);
        assert_eq!(direct.assignments, via_trait.assignments);

        let direct = crate::CydromeScheduler::new()
            .run_cached(&problem, &cache)
            .unwrap();
        let via_trait = CydromeBackend::new()
            .run(
                &problem,
                &cache,
                &mut EngineWorkspace::new(),
                &SchedContext::new("schedule:cydrome"),
            )
            .result
            .unwrap();
        assert_eq!(direct.ii, via_trait.ii);
        assert_eq!(direct.times, via_trait.times);
    }

    #[test]
    fn configure_applies_and_rejects_options() {
        let opt = |k: &str, v: &str| vec![(k.to_owned(), v.to_owned())];
        let slack = SlackBackend::bidirectional();
        let tuned = slack.configure(&opt("budget-factor", "3")).unwrap();
        assert_eq!(tuned.name(), "slack");
        assert!(tuned.verify_config().unwrap().budget_factor == 3);
        assert!(slack.configure(&opt("increment", "by-one")).is_ok());
        assert!(slack.configure(&opt("increment", "sometimes")).is_err());
        assert!(slack.configure(&opt("quantum", "1")).is_err());
        assert!(slack.configure(&opt("max-ii", "not-a-number")).is_err());

        let cydrome = CydromeBackend::new();
        assert!(cydrome.configure(&opt("budget-factor", "5")).is_ok());
        assert!(cydrome.configure(&opt("increment", "by-one")).is_err());
        assert!(cydrome.verify_config().is_none());
    }

    #[test]
    fn capability_flags_render_for_listing() {
        assert_eq!(
            SlackBackend::bidirectional().capabilities().flags(),
            "[warm-start, budget-degradation, straight-line, decision-stats]"
        );
        assert_eq!(CydromeBackend::new().capabilities().flags(), "[warm-start]");
    }

    #[test]
    fn direction_is_pinned_by_backend_name() {
        assert_eq!(
            SlackBackend::early().config().direction,
            DirectionPolicy::AlwaysEarly
        );
        assert_eq!(
            SlackBackend::late().config().direction,
            DirectionPolicy::AlwaysLate
        );
        assert_eq!(
            SlackBackend::bidirectional().config().direction,
            DirectionPolicy::Bidirectional
        );
    }
}
