//! The parametric MinDist envelope against the fixed-II Floyd–Warshall
//! oracle, over seeded random dependence graphs.
//!
//! The envelope is one all-pairs computation per problem; this suite
//! checks it reproduces the per-II oracle **entry for entry** across an
//! II sweep straddling RecMII — including the infeasible IIs below it,
//! where only the oracle's positive-diagonal verdict is defined and the
//! cache must fall back to Floyd–Warshall.

use lsms_ir::{LoopBody, LoopBuilder, OpKind, ValueType};
use lsms_machine::huff_machine;
use lsms_prng::SmallRng;
use lsms_sched::mindist::NO_PATH;
use lsms_sched::{MinDist, MinDistCache, ParametricMinDist, SchedProblem};

/// A random DAG-with-back-arcs body (same construction as the main
/// MinDist property suite).
fn body_from(arcs: &[(u8, u8, u8)], n: usize) -> LoopBody {
    let mut b = LoopBuilder::new("g");
    let fin = b.invariant(ValueType::Float, "fin");
    let ops: Vec<_> = (0..n)
        .map(|_| {
            let v = b.new_value(ValueType::Float);
            b.op(OpKind::FMul, &[fin, fin], Some(v))
        })
        .collect();
    for &(from, to, omega) in arcs {
        let (f, t) = (from as usize % n, to as usize % n);
        // Keep zero-omega arcs forward so no zero-omega cycle forms.
        let omega = if t <= f {
            u32::from(omega % 3) + 1
        } else {
            u32::from(omega % 3)
        };
        b.flow_dep(ops[f], ops[t], omega);
    }
    b.finish()
}

/// 1..`max_arcs` random arcs of (from, to, omega) with small endpoints.
fn random_arcs(rng: &mut SmallRng, ends: u8, max_arcs: usize) -> Vec<(u8, u8, u8)> {
    let count = rng.gen_range(1..=max_arcs);
    (0..count)
        .map(|_| {
            (
                rng.gen_range(0..ends),
                rng.gen_range(0..ends),
                rng.gen_range(0..3u8),
            )
        })
        .collect()
}

#[test]
fn envelope_matches_the_floyd_warshall_oracle_across_an_ii_sweep() {
    for case in 0u64..96 {
        let mut rng = SmallRng::seed_from_u64(0x9a7a + case);
        let arcs = random_arcs(&mut rng, 12, 23);
        let body = body_from(&arcs, 12);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let Some(p) = ParametricMinDist::compute(&problem) else {
            panic!("case {case}: envelope overflow on a 12-node graph");
        };
        let rec = problem.rec_mii();
        assert_eq!(
            p.rec_mii(),
            rec,
            "case {case}: analytic RecMII disagrees with the problem's"
        );
        let n = problem.num_nodes();
        for ii in rec.max(2) - 1..=rec + 8 {
            let oracle = MinDist::compute(&problem, ii);
            if ii < rec {
                // Below RecMII the envelope is not a valid MinDist (walks
                // beat simple paths); the oracle must flag infeasibility.
                assert!(!oracle.is_feasible(), "case {case}: II {ii} feasible?");
                continue;
            }
            assert!(oracle.is_feasible(), "case {case}: II {ii} infeasible?");
            for x in 0..n {
                for y in 0..n {
                    assert_eq!(
                        p.eval(x, y, ii),
                        oracle.get(x, y),
                        "case {case}: MinDist({x},{y}) at II {ii}"
                    );
                }
            }
        }
    }
}

#[test]
fn materialized_views_are_entrywise_identical_to_the_oracle() {
    for case in 0u64..96 {
        let mut rng = SmallRng::seed_from_u64(0x3a7e + case);
        let arcs = random_arcs(&mut rng, 10, 19);
        let body = body_from(&arcs, 10);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let p = ParametricMinDist::compute(&problem).expect("envelope builds");
        let rec = problem.rec_mii();
        let n = problem.num_nodes();
        for ii in rec..=rec + 8 {
            let view = p.materialize_into(ii, Vec::new());
            let oracle = MinDist::compute(&problem, ii);
            assert_eq!(view.ii(), ii);
            assert!(view.is_feasible());
            for x in 0..n {
                for y in 0..n {
                    assert_eq!(
                        view.get(x, y),
                        oracle.get(x, y),
                        "case {case}: materialized ({x},{y}) at II {ii}"
                    );
                }
            }
        }
    }
}

#[test]
fn cache_served_matrices_match_the_oracle_feasible_or_not() {
    for case in 0u64..64 {
        let mut rng = SmallRng::seed_from_u64(0xcace + case);
        let arcs = random_arcs(&mut rng, 10, 19);
        let body = body_from(&arcs, 10);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let rec = problem.rec_mii();
        let cache = MinDistCache::new();
        let n = problem.num_nodes();
        // The sweep starts below RecMII when possible, so the cache must
        // route those requests to Floyd–Warshall even once the
        // parametric envelope exists.
        for ii in rec.max(2) - 1..=rec + 8 {
            let served = cache.get(&problem, ii);
            let oracle = MinDist::compute(&problem, ii);
            assert_eq!(
                served.is_feasible(),
                oracle.is_feasible(),
                "case {case}: feasibility at II {ii}"
            );
            if !oracle.is_feasible() {
                continue;
            }
            for x in 0..n {
                for y in 0..n {
                    assert_eq!(
                        served.get(x, y),
                        oracle.get(x, y),
                        "case {case}: cache-served ({x},{y}) at II {ii}"
                    );
                }
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, stats.fw_computes + stats.materializations);
        assert_eq!(stats.parametric_builds, 1, "case {case}");
    }
}

#[test]
fn envelopes_never_report_paths_the_oracle_lacks() {
    for case in 0u64..64 {
        let mut rng = SmallRng::seed_from_u64(0x70a7 + case);
        let arcs = random_arcs(&mut rng, 12, 15);
        let body = body_from(&arcs, 12);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let p = ParametricMinDist::compute(&problem).expect("envelope builds");
        let rec = problem.rec_mii();
        let oracle = MinDist::compute(&problem, rec);
        let n = problem.num_nodes();
        for x in 0..n {
            for y in 0..n {
                let reachable = oracle.get(x, y) != NO_PATH;
                assert_eq!(
                    !p.envelope(x, y).is_empty(),
                    reachable,
                    "case {case}: reachability of ({x},{y})"
                );
            }
        }
    }
}
