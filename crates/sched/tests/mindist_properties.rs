//! Algebraic properties of the MinDist relation and the II bounds, over
//! seeded random dependence graphs.
//!
//! Formerly a `proptest` suite; rewritten over the vendored deterministic
//! PRNG so the workspace builds without external crates. Every case is a
//! pure function of its seed, so failures reproduce exactly.

use lsms_ir::{LoopBody, LoopBuilder, OpKind, ValueType};
use lsms_machine::huff_machine;
use lsms_prng::SmallRng;
use lsms_sched::mindist::NO_PATH;
use lsms_sched::{MinDist, MinDistCache, SchedProblem};

/// A random DAG-with-back-arcs body (same construction idea as the main
/// property suite, kept local and simple).
fn body_from(arcs: &[(u8, u8, u8)], n: usize) -> LoopBody {
    let mut b = LoopBuilder::new("g");
    let fin = b.invariant(ValueType::Float, "fin");
    let ops: Vec<_> = (0..n)
        .map(|_| {
            let v = b.new_value(ValueType::Float);
            b.op(OpKind::FMul, &[fin, fin], Some(v))
        })
        .collect();
    for &(from, to, omega) in arcs {
        let (f, t) = (from as usize % n, to as usize % n);
        // Keep zero-omega arcs forward so no zero-omega cycle forms.
        let omega = if t <= f {
            u32::from(omega % 3) + 1
        } else {
            u32::from(omega % 3)
        };
        b.flow_dep(ops[f], ops[t], omega);
    }
    b.finish()
}

/// Draws a random arc list shaped like the old proptest strategy:
/// 1..`max_arcs` arcs of (from, to, omega) with small endpoints.
fn random_arcs(rng: &mut SmallRng, ends: u8, max_arcs: usize) -> Vec<(u8, u8, u8)> {
    let count = rng.gen_range(1..=max_arcs);
    (0..count)
        .map(|_| {
            (
                rng.gen_range(0..ends),
                rng.gen_range(0..ends),
                rng.gen_range(0..3u8),
            )
        })
        .collect()
}

#[test]
fn mindist_satisfies_the_longest_path_triangle_inequality() {
    for case in 0u64..128 {
        let mut rng = SmallRng::seed_from_u64(0x41d0 + case);
        let arcs = random_arcs(&mut rng, 12, 23);
        let extra_ii = rng.gen_range(0..4u32);
        let body = body_from(&arcs, 12);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let ii = problem.rec_mii() + extra_ii;
        let md = MinDist::compute(&problem, ii);
        assert!(md.is_feasible());
        let n = problem.num_nodes();
        for a in 0..n {
            // Diagonal pinned at zero.
            assert_eq!(md.get(a, a), 0);
            for b in 0..n {
                let dab = md.get(a, b);
                if dab == NO_PATH {
                    continue;
                }
                for c in 0..n {
                    let dbc = md.get(b, c);
                    if dbc == NO_PATH {
                        continue;
                    }
                    // Longest path: d(a,c) >= d(a,b) + d(b,c).
                    let dac = md.get(a, c);
                    assert!(
                        dac != NO_PATH && dac >= dab + dbc,
                        "case {case}: d({a},{c}) = {dac} < {dab} + {dbc}"
                    );
                }
            }
        }
    }
}

#[test]
fn feasibility_flips_exactly_at_rec_mii() {
    for case in 0u64..128 {
        let mut rng = SmallRng::seed_from_u64(0xfea5 + case);
        let arcs = random_arcs(&mut rng, 10, 19);
        let body = body_from(&arcs, 10);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let rec = problem.rec_mii();
        assert!(MinDist::compute(&problem, rec).is_feasible());
        assert!(MinDist::compute(&problem, rec + 3).is_feasible());
        if rec > 1 {
            assert!(!MinDist::compute(&problem, rec - 1).is_feasible());
        }
    }
}

#[test]
fn mindist_weakly_decreases_as_ii_grows() {
    for case in 0u64..128 {
        let mut rng = SmallRng::seed_from_u64(0xdec0 + case);
        let arcs = random_arcs(&mut rng, 10, 19);
        let body = body_from(&arcs, 10);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let rec = problem.rec_mii();
        let small = MinDist::compute(&problem, rec);
        let large = MinDist::compute(&problem, rec + 2);
        let n = problem.num_nodes();
        for a in 0..n {
            for b in 0..n {
                let (ds, dl) = (small.get(a, b), large.get(a, b));
                assert_eq!(ds == NO_PATH, dl == NO_PATH);
                if ds != NO_PATH {
                    // Arc weights latency − ω·II are non-increasing in II.
                    assert!(dl <= ds, "case {case}: d({a},{b}) grew: {ds} -> {dl}");
                }
            }
        }
    }
}

#[test]
fn estart_bounds_hold_in_actual_schedules() {
    use lsms_sched::SlackScheduler;
    for case in 0u64..128 {
        let mut rng = SmallRng::seed_from_u64(0xe5a7 + case);
        let arcs = random_arcs(&mut rng, 10, 17);
        let body = body_from(&arcs, 10);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let schedule = SlackScheduler::new().run(&problem).expect("schedules");
        let md = MinDist::compute(&problem, schedule.ii);
        // Every op starts no earlier than MinDist(Start, op): the initial
        // Estart of §4.1 is a true lower bound.
        for op in 0..problem.num_real_ops() {
            let e0 = md.get(problem.start(), op);
            assert!(
                schedule.times[op] >= e0,
                "case {case}: op {op} at {} before its Estart {e0}",
                schedule.times[op]
            );
        }
    }
}

#[test]
fn cached_mindist_matches_direct_computation() {
    for case in 0u64..64 {
        let mut rng = SmallRng::seed_from_u64(0xcac4e + case);
        let arcs = random_arcs(&mut rng, 10, 19);
        let body = body_from(&arcs, 10);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let rec = problem.rec_mii();
        let cache = MinDistCache::new();
        let n = problem.num_nodes();
        for ii in rec..rec + 4 {
            // Ask twice: the second hit must be the same shared matrix.
            let first = cache.get(&problem, ii);
            let second = cache.get(&problem, ii);
            assert!(std::sync::Arc::ptr_eq(&first, &second));
            let direct = MinDist::compute(&problem, ii);
            assert_eq!(first.is_feasible(), direct.is_feasible());
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(first.get(a, b), direct.get(a, b), "case {case} ii {ii}");
                }
            }
        }
        assert_eq!(cache.computed(), 4, "one Floyd–Warshall per distinct II");
    }
}
