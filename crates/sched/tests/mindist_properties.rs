//! Algebraic properties of the MinDist relation and the II bounds, over
//! random dependence graphs.

use lsms_ir::{LoopBody, LoopBuilder, OpKind, ValueType};
use lsms_machine::huff_machine;
use lsms_sched::mindist::NO_PATH;
use lsms_sched::{MinDist, SchedProblem};
use proptest::prelude::*;

/// A random DAG-with-back-arcs body (same construction idea as the main
/// property suite, kept local and simple).
fn body_from(arcs: &[(u8, u8, u8)], n: usize) -> LoopBody {
    let mut b = LoopBuilder::new("g");
    let fin = b.invariant(ValueType::Float, "fin");
    let ops: Vec<_> = (0..n)
        .map(|_| {
            let v = b.new_value(ValueType::Float);
            b.op(OpKind::FMul, &[fin, fin], Some(v))
        })
        .collect();
    for &(from, to, omega) in arcs {
        let (f, t) = (from as usize % n, to as usize % n);
        // Keep zero-omega arcs forward so no zero-omega cycle forms.
        let omega = if t <= f { u32::from(omega % 3) + 1 } else { u32::from(omega % 3) };
        b.flow_dep(ops[f], ops[t], omega);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mindist_satisfies_the_longest_path_triangle_inequality(
        arcs in prop::collection::vec((0u8..12, 0u8..12, 0u8..3), 1..24),
        extra_ii in 0u32..4,
    ) {
        let body = body_from(&arcs, 12);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let ii = problem.rec_mii() + extra_ii;
        let md = MinDist::compute(&problem, ii);
        prop_assert!(md.is_feasible());
        let n = problem.num_nodes();
        for a in 0..n {
            // Diagonal pinned at zero.
            prop_assert_eq!(md.get(a, a), 0);
            for b in 0..n {
                let dab = md.get(a, b);
                if dab == NO_PATH {
                    continue;
                }
                for c in 0..n {
                    let dbc = md.get(b, c);
                    if dbc == NO_PATH {
                        continue;
                    }
                    // Longest path: d(a,c) >= d(a,b) + d(b,c).
                    let dac = md.get(a, c);
                    prop_assert!(dac != NO_PATH && dac >= dab + dbc,
                        "d({a},{c}) = {dac} < {dab} + {dbc}");
                }
            }
        }
    }

    #[test]
    fn feasibility_flips_exactly_at_rec_mii(
        arcs in prop::collection::vec((0u8..10, 0u8..10, 0u8..3), 1..20),
    ) {
        let body = body_from(&arcs, 10);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let rec = problem.rec_mii();
        prop_assert!(MinDist::compute(&problem, rec).is_feasible());
        prop_assert!(MinDist::compute(&problem, rec + 3).is_feasible());
        if rec > 1 {
            prop_assert!(!MinDist::compute(&problem, rec - 1).is_feasible());
        }
    }

    #[test]
    fn mindist_weakly_decreases_as_ii_grows(
        arcs in prop::collection::vec((0u8..10, 0u8..10, 0u8..3), 1..20),
    ) {
        let body = body_from(&arcs, 10);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let rec = problem.rec_mii();
        let small = MinDist::compute(&problem, rec);
        let large = MinDist::compute(&problem, rec + 2);
        let n = problem.num_nodes();
        for a in 0..n {
            for b in 0..n {
                let (ds, dl) = (small.get(a, b), large.get(a, b));
                prop_assert_eq!(ds == NO_PATH, dl == NO_PATH);
                if ds != NO_PATH {
                    // Arc weights latency − ω·II are non-increasing in II.
                    prop_assert!(dl <= ds, "d({a},{b}) grew: {ds} -> {dl}");
                }
            }
        }
    }

    #[test]
    fn estart_bounds_hold_in_actual_schedules(
        arcs in prop::collection::vec((0u8..10, 0u8..10, 0u8..3), 1..18),
    ) {
        use lsms_sched::SlackScheduler;
        let body = body_from(&arcs, 10);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let schedule = SlackScheduler::new().run(&problem).expect("schedules");
        let md = MinDist::compute(&problem, schedule.ii);
        // Every op starts no earlier than MinDist(Start, op): the initial
        // Estart of §4.1 is a true lower bound.
        for op in 0..problem.num_real_ops() {
            let e0 = md.get(problem.start(), op);
            prop_assert!(schedule.times[op] >= e0,
                "op {op} at {} before its Estart {e0}", schedule.times[op]);
        }
    }
}
