//! Sparse bounds propagation against the retained dense reference, over
//! seeded random dependence graphs.
//!
//! The reachability-indexed engine must be a pure cost optimisation:
//! same schedules, same bounds, same ejection sequences — only fewer
//! `MinDist` cells read. This suite runs every random problem through
//! all three [`BoundsMode`]s and demands bit-identical results, and it
//! verifies the corpus of cases actually exercises the ejection path
//! (where the sparse/dense divergence risk lives).

use lsms_ir::{LoopBody, LoopBuilder, OpKind, ValueType};
use lsms_machine::huff_machine;
use lsms_prng::SmallRng;
use lsms_sched::{
    BoundsMode, CydromeScheduler, EngineWorkspace, MinDistCache, SchedProblem, Schedule,
    SlackScheduler,
};

/// A random DAG-with-back-arcs body (same construction as the MinDist
/// property suites).
fn body_from(arcs: &[(u8, u8, u8)], n: usize) -> LoopBody {
    let mut b = LoopBuilder::new("g");
    let fin = b.invariant(ValueType::Float, "fin");
    let ops: Vec<_> = (0..n)
        .map(|_| {
            let v = b.new_value(ValueType::Float);
            b.op(OpKind::FMul, &[fin, fin], Some(v))
        })
        .collect();
    for &(from, to, omega) in arcs {
        let (f, t) = (from as usize % n, to as usize % n);
        // Keep zero-omega arcs forward so no zero-omega cycle forms.
        let omega = if t <= f {
            u32::from(omega % 3) + 1
        } else {
            u32::from(omega % 3)
        };
        b.flow_dep(ops[f], ops[t], omega);
    }
    b.finish()
}

/// 1..`max_arcs` random arcs of (from, to, omega) with small endpoints.
fn random_arcs(rng: &mut SmallRng, ends: u8, max_arcs: usize) -> Vec<(u8, u8, u8)> {
    let count = rng.gen_range(1..=max_arcs);
    (0..count)
        .map(|_| {
            (
                rng.gen_range(0..ends),
                rng.gen_range(0..ends),
                rng.gen_range(0..3u8),
            )
        })
        .collect()
}

fn workspace(mode: BoundsMode) -> EngineWorkspace {
    let mut ws = EngineWorkspace::new();
    ws.set_bounds_mode(mode);
    ws
}

/// Everything observable about a schedule that must not move between
/// bounds modes: the result itself and the deterministic work counters
/// (`elapsed` and the cost counters are mode-dependent by design).
type Fingerprint = (u32, Vec<i64>, Vec<(usize, u32)>, [u64; 4], u32);

fn fingerprint(s: &Schedule) -> Fingerprint {
    (
        s.ii,
        s.times.clone(),
        s.assignments
            .iter()
            .map(|a| (a.class.index(), a.instance))
            .collect(),
        [
            s.stats.central_iterations,
            s.stats.step3_invocations,
            s.stats.ejected_ops,
            s.stats.step6_restarts,
        ],
        s.stats.attempts,
    )
}

#[test]
fn slack_schedules_are_identical_across_bounds_modes() {
    let scheduler = SlackScheduler::new();
    let mut ejection_cases = 0u32;
    for case in 0u64..96 {
        let mut rng = SmallRng::seed_from_u64(0x5ba7 + case);
        let arcs = random_arcs(&mut rng, 12, 23);
        let body = body_from(&arcs, 12);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let mut results = Vec::new();
        for mode in [
            BoundsMode::Sparse,
            BoundsMode::DenseReference,
            BoundsMode::CrossCheck,
        ] {
            // Fresh cache per mode: identical MinDist/reachability inputs,
            // no shared memo effects.
            let cache = MinDistCache::new();
            let mut ws = workspace(mode);
            let (res, decisions) = scheduler.run_in(&problem, &cache, None, &mut ws);
            let sched = res.unwrap_or_else(|e| panic!("case {case} ({mode:?}): {e:?}"));
            results.push((mode, fingerprint(&sched), decisions, sched));
        }
        let (_, sparse_fp, sparse_dec, sparse_sched) = &results[0];
        for (mode, fp, dec, sched) in &results[1..] {
            assert_eq!(sparse_fp, fp, "case {case}: {mode:?} diverged");
            assert_eq!(sparse_dec, dec, "case {case}: {mode:?} decisions diverged");
            // Cost counters may differ; the bounds themselves may not, and
            // the CrossCheck run already asserted that per update. The
            // cells counter must be live in every mode.
            assert!(sched.stats.bounds_cells_touched > 0, "case {case}");
            assert_eq!(
                sched.stats.choose_scan_len, sparse_sched.stats.choose_scan_len,
                "case {case}: {mode:?} scanned a different ready-set total"
            );
        }
        if sparse_sched.stats.ejected_ops > 0 {
            ejection_cases += 1;
        }
    }
    // The suite is only meaningful if the backtracking path (forced
    // placements + dependence ejections + recompute_bounds) runs.
    assert!(
        ejection_cases >= 8,
        "only {ejection_cases} ejection-heavy cases; the sweep no longer \
         exercises the §4.4 path"
    );
}

#[test]
fn cydrome_schedules_are_identical_across_bounds_modes() {
    let scheduler = CydromeScheduler::new();
    for case in 0u64..48 {
        let mut rng = SmallRng::seed_from_u64(0xcd40 + case);
        let arcs = random_arcs(&mut rng, 10, 19);
        let body = body_from(&arcs, 10);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let mut fps = Vec::new();
        for mode in [
            BoundsMode::Sparse,
            BoundsMode::DenseReference,
            BoundsMode::CrossCheck,
        ] {
            let cache = MinDistCache::new();
            let mut ws = workspace(mode);
            let sched = scheduler
                .run_cached_in(&problem, &cache, &mut ws)
                .unwrap_or_else(|e| panic!("case {case} ({mode:?}): {e:?}"));
            fps.push((mode, fingerprint(&sched)));
        }
        let (_, sparse_fp) = &fps[0];
        for (mode, fp) in &fps[1..] {
            assert_eq!(sparse_fp, fp, "case {case}: {mode:?} diverged");
        }
    }
}

/// Workspace recycling across problems must not leak ready-set or shadow
/// state between runs: one long-lived workspace per mode over the whole
/// sweep produces the same schedules as the fresh-workspace sweep above.
#[test]
fn recycled_workspaces_preserve_mode_and_schedules() {
    let scheduler = SlackScheduler::new();
    let mut sparse_ws = workspace(BoundsMode::Sparse);
    let mut check_ws = workspace(BoundsMode::CrossCheck);
    for case in 0u64..32 {
        let mut rng = SmallRng::seed_from_u64(0x2ec1 + case);
        let arcs = random_arcs(&mut rng, 12, 23);
        let body = body_from(&arcs, 12);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        // Caches serve exactly one problem; only the workspaces persist.
        let (a, _) = scheduler.run_in(&problem, &MinDistCache::new(), None, &mut sparse_ws);
        let (b, _) = scheduler.run_in(&problem, &MinDistCache::new(), None, &mut check_ws);
        let a = a.expect("sparse run");
        let b = b.expect("cross-check run");
        assert_eq!(fingerprint(&a), fingerprint(&b), "case {case}");
        assert_eq!(sparse_ws.bounds_mode(), BoundsMode::Sparse);
        assert_eq!(check_ws.bounds_mode(), BoundsMode::CrossCheck);
    }
}
