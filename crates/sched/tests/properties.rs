//! Property-based tests: random dependence graphs through every scheduler,
//! checked against the independent validator and the bound algebra.
//!
//! Formerly a `proptest` suite; rewritten over the vendored deterministic
//! PRNG so the workspace builds without external crates. Each case derives
//! entirely from its seed, so a failure message's `case` number reproduces
//! the exact graph.

use lsms_ir::{DepKind, DepVia, LoopBody, LoopBuilder, OpKind, ValueType};
use lsms_machine::huff_machine;
use lsms_prng::SmallRng;
use lsms_sched::bounds::{rec_mii_by_enumeration, rec_mii_min_ratio};
use lsms_sched::pressure::{lifetimes, measure, min_lifetimes};
use lsms_sched::{
    validate, CydromeScheduler, DirectionPolicy, MinDist, SchedProblem, SlackConfig, SlackScheduler,
};

/// Description of one synthetic operation.
#[derive(Clone, Debug)]
struct OpSpec {
    kind_sel: u8,
    /// Flow arcs to later ops: (relative target offset, omega).
    fwd: Vec<(u8, u8)>,
    /// Optional back arc: (relative target offset, omega >= 1).
    back: Option<(u8, u8)>,
}

/// Mirrors the old proptest strategy: kind in 0..8, 0..3 forward arcs of
/// (0..6, 0..3), and a back arc (0..6, 1..4) with probability 0.3.
fn random_spec(rng: &mut SmallRng) -> OpSpec {
    let kind_sel = rng.gen_range(0..8u8);
    let fwd = (0..rng.gen_range(0..3usize))
        .map(|_| (rng.gen_range(0..6u8), rng.gen_range(0..3u8)))
        .collect();
    let back = rng
        .gen_ratio(3, 10)
        .then(|| (rng.gen_range(0..6u8), rng.gen_range(1..4u8)));
    OpSpec {
        kind_sel,
        fwd,
        back,
    }
}

fn random_specs(rng: &mut SmallRng, max_len: usize) -> Vec<OpSpec> {
    (0..rng.gen_range(1..max_len))
        .map(|_| random_spec(rng))
        .collect()
}

fn kind_of(sel: u8) -> OpKind {
    match sel {
        0 => OpKind::FAdd,
        1 => OpKind::FMul,
        2 => OpKind::Load,
        3 => OpKind::Store,
        4 => OpKind::IntAdd,
        5 => OpKind::AddrAdd,
        6 => OpKind::FSub,
        _ => OpKind::FDiv,
    }
}

/// Builds a structurally valid loop body from specs. Back arcs always have
/// omega >= 1, so no zero-omega cycle can arise.
fn build_body(specs: &[OpSpec]) -> LoopBody {
    let mut b = LoopBuilder::new("random");
    let addr = b.invariant(ValueType::Addr, "addr");
    let fin = b.invariant(ValueType::Float, "fin");
    let iin = b.invariant(ValueType::Int, "iin");
    let ain2 = b.invariant(ValueType::Addr, "addr2");
    let mut ops = Vec::new();
    for spec in specs {
        let kind = kind_of(spec.kind_sel);
        let inputs: Vec<_> = match kind {
            OpKind::Load => vec![addr],
            OpKind::Store => vec![addr, fin],
            OpKind::AddrAdd => vec![ain2, ain2],
            OpKind::IntAdd => vec![iin, iin],
            _ => vec![fin, fin],
        };
        let result = if kind.has_result() {
            let ty = match kind {
                OpKind::IntAdd => ValueType::Int,
                OpKind::AddrAdd => ValueType::Addr,
                _ => ValueType::Float,
            };
            Some(b.new_value(ty))
        } else {
            None
        };
        ops.push((b.op(kind, &inputs, result), result.is_some()));
    }
    let n = ops.len();
    for (i, spec) in specs.iter().enumerate() {
        for &(off, omega) in &spec.fwd {
            let j = i + 1 + off as usize;
            if j >= n {
                continue;
            }
            if ops[i].1 {
                b.flow_dep(ops[i].0, ops[j].0, u32::from(omega));
            } else {
                b.dep(
                    ops[i].0,
                    ops[j].0,
                    DepKind::Output,
                    DepVia::Memory,
                    u32::from(omega),
                );
            }
        }
        if let Some((off, omega)) = spec.back {
            let j = (off as usize) % n;
            if j <= i {
                if ops[i].1 {
                    b.flow_dep(ops[i].0, ops[j].0, u32::from(omega));
                } else {
                    b.dep(
                        ops[i].0,
                        ops[j].0,
                        DepKind::Anti,
                        DepVia::Memory,
                        u32::from(omega),
                    );
                }
            }
        }
    }
    b.finish()
}

#[test]
fn every_scheduler_produces_valid_schedules() {
    for case in 0u64..96 {
        let mut rng = SmallRng::seed_from_u64(0x5c4ed + case);
        let specs = random_specs(&mut rng, 20);
        let body = build_body(&specs);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");

        let slack = SlackScheduler::new()
            .run(&problem)
            .expect("slack schedules");
        assert_eq!(validate(&problem, &slack), Ok(()), "case {case}");
        assert!(slack.ii >= problem.mii());

        for policy in [DirectionPolicy::AlwaysEarly, DirectionPolicy::AlwaysLate] {
            let s = SlackScheduler::with_config(SlackConfig {
                direction: policy,
                ..SlackConfig::default()
            })
            .run(&problem)
            .expect("ablation schedules");
            assert_eq!(validate(&problem, &s), Ok(()), "case {case} {policy:?}");
        }

        if let Ok(s) = CydromeScheduler::new().run(&problem) {
            assert_eq!(validate(&problem, &s), Ok(()), "case {case} cydrome");
            assert!(s.ii >= slack.ii || s.ii >= problem.mii());
        }
    }
}

#[test]
fn rec_mii_methods_agree() {
    for case in 0u64..96 {
        let mut rng = SmallRng::seed_from_u64(0x4ec0 + case);
        let specs = random_specs(&mut rng, 16);
        let body = build_body(&specs);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        if let Ok(by_circuits) = rec_mii_by_enumeration(&problem, 1_000_000) {
            assert_eq!(by_circuits, rec_mii_min_ratio(&problem), "case {case}");
        }
    }
}

#[test]
fn lifetimes_dominate_their_lower_bounds() {
    for case in 0u64..96 {
        let mut rng = SmallRng::seed_from_u64(0x11f7 + case);
        let specs = random_specs(&mut rng, 16);
        let body = build_body(&specs);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let schedule = SlackScheduler::new().run(&problem).expect("schedules");
        let md = MinDist::compute(&problem, schedule.ii);
        let actual = lifetimes(&problem, &schedule);
        let lower = min_lifetimes(&problem, &md);
        for (value, (a, l)) in actual.iter().zip(&lower).enumerate() {
            if let (Some(a), Some(l)) = (a, l) {
                assert!(
                    a >= l,
                    "case {case} value {value}: lifetime {a} < MinLT {l}"
                );
            }
        }
    }
}

#[test]
fn max_live_sits_between_avg_and_sum() {
    for case in 0u64..96 {
        let mut rng = SmallRng::seed_from_u64(0x3a11 + case);
        let specs = random_specs(&mut rng, 16);
        let body = build_body(&specs);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let schedule = SlackScheduler::new().run(&problem).expect("schedules");
        let report = measure(&problem, &schedule);
        // MaxLive >= ceil(AvgLive): the max of the LiveVector is at least
        // its average.
        let avg = report.rr_avg_live();
        assert!(f64::from(report.rr_max_live) + 1e-9 >= avg);
        // MinAvg is an absolute lower bound on MaxLive (Figure 5's gap is
        // never negative).
        assert!(report.rr_max_live >= report.rr_min_avg, "case {case}");
        // MaxLive <= sum of per-value ceilings.
        let actual = lifetimes(&problem, &schedule);
        let sum_ceil: u64 = actual
            .iter()
            .flatten()
            .map(|&lt| (lt.max(0) as u64).div_ceil(u64::from(schedule.ii)))
            .sum();
        assert!(u64::from(report.rr_max_live) <= sum_ceil, "case {case}");
    }
}

#[test]
fn unrolling_preserves_schedulability_and_tightens_fractional_bounds() {
    for case in 0u64..96 {
        let mut rng = SmallRng::seed_from_u64(0x0411 + case);
        let specs = random_specs(&mut rng, 12);
        let body = build_body(&specs);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let unrolled = lsms_ir::unroll(&body, 2);
        assert_eq!(unrolled.validate(), Ok(()));
        let problem2 = SchedProblem::new(&unrolled, &machine).expect("unrolled buildable");
        // Per-source-iteration bounds only improve (the fractional-MII
        // argument of §3.1): ceil(RecMII_u / 2) <= RecMII, and the
        // unrolled circuit bound never exceeds twice the original.
        assert!(problem2.rec_mii() <= 2 * problem.rec_mii(), "case {case}");
        assert!(
            problem2.rec_mii().div_ceil(2) <= problem.rec_mii(),
            "case {case}"
        );
        assert!(problem2.res_mii() <= 2 * problem.res_mii(), "case {case}");
        // And the unrolled body schedules.
        let s = SlackScheduler::new()
            .run(&problem2)
            .expect("unrolled schedules");
        assert_eq!(validate(&problem2, &s), Ok(()), "case {case}");
    }
}

#[test]
fn straight_line_mode_schedules_everything() {
    for case in 0u64..96 {
        let mut rng = SmallRng::seed_from_u64(0x57a1 + case);
        let specs = random_specs(&mut rng, 14);
        let body = build_body(&specs);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let s = SlackScheduler::new()
            .run_straight_line(&problem)
            .unwrap_or_else(|e| panic!("straight-line failed on {specs:?}: {e}"));
        assert_eq!(validate(&problem, &s), Ok(()), "case {case}");
        // Straight-line: nothing wraps, so the plain (non-modulo)
        // dependence constraints hold outright for omega-0 arcs.
        assert!(s.length() <= i64::from(s.ii), "case {case}");
    }
}

#[test]
fn bidirectional_never_worse_ii_than_cydrome() {
    for case in 0u64..96 {
        let mut rng = SmallRng::seed_from_u64(0xb1d1 + case);
        let specs = random_specs(&mut rng, 14);
        let body = build_body(&specs);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let slack = SlackScheduler::new()
            .run(&problem)
            .expect("slack schedules");
        // The slack scheduler must achieve MII on these modest graphs often
        // enough that we simply require a feasible II within the cap.
        assert!(slack.ii <= 4 * problem.mii() + 64, "case {case}");
    }
}
