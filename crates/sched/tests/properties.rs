//! Property-based tests: random dependence graphs through every scheduler,
//! checked against the independent validator and the bound algebra.

use lsms_ir::{DepKind, DepVia, LoopBody, LoopBuilder, OpKind, ValueType};
use lsms_machine::huff_machine;
use lsms_sched::bounds::{rec_mii_by_enumeration, rec_mii_min_ratio};
use lsms_sched::pressure::{lifetimes, measure, min_lifetimes};
use lsms_sched::{
    validate, CydromeScheduler, DirectionPolicy, MinDist, SchedProblem, SlackConfig,
    SlackScheduler,
};
use proptest::prelude::*;

/// Description of one synthetic operation.
#[derive(Clone, Debug)]
struct OpSpec {
    kind_sel: u8,
    /// Flow arcs to later ops: (relative target offset, omega).
    fwd: Vec<(u8, u8)>,
    /// Optional back arc: (relative target offset, omega >= 1).
    back: Option<(u8, u8)>,
}

fn op_spec() -> impl Strategy<Value = OpSpec> {
    (
        0u8..8,
        prop::collection::vec((0u8..6, 0u8..3), 0..3),
        prop::option::weighted(0.3, (0u8..6, 1u8..4)),
    )
        .prop_map(|(kind_sel, fwd, back)| OpSpec { kind_sel, fwd, back })
}

fn kind_of(sel: u8) -> OpKind {
    match sel {
        0 => OpKind::FAdd,
        1 => OpKind::FMul,
        2 => OpKind::Load,
        3 => OpKind::Store,
        4 => OpKind::IntAdd,
        5 => OpKind::AddrAdd,
        6 => OpKind::FSub,
        _ => OpKind::FDiv,
    }
}

/// Builds a structurally valid loop body from specs. Back arcs always have
/// omega >= 1, so no zero-omega cycle can arise.
fn build_body(specs: &[OpSpec]) -> LoopBody {
    let mut b = LoopBuilder::new("random");
    let addr = b.invariant(ValueType::Addr, "addr");
    let fin = b.invariant(ValueType::Float, "fin");
    let iin = b.invariant(ValueType::Int, "iin");
    let ain2 = b.invariant(ValueType::Addr, "addr2");
    let mut ops = Vec::new();
    for spec in specs {
        let kind = kind_of(spec.kind_sel);
        let inputs: Vec<_> = match kind {
            OpKind::Load => vec![addr],
            OpKind::Store => vec![addr, fin],
            OpKind::AddrAdd => vec![ain2, ain2],
            OpKind::IntAdd => vec![iin, iin],
            _ => vec![fin, fin],
        };
        let result = if kind.has_result() {
            let ty = match kind {
                OpKind::IntAdd => ValueType::Int,
                OpKind::AddrAdd => ValueType::Addr,
                _ => ValueType::Float,
            };
            Some(b.new_value(ty))
        } else {
            None
        };
        ops.push((b.op(kind, &inputs, result), result.is_some()));
    }
    let n = ops.len();
    for (i, spec) in specs.iter().enumerate() {
        for &(off, omega) in &spec.fwd {
            let j = i + 1 + off as usize;
            if j >= n {
                continue;
            }
            if ops[i].1 {
                b.flow_dep(ops[i].0, ops[j].0, u32::from(omega));
            } else {
                b.dep(ops[i].0, ops[j].0, DepKind::Output, DepVia::Memory, u32::from(omega));
            }
        }
        if let Some((off, omega)) = spec.back {
            let j = (off as usize) % n;
            if j <= i {
                if ops[i].1 {
                    b.flow_dep(ops[i].0, ops[j].0, u32::from(omega));
                } else {
                    b.dep(ops[i].0, ops[j].0, DepKind::Anti, DepVia::Memory, u32::from(omega));
                }
            }
        }
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_scheduler_produces_valid_schedules(
        specs in prop::collection::vec(op_spec(), 1..20)
    ) {
        let body = build_body(&specs);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");

        let slack = SlackScheduler::new().run(&problem).expect("slack schedules");
        prop_assert_eq!(validate(&problem, &slack), Ok(()));
        prop_assert!(slack.ii >= problem.mii());

        for policy in [DirectionPolicy::AlwaysEarly, DirectionPolicy::AlwaysLate] {
            let s = SlackScheduler::with_config(SlackConfig {
                direction: policy,
                ..SlackConfig::default()
            })
            .run(&problem)
            .expect("ablation schedules");
            prop_assert_eq!(validate(&problem, &s), Ok(()));
        }

        if let Ok(s) = CydromeScheduler::new().run(&problem) {
            prop_assert_eq!(validate(&problem, &s), Ok(()));
            prop_assert!(s.ii >= slack.ii || s.ii >= problem.mii());
        }
    }

    #[test]
    fn rec_mii_methods_agree(specs in prop::collection::vec(op_spec(), 1..16)) {
        let body = build_body(&specs);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        if let Ok(by_circuits) = rec_mii_by_enumeration(&problem, 1_000_000) {
            prop_assert_eq!(by_circuits, rec_mii_min_ratio(&problem));
        }
    }

    #[test]
    fn lifetimes_dominate_their_lower_bounds(
        specs in prop::collection::vec(op_spec(), 1..16)
    ) {
        let body = build_body(&specs);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let schedule = SlackScheduler::new().run(&problem).expect("schedules");
        let md = MinDist::compute(&problem, schedule.ii);
        let actual = lifetimes(&problem, &schedule);
        let lower = min_lifetimes(&problem, &md);
        for (value, (a, l)) in actual.iter().zip(&lower).enumerate() {
            if let (Some(a), Some(l)) = (a, l) {
                prop_assert!(a >= l, "value {value}: lifetime {a} < MinLT {l}");
            }
        }
    }

    #[test]
    fn max_live_sits_between_avg_and_sum(
        specs in prop::collection::vec(op_spec(), 1..16)
    ) {
        let body = build_body(&specs);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let schedule = SlackScheduler::new().run(&problem).expect("schedules");
        let report = measure(&problem, &schedule);
        // MaxLive >= ceil(AvgLive): the max of the LiveVector is at least
        // its average.
        let avg = report.rr_avg_live();
        prop_assert!(f64::from(report.rr_max_live) + 1e-9 >= avg);
        // MinAvg is an absolute lower bound on MaxLive (Figure 5's gap is
        // never negative).
        prop_assert!(report.rr_max_live >= report.rr_min_avg);
        // MaxLive <= sum of per-value ceilings.
        let md = MinDist::compute(&problem, schedule.ii);
        let _ = md;
        let actual = lifetimes(&problem, &schedule);
        let sum_ceil: u64 = actual
            .iter()
            .flatten()
            .map(|&lt| (lt.max(0) as u64).div_ceil(u64::from(schedule.ii)))
            .sum();
        prop_assert!(u64::from(report.rr_max_live) <= sum_ceil);
    }

    #[test]
    fn unrolling_preserves_schedulability_and_tightens_fractional_bounds(
        specs in prop::collection::vec(op_spec(), 1..12)
    ) {
        let body = build_body(&specs);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let unrolled = lsms_ir::unroll(&body, 2);
        prop_assert_eq!(unrolled.validate(), Ok(()));
        let problem2 = SchedProblem::new(&unrolled, &machine).expect("unrolled buildable");
        // Per-source-iteration bounds only improve (the fractional-MII
        // argument of §3.1): ceil(RecMII_u / 2) <= RecMII, and the
        // unrolled circuit bound never exceeds twice the original.
        prop_assert!(problem2.rec_mii() <= 2 * problem.rec_mii());
        prop_assert!(problem2.rec_mii().div_ceil(2) <= problem.rec_mii());
        prop_assert!(problem2.res_mii() <= 2 * problem.res_mii());
        // And the unrolled body schedules.
        let s = SlackScheduler::new().run(&problem2).expect("unrolled schedules");
        prop_assert_eq!(validate(&problem2, &s), Ok(()));
    }

    #[test]
    fn straight_line_mode_schedules_everything(
        specs in prop::collection::vec(op_spec(), 1..14)
    ) {
        let body = build_body(&specs);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let s = SlackScheduler::new()
            .run_straight_line(&problem)
            .unwrap_or_else(|e| panic!("straight-line failed on {specs:?}: {e}"));
        prop_assert_eq!(validate(&problem, &s), Ok(()));
        // Straight-line: nothing wraps, so the plain (non-modulo)
        // dependence constraints hold outright for omega-0 arcs.
        prop_assert!(s.length() <= i64::from(s.ii));
    }

    #[test]
    fn bidirectional_never_worse_ii_than_cydrome(
        specs in prop::collection::vec(op_spec(), 1..14)
    ) {
        let body = build_body(&specs);
        let machine = huff_machine();
        let problem = SchedProblem::new(&body, &machine).expect("buildable");
        let slack = SlackScheduler::new().run(&problem).expect("slack schedules");
        // The slack scheduler must achieve MII on these modest graphs often
        // enough that we simply require a feasible II within the cap.
        prop_assert!(slack.ii <= 4 * problem.mii() + 64);
    }
}
