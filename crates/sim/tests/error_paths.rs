//! Simulator failure modes: every [`SimError`] variant the harness can
//! surface, plus workspace construction edge cases.

use lsms_front::compile;
use lsms_ir::RegClass;
use lsms_machine::huff_machine;
use lsms_regalloc::{allocate_rotating, Strategy};
use lsms_sched::{SchedProblem, SlackScheduler};
use lsms_sim::{make_workspace, run_kernel, run_mve, run_reference, SimError};

const AXPY: &str = "loop axpy(i = 1..n) {
    real x[], y[];
    param real a;
    y[i] = y[i] + a * x[i];
}";

fn pipeline(src: &str) -> (lsms_front::CompiledLoop, lsms_machine::Machine) {
    let unit = compile(src).unwrap();
    (unit.loops.into_iter().next().unwrap(), huff_machine())
}

#[test]
fn missing_parameter_is_reported() {
    let (compiled, machine) = pipeline(AXPY);
    let problem = SchedProblem::new(&compiled.body, &machine).unwrap();
    let schedule = SlackScheduler::new().run(&problem).unwrap();
    let rr = allocate_rotating(&problem, &schedule, RegClass::Rr, Strategy::default()).unwrap();
    let icr = allocate_rotating(&problem, &schedule, RegClass::Icr, Strategy::default()).unwrap();
    let kernel = lsms_codegen::emit(&problem, &schedule, &rr, &icr).unwrap();
    let mut ws = make_workspace(&compiled, 5, 1);
    ws.params.clear(); // drop `a` and `n`
    let err = run_kernel(&compiled, &problem, &schedule, &kernel, &rr, &icr, &ws).unwrap_err();
    assert!(
        matches!(err, SimError::MissingParam(ref p) if p == "a" || p == "n"),
        "{err}"
    );
    let err = run_mve(
        &compiled,
        &problem,
        &schedule,
        &lsms_codegen::emit_mve(&problem, &schedule).unwrap(),
        &ws,
    )
    .unwrap_err();
    assert!(matches!(err, SimError::MissingParam(_)), "{err}");
}

#[test]
fn missing_scalar_init_is_reported() {
    let (compiled, machine) = pipeline(
        "loop scan(i = 1..n) {
             real x[], y[];
             real s;
             s = s + x[i];
             y[i] = s;
         }",
    );
    let problem = SchedProblem::new(&compiled.body, &machine).unwrap();
    let schedule = SlackScheduler::new().run(&problem).unwrap();
    let rr = allocate_rotating(&problem, &schedule, RegClass::Rr, Strategy::default()).unwrap();
    let icr = allocate_rotating(&problem, &schedule, RegClass::Icr, Strategy::default()).unwrap();
    let kernel = lsms_codegen::emit(&problem, &schedule, &rr, &icr).unwrap();
    let mut ws = make_workspace(&compiled, 5, 1);
    ws.scalar_inits.clear();
    let err = run_kernel(&compiled, &problem, &schedule, &kernel, &rr, &icr, &ws).unwrap_err();
    assert!(
        matches!(err, SimError::MissingScalarInit(ref s) if s == "s"),
        "{err}"
    );
}

#[test]
fn out_of_bounds_memory_is_reported() {
    let (compiled, machine) = pipeline(AXPY);
    let problem = SchedProblem::new(&compiled.body, &machine).unwrap();
    let schedule = SlackScheduler::new().run(&problem).unwrap();
    let rr = allocate_rotating(&problem, &schedule, RegClass::Rr, Strategy::default()).unwrap();
    let icr = allocate_rotating(&problem, &schedule, RegClass::Icr, Strategy::default()).unwrap();
    let kernel = lsms_codegen::emit(&problem, &schedule, &rr, &icr).unwrap();
    let mut ws = make_workspace(&compiled, 50, 1);
    // Shrink the arrays after layout sizing: late iterations run off the
    // end.
    for a in &mut ws.arrays {
        a.truncate(4);
    }
    let err = run_kernel(&compiled, &problem, &schedule, &kernel, &rr, &icr, &ws).unwrap_err();
    assert!(matches!(err, SimError::MemoryOutOfBounds { .. }), "{err}");
}

#[test]
fn workspace_layout_covers_all_accesses() {
    // Deep negative and positive offsets plus seeds: the workspace must be
    // sized so the reference interpreter and both simulators never leave
    // the arrays.
    let (compiled, machine) = pipeline(
        "loop wide(i = 1..n) {
             real a[], b[];
             a[i] = a[i-4] + b[i+10];
             b[i+1] = a[i] * 0.5;
         }",
    );
    let ws = make_workspace(&compiled, 30, 9);
    assert!(ws.lo >= 4, "lo must clear the deepest negative reach");
    let needed = (ws.lo + 30 + 10) as usize;
    assert!(ws.arrays.iter().all(|a| a.len() > needed));
    // And the pipeline actually runs clean.
    let problem = SchedProblem::new(&compiled.body, &machine).unwrap();
    let schedule = SlackScheduler::new().run(&problem).unwrap();
    let rr = allocate_rotating(&problem, &schedule, RegClass::Rr, Strategy::default()).unwrap();
    let icr = allocate_rotating(&problem, &schedule, RegClass::Icr, Strategy::default()).unwrap();
    let kernel = lsms_codegen::emit(&problem, &schedule, &rr, &icr).unwrap();
    let got = run_kernel(&compiled, &problem, &schedule, &kernel, &rr, &icr, &ws).unwrap();
    assert_eq!(got.arrays, run_reference(&compiled, &ws));
}

#[test]
fn zero_stage_edge_trips_execute() {
    // trip == 1 with a deep pipeline: every stage beyond the first is
    // ramp-down only.
    let (compiled, machine) = pipeline(AXPY);
    let problem = SchedProblem::new(&compiled.body, &machine).unwrap();
    let schedule = SlackScheduler::new().run(&problem).unwrap();
    let rr = allocate_rotating(&problem, &schedule, RegClass::Rr, Strategy::default()).unwrap();
    let icr = allocate_rotating(&problem, &schedule, RegClass::Icr, Strategy::default()).unwrap();
    let kernel = lsms_codegen::emit(&problem, &schedule, &rr, &icr).unwrap();
    let ws = make_workspace(&compiled, 1, 3);
    let got = run_kernel(&compiled, &problem, &schedule, &kernel, &rr, &icr, &ws).unwrap();
    assert_eq!(got.arrays, run_reference(&compiled, &ws));
    // Cycle count: (trip + stages - 1) * II.
    assert_eq!(
        got.cycles,
        u64::from(schedule.stages()) * u64::from(schedule.ii)
    );
}
