//! The VLIW machine simulator: executes kernel-only code with rotating
//! register files.
//!
//! The simulator models exactly what the scheduling theory relies on:
//!
//! * files rotate once per kernel iteration (the ICP decrement folded
//!   into `phys = (specifier − k) mod N` for kernel iteration `k`);
//! * a stage-`s` instruction executes for source iteration `k − s`, and
//!   only while `0 ≤ k − s < trip` — the stage-predicate ramp-up and
//!   ramp-down of kernel-only code (§2.2);
//! * within a cycle all reads happen before all writes (VLIW register
//!   semantics; this is what lets anti-dependences carry latency 0);
//! * register writes land at issue. This is sound because the rotating
//!   allocation guarantees the previous tenant of a physical register is
//!   dead once a new definition issues, and consumers of the new value
//!   are scheduled at least its latency later.
//!
//! Pre-loop *instances* of loop-carried values (a recurrence's `x(i-2)`
//! for the first two iterations) are seeded into the physical registers
//! they would have been written to at negative time, from the
//! [`InitialSource`] bindings the front end
//! recorded.

use std::fmt;

use lsms_codegen::{KernelCode, RegRef};
use lsms_front::{BinOp, CompiledLoop, InitialSource, InvariantSource, RelOp, Ty};
use lsms_ir::{OpKind, ValueType};
use lsms_regalloc::RotatingAllocation;
use lsms_sched::{SchedProblem, Schedule};

use crate::reference::{arith, compare};
use crate::Workspace;

/// Execution failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A GPR value has no binding in the compiled loop's invariants.
    UnboundGpr(String),
    /// A parameter named by the loop is missing from the workspace.
    MissingParam(String),
    /// A carried scalar's initial value is missing from the workspace.
    MissingScalarInit(String),
    /// A load or store fell outside the laid-out memory.
    MemoryOutOfBounds {
        /// The offending byte address.
        addr: i64,
    },
    /// Two instructions wrote the same physical register in one cycle —
    /// an allocator bug surfaced at run time.
    WriteCollision {
        /// The physical register index.
        phys: u32,
    },
    /// An initial-instance seed fell outside the workspace arrays.
    SeedOutOfBounds,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnboundGpr(v) => write!(f, "GPR value {v} has no invariant binding"),
            SimError::MissingParam(p) => write!(f, "parameter `{p}` missing from workspace"),
            SimError::MissingScalarInit(s) => {
                write!(f, "carried scalar `{s}` has no initial value")
            }
            SimError::MemoryOutOfBounds { addr } => write!(f, "memory access at {addr:#x}"),
            SimError::WriteCollision { phys } => {
                write!(f, "two writes to physical register {phys} in one cycle")
            }
            SimError::SeedOutOfBounds => f.write_str("initial instance outside arrays"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a kernel execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimOutcome {
    /// Final array contents, same shape as the workspace's.
    pub arrays: Vec<Vec<u64>>,
    /// Machine cycles executed: `(trip + stages − 1) · II`.
    pub cycles: u64,
}

/// Executes `kernel` on the workspace.
///
/// # Errors
///
/// See [`SimError`].
pub fn run_kernel(
    compiled: &CompiledLoop,
    problem: &SchedProblem<'_>,
    schedule: &Schedule,
    kernel: &KernelCode,
    rr: &RotatingAllocation,
    icr: &RotatingAllocation,
    workspace: &Workspace,
) -> Result<SimOutcome, SimError> {
    let body = problem.body();
    let lo = workspace.lo;
    let trip = workspace.trip;

    // Memory layout: arrays packed contiguously, 8-byte elements.
    let mut bases = Vec::with_capacity(workspace.arrays.len());
    let mut memory: Vec<u64> = Vec::new();
    for a in &workspace.arrays {
        bases.push((memory.len() as i64) * 8);
        memory.extend_from_slice(a);
    }

    // Bind the GPR file.
    let mut gpr = vec![0u64; kernel.gpr_bindings.len()];
    for (value, index) in &kernel.gpr_bindings {
        let source = compiled
            .invariants
            .iter()
            .find(|(v, _)| v == value)
            .map(|(_, s)| s)
            .ok_or_else(|| SimError::UnboundGpr(body.value(*value).name.clone()))?;
        gpr[*index as usize] = match source {
            InvariantSource::ConstReal(x) => x.to_bits(),
            InvariantSource::ConstInt(x) => *x as u64,
            InvariantSource::Param(name) => *workspace
                .params
                .get(name)
                .ok_or_else(|| SimError::MissingParam(name.clone()))?,
            InvariantSource::RefBase { array, offset } => (bases[*array] + 8 * offset) as u64,
            InvariantSource::Stride => 8u64,
        };
    }

    // Rotating files.
    let n_rr = kernel.rr_size.max(1) as i64;
    let n_icr = kernel.icr_size.max(1) as i64;
    let mut rr_file = vec![0u64; n_rr as usize];
    let mut icr_file = vec![0u64; n_icr as usize];

    // Seed pre-loop instances (RR values, and ICR predicates such as the
    // early-exit `live` chain).
    for (value, source) in &compiled.initials {
        let is_pred = body.value(*value).reg_class() == lsms_ir::RegClass::Icr;
        let offset = if is_pred {
            match icr.offsets.get(value) {
                Some(&o) => o,
                None => continue,
            }
        } else {
            match rr.offsets.get(value) {
                Some(&o) => o,
                None => continue,
            }
        };
        let def = body.value(*value).def.expect("initials are defined values");
        let s_v = schedule.stage(def.index()) as i64;
        // Depth: how far back uses reach.
        let depth = body
            .ops()
            .iter()
            .flat_map(|op| {
                op.inputs
                    .iter()
                    .zip(&op.input_omegas)
                    .filter(|&(&v, _)| v == *value)
                    .map(|(_, &w)| w)
            })
            .max()
            .unwrap_or(0) as i64;
        for j in -depth..0 {
            let bits = match source {
                InitialSource::ArrayElem {
                    array,
                    offset: store_off,
                } => {
                    let elem = lo + j + store_off;
                    let elem = usize::try_from(elem).map_err(|_| SimError::SeedOutOfBounds)?;
                    *workspace.arrays[*array]
                        .get(elem)
                        .ok_or(SimError::SeedOutOfBounds)?
                }
                InitialSource::Scalar(name) => *workspace
                    .scalar_inits
                    .get(name)
                    .ok_or_else(|| SimError::MissingScalarInit(name.clone()))?,
                InitialSource::Index8 => (8 * (lo + j)) as u64,
                InitialSource::PredTrue => 1u64,
            };
            let rotations = j + s_v;
            if is_pred {
                let phys = (i64::from(offset) - rotations).rem_euclid(n_icr) as usize;
                icr_file[phys] = bits;
            } else {
                let phys = (i64::from(offset) - rotations).rem_euclid(n_rr) as usize;
                rr_file[phys] = bits;
            }
        }
    }

    // Comparison type per instruction (Cmp* kinds are type-generic).
    let cmp_ty = |op_id: lsms_ir::OpId| -> Ty {
        match body.value(body.op(op_id).inputs[0]).ty {
            ValueType::Float => Ty::Real,
            _ => Ty::Int,
        }
    };

    let kernel_iters = trip + u64::from(kernel.stages) - 1;
    let mut reg_writes: Vec<(bool, usize, u64)> = Vec::new();
    let mut mem_writes: Vec<(usize, u64)> = Vec::new();
    for k in 0..kernel_iters as i64 {
        for slot in &kernel.slots {
            reg_writes.clear();
            mem_writes.clear();
            for inst in slot {
                let source_iter = k - i64::from(inst.stage);
                if source_iter < 0 || source_iter >= trip as i64 {
                    continue; // stage predicate off: ramp-up/ramp-down
                }
                let read = |r: &RegRef| -> u64 {
                    match *r {
                        RegRef::Rr(spec) => {
                            rr_file[(i64::from(spec) - k).rem_euclid(n_rr) as usize]
                        }
                        RegRef::Icr(spec) => {
                            icr_file[(i64::from(spec) - k).rem_euclid(n_icr) as usize]
                        }
                        RegRef::Gpr(i) => gpr[i as usize],
                    }
                };
                if let Some(g) = &inst.guard {
                    if read(g) == 0 {
                        continue; // predicated off: a no-op (§2.2)
                    }
                }
                let srcs: Vec<u64> = inst.srcs.iter().map(read).collect();
                let mut store = None;
                let result = match inst.kind {
                    OpKind::Load => {
                        let addr = srcs[0] as i64;
                        let word = usize::try_from(addr / 8)
                            .map_err(|_| SimError::MemoryOutOfBounds { addr })?;
                        Some(
                            *memory
                                .get(word)
                                .ok_or(SimError::MemoryOutOfBounds { addr })?,
                        )
                    }
                    OpKind::Store => {
                        let addr = srcs[0] as i64;
                        let word = usize::try_from(addr / 8)
                            .map_err(|_| SimError::MemoryOutOfBounds { addr })?;
                        if word >= memory.len() {
                            return Err(SimError::MemoryOutOfBounds { addr });
                        }
                        store = Some((word, srcs[1]));
                        None
                    }
                    OpKind::Brtop => None,
                    kind => Some(execute_opcode(kind, cmp_ty(inst.op), &srcs)),
                };
                if let Some((word, bits)) = store {
                    mem_writes.push((word, bits));
                }
                if let (Some(bits), Some(dest)) = (result, &inst.dest) {
                    let (is_icr, phys) = match *dest {
                        RegRef::Rr(spec) => {
                            (false, (i64::from(spec) - k).rem_euclid(n_rr) as usize)
                        }
                        RegRef::Icr(spec) => {
                            (true, (i64::from(spec) - k).rem_euclid(n_icr) as usize)
                        }
                        RegRef::Gpr(_) => unreachable!("results never target GPRs"),
                    };
                    if reg_writes.iter().any(|&(i, p, _)| i == is_icr && p == phys) {
                        return Err(SimError::WriteCollision { phys: phys as u32 });
                    }
                    reg_writes.push((is_icr, phys, bits));
                }
            }
            // All reads done: commit this cycle's writes.
            for &(is_icr, phys, bits) in &reg_writes {
                if is_icr {
                    icr_file[phys] = bits;
                } else {
                    rr_file[phys] = bits;
                }
            }
            for &(word, bits) in &mem_writes {
                memory[word] = bits;
            }
        }
    }

    // Unpack arrays.
    let mut arrays = Vec::with_capacity(workspace.arrays.len());
    let mut cursor = 0usize;
    for a in &workspace.arrays {
        arrays.push(memory[cursor..cursor + a.len()].to_vec());
        cursor += a.len();
    }
    Ok(SimOutcome {
        arrays,
        cycles: kernel_iters * u64::from(kernel.ii),
    })
}

/// Evaluates a register-to-register opcode on raw bit patterns, sharing
/// arithmetic semantics with the reference interpreter.
pub(crate) fn execute_opcode(kind: OpKind, cmp: Ty, srcs: &[u64]) -> u64 {
    let b = |cond: bool| u64::from(cond);
    match kind {
        OpKind::FAdd => arith(BinOp::Add, Ty::Real, srcs[0], srcs[1]),
        OpKind::FSub => arith(BinOp::Sub, Ty::Real, srcs[0], srcs[1]),
        OpKind::FMul => arith(BinOp::Mul, Ty::Real, srcs[0], srcs[1]),
        OpKind::FDiv => arith(BinOp::Div, Ty::Real, srcs[0], srcs[1]),
        OpKind::FMod => {
            let (x, y) = (f64::from_bits(srcs[0]), f64::from_bits(srcs[1]));
            (x % y).to_bits()
        }
        OpKind::FSqrt => f64::from_bits(srcs[0]).sqrt().to_bits(),
        OpKind::IntAdd | OpKind::AddrAdd => arith(BinOp::Add, Ty::Int, srcs[0], srcs[1]),
        OpKind::IntSub | OpKind::AddrSub => arith(BinOp::Sub, Ty::Int, srcs[0], srcs[1]),
        OpKind::IntMul | OpKind::AddrMul => arith(BinOp::Mul, Ty::Int, srcs[0], srcs[1]),
        OpKind::IntDiv => arith(BinOp::Div, Ty::Int, srcs[0], srcs[1]),
        OpKind::IntMod => arith(BinOp::Rem, Ty::Int, srcs[0], srcs[1]),
        OpKind::And => srcs[0] & srcs[1],
        OpKind::Or => srcs[0] | srcs[1],
        OpKind::Xor => srcs[0] ^ srcs[1],
        OpKind::CmpEq => b(compare(RelOp::Eq, cmp, srcs[0], srcs[1])),
        OpKind::CmpNe => b(compare(RelOp::Ne, cmp, srcs[0], srcs[1])),
        OpKind::CmpLt => b(compare(RelOp::Lt, cmp, srcs[0], srcs[1])),
        OpKind::CmpLe => b(compare(RelOp::Le, cmp, srcs[0], srcs[1])),
        OpKind::CmpGt => b(compare(RelOp::Gt, cmp, srcs[0], srcs[1])),
        OpKind::CmpGe => b(compare(RelOp::Ge, cmp, srcs[0], srcs[1])),
        OpKind::PredAnd => b(srcs[0] != 0 && srcs[1] != 0),
        OpKind::PredOr => b(srcs[0] != 0 || srcs[1] != 0),
        OpKind::PredNot => b(srcs[0] == 0),
        OpKind::Select => {
            if srcs[0] != 0 {
                srcs[1]
            } else {
                srcs[2]
            }
        }
        OpKind::Copy => srcs[0],
        OpKind::Load | OpKind::Store | OpKind::Brtop => {
            unreachable!("memory and control ops are handled by the main loop")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_covers_predicates_and_selects() {
        assert_eq!(execute_opcode(OpKind::PredNot, Ty::Int, &[0]), 1);
        assert_eq!(execute_opcode(OpKind::PredAnd, Ty::Int, &[1, 0]), 0);
        assert_eq!(execute_opcode(OpKind::PredOr, Ty::Int, &[0, 1]), 1);
        assert_eq!(execute_opcode(OpKind::Select, Ty::Int, &[1, 10, 20]), 10);
        assert_eq!(execute_opcode(OpKind::Select, Ty::Int, &[0, 10, 20]), 20);
        assert_eq!(execute_opcode(OpKind::Copy, Ty::Int, &[42]), 42);
    }

    #[test]
    fn execute_compares_by_operand_type() {
        let a = (-1f64).to_bits();
        let b = 2f64.to_bits();
        assert_eq!(execute_opcode(OpKind::CmpLt, Ty::Real, &[a, b]), 1);
        // The same bit patterns as integers compare the other way:
        // -1.0's bits are a huge negative i64? Actually sign bit set makes
        // it negative, so it still compares less — use clearly different
        // values instead.
        let x = 5i64 as u64;
        let y = (-3i64) as u64;
        assert_eq!(execute_opcode(OpKind::CmpLt, Ty::Int, &[x, y]), 0);
        assert_eq!(execute_opcode(OpKind::CmpGe, Ty::Int, &[x, y]), 1);
    }

    #[test]
    fn float_arithmetic_round_trips_bits() {
        let x = 1.5f64.to_bits();
        let y = 2.25f64.to_bits();
        assert_eq!(
            f64::from_bits(execute_opcode(OpKind::FAdd, Ty::Real, &[x, y])),
            3.75
        );
        assert_eq!(
            f64::from_bits(execute_opcode(OpKind::FSqrt, Ty::Real, &[4f64.to_bits()])),
            2.0
        );
    }
}
