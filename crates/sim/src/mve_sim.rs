//! Execution of modulo-variable-expanded code: static registers, no
//! rotation — validating the renaming arithmetic end to end.

use lsms_codegen::{MveKernel, MveRef};
use lsms_front::{CompiledLoop, InitialSource, InvariantSource};
use lsms_ir::OpKind;
use lsms_sched::{SchedProblem, Schedule};

use crate::vliw::{execute_opcode, SimError, SimOutcome};
use crate::Workspace;

/// Executes an MVE kernel on the workspace.
///
/// Control is modelled the way the rotating-file simulator models stage
/// predicates: copy `u = k mod unroll` of the kernel runs at virtual
/// kernel iteration `k`, and a stage-`s` instruction executes only while
/// `0 ≤ k − s < trip` — standing in for the explicit prologue/epilogue
/// code a machine without predication would emit (whose size
/// [`MveKernel::total_insts`] accounts for).
///
/// # Errors
///
/// See [`SimError`].
pub fn run_mve(
    compiled: &CompiledLoop,
    problem: &SchedProblem<'_>,
    schedule: &Schedule,
    kernel: &MveKernel,
    workspace: &Workspace,
) -> Result<SimOutcome, SimError> {
    let body = problem.body();
    let lo = workspace.lo;
    let trip = workspace.trip;

    let mut bases = Vec::with_capacity(workspace.arrays.len());
    let mut memory: Vec<u64> = Vec::new();
    for a in &workspace.arrays {
        bases.push((memory.len() as i64) * 8);
        memory.extend_from_slice(a);
    }

    let mut gpr = vec![0u64; kernel.gpr_bindings.len()];
    for (value, index) in &kernel.gpr_bindings {
        let source = compiled
            .invariants
            .iter()
            .find(|(v, _)| v == value)
            .map(|(_, s)| s)
            .ok_or_else(|| SimError::UnboundGpr(body.value(*value).name.clone()))?;
        gpr[*index as usize] = match source {
            InvariantSource::ConstReal(x) => x.to_bits(),
            InvariantSource::ConstInt(x) => *x as u64,
            InvariantSource::Param(name) => *workspace
                .params
                .get(name)
                .ok_or_else(|| SimError::MissingParam(name.clone()))?,
            InvariantSource::RefBase { array, offset } => (bases[*array] + 8 * offset) as u64,
            InvariantSource::Stride => 8u64,
        };
    }

    let mut regs = vec![0u64; kernel.num_regs as usize];
    let mut preds = vec![0u64; kernel.num_preds.max(1) as usize];

    // Seed pre-loop instances: defs in copy `u` write
    // `base + (u mod q)`, i.e. instance `i` lands in
    // `base + ((i + stage(def)) mod q)` — the same stage shift applies to
    // the seeds.
    for (value, source) in &compiled.initials {
        let (is_pred, base, q) = match kernel.blocks.get(value) {
            Some(&(base, q)) => (false, base, q),
            None => match kernel.pred_blocks.get(value) {
                Some(&(base, q)) => (true, base, q),
                None => continue,
            },
        };
        let def = body.value(*value).def.expect("initials are defined values");
        let s_v = i64::from(schedule.stage(def.index()));
        let depth = body
            .ops()
            .iter()
            .flat_map(|op| {
                op.inputs
                    .iter()
                    .zip(&op.input_omegas)
                    .filter(|&(&v, _)| v == *value)
                    .map(|(_, &w)| w)
            })
            .max()
            .unwrap_or(0) as i64;
        for j in -depth..0 {
            let bits = match source {
                InitialSource::ArrayElem { array, offset } => {
                    let elem = lo + j + offset;
                    let elem = usize::try_from(elem).map_err(|_| SimError::SeedOutOfBounds)?;
                    *workspace.arrays[*array]
                        .get(elem)
                        .ok_or(SimError::SeedOutOfBounds)?
                }
                InitialSource::Scalar(name) => *workspace
                    .scalar_inits
                    .get(name)
                    .ok_or_else(|| SimError::MissingScalarInit(name.clone()))?,
                InitialSource::Index8 => (8 * (lo + j)) as u64,
                InitialSource::PredTrue => 1u64,
            };
            let idx = (base as i64 + (j + s_v).rem_euclid(i64::from(q))) as usize;
            if is_pred {
                preds[idx] = bits;
            } else {
                regs[idx] = bits;
            }
        }
    }

    let cmp_ty = |op_id: lsms_ir::OpId| -> lsms_front::Ty {
        match body.value(body.op(op_id).inputs[0]).ty {
            lsms_ir::ValueType::Float => lsms_front::Ty::Real,
            _ => lsms_front::Ty::Int,
        }
    };

    let kernel_iters = trip + u64::from(kernel.stages) - 1;
    let mut reg_writes: Vec<(bool, usize, u64)> = Vec::new();
    let mut mem_writes: Vec<(usize, u64)> = Vec::new();
    for k in 0..kernel_iters as i64 {
        let copy = (k.rem_euclid(i64::from(kernel.unroll))) as usize;
        for slot in &kernel.slots[copy] {
            reg_writes.clear();
            mem_writes.clear();
            for inst in slot {
                let source_iter = k - i64::from(inst.stage);
                if source_iter < 0 || source_iter >= trip as i64 {
                    continue;
                }
                let read = |r: &MveRef| -> u64 {
                    match *r {
                        MveRef::Reg(i) => regs[i as usize],
                        MveRef::Pred(i) => preds[i as usize],
                        MveRef::Gpr(i) => gpr[i as usize],
                    }
                };
                if let Some(g) = &inst.guard {
                    if read(g) == 0 {
                        continue;
                    }
                }
                let srcs: Vec<u64> = inst.srcs.iter().map(read).collect();
                let mut store = None;
                let result = match inst.kind {
                    OpKind::Load => {
                        let addr = srcs[0] as i64;
                        let word = usize::try_from(addr / 8)
                            .map_err(|_| SimError::MemoryOutOfBounds { addr })?;
                        Some(
                            *memory
                                .get(word)
                                .ok_or(SimError::MemoryOutOfBounds { addr })?,
                        )
                    }
                    OpKind::Store => {
                        let addr = srcs[0] as i64;
                        let word = usize::try_from(addr / 8)
                            .map_err(|_| SimError::MemoryOutOfBounds { addr })?;
                        if word >= memory.len() {
                            return Err(SimError::MemoryOutOfBounds { addr });
                        }
                        store = Some((word, srcs[1]));
                        None
                    }
                    OpKind::Brtop => None,
                    kind => Some(execute_opcode(kind, cmp_ty(inst.op), &srcs)),
                };
                if let Some(w) = store {
                    mem_writes.push(w);
                }
                if let (Some(bits), Some(dest)) = (result, &inst.dest) {
                    let (is_pred, idx) = match *dest {
                        MveRef::Reg(i) => (false, i as usize),
                        MveRef::Pred(i) => (true, i as usize),
                        MveRef::Gpr(_) => unreachable!("results never target GPRs"),
                    };
                    if reg_writes.iter().any(|&(p, i, _)| p == is_pred && i == idx) {
                        return Err(SimError::WriteCollision { phys: idx as u32 });
                    }
                    reg_writes.push((is_pred, idx, bits));
                }
            }
            for &(is_pred, idx, bits) in &reg_writes {
                if is_pred {
                    preds[idx] = bits;
                } else {
                    regs[idx] = bits;
                }
            }
            for &(word, bits) in &mem_writes {
                memory[word] = bits;
            }
        }
    }

    let mut arrays = Vec::with_capacity(workspace.arrays.len());
    let mut cursor = 0usize;
    for a in &workspace.arrays {
        arrays.push(memory[cursor..cursor + a.len()].to_vec());
        cursor += a.len();
    }
    Ok(SimOutcome {
        arrays,
        cycles: kernel_iters * u64::from(kernel.ii),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::make_workspace;
    use crate::reference::run_reference;
    use lsms_codegen::emit_mve;
    use lsms_front::compile;
    use lsms_machine::huff_machine;
    use lsms_sched::SlackScheduler;

    fn check_mve(src: &str, trip: u64) {
        let unit = compile(src).unwrap();
        let machine = huff_machine();
        for l in &unit.loops {
            let problem = SchedProblem::new(&l.body, &machine).unwrap();
            let schedule = SlackScheduler::new().run(&problem).unwrap();
            let kernel = emit_mve(&problem, &schedule).unwrap();
            let workspace = make_workspace(l, trip, trip ^ 0xabcdef);
            let expected = run_reference(l, &workspace);
            let got = run_mve(l, &problem, &schedule, &kernel, &workspace)
                .unwrap_or_else(|e| panic!("{}: {e}", l.def.name));
            assert_eq!(got.arrays, expected, "{} at trip {trip}", l.def.name);
        }
    }

    #[test]
    fn mve_computes_the_sample_loop() {
        for trip in [1, 2, 9, 40] {
            check_mve(
                "loop sample(i = 3..n) {
                     real x[], y[];
                     x[i] = x[i-1] + y[i-2];
                     y[i] = y[i-1] + x[i-2];
                 }",
                trip,
            );
        }
    }

    #[test]
    fn mve_computes_axpy_with_long_lifetimes() {
        for trip in [1, 3, 25] {
            check_mve(
                "loop axpy(i = 1..n) {
                     real x[], y[];
                     param real a;
                     y[i] = y[i] + a * x[i];
                 }",
                trip,
            );
        }
    }

    #[test]
    fn mve_computes_conditionals() {
        check_mve(
            "loop clip(i = 1..n) {
                 real x[], y[];
                 param real t;
                 if (x[i] > t) { y[i] = t; } else { y[i] = x[i]; }
             }",
            21,
        );
    }

    #[test]
    fn mve_computes_reductions() {
        check_mve(
            "loop scan(i = 1..n) {
                 real x[], y[];
                 real s;
                 s = s * 0.5 + x[i];
                 y[i] = s;
             }",
            17,
        );
    }

    #[test]
    fn mve_matches_all_kernels() {
        let machine = huff_machine();
        for k in lsms_loops::kernels() {
            let unit = compile(&k.source).unwrap();
            let l = &unit.loops[0];
            let problem = SchedProblem::new(&l.body, &machine).unwrap();
            let schedule = SlackScheduler::new().run(&problem).unwrap();
            let kernel = emit_mve(&problem, &schedule).unwrap();
            let workspace = make_workspace(l, 19, 42);
            let expected = run_reference(l, &workspace);
            let got = run_mve(l, &problem, &schedule, &kernel, &workspace)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert_eq!(got.arrays, expected, "{}", k.name);
        }
    }
}
