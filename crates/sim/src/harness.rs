//! End-to-end equivalence harness: compile → schedule → allocate → emit →
//! simulate, checked bit for bit against the reference interpreter.

use std::collections::BTreeMap;

use lsms_front::{CompiledLoop, Expr, InitialSource, LValue, Stmt, Ty};
use lsms_machine::Machine;
use lsms_prng::SmallRng;
use lsms_regalloc::{allocate_rotating, Strategy};
use lsms_sched::{SchedProblem, SlackConfig, SlackScheduler};

use crate::reference::run_reference;
use crate::vliw::run_kernel;
use crate::Workspace;

/// Parameters of one equivalence run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Loop trip count.
    pub trip: u64,
    /// Seed for the deterministic input generator.
    pub seed: u64,
    /// Scheduler configuration (ablation variants are worth simulating
    /// too — a wrong schedule must fail *here*, not just in the
    /// validator).
    pub scheduler: SlackConfig,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            trip: 25,
            seed: 0x5eed,
            scheduler: SlackConfig::default(),
        }
    }
}

/// Outcome of a successful equivalence check.
#[derive(Clone, Debug)]
pub struct EquivReport {
    /// Achieved initiation interval.
    pub ii: u32,
    /// Pipeline stages.
    pub stages: u32,
    /// Machine cycles the pipeline ran.
    pub cycles: u64,
    /// Total array elements compared.
    pub elements: usize,
}

/// Builds a deterministic workspace for a compiled loop: arrays sized so
/// every access (including pre-loop seed instances) is in bounds, filled
/// with seeded pseudo-random data; integer data stays in small positive
/// ranges so `%`/`/` behave; integer parameters get the trip-consistent
/// bound value.
pub fn make_workspace(compiled: &CompiledLoop, trip: u64, seed: u64) -> Workspace {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    // Offsets used anywhere in the source.
    let mut min_off: i64 = 0;
    let mut max_off: i64 = 0;
    visit_offsets(&compiled.def.body, &mut |off| {
        min_off = min_off.min(off);
        max_off = max_off.max(off);
    });
    // Pre-loop instances reach back max input-omega iterations.
    let depth = compiled
        .body
        .ops()
        .iter()
        .flat_map(|op| op.input_omegas.iter().copied())
        .max()
        .unwrap_or(0) as i64;
    let lo = (depth - min_off).max(1);
    let len = (lo + trip as i64 + max_off + 2) as usize;

    let arrays = compiled
        .info
        .arrays
        .iter()
        .map(|&(_, ty)| (0..len).map(|_| random_cell(&mut rng, ty)).collect())
        .collect();
    let mut params = BTreeMap::new();
    for (name, ty) in &compiled.info.params {
        let bits = match ty {
            Ty::Real => random_cell(&mut rng, Ty::Real),
            Ty::Int => (lo + trip as i64) as u64, // loop bounds and friends
        };
        params.insert(name.clone(), bits);
    }
    let mut scalar_inits = BTreeMap::new();
    for (name, ty) in &compiled.info.carried {
        scalar_inits.insert(name.clone(), random_cell(&mut rng, *ty));
    }
    // Initials of kind Scalar not covered above (defensive).
    for (_, source) in &compiled.initials {
        if let InitialSource::Scalar(name) = source {
            scalar_inits
                .entry(name.clone())
                .or_insert_with(|| random_cell(&mut rng, Ty::Real));
        }
    }
    Workspace {
        arrays,
        params,
        scalar_inits,
        lo,
        trip,
    }
}

fn random_cell(rng: &mut SmallRng, ty: Ty) -> u64 {
    match ty {
        // Quarter-integers in a small range: exact in binary, no
        // overflow drama, still exercises real arithmetic.
        Ty::Real => ((rng.gen_range(-200..200) as f64) * 0.25).to_bits(),
        // Small positive ints keep divisions and moduli well behaved.
        Ty::Int => rng.gen_range(1..9i64) as u64,
    }
}

fn visit_offsets(stmts: &[Stmt], sink: &mut impl FnMut(i64)) {
    fn expr(e: &Expr, sink: &mut impl FnMut(i64)) {
        match e {
            Expr::Elem { offset, .. } => sink(*offset),
            Expr::Neg(x) | Expr::Sqrt(x) | Expr::Abs(x) => expr(x, sink),
            Expr::Bin(_, l, r) | Expr::MinMax { lhs: l, rhs: r, .. } => {
                expr(l, sink);
                expr(r, sink);
            }
            Expr::Real(_) | Expr::Int(_) | Expr::Scalar(..) => {}
        }
    }
    for stmt in stmts {
        match stmt {
            Stmt::Assign { target, value, .. } => {
                if let LValue::Elem { offset, .. } = target {
                    sink(*offset);
                }
                expr(value, sink);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                expr(&cond.lhs, sink);
                expr(&cond.rhs, sink);
                visit_offsets(then_body, sink);
                visit_offsets(else_body, sink);
            }
            Stmt::BreakIf { cond } => {
                expr(&cond.lhs, sink);
                expr(&cond.rhs, sink);
            }
        }
    }
}

/// Runs the full pipeline on `compiled` and checks the simulated pipeline
/// produces bitwise-identical arrays to the reference interpreter.
///
/// # Errors
///
/// Returns a description of the first divergence — scheduling failure,
/// allocation failure, simulator fault, or an array mismatch (with the
/// array, element, and both values).
pub fn check_equivalence(
    compiled: &CompiledLoop,
    machine: &Machine,
    config: &RunConfig,
) -> Result<EquivReport, String> {
    let workspace = make_workspace(compiled, config.trip, config.seed);
    let expected = run_reference(compiled, &workspace);

    let problem =
        SchedProblem::new(&compiled.body, machine).map_err(|e| format!("problem: {e}"))?;
    let schedule = SlackScheduler::with_config(config.scheduler.clone())
        .run(&problem)
        .map_err(|e| format!("schedule: {e}"))?;
    lsms_sched::validate(&problem, &schedule).map_err(|e| format!("validate: {e}"))?;
    let rr = allocate_rotating(
        &problem,
        &schedule,
        lsms_ir::RegClass::Rr,
        Strategy::default(),
    )
    .map_err(|e| format!("rr alloc: {e}"))?;
    let icr = allocate_rotating(
        &problem,
        &schedule,
        lsms_ir::RegClass::Icr,
        Strategy::default(),
    )
    .map_err(|e| format!("icr alloc: {e}"))?;
    let kernel =
        lsms_codegen::emit(&problem, &schedule, &rr, &icr).map_err(|e| format!("codegen: {e}"))?;
    let outcome = run_kernel(
        compiled, &problem, &schedule, &kernel, &rr, &icr, &workspace,
    )
    .map_err(|e| format!("sim: {e}"))?;

    let mut elements = 0usize;
    for (a, (got, want)) in outcome.arrays.iter().zip(&expected).enumerate() {
        for (idx, (g, w)) in got.iter().zip(want).enumerate() {
            elements += 1;
            if g != w {
                lsms_trace::instant(
                    "sim.verify_mismatch",
                    &[
                        ("array", a as i64),
                        ("element", idx as i64),
                        ("ii", i64::from(schedule.ii)),
                    ],
                );
                lsms_trace::add("sim", "verify_mismatches", 1);
                return Err(format!(
                    "array {} ({}) element {idx}: pipeline {:e} ({g:#x}) != reference {:e} ({w:#x}) \
                     [loop {}, II {}, trip {}]",
                    a,
                    compiled.info.arrays[a].0,
                    f64::from_bits(*g),
                    f64::from_bits(*w),
                    compiled.def.name,
                    schedule.ii,
                    config.trip,
                ));
            }
        }
    }
    lsms_trace::add("sim", "verified_elements", elements as u64);
    Ok(EquivReport {
        ii: schedule.ii,
        stages: schedule.stages(),
        cycles: outcome.cycles,
        elements,
    })
}

/// Like [`check_equivalence`] but executing through the
/// modulo-variable-expansion path (static registers, no rotation) —
/// validating the §2.3 alternative end to end.
///
/// # Errors
///
/// As for [`check_equivalence`].
pub fn check_equivalence_mve(
    compiled: &CompiledLoop,
    machine: &Machine,
    config: &RunConfig,
) -> Result<EquivReport, String> {
    let workspace = make_workspace(compiled, config.trip, config.seed);
    let expected = run_reference(compiled, &workspace);
    let problem =
        SchedProblem::new(&compiled.body, machine).map_err(|e| format!("problem: {e}"))?;
    let schedule = SlackScheduler::with_config(config.scheduler.clone())
        .run(&problem)
        .map_err(|e| format!("schedule: {e}"))?;
    let kernel = lsms_codegen::emit_mve(&problem, &schedule).map_err(|e| format!("mve: {e}"))?;
    let outcome = crate::mve_sim::run_mve(compiled, &problem, &schedule, &kernel, &workspace)
        .map_err(|e| format!("sim: {e}"))?;
    let mut elements = 0usize;
    for (a, (got, want)) in outcome.arrays.iter().zip(&expected).enumerate() {
        for (idx, (g, w)) in got.iter().zip(want).enumerate() {
            elements += 1;
            if g != w {
                return Err(format!(
                    "MVE array {} element {idx}: {:e} != {:e} [loop {}, II {}, unroll {}]",
                    a,
                    f64::from_bits(*g),
                    f64::from_bits(*w),
                    compiled.def.name,
                    schedule.ii,
                    kernel.unroll,
                ));
            }
        }
    }
    Ok(EquivReport {
        ii: schedule.ii,
        stages: schedule.stages(),
        cycles: outcome.cycles,
        elements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_front::compile;
    use lsms_machine::huff_machine;
    use lsms_sched::DirectionPolicy;

    fn check(src: &str) {
        let unit = compile(src).unwrap();
        let machine = huff_machine();
        for l in &unit.loops {
            for trip in [1, 2, 7, 40] {
                for policy in [
                    DirectionPolicy::Bidirectional,
                    DirectionPolicy::AlwaysEarly,
                    DirectionPolicy::AlwaysLate,
                ] {
                    let config = RunConfig {
                        trip,
                        seed: trip.wrapping_mul(0x1234_5678),
                        scheduler: SlackConfig {
                            direction: policy,
                            ..SlackConfig::default()
                        },
                    };
                    let report = check_equivalence(l, &machine, &config).unwrap_or_else(|e| {
                        panic!("{} (trip {trip}, {policy:?}): {e}", l.def.name)
                    });
                    assert!(report.elements > 0);
                }
            }
        }
    }

    #[test]
    fn figure1_sample_pipeline_computes_correctly() {
        check(
            "loop sample(i = 3..n) {
                 real x[], y[];
                 x[i] = x[i-1] + y[i-2];
                 y[i] = y[i-1] + x[i-2];
             }",
        );
    }

    #[test]
    fn axpy_pipeline_computes_correctly() {
        check(
            "loop axpy(i = 1..n) {
                 real x[], y[];
                 param real a;
                 y[i] = y[i] + a * x[i];
             }",
        );
    }

    #[test]
    fn conditional_pipeline_computes_correctly() {
        check(
            "loop clip(i = 1..n) {
                 real x[], y[];
                 param real t;
                 if (x[i] > t) { y[i] = t; } else { y[i] = x[i] * 0.5; }
             }",
        );
    }

    #[test]
    fn scalar_recurrence_pipeline_computes_correctly() {
        check(
            "loop scan(i = 1..n) {
                 real x[], y[];
                 real s;
                 s = s * 0.5 + x[i];
                 y[i] = s;
             }",
        );
    }

    #[test]
    fn division_pipeline_computes_correctly() {
        check(
            "loop div(i = 1..n) {
                 real x[], y[], z[];
                 z[i] = x[i] / (y[i] + 3000.0) + sqrt(y[i] + 1000.0);
             }",
        );
    }

    #[test]
    fn integer_pipeline_computes_correctly() {
        check(
            "loop ints(i = 1..n) {
                 int k[], m[];
                 k[i] = (m[i] * 3 + k[i-1]) % 7 + m[i] / 2;
             }",
        );
    }

    #[test]
    fn nested_conditionals_compute_correctly() {
        check(
            "loop nest(i = 1..n) {
                 real x[], y[];
                 param real t;
                 if (x[i] > t) {
                     if (y[i] > 0.0) { y[i] = y[i] - t; } else { y[i] = t; }
                 } else {
                     y[i] = x[i];
                 }
             }",
        );
    }

    #[test]
    fn store_forwarding_computes_correctly() {
        check(
            "loop fwd(i = 1..n) {
                 real x[], y[];
                 x[i] = y[i] * 2.0;
                 y[i+1] = x[i] + 1.0;
             }",
        );
    }

    #[test]
    fn multi_store_arrays_compute_correctly() {
        check(
            "loop multi(i = 2..n) {
                 real x[], y[];
                 x[i] = y[i] + x[i-1];
                 x[i+1] = x[i] * 0.25;
             }",
        );
    }
}
