//! Execution tracing: a per-cycle issue log of the pipelined loop,
//! verifying modulo-schedule geometry dynamically and giving tests (and
//! humans) a window into ramp-up, steady state, and ramp-down.

use lsms_codegen::KernelCode;
use lsms_ir::OpId;
use lsms_sched::Schedule;

/// One issued (i.e. stage-active and guard-true-or-absent) instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Absolute machine cycle.
    pub cycle: u64,
    /// Kernel iteration (`cycle / II`).
    pub kernel_iter: u64,
    /// Source iteration the instruction executed for.
    pub source_iter: u64,
    /// The operation.
    pub op: OpId,
}

/// Computes the full issue trace for `trip` iterations of a kernel —
/// derived from the schedule's geometry alone (no data), so it doubles as
/// an oracle for what the simulator *should* execute.
pub fn issue_trace(schedule: &Schedule, kernel: &KernelCode, trip: u64) -> Vec<TraceEvent> {
    let ii = u64::from(kernel.ii);
    let mut events = Vec::new();
    for k in 0..trip + u64::from(kernel.stages) - 1 {
        for (c, slot) in kernel.slots.iter().enumerate() {
            for inst in slot {
                let source = k as i64 - i64::from(inst.stage);
                if source < 0 || source >= trip as i64 {
                    continue;
                }
                events.push(TraceEvent {
                    cycle: k * ii + c as u64,
                    kernel_iter: k,
                    source_iter: source as u64,
                    op: inst.op,
                });
            }
        }
    }
    let _ = schedule;
    events
}

/// Statistics of a trace: utilization and overlap.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStats {
    /// Instructions issued in total.
    pub issued: u64,
    /// Machine cycles elapsed.
    pub cycles: u64,
    /// Mean instructions per cycle.
    pub ipc: f64,
    /// Largest number of distinct source iterations in flight in any
    /// single cycle — the realized overlap depth.
    pub max_overlap: usize,
}

/// Summarizes a trace.
pub fn trace_stats(events: &[TraceEvent]) -> TraceStats {
    let issued = events.len() as u64;
    let cycles = events.iter().map(|e| e.cycle + 1).max().unwrap_or(0);
    let mut max_overlap = 0usize;
    let mut i = 0;
    while i < events.len() {
        let cycle = events[i].cycle;
        let mut iters = Vec::new();
        while i < events.len() && events[i].cycle == cycle {
            if !iters.contains(&events[i].source_iter) {
                iters.push(events[i].source_iter);
            }
            i += 1;
        }
        max_overlap = max_overlap.max(iters.len());
    }
    TraceStats {
        issued,
        cycles,
        ipc: issued as f64 / cycles.max(1) as f64,
        max_overlap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_front::compile;
    use lsms_ir::RegClass;
    use lsms_machine::huff_machine;
    use lsms_regalloc::{allocate_rotating, Strategy};
    use lsms_sched::{SchedProblem, SlackScheduler};

    fn build(src: &str) -> (Schedule, KernelCode, usize) {
        let unit = compile(src).unwrap();
        let machine = huff_machine();
        let body = unit.loops[0].body.clone();
        let problem = SchedProblem::new(&body, &machine).unwrap();
        let schedule = SlackScheduler::new().run(&problem).unwrap();
        let rr = allocate_rotating(&problem, &schedule, RegClass::Rr, Strategy::default()).unwrap();
        let icr =
            allocate_rotating(&problem, &schedule, RegClass::Icr, Strategy::default()).unwrap();
        let kernel = lsms_codegen::emit(&problem, &schedule, &rr, &icr).unwrap();
        let n = problem.num_real_ops();
        (schedule, kernel, n)
    }

    const AXPY: &str = "loop axpy(i = 1..n) {
        real x[], y[];
        param real a;
        y[i] = y[i] + a * x[i];
    }";

    #[test]
    fn every_source_iteration_issues_every_instruction_once() {
        let (schedule, kernel, n) = build(AXPY);
        let trip = 9u64;
        let events = issue_trace(&schedule, &kernel, trip);
        // brtop is implicit, so n - 1 instructions per iteration.
        assert_eq!(events.len() as u64, trip * (n as u64 - 1));
        for iter in 0..trip {
            let count = events.iter().filter(|e| e.source_iter == iter).count();
            assert_eq!(count, n - 1, "iteration {iter}");
        }
    }

    #[test]
    fn issue_cycles_match_the_schedule() {
        let (schedule, kernel, _) = build(AXPY);
        let events = issue_trace(&schedule, &kernel, 5);
        for e in &events {
            let expected =
                e.source_iter * u64::from(schedule.ii) + schedule.times[e.op.index()] as u64;
            assert_eq!(e.cycle, expected, "{:?}", e);
        }
    }

    #[test]
    fn steady_state_overlaps_stages_iterations() {
        let (schedule, kernel, _) = build(AXPY);
        // Long enough to reach steady state.
        let events = issue_trace(&schedule, &kernel, 40);
        let stats = trace_stats(&events);
        assert!(stats.max_overlap >= 2, "pipelining overlaps iterations");
        assert!(stats.max_overlap <= schedule.stages() as usize);
        assert!(stats.ipc > 1.0, "ipc = {}", stats.ipc);
    }

    #[test]
    fn short_trips_never_overrun() {
        let (schedule, kernel, n) = build(AXPY);
        let events = issue_trace(&schedule, &kernel, 1);
        assert_eq!(events.len(), n - 1);
        assert!(events.iter().all(|e| e.source_iter == 0));
        let _ = schedule;
    }
}
