//! Execution substrate: a VLIW simulator with rotating register files and
//! a source-level reference interpreter.
//!
//! The paper's schedules ran on (simulated) Cydra-5-class hardware; this
//! crate supplies the equivalent so that generated pipelines can be
//! *executed*, not just checked against scheduling constraints:
//!
//! * [`mod@reference`] — interprets the DSL AST directly, iteration by
//!   iteration: the semantic ground truth;
//! * [`vliw`] — executes [`KernelCode`](lsms_codegen::KernelCode) with
//!   rotating RR/ICR files, stage predicates (ramp-up/ramp-down by
//!   predication), guard predicates, and a flat word-addressed memory;
//! * [`harness`] — lays out arrays, seeds initial register-file
//!   instances, runs both engines on identical inputs, and compares every
//!   array bit for bit.
//!
//! Arithmetic is evaluated identically on both sides (including `-x`
//! lowering to `0.0 - x`, wrapping integer arithmetic, and
//! divide-by-zero-yields-zero for integers), so equivalence is exact
//! bitwise equality, with no floating-point tolerance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod mve_sim;
pub mod reference;
pub mod trace;
pub mod vliw;

pub use harness::{
    check_equivalence, check_equivalence_mve, make_workspace, EquivReport, RunConfig,
};
pub use mve_sim::run_mve;
pub use reference::run_reference;
pub use trace::{issue_trace, trace_stats, TraceEvent, TraceStats};
pub use vliw::{run_kernel, SimError, SimOutcome};

use std::collections::BTreeMap;

/// Concrete inputs for one loop execution: initial array contents,
/// parameter values, and carried-scalar seeds — everything both engines
/// consume. Cells are raw 64-bit patterns; the declared types decide
/// interpretation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Workspace {
    /// Initial contents per declared array (index-aligned with
    /// `LoopInfo::arrays`).
    pub arrays: Vec<Vec<u64>>,
    /// Parameter values by name.
    pub params: BTreeMap<String, u64>,
    /// Initial values of loop-carried scalars by name.
    pub scalar_inits: BTreeMap<String, u64>,
    /// The first iteration index (the loop runs `lo ..= lo + trip - 1`).
    pub lo: i64,
    /// Iteration count.
    pub trip: u64,
}
