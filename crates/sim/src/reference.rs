//! The source-level reference interpreter: semantic ground truth.

use std::collections::BTreeMap;

use lsms_front::{BinOp, CompiledLoop, Cond, Expr, LValue, RelOp, Stmt, Ty};

use crate::Workspace;

/// Interprets the loop's AST over the workspace, returning the final
/// array contents (same shape as `workspace.arrays`).
///
/// Semantics are chosen to match the lowered IR exactly:
///
/// * `-x` evaluates as `0.0 - x` (or `0 - x`), matching the `FSub`
///   lowering (so `-0.0` artifacts agree);
/// * integer arithmetic wraps; integer division or remainder by zero
///   yields zero;
/// * conditional branches evaluate only the taken side's *assignments*,
///   but arithmetic is pure, so speculative evaluation in the pipeline
///   cannot diverge.
///
/// # Panics
///
/// Panics if an array access falls outside the workspace's arrays — the
/// harness sizes them to make that impossible.
pub fn run_reference(compiled: &CompiledLoop, workspace: &Workspace) -> Vec<Vec<u64>> {
    let mut arrays = workspace.arrays.clone();
    let mut scalars: BTreeMap<String, u64> = workspace.scalar_inits.clone();
    let def = &compiled.def;
    'iterations: for i in workspace.lo..workspace.lo + workspace.trip as i64 {
        for stmt in &def.body {
            match stmt {
                Stmt::BreakIf { cond } => {
                    // Post-tested exit: the iteration completed; stop
                    // starting new ones when the condition fires.
                    if eval_cond(
                        cond,
                        compiled,
                        ws_ref(workspace),
                        &mut arrays,
                        &mut scalars,
                        i,
                    ) {
                        break 'iterations;
                    }
                }
                _ => exec_stmt(stmt, compiled, workspace, &mut arrays, &mut scalars, i),
            }
        }
    }
    arrays
}

fn ws_ref(ws: &Workspace) -> &Workspace {
    ws
}

fn exec_stmt(
    stmt: &Stmt,
    compiled: &CompiledLoop,
    ws: &Workspace,
    arrays: &mut [Vec<u64>],
    scalars: &mut BTreeMap<String, u64>,
    i: i64,
) {
    match stmt {
        Stmt::Assign { target, value, .. } => {
            let want = target_type(target, compiled);
            let bits = eval(value, compiled, ws, arrays, scalars, i, want);
            match target {
                LValue::Elem { array, offset } => {
                    let (idx, _) = compiled.info.array(array).expect("sema checked");
                    let elem = usize::try_from(i + offset).expect("negative array index");
                    arrays[idx][elem] = bits;
                }
                LValue::Scalar(name) => {
                    scalars.insert(name.clone(), bits);
                }
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let taken = eval_cond(cond, compiled, ws, arrays, scalars, i);
            let body = if taken { then_body } else { else_body };
            for s in body {
                exec_stmt(s, compiled, ws, arrays, scalars, i);
            }
        }
        Stmt::BreakIf { .. } => {
            unreachable!("sema keeps `break if` at top level; handled by the driver loop")
        }
    }
}

fn target_type(target: &LValue, compiled: &CompiledLoop) -> Ty {
    match target {
        LValue::Elem { array, .. } => compiled.info.array(array).expect("sema checked").1,
        LValue::Scalar(name) => compiled.info.carried(name).unwrap_or(Ty::Real),
    }
}

/// The definite type of an expression, or `None` when it consists only of
/// polymorphic integer literals. Mirrors `sema::type_of` exactly.
fn definite_type(expr: &Expr, compiled: &CompiledLoop) -> Option<Ty> {
    match expr {
        Expr::Real(_) => Some(Ty::Real),
        Expr::Int(_) => None,
        Expr::Scalar(name, _) => compiled
            .info
            .param(name)
            .or_else(|| compiled.info.carried(name)),
        Expr::Elem { array, .. } => compiled.info.array(array).map(|(_, t)| t),
        Expr::Neg(x) => definite_type(x, compiled),
        Expr::Bin(op, l, r) => {
            if *op == BinOp::Rem {
                return Some(Ty::Int);
            }
            definite_type(l, compiled).or_else(|| definite_type(r, compiled))
        }
        Expr::Sqrt(_) => Some(Ty::Real),
        Expr::MinMax { lhs, rhs, .. } => {
            definite_type(lhs, compiled).or_else(|| definite_type(rhs, compiled))
        }
        Expr::Abs(x) => definite_type(x, compiled),
    }
}

/// The statically resolved type of an expression, defaulting literal-only
/// subtrees to `want`.
fn expr_type(expr: &Expr, compiled: &CompiledLoop, want: Ty) -> Ty {
    definite_type(expr, compiled).unwrap_or(want)
}

fn eval_cond(
    cond: &Cond,
    compiled: &CompiledLoop,
    ws: &Workspace,
    arrays: &mut [Vec<u64>],
    scalars: &mut BTreeMap<String, u64>,
    i: i64,
) -> bool {
    // First operand's definite type, else the second's, else real — the
    // same rule the lowering applies.
    let ty = definite_type(&cond.lhs, compiled)
        .or_else(|| definite_type(&cond.rhs, compiled))
        .unwrap_or(Ty::Real);
    let a = eval(&cond.lhs, compiled, ws, arrays, scalars, i, ty);
    let b = eval(&cond.rhs, compiled, ws, arrays, scalars, i, ty);
    compare(cond.op, ty, a, b)
}

/// Shared comparison semantics for both engines.
pub(crate) fn compare(op: RelOp, ty: Ty, a: u64, b: u64) -> bool {
    match ty {
        Ty::Real => {
            let (x, y) = (f64::from_bits(a), f64::from_bits(b));
            match op {
                RelOp::Eq => x == y,
                RelOp::Ne => x != y,
                RelOp::Lt => x < y,
                RelOp::Le => x <= y,
                RelOp::Gt => x > y,
                RelOp::Ge => x >= y,
            }
        }
        Ty::Int => {
            let (x, y) = (a as i64, b as i64);
            match op {
                RelOp::Eq => x == y,
                RelOp::Ne => x != y,
                RelOp::Lt => x < y,
                RelOp::Le => x <= y,
                RelOp::Gt => x > y,
                RelOp::Ge => x >= y,
            }
        }
    }
}

/// Shared binary-arithmetic semantics for both engines.
pub(crate) fn arith(op: BinOp, ty: Ty, a: u64, b: u64) -> u64 {
    match ty {
        Ty::Real => {
            let (x, y) = (f64::from_bits(a), f64::from_bits(b));
            let r = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Rem => unreachable!("sema rejects real %"),
            };
            r.to_bits()
        }
        Ty::Int => {
            let (x, y) = (a as i64, b as i64);
            let r = match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_div(y)
                    }
                }
                BinOp::Rem => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_rem(y)
                    }
                }
            };
            r as u64
        }
    }
}

fn eval(
    expr: &Expr,
    compiled: &CompiledLoop,
    ws: &Workspace,
    arrays: &mut [Vec<u64>],
    scalars: &mut BTreeMap<String, u64>,
    i: i64,
    want: Ty,
) -> u64 {
    match expr {
        Expr::Real(x) => x.to_bits(),
        Expr::Int(x) => match want {
            Ty::Real => (*x as f64).to_bits(),
            Ty::Int => *x as u64,
        },
        Expr::Scalar(name, _) => {
            if let Some(&bits) = scalars.get(name.as_str()) {
                bits
            } else {
                *ws.params
                    .get(name.as_str())
                    .unwrap_or_else(|| panic!("parameter `{name}` missing from workspace"))
            }
        }
        Expr::Elem { array, offset, .. } => {
            let (idx, _) = compiled.info.array(array).expect("sema checked");
            let elem = usize::try_from(i + offset).expect("negative array index");
            arrays[idx][elem]
        }
        Expr::Neg(inner) => {
            let ty = expr_type(inner, compiled, want);
            let x = eval(inner, compiled, ws, arrays, scalars, i, ty);
            let zero = match ty {
                Ty::Real => 0f64.to_bits(),
                Ty::Int => 0u64,
            };
            arith(BinOp::Sub, ty, zero, x)
        }
        Expr::Bin(op, lhs, rhs) => {
            let ty = if *op == BinOp::Rem {
                Ty::Int
            } else {
                expr_type(expr, compiled, want)
            };
            let a = eval(lhs, compiled, ws, arrays, scalars, i, ty);
            let b = eval(rhs, compiled, ws, arrays, scalars, i, ty);
            arith(*op, ty, a, b)
        }
        Expr::Sqrt(inner) => {
            let x = eval(inner, compiled, ws, arrays, scalars, i, Ty::Real);
            f64::from_bits(x).sqrt().to_bits()
        }
        Expr::MinMax { is_max, lhs, rhs } => {
            // Matches the select lowering exactly: min = (a < b) ? a : b,
            // max = (a > b) ? a : b — so NaN and -0.0 behaviour agree.
            let ty = expr_type(expr, compiled, want);
            let a = eval(lhs, compiled, ws, arrays, scalars, i, ty);
            let b = eval(rhs, compiled, ws, arrays, scalars, i, ty);
            let op = if *is_max { RelOp::Gt } else { RelOp::Lt };
            if compare(op, ty, a, b) {
                a
            } else {
                b
            }
        }
        Expr::Abs(inner) => {
            // abs(x) = (x < 0) ? 0 - x : x, matching the lowering.
            let ty = expr_type(inner, compiled, want);
            let x = eval(inner, compiled, ws, arrays, scalars, i, ty);
            let zero = match ty {
                Ty::Real => 0f64.to_bits(),
                Ty::Int => 0u64,
            };
            if compare(RelOp::Lt, ty, x, zero) {
                arith(BinOp::Sub, ty, zero, x)
            } else {
                x
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_front::compile;

    fn ws(arrays: Vec<Vec<f64>>, trip: u64, lo: i64) -> Workspace {
        Workspace {
            arrays: arrays
                .into_iter()
                .map(|a| a.into_iter().map(f64::to_bits).collect())
                .collect(),
            params: BTreeMap::new(),
            scalar_inits: BTreeMap::new(),
            lo,
            trip,
        }
    }

    fn floats(bits: &[u64]) -> Vec<f64> {
        bits.iter().map(|&b| f64::from_bits(b)).collect()
    }

    #[test]
    fn interprets_the_sample_recurrence() {
        let unit = compile(
            "loop sample(i = 2..n) {
                 real x[], y[];
                 x[i] = x[i-1] + y[i-2];
                 y[i] = y[i-1] + x[i-2];
             }",
        )
        .unwrap();
        let mut w = ws(vec![vec![1.0; 6], vec![2.0; 6]], 4, 2);
        w.params.insert("n".into(), 5);
        let out = run_reference(&unit.loops[0], &w);
        let x = floats(&out[0]);
        // x[2] = x[1] + y[0] = 1 + 2 = 3; y[2] = y[1] + x[0] = 3;
        // x[3] = x[2] + y[1] = 5; y[3] = y[2]+x[1] = 4;
        // x[4] = 5 + 3 = 8; y[4] = 4 + 3 = 7; x[5] = 8+4=12.
        assert_eq!(x[2], 3.0);
        assert_eq!(x[3], 5.0);
        assert_eq!(x[4], 8.0);
        assert_eq!(x[5], 12.0);
    }

    #[test]
    fn interprets_conditionals_and_scalars() {
        let unit = compile(
            "loop m(i = 0..n) {
                 real x[], y[];
                 real s;
                 if (x[i] > s) { s = x[i]; }
                 y[i] = s;
             }",
        )
        .unwrap();
        let mut w = ws(vec![vec![1.0, 5.0, 3.0, 9.0], vec![0.0; 4]], 4, 0);
        w.scalar_inits.insert("s".into(), 2f64.to_bits());
        let out = run_reference(&unit.loops[0], &w);
        assert_eq!(floats(&out[1]), vec![2.0, 5.0, 5.0, 9.0]);
    }

    #[test]
    fn integer_semantics_wrap_and_guard_zero_division() {
        assert_eq!(arith(BinOp::Div, Ty::Int, 7u64, 0u64), 0);
        assert_eq!(arith(BinOp::Rem, Ty::Int, 7u64, 0u64), 0);
        assert_eq!(
            arith(BinOp::Add, Ty::Int, i64::MAX as u64, 1u64) as i64,
            i64::MIN
        );
    }

    #[test]
    fn negation_matches_sub_from_zero() {
        // -0.0 must come out as 0.0 - 0.0 == 0.0, not -0.0.
        let unit = compile("loop n(i = 0..4) { real x[], y[]; y[i] = -x[i]; }").unwrap();
        let w = ws(vec![vec![0.0; 4], vec![7.0; 4]], 4, 0);
        let out = run_reference(&unit.loops[0], &w);
        assert_eq!(out[1][0], 0f64.to_bits(), "0.0 - 0.0 is +0.0");
    }
}
