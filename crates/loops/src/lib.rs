//! The benchmark loop corpus.
//!
//! The paper evaluates on "all eligible DO loops in the Lawrence Livermore
//! Loops, the SPEC89 FORTRAN benchmarks, and the Perfect Club codes — a
//! total of 1,525 loops". Those inputs are not redistributable, so this
//! crate synthesizes an equivalent corpus (the calibration hint for this
//! reproduction: *dependence-graph benchmarks must be synthesized*):
//!
//! * [`kernels`] — two dozen hand-written kernels in the DSL, modelled on
//!   the Livermore Loops that fit the front end's subscript discipline
//!   (`i ± constant`), including the paper's own Figure 1 loop;
//! * [`generate`] — a seeded generator of random-but-well-formed DSL
//!   loops whose size, recurrence, conditional, and division mixes are
//!   calibrated against the paper's Table 2 and Table 3 marginals;
//! * [`corpus`] — kernels plus generated loops, compiled through
//!   `lsms-front`, sized to the paper's 1,525 by default.
//!
//! Eligibility (§6) is enforced the way the paper's compiler does it:
//! loops with more than 30 basic blocks before if-conversion or fewer
//! than 5 iterations are never generated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod kernels;

pub use generator::{generate, generate_with_profile, GeneratorConfig, Profile};
pub use kernels::kernels;

use lsms_front::{compile, CompiledLoop};

/// The paper's corpus size.
pub const PAPER_CORPUS_SIZE: usize = 1525;

/// A named DSL loop, not yet compiled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NamedLoop {
    /// Diagnostic name (also the loop's name inside the source).
    pub name: String,
    /// DSL source text.
    pub source: String,
}

/// Builds the benchmark corpus: every hand-written kernel followed by
/// enough generated loops to reach `count`, all compiled.
///
/// The same `(count, seed)` always yields the same corpus.
///
/// # Panics
///
/// Panics if a generated loop fails to compile — the generator emits only
/// well-formed programs, so a failure is a bug worth a loud crash.
pub fn corpus(count: usize, seed: u64) -> Vec<CompiledLoop> {
    let mut sources = kernels();
    if sources.len() < count {
        let config = GeneratorConfig {
            seed,
            count: count - sources.len(),
        };
        sources.extend(generate(&config));
    }
    sources.truncate(count);
    sources
        .iter()
        .map(|l| {
            let unit = compile(&l.source).unwrap_or_else(|e| {
                panic!(
                    "corpus loop {} failed to compile: {e}\n{}",
                    l.name, l.source
                )
            });
            assert_eq!(unit.loops.len(), 1, "{}: one loop per source", l.name);
            unit.loops.into_iter().next().expect("checked length")
        })
        .collect()
}

/// Writes the corpus sources to `dir` as `.loop` files (one per loop),
/// for inspection or for feeding to the `lsmsc` driver.
///
/// Returns the number of files written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_corpus(dir: &std::path::Path, count: usize, seed: u64) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    let mut sources = kernels();
    if sources.len() < count {
        let config = GeneratorConfig {
            seed,
            count: count - sources.len(),
        };
        sources.extend(generate(&config));
    }
    sources.truncate(count);
    for l in &sources {
        std::fs::write(dir.join(format!("{}.loop", l.name)), &l.source)?;
    }
    Ok(sources.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let a = corpus(40, 7);
        let b = corpus(40, 7);
        assert_eq!(a.len(), 40);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.def.name, y.def.name);
            assert_eq!(x.body.num_ops(), y.body.num_ops());
        }
    }

    #[test]
    fn corpus_respects_eligibility() {
        for l in corpus(120, 3) {
            assert!(l.body.meta().basic_blocks <= 30, "{}", l.def.name);
            if let Some(trip) = l.body.meta().min_trip_count {
                assert!(trip >= 5, "{}", l.def.name);
            }
        }
    }

    #[test]
    fn write_corpus_round_trips_through_files() {
        let dir = std::env::temp_dir().join("lsms_corpus_test");
        let written = write_corpus(&dir, 12, 5).unwrap();
        assert_eq!(written, 12);
        let mut compiled = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "loop") {
                let src = std::fs::read_to_string(&path).unwrap();
                compile(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
                compiled += 1;
            }
        }
        assert!(compiled >= 12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_has_class_diversity() {
        use lsms_ir::LoopClass;
        let corpus = corpus(300, 42);
        let mut seen = std::collections::BTreeMap::new();
        for l in &corpus {
            *seen
                .entry(format!("{:?}", l.body.class()))
                .or_insert(0usize) += 1;
        }
        assert!(seen.len() == 4, "all four classes present: {seen:?}");
        // Roughly half the paper's loops are `Neither`.
        let neither = seen.get("Neither").copied().unwrap_or(0);
        assert!(neither > corpus.len() / 4, "{seen:?}");
        let _ = LoopClass::Neither;
    }
}
