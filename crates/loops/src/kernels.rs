//! Hand-written kernels in the DSL, modelled on the Lawrence Livermore
//! Loops (and the paper's own running example).
//!
//! Only kernels whose subscripts fit the front end's `i ± constant`
//! discipline are expressible — gather/scatter kernels (LL13, LL14) and
//! inner-loop-dependent ones are out of scope, exactly as they would have
//! been rejected by the paper's eligibility screen if they had carried
//! unanalyzable subscripts.

use crate::NamedLoop;

/// The hand-written kernel suite, paper sample first.
pub fn kernels() -> Vec<NamedLoop> {
    SOURCES
        .iter()
        .map(|&(name, source)| NamedLoop {
            name: name.to_owned(),
            source: source.to_owned(),
        })
        .collect()
}

const SOURCES: [(&str, &str); 32] = [
    (
        "huff_sample",
        "loop huff_sample(i = 3..n) {
             real x[], y[];
             x[i] = x[i-1] + y[i-2];
             y[i] = y[i-1] + x[i-2];
         }",
    ),
    (
        "ll1_hydro",
        "loop ll1_hydro(i = 1..n) {
             real x[], y[], z[];
             param real q, r, t;
             x[i] = q + y[i] * (r * z[i+10] + t * z[i+11]);
         }",
    ),
    (
        "ll3_inner_product",
        "loop ll3_inner_product(i = 1..n) {
             real x[], z[];
             real q;
             q = q + z[i] * x[i];
             x[i+1] = q * 0.0625;
         }",
    ),
    (
        "ll4_banded",
        "loop ll4_banded(i = 6..n) {
             real x[], y[];
             param real c;
             x[i] = x[i] - x[i-1] * y[i] - x[i-5] * y[i-1] * c;
         }",
    ),
    (
        "ll5_tridiag",
        "loop ll5_tridiag(i = 2..n) {
             real x[], y[], z[];
             x[i] = z[i] * (y[i] - x[i-1]);
         }",
    ),
    (
        "ll6_recurrence",
        "loop ll6_recurrence(i = 2..n) {
             real w[], b[];
             w[i] = 0.0100 + b[i] * (w[i-1] + b[i-1] * w[i-2]);
         }",
    ),
    (
        "ll7_state",
        "loop ll7_state(i = 1..n) {
             real x[], y[], z[], u[];
             param real r, t;
             x[i] = u[i] + r * (z[i] + r * y[i])
                  + t * (u[i+3] + r * (u[i+2] + r * u[i+1])
                  + t * (u[i+6] + r * (u[i+5] + r * u[i+4])));
         }",
    ),
    (
        "ll9_integrate",
        "loop ll9_integrate(i = 1..n) {
             real px1[], px2[], px3[], px5[], px6[], px7[], px8[];
             param real dm22, dm23, dm24, dm25, c0;
             px1[i] = dm22 * px2[i] + dm23 * px3[i] + c0
                    + dm24 * (px5[i] + px6[i]) + dm25 * (px7[i] + px8[i]);
         }",
    ),
    (
        "ll10_difference",
        "loop ll10_difference(i = 1..n) {
             real cx[], br[], result[];
             result[i] = cx[i+4] - br[i+4] + cx[i+3] - br[i+3]
                       + cx[i+2] - br[i+2] + cx[i+1] - br[i+1];
         }",
    ),
    (
        "ll11_first_sum",
        "loop ll11_first_sum(i = 2..n) {
             real x[], y[];
             x[i] = x[i-1] + y[i];
         }",
    ),
    (
        "ll12_first_diff",
        "loop ll12_first_diff(i = 1..n) {
             real x[], y[];
             x[i] = y[i+1] - y[i];
         }",
    ),
    (
        "ll19_hydro2",
        "loop ll19_hydro2(i = 2..n) {
             real b5[], sa[], sb[], stb5[];
             stb5[i] = b5[i] + sa[i] * stb5[i-1] + sb[i];
         }",
    ),
    (
        "ll21_matmul_row",
        "loop ll21_matmul_row(i = 1..n) {
             real px[], cx[], vy[];
             px[i] = px[i] + vy[i] * cx[i];
         }",
    ),
    (
        "ll22_planck",
        "loop ll22_planck(i = 1..n) {
             real y[], u[], v[], w[];
             y[i] = u[i] / v[i];
             w[i] = w[i-1] * y[i] + 1.0;
         }",
    ),
    (
        "ll23_implicit",
        "loop ll23_implicit(i = 2..n) {
             real za[], zb[], zr[], zu[], zv[], zz[];
             param real s;
             za[i] = za[i] + s * (zb[i] * (zr[i] - za[i-1]) - zu[i] * (za[i] - zz[i]))
                   + zv[i] * (za[i+1] - za[i]);
         }",
    ),
    (
        "daxpy",
        "loop daxpy(i = 1..n) {
             real x[], y[];
             param real a;
             y[i] = y[i] + a * x[i];
         }",
    ),
    (
        "smooth3",
        "loop smooth3(i = 2..n) {
             real x[], y[];
             y[i] = (x[i-1] + x[i] + x[i+1]) * 0.3333;
         }",
    ),
    (
        "norm_sqrt",
        "loop norm_sqrt(i = 1..n) {
             real x[], y[], r[];
             r[i] = sqrt(x[i] * x[i] + y[i] * y[i]);
         }",
    ),
    (
        "rcp_series",
        "loop rcp_series(i = 2..n) {
             real a[], b[];
             b[i] = 1.0 / (a[i] + b[i-1] * 0.125);
         }",
    ),
    (
        "clip_threshold",
        "loop clip_threshold(i = 1..n) {
             real x[], y[];
             param real lo, hi;
             if (x[i] < lo) { y[i] = lo; }
             else { if (x[i] > hi) { y[i] = hi; } else { y[i] = x[i]; } }
         }",
    ),
    (
        "running_max",
        "loop running_max(i = 1..n) {
             real x[], m[];
             real best;
             if (x[i] > best) { best = x[i]; }
             m[i] = best;
         }",
    ),
    (
        "cond_accumulate",
        "loop cond_accumulate(i = 1..n) {
             real x[], w[], acc[];
             real s;
             if (w[i] > 0.5) { s = s + x[i] * w[i]; } else { s = s * 0.999; }
             acc[i] = s;
         }",
    ),
    (
        "int_filter",
        "loop int_filter(i = 2..n) {
             int k[], m[], out[];
             out[i] = (k[i] * 3 + m[i-1]) % 1024 + out[i-1] / 2;
         }",
    ),
    (
        "horner5",
        "loop horner5(i = 1..n) {
             real x[], p[];
             param real c0, c1, c2, c3, c4;
             p[i] = (((c4 * x[i] + c3) * x[i] + c2) * x[i] + c1) * x[i] + c0;
         }",
    ),
    (
        "stencil5",
        "loop stencil5(i = 2..n) {
             real u[], v[];
             v[i] = (u[i-2] + u[i-1] + u[i] + u[i+1] + u[i+2]) * 0.2;
         }",
    ),
    (
        "ema_filter",
        "loop ema_filter(i = 1..n) {
             real x[], y[];
             param real alpha;
             real state;
             state = state + alpha * (x[i] - state);
             y[i] = state;
         }",
    ),
    (
        "complex_mul",
        "loop complex_mul(i = 1..n) {
             real ar[], ai[], br[], bi[], cr[], ci[];
             cr[i] = ar[i] * br[i] - ai[i] * bi[i];
             ci[i] = ar[i] * bi[i] + ai[i] * br[i];
         }",
    ),
    (
        "newton_rsqrt",
        "loop newton_rsqrt(i = 1..n) {
             real x[], y[];
             y[i] = 1.0 / sqrt(x[i] + 1000.0);
         }",
    ),
    (
        "int_checksum",
        "loop int_checksum(i = 1..n) {
             int data[], acc[];
             int sum;
             sum = (sum * 31 + data[i]) % 65521;
             acc[i] = sum;
         }",
    ),
    (
        "predicated_sum",
        "loop predicated_sum(i = 1..n) {
             real x[], w[], out[];
             param real cutoff;
             real pos, neg;
             if (x[i] >= cutoff) { pos = pos + x[i] * w[i]; }
             else { neg = neg + x[i] * w[i]; }
             out[i] = pos - neg;
         }",
    ),
    (
        "wave1d",
        "loop wave1d(i = 2..n) {
             real u[], unew[];
             param real c;
             unew[i] = 2.0 * u[i] - unew[i-2] + c * (u[i+1] - 2.0 * u[i] + u[i-1]);
         }",
    ),
    (
        "minmax_window",
        "loop minmax_window(i = 1..n) {
             real x[], hi[], lo[];
             real best, worst;
             if (x[i] > best) { best = x[i]; }
             if (x[i] < worst) { worst = x[i]; }
             hi[i] = best;
             lo[i] = worst;
         }",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_front::compile;

    #[test]
    fn all_kernels_compile() {
        for k in kernels() {
            let unit =
                compile(&k.source).unwrap_or_else(|e| panic!("{} does not compile: {e}", k.name));
            assert_eq!(unit.loops.len(), 1);
            assert_eq!(unit.loops[0].def.name, k.name);
            unit.loops[0].body.validate().unwrap();
        }
    }

    #[test]
    fn suite_spans_all_loop_classes() {
        use lsms_ir::LoopClass;
        let mut classes = std::collections::BTreeSet::new();
        for k in kernels() {
            let unit = compile(&k.source).unwrap();
            classes.insert(format!("{:?}", unit.loops[0].body.class()));
        }
        assert!(classes.contains("Neither"));
        assert!(classes.contains("Recurrence"));
        assert!(classes.contains("Conditional") || classes.contains("Both"));
        let _ = LoopClass::Both;
    }

    #[test]
    fn recurrence_kernels_detect_their_circuits() {
        for name in [
            "huff_sample",
            "ll5_tridiag",
            "ll6_recurrence",
            "ll3_inner_product",
            "ema_filter",
            "wave1d",
            "int_checksum",
        ] {
            let k = kernels().into_iter().find(|k| k.name == name).unwrap();
            let unit = compile(&k.source).unwrap();
            assert!(
                unit.loops[0].body.has_recurrence(),
                "{name} should have a recurrence"
            );
        }
    }

    #[test]
    fn kernel_names_are_unique() {
        let mut names: Vec<&str> = SOURCES.iter().map(|&(n, _)| n).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
