//! Seeded synthetic loop generation, calibrated to the paper's corpus.
//!
//! The generator emits DSL *source text* (so every loop exercises the
//! whole front end) with marginals steered toward Table 2 and Table 3:
//!
//! * operation counts: median ≈ 15, 90th percentile ≈ 48, occasional
//!   hundreds (size classes with a long tail);
//! * roughly a quarter of loops carry if-converted conditionals;
//! * a third carry non-trivial recurrences (negative-offset reads of
//!   stored arrays, multiplicative reductions);
//! * divisions and square roots are rare but present (Table 2 shows a
//!   median of 0 and a max of 28 divider operations).
//!
//! Generated programs are well formed by construction: one type per loop
//! (real or int), subscripts stay within `i ± 4`, scalars are read only
//! if they are parameters or assigned somewhere in the loop, `%` appears
//! only in integer loops and `sqrt` only in real ones, and at most six
//! conditionals keep the §6 basic-block screen (≤ 30) satisfied.

use lsms_prng::SmallRng;

use crate::NamedLoop;

/// A corpus *profile*: the per-loop probabilities that shape the
/// synthesized population. [`Profile::calibrated`] matches the paper's
/// Table 2/Table 3 marginals; the other constructors are for sensitivity
/// experiments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Profile {
    /// Percent of loops using integer arithmetic throughout.
    pub int_pct: u32,
    /// Percent of loops in the conditional style (frequent `if`s, no
    /// recurrence-makers — keeping the paper's Conditional class mostly
    /// disjoint from Recurrence).
    pub cond_style_pct: u32,
    /// Per-leaf percent chance that an array read uses a negative offset
    /// (the recurrence-maker once the array is stored).
    pub negative_read_pct: u32,
    /// Per-statement percent chance of a scalar reduction target.
    pub reduction_pct: u32,
    /// Per-binary-node permille chance of division (real loops).
    pub division_permille: u32,
}

impl Profile {
    /// The calibration used by the paper-reproduction corpus.
    pub fn calibrated() -> Self {
        Self {
            int_pct: 7,
            cond_style_pct: 24,
            negative_read_pct: 15,
            reduction_pct: 13,
            division_permille: 20,
        }
    }

    /// Recurrence-heavy: every other leaf reaches back across iterations.
    pub fn recurrence_heavy() -> Self {
        Self {
            negative_read_pct: 45,
            reduction_pct: 30,
            ..Self::calibrated()
        }
    }

    /// Straight-line-heavy: barely any cross-iteration flow.
    pub fn streaming() -> Self {
        Self {
            negative_read_pct: 2,
            reduction_pct: 2,
            cond_style_pct: 10,
            ..Self::calibrated()
        }
    }

    /// Divider-heavy: stresses the non-pipelined unit and the §4.3
    /// priority halving.
    pub fn division_heavy() -> Self {
        Self {
            division_permille: 120,
            ..Self::calibrated()
        }
    }
}

impl Default for Profile {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Master seed: the same seed reproduces the same loops.
    pub seed: u64,
    /// Number of loops to generate.
    pub count: usize,
}

/// Generates `config.count` loops deterministically with the calibrated
/// profile.
pub fn generate(config: &GeneratorConfig) -> Vec<NamedLoop> {
    generate_with_profile(config, &Profile::calibrated())
}

/// Generates loops with an explicit [`Profile`].
pub fn generate_with_profile(config: &GeneratorConfig, profile: &Profile) -> Vec<NamedLoop> {
    (0..config.count)
        .map(|index| {
            let mut rng = SmallRng::seed_from_u64(
                config
                    .seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(index as u64),
            );
            gen_loop(&mut rng, index, profile)
        })
        .collect()
}

struct Gen {
    profile: Profile,
    int_loop: bool,
    /// Conditional-style loops favour if-conversion and avoid the
    /// recurrence-makers, mirroring the paper's mostly-disjoint
    /// Conditional and Recurrence classes (Table 3).
    cond_style: bool,
    arrays: Vec<String>,
    /// Arrays this loop stores, and at which offset (at most one store
    /// per array, so load/store elimination stays in play).
    stored: Vec<(usize, i64)>,
    params: Vec<String>,
    scalars: Vec<String>,
    ifs_left: u32,
    out: String,
    indent: usize,
}

fn gen_loop(rng: &mut SmallRng, index: usize, profile: &Profile) -> NamedLoop {
    let int_loop = profile.int_pct > 0 && rng.gen_ratio(profile.int_pct, 100);
    let cond_style = profile.cond_style_pct > 0 && rng.gen_ratio(profile.cond_style_pct, 100);
    let n_arrays = 1 + weighted(rng, &[35, 30, 18, 10, 7]); // 1..=5
    let n_params = weighted(rng, &[30, 35, 22, 13]); // 0..=3
    let n_scalars = weighted(rng, &[70, 22, 8]); // 0..=2
                                                 // Statement-count size classes with a long tail (Table 2's op counts).
    let n_stmts = match weighted(rng, &[52, 30, 13, 5]) {
        0 => rng.gen_range(1..=2),
        1 => rng.gen_range(3..=6),
        2 => rng.gen_range(7..=12),
        _ => rng.gen_range(13..=28),
    };

    let name = format!("gen_{index:04}");
    let mut g = Gen {
        profile: profile.clone(),
        int_loop,
        cond_style,
        arrays: (0..n_arrays).map(|a| format!("a{a}")).collect(),
        stored: Vec::new(),
        params: (0..n_params).map(|p| format!("p{p}")).collect(),
        scalars: (0..n_scalars).map(|s| format!("s{s}")).collect(),
        ifs_left: 6,
        out: String::new(),
        indent: 1,
    };
    let ty = if int_loop { "int" } else { "real" };
    g.out.push_str(&format!("loop {name}(i = 4..n) {{\n"));
    let array_list: Vec<String> = g.arrays.iter().map(|a| format!("{a}[]")).collect();
    g.out
        .push_str(&format!("    {ty} {};\n", array_list.join(", ")));
    if !g.params.is_empty() {
        g.out
            .push_str(&format!("    param {ty} {};\n", g.params.join(", ")));
    }
    if !g.scalars.is_empty() {
        g.out
            .push_str(&format!("    {ty} {};\n", g.scalars.join(", ")));
    }

    // Guarantee at least one array store so the loop has an effect.
    let scalars = g.scalars.clone();
    for stmt in 0..n_stmts {
        let force_array = stmt == 0;
        gen_stmt(&mut g, rng, force_array, &scalars);
    }
    g.out.push_str("}\n");
    NamedLoop {
        name,
        source: g.out,
    }
}

/// Picks an index with the given weights.
fn weighted(rng: &mut SmallRng, weights: &[u32]) -> usize {
    let total: u32 = weights.iter().sum();
    let mut roll = rng.gen_range(0..total);
    for (i, &w) in weights.iter().enumerate() {
        if roll < w {
            return i;
        }
        roll -= w;
    }
    weights.len() - 1
}

fn gen_stmt(g: &mut Gen, rng: &mut SmallRng, force_array: bool, scalars: &[String]) {
    // Occasionally produce a conditional wrapping one or two assignments.
    let if_pct = if g.cond_style { 40 } else { 4 };
    if !force_array && g.ifs_left > 0 && rng.gen_ratio(if_pct, 100) {
        g.ifs_left -= 1;
        let lhs = gen_expr(g, rng, 1);
        let rel = ["<", "<=", ">", ">=", "==", "!="][weighted(rng, &[28, 12, 28, 12, 10, 10])];
        let rhs = gen_expr(g, rng, 1);
        let pad = "    ".repeat(g.indent);
        g.out.push_str(&format!("{pad}if ({lhs} {rel} {rhs}) {{\n"));
        g.indent += 1;
        gen_assign(g, rng, false, scalars);
        if rng.gen_bool(0.5) {
            gen_assign(g, rng, false, scalars);
        }
        g.indent -= 1;
        let pad = "    ".repeat(g.indent);
        if rng.gen_bool(0.55) {
            g.out.push_str(&format!("{pad}}} else {{\n"));
            g.indent += 1;
            gen_assign(g, rng, false, scalars);
            g.indent -= 1;
            let pad = "    ".repeat(g.indent);
            g.out.push_str(&format!("{pad}}}\n"));
        } else {
            g.out.push_str(&format!("{pad}}}\n"));
        }
        return;
    }
    gen_assign(g, rng, force_array, scalars);
}

fn gen_assign(g: &mut Gen, rng: &mut SmallRng, force_array: bool, scalars: &[String]) {
    let pad = "    ".repeat(g.indent);
    // Reductions create the recurrences Table 3 classifies on;
    // conditional-style loops avoid them so the classes stay distinct.
    let scalar_target = !force_array
        && !g.cond_style
        && !scalars.is_empty()
        && g.profile.reduction_pct > 0
        && rng.gen_ratio(g.profile.reduction_pct, 100);
    if scalar_target {
        let s = scalars[rng.gen_range(0..scalars.len())].clone();
        let expr = if rng.gen_bool(0.45) {
            // A self-referential reduction: s = s <op> e or s = s*e + e.
            let e = gen_expr(g, rng, 2);
            match weighted(rng, &[40, 20, 40]) {
                0 => format!("{s} + {e}"),
                1 => format!("{s} - ({e})"),
                _ => {
                    let f = gen_leaf(g, rng);
                    format!("{s} * {f} + {e}")
                }
            }
        } else {
            gen_expr(g, rng, 2)
        };
        g.out.push_str(&format!("{pad}{s} = {expr};\n"));
        return;
    }
    // Array store: reuse an unstored array if possible, keeping one store
    // per array.
    let unstored: Vec<usize> = (0..g.arrays.len())
        .filter(|a| !g.stored.iter().any(|&(b, _)| b == *a))
        .collect();
    let (array, offset) = if unstored.is_empty() {
        // All arrays stored: overwrite the same (array, offset) pair so we
        // never create a second static store to one array.
        g.stored[rng.gen_range(0..g.stored.len())]
    } else {
        let a = unstored[rng.gen_range(0..unstored.len())];
        let off = i64::from(rng.gen_ratio(8, 100)); // mostly x[i], some x[i+1]
        g.stored.push((a, off));
        (a, off)
    };
    let depth = 2 + u32::from(rng.gen_ratio(30, 100));
    let expr = gen_expr(g, rng, depth);
    let target = subscript(&g.arrays[array], offset);
    g.out.push_str(&format!("{pad}{target} = {expr};\n"));
}

fn subscript(array: &str, offset: i64) -> String {
    match offset {
        0 => format!("{array}[i]"),
        o if o > 0 => format!("{array}[i+{o}]"),
        o => format!("{array}[i-{}]", -o),
    }
}

fn gen_expr(g: &mut Gen, rng: &mut SmallRng, depth: u32) -> String {
    if depth == 0 || rng.gen_ratio(30, 100) {
        return gen_leaf(g, rng);
    }
    let lhs = gen_expr(g, rng, depth - 1);
    let rhs = gen_expr(g, rng, depth - 1);
    if !g.int_loop && rng.gen_ratio((g.profile.division_permille / 2).max(1), 1000) {
        return format!("sqrt(({lhs}) * ({lhs}) + 1.0)");
    }
    if rng.gen_ratio(2, 100) {
        return match weighted(rng, &[40, 40, 20]) {
            0 => format!("min({lhs}, {rhs})"),
            1 => format!("max({lhs}, {rhs})"),
            _ => format!("abs({lhs})"),
        };
    }
    let div = g.profile.division_permille.max(1);
    let op = if g.int_loop {
        ["+", "-", "*", "/", "%"][weighted(rng, &[340, 260, 320, div, div])]
    } else {
        ["+", "-", "*", "/"][weighted(rng, &[370, 270, 340, div])]
    };
    format!("({lhs} {op} {rhs})")
}

fn gen_leaf(g: &mut Gen, rng: &mut SmallRng) -> String {
    // Leaves: array reads (negative offsets of stored arrays create the
    // cross-iteration register flows of §2.3), params, scalars, literals.
    match weighted(rng, &[55, 15, 12, 18]) {
        0 => {
            let a = rng.gen_range(0..g.arrays.len());
            // Bias toward small negative offsets: they are the
            // recurrence-makers once the array is stored.
            let off = if g.cond_style {
                // Forward-only reads keep conditional loops free of
                // memory recurrences.
                *[0, 0, 0, 0, 0, 1, 1, 2]
                    .get(rng.gen_range(0..8usize))
                    .expect("in range")
            } else if g.profile.negative_read_pct > 0
                && rng.gen_ratio(g.profile.negative_read_pct, 100)
            {
                *[-3, -2, -1, -1]
                    .get(rng.gen_range(0..4usize))
                    .expect("in range")
            } else {
                *[0, 0, 0, 0, 0, 0, 1, 2]
                    .get(rng.gen_range(0..8usize))
                    .expect("in range")
            };
            subscript(&g.arrays[a], off)
        }
        1 if !g.params.is_empty() => g.params[rng.gen_range(0..g.params.len())].clone(),
        2 if !g.scalars.is_empty() => g.scalars[rng.gen_range(0..g.scalars.len())].clone(),
        _ => {
            if g.int_loop {
                format!("{}", rng.gen_range(1..7))
            } else {
                format!("{:.2}", (rng.gen_range(1..32) as f64) * 0.125)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_front::compile;

    #[test]
    fn generated_loops_always_compile() {
        let loops = generate(&GeneratorConfig {
            seed: 11,
            count: 200,
        });
        assert_eq!(loops.len(), 200);
        for l in &loops {
            let unit =
                compile(&l.source).unwrap_or_else(|e| panic!("{}: {e}\n{}", l.name, l.source));
            unit.loops[0].body.validate().unwrap();
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&GeneratorConfig { seed: 3, count: 10 });
        let b = generate(&GeneratorConfig { seed: 3, count: 10 });
        assert_eq!(a, b);
        let c = generate(&GeneratorConfig { seed: 4, count: 10 });
        assert_ne!(a, c);
    }

    #[test]
    fn size_distribution_has_median_and_tail() {
        let loops = generate(&GeneratorConfig {
            seed: 9,
            count: 300,
        });
        let mut ops: Vec<usize> = loops
            .iter()
            .map(|l| compile(&l.source).unwrap().loops[0].body.num_ops())
            .collect();
        ops.sort_unstable();
        let median = ops[ops.len() / 2];
        let p90 = ops[ops.len() * 9 / 10];
        let max = *ops.last().unwrap();
        assert!((6..=40).contains(&median), "median ops = {median}");
        assert!(p90 >= 20, "p90 = {p90}");
        assert!(max >= 100, "max = {max}");
    }

    #[test]
    fn some_loops_have_divisions_and_conditionals() {
        let loops = generate(&GeneratorConfig {
            seed: 21,
            count: 200,
        });
        let mut with_div = 0;
        let mut with_cond = 0;
        let mut with_rec = 0;
        for l in &loops {
            let body = compile(&l.source).unwrap().loops.remove(0).body;
            with_div += usize::from(body.num_divider_ops() > 0);
            with_cond += usize::from(body.has_conditional());
            with_rec += usize::from(body.has_recurrence());
        }
        assert!(with_div >= 10, "loops with divider ops: {with_div}");
        assert!(with_cond >= 20, "loops with conditionals: {with_cond}");
        assert!(with_rec >= 30, "loops with recurrences: {with_rec}");
    }
}
