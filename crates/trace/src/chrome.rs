//! Chrome trace-event JSON exporter.
//!
//! Produces the [Trace Event Format] consumed by Perfetto and
//! `chrome://tracing`: one `B`/`E` event pair per span, `i` (instant)
//! events for decisions, all under a single process with one `tid` per
//! collector thread. Load the file in <https://ui.perfetto.dev> to see
//! each corpus worker as a timeline row of pass spans.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::fmt::Write as _;

use crate::{Phase, Trace};

/// Serializes a drained trace as Chrome trace-event JSON.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::from("{\n\"traceEvents\": [\n");
    let mut first = true;
    for thread in &trace.threads {
        for event in &thread.events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let ph = match event.phase {
                Phase::Begin => "B",
                Phase::End => "E",
                Phase::Instant => "i",
            };
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"ph\": \"{}\", \"ts\": {}, \"pid\": 1, \"tid\": {}",
                escape(event.name),
                ph,
                event.ts_us,
                thread.tid
            );
            if event.phase == Phase::Instant {
                // Thread-scoped instants render as arrows on the row.
                out.push_str(", \"s\": \"t\"");
            }
            if event.nargs > 0 {
                out.push_str(", \"args\": {");
                for (i, (key, value)) in event.args().iter().enumerate() {
                    let _ = write!(
                        out,
                        "{}\"{}\": {}",
                        if i == 0 { "" } else { ", " },
                        escape(key),
                        value
                    );
                }
                out.push('}');
            }
            out.push('}');
        }
    }
    out.push_str("\n],\n\"displayTimeUnit\": \"ms\"\n}\n");
    out
}

/// Escapes a string for a JSON literal (names here are static
/// identifiers, but the exporter must not be the thing that breaks if
/// one ever contains a quote).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, ThreadTrace, MAX_ARGS};

    fn event(name: &'static str, phase: Phase, ts_us: u64) -> Event {
        Event {
            name,
            phase,
            ts_us,
            args: [("", 0); MAX_ARGS],
            nargs: 0,
        }
    }

    #[test]
    fn exports_balanced_pairs_and_instants() {
        let mut place = event("sched.place", Phase::Instant, 5);
        place.args[0] = ("op", 2);
        place.args[1] = ("cycle", 7);
        place.nargs = 2;
        let trace = Trace {
            threads: vec![ThreadTrace {
                tid: 3,
                events: vec![
                    event("parse", Phase::Begin, 1),
                    event("parse", Phase::End, 4),
                    place,
                ],
            }],
            metrics: crate::Metrics::default(),
        };
        let json = to_chrome_json(&trace);
        assert!(json.contains("\"name\": \"parse\", \"ph\": \"B\", \"ts\": 1"));
        assert!(json.contains("\"ph\": \"E\", \"ts\": 4"));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"args\": {\"op\": 2, \"cycle\": 7}"));
        assert!(json.contains("\"tid\": 3"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches("\"ph\": \"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\": \"E\"").count(), 1);
    }

    #[test]
    fn empty_trace_is_still_valid_json() {
        let json = to_chrome_json(&Trace::default());
        assert!(json.contains("\"traceEvents\": [\n\n]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn escape_handles_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }
}
