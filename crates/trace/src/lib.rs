//! `lsms-trace`: structured span tracing, typed scheduler events, and
//! exportable metrics for the whole compilation pipeline.
//!
//! The design goal is a collector cheap enough to leave compiled into
//! every hot path: when tracing is disabled (the default) each
//! instrumentation point costs one relaxed atomic load and a branch, and
//! the corpus bench must not regress measurably. When enabled, every
//! thread writes into its own buffer behind an uncontended mutex (locked
//! cross-thread only at [`drain`] time), so the parallel corpus pool
//! never serializes on a shared sink.
//!
//! Three kinds of data are collected:
//!
//! * **Spans** — hierarchical begin/end pairs ([`span`]), one per pass
//!   invocation; they nest (a `sched.attempt` span sits inside its
//!   `schedule:slack` pass span) and export as Chrome trace-event `B`/`E`
//!   pairs per thread ([`chrome::to_chrome_json`]).
//! * **Events** — typed instants ([`instant`]) with up to four integer
//!   arguments: op placement, ejection, II escalation, MRT conflict,
//!   allocation failure, verify mismatch.
//! * **Metrics** — named counters ([`add`]) and fixed-bucket histograms
//!   ([`observe`]), summed across threads at drain time; totals are
//!   deterministic regardless of worker count because summation is
//!   order-independent. Exported in Prometheus text exposition format
//!   ([`prom::to_prometheus`]).
//!
//! # Example
//!
//! ```
//! lsms_trace::set_enabled(true);
//! {
//!     let _pass = lsms_trace::span("parse");
//!     lsms_trace::instant("sched.place", &[("op", 3), ("cycle", 7)]);
//!     lsms_trace::add("sched", "placements", 1);
//!     lsms_trace::observe("sched_slack", 5);
//! }
//! let trace = lsms_trace::drain();
//! lsms_trace::set_enabled(false);
//! assert_eq!(trace.metrics.counter("sched", "placements"), 1);
//! let json = lsms_trace::chrome::to_chrome_json(&trace);
//! assert!(json.contains("\"ph\": \"B\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod prom;

pub use chrome::to_chrome_json;
pub use prom::{metrics_to_prometheus, to_prometheus};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The largest finite histogram bucket boundary; values above it land in
/// the `+Inf` overflow bucket.
pub const HISTOGRAM_MAX_BOUND: u64 = 1 << 15;

/// Finite bucket boundaries: powers of two from 1 to
/// [`HISTOGRAM_MAX_BOUND`] (a value `v` lands in the first bucket whose
/// boundary is `>= v`; zero lands in the first bucket).
pub const HISTOGRAM_BOUNDS: [u64; 16] = [
    1,
    2,
    4,
    8,
    16,
    32,
    64,
    128,
    256,
    512,
    1024,
    2048,
    4096,
    8192,
    16384,
    HISTOGRAM_MAX_BOUND,
];

const NUM_BUCKETS: usize = HISTOGRAM_BOUNDS.len() + 1; // + overflow

/// A fixed-bucket histogram: power-of-two boundaries plus an overflow
/// bucket, with the running sum and count Prometheus expects.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket observation counts (not cumulative; the exporters
    /// cumulate). Index `i < 16` holds values `<= HISTOGRAM_BOUNDS[i]`
    /// (and above the previous boundary); the last index is overflow.
    pub buckets: [u64; NUM_BUCKETS],
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = HISTOGRAM_BOUNDS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(NUM_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Event phase, mirroring the Chrome trace-event `ph` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`B`).
    Begin,
    /// Span end (`E`).
    End,
    /// Thread-scoped instant (`i`).
    Instant,
}

/// Maximum arguments an event carries (fixed so recording never
/// allocates).
pub const MAX_ARGS: usize = 4;

/// One recorded event: a span boundary or a typed instant.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Event name (`sched.place`, `parse`, ...).
    pub name: &'static str,
    /// Span boundary or instant.
    pub phase: Phase,
    /// Microseconds since the process trace epoch.
    pub ts_us: u64,
    /// Argument key/value pairs; only the first `nargs` are meaningful.
    pub args: [(&'static str, i64); MAX_ARGS],
    /// Number of meaningful entries in `args`.
    pub nargs: u8,
}

impl Event {
    /// The meaningful argument pairs.
    pub fn args(&self) -> &[(&'static str, i64)] {
        &self.args[..usize::from(self.nargs)]
    }
}

fn pack_args(args: &[(&'static str, i64)]) -> ([(&'static str, i64); MAX_ARGS], u8) {
    let mut packed = [("", 0i64); MAX_ARGS];
    let n = args.len().min(MAX_ARGS);
    packed[..n].copy_from_slice(&args[..n]);
    (packed, n as u8)
}

/// Counter key: a `(scope, name)` pair, e.g. `("sched", "placements")`
/// or `("schedule:slack", "ii")`. Both halves are `&'static str`, so
/// recording a counter never allocates.
pub type CounterKey = (&'static str, &'static str);

/// Aggregated metrics: counters and histograms summed across all
/// threads. Totals are independent of thread count and drain order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// `(scope, key) → total`.
    pub counters: BTreeMap<CounterKey, u64>,
    /// `name → histogram`.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// The total for one counter (0 if never bumped).
    pub fn counter(&self, scope: &str, key: &str) -> u64 {
        self.counters
            .iter()
            .find(|((s, k), _)| *s == scope && *k == key)
            .map_or(0, |(_, v)| *v)
    }

    /// Folds another metrics set into this one.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(*k).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

/// The event stream of one thread, in recording order.
#[derive(Clone, Debug, Default)]
pub struct ThreadTrace {
    /// Collector-assigned thread id (dense, in registration order).
    pub tid: u32,
    /// Events in the order the thread recorded them.
    pub events: Vec<Event>,
}

/// Everything collected since the last [`drain`]: per-thread event
/// streams plus the merged metrics.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Per-thread event streams, sorted by thread id. Threads that
    /// recorded nothing are omitted.
    pub threads: Vec<ThreadTrace>,
    /// Counters and histograms, summed across threads.
    pub metrics: Metrics,
}

impl Trace {
    /// Total number of events across all threads.
    pub fn num_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }
}

#[derive(Debug, Default)]
struct ThreadBuf {
    events: Vec<Event>,
    metrics: Metrics,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

type SharedBuf = Arc<Mutex<ThreadBuf>>;

fn registry() -> &'static Mutex<Vec<(u32, SharedBuf)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(u32, SharedBuf)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: RefCell<Option<SharedBuf>> = const { RefCell::new(None) };
}

/// Turns collection on or off, process-wide. Off by default; every
/// recording function is a near-free no-op while off.
pub fn set_enabled(on: bool) {
    if on {
        // Fix the epoch before the first event so timestamps are
        // monotone from here.
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when collection is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn with_buf(f: impl FnOnce(&mut ThreadBuf)) {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let arc = slot.get_or_insert_with(|| {
            let arc = Arc::new(Mutex::new(ThreadBuf::default()));
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            registry()
                .lock()
                .expect("trace registry")
                .push((tid, Arc::clone(&arc)));
            arc
        });
        f(&mut arc.lock().expect("thread trace buffer"));
    });
}

fn now_us() -> u64 {
    u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// An RAII span: emits the begin event on creation and the end event on
/// drop. Not `Send` — a span must end on the thread that started it, or
/// the per-thread `B`/`E` pairing Chrome requires would break.
#[must_use = "a span ends when the guard drops"]
pub struct SpanGuard {
    name: &'static str,
    active: bool,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            let ts_us = now_us();
            with_buf(|buf| {
                buf.events.push(Event {
                    name: self.name,
                    phase: Phase::End,
                    ts_us,
                    args: [("", 0); MAX_ARGS],
                    nargs: 0,
                });
            });
        }
    }
}

/// Opens a span; see [`span_with`] for arguments.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, &[])
}

/// Opens a span with arguments attached to its begin event. Inert (and
/// free apart from one atomic load) while tracing is disabled; the guard
/// remembers whether it emitted a begin, so toggling mid-span cannot
/// imbalance the stream.
pub fn span_with(name: &'static str, args: &[(&'static str, i64)]) -> SpanGuard {
    let active = enabled();
    if active {
        let ts_us = now_us();
        let (packed, nargs) = pack_args(args);
        with_buf(|buf| {
            buf.events.push(Event {
                name,
                phase: Phase::Begin,
                ts_us,
                args: packed,
                nargs,
            });
        });
    }
    SpanGuard {
        name,
        active,
        _not_send: std::marker::PhantomData,
    }
}

/// Records a typed instant event (at most [`MAX_ARGS`] arguments are
/// kept).
#[inline]
pub fn instant(name: &'static str, args: &[(&'static str, i64)]) {
    if !enabled() {
        return;
    }
    let ts_us = now_us();
    let (packed, nargs) = pack_args(args);
    with_buf(|buf| {
        buf.events.push(Event {
            name,
            phase: Phase::Instant,
            ts_us,
            args: packed,
            nargs,
        });
    });
}

/// Bumps the `(scope, key)` counter by `delta`.
#[inline]
pub fn add(scope: &'static str, key: &'static str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    with_buf(|buf| {
        *buf.metrics.counters.entry((scope, key)).or_insert(0) += delta;
    });
}

/// Bumps several counters under one scope (one thread-local access).
pub fn add_all(scope: &'static str, counters: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    with_buf(|buf| {
        for &(key, delta) in counters {
            *buf.metrics.counters.entry((scope, key)).or_insert(0) += delta;
        }
    });
}

/// Records one observation into the named histogram.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    with_buf(|buf| {
        buf.metrics
            .histograms
            .entry(name)
            .or_default()
            .observe(value);
    });
}

/// Takes everything collected since the last drain, clearing the
/// per-thread buffers (thread registrations persist). Metrics totals are
/// summed across threads, so they do not depend on how work was spread
/// over the pool.
pub fn drain() -> Trace {
    let registry = registry().lock().expect("trace registry");
    let mut trace = Trace::default();
    for (tid, buf) in registry.iter() {
        let mut buf = buf.lock().expect("thread trace buffer");
        trace.metrics.merge(&buf.metrics);
        buf.metrics = Metrics::default();
        if !buf.events.is_empty() {
            trace.threads.push(ThreadTrace {
                tid: *tid,
                events: std::mem::take(&mut buf.events),
            });
        }
    }
    trace.threads.sort_by_key(|t| t.tid);
    trace
}

/// Discards everything collected since the last drain (test helper).
pub fn reset() {
    let _ = drain();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is process-global; tests that enable it serialize
    /// on this lock so `cargo test`'s parallel runner cannot interleave
    /// their streams.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn disabled_collection_records_nothing() {
        let _g = guard();
        reset();
        set_enabled(false);
        let _span = span("parse");
        instant("sched.place", &[("op", 1)]);
        add("sched", "placements", 1);
        observe("sched_slack", 3);
        drop(_span);
        let trace = drain();
        assert_eq!(trace.num_events(), 0);
        assert!(trace.metrics.is_empty());
    }

    #[test]
    fn spans_nest_and_balance() {
        let _g = guard();
        reset();
        set_enabled(true);
        {
            let _outer = span("schedule:slack");
            {
                let _inner = span_with("sched.attempt", &[("ii", 3)]);
                instant("sched.place", &[("op", 0), ("cycle", 2)]);
            }
        }
        set_enabled(false);
        let trace = drain();
        assert_eq!(trace.threads.len(), 1);
        let events = &trace.threads[0].events;
        let names: Vec<(&str, Phase)> = events.iter().map(|e| (e.name, e.phase)).collect();
        assert_eq!(
            names,
            [
                ("schedule:slack", Phase::Begin),
                ("sched.attempt", Phase::Begin),
                ("sched.place", Phase::Instant),
                ("sched.attempt", Phase::End),
                ("schedule:slack", Phase::End),
            ]
        );
        // Timestamps are monotone within the thread.
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        // The attempt span carried its II argument.
        assert_eq!(events[1].args(), [("ii", 3)]);
    }

    #[test]
    fn toggling_mid_span_cannot_imbalance() {
        let _g = guard();
        reset();
        set_enabled(false);
        let dark = span("never-begun");
        set_enabled(true);
        drop(dark); // must NOT emit a dangling E
        let lit = span("begun");
        set_enabled(false);
        drop(lit); // must still emit its E
        let trace = drain();
        let mut depth = 0i64;
        for t in &trace.threads {
            for e in &t.events {
                match e.phase {
                    Phase::Begin => depth += 1,
                    Phase::End => {
                        depth -= 1;
                        assert!(depth >= 0, "E before B");
                    }
                    Phase::Instant => {}
                }
            }
        }
        assert_eq!(depth, 0, "unbalanced spans");
        assert!(trace
            .threads
            .iter()
            .flat_map(|t| &t.events)
            .all(|e| e.name != "never-begun"));
    }

    #[test]
    fn histogram_bucketing_is_exact() {
        let mut h = Histogram::default();
        h.observe(0); // first bucket (le 1)
        h.observe(1); // le 1
        h.observe(2); // le 2
        h.observe(3); // le 4
        h.observe(16); // le 16
        h.observe(17); // le 32
        h.observe(HISTOGRAM_MAX_BOUND); // last finite bucket
        h.observe(HISTOGRAM_MAX_BOUND + 1); // overflow
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[4], 1);
        assert_eq!(h.buckets[5], 1);
        assert_eq!(h.buckets[HISTOGRAM_BOUNDS.len() - 1], 1);
        assert_eq!(h.buckets[NUM_BUCKETS - 1], 1);
        assert_eq!(h.count, 8);
        assert_eq!(h.sum, 1 + 2 + 3 + 16 + 17 + 2 * HISTOGRAM_MAX_BOUND + 1);
    }

    #[test]
    fn metrics_merge_is_order_independent() {
        let mut a = Metrics::default();
        *a.counters.entry(("sched", "placements")).or_insert(0) += 3;
        a.histograms.entry("h").or_default().observe(5);
        let mut b = Metrics::default();
        *b.counters.entry(("sched", "placements")).or_insert(0) += 4;
        *b.counters.entry(("sim", "mismatches")).or_insert(0) += 1;
        b.histograms.entry("h").or_default().observe(100);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("sched", "placements"), 7);
        assert_eq!(ab.counter("sim", "mismatches"), 1);
        assert_eq!(ab.histograms["h"].count, 2);
    }

    #[test]
    fn cross_thread_counters_sum_deterministically() {
        let _g = guard();
        reset();
        set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        add("sched", "placements", 1);
                    }
                    observe("sched_slack", 7);
                });
            }
        });
        set_enabled(false);
        let trace = drain();
        assert_eq!(trace.metrics.counter("sched", "placements"), 400);
        assert_eq!(trace.metrics.histograms["sched_slack"].count, 4);
    }

    #[test]
    fn drain_clears_but_keeps_collecting() {
        let _g = guard();
        reset();
        set_enabled(true);
        add("a", "b", 1);
        let first = drain();
        add("a", "b", 2);
        let second = drain();
        set_enabled(false);
        assert_eq!(first.metrics.counter("a", "b"), 1);
        assert_eq!(second.metrics.counter("a", "b"), 2);
    }
}
