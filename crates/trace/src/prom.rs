//! Prometheus text-exposition exporter for the collected metrics.
//!
//! Counters export as `lsms_<scope>_<key>_total`; histograms as
//! `lsms_<name>` with the standard `_bucket{le="..."}` / `_sum` /
//! `_count` series (buckets cumulated per the exposition format). Names
//! are sanitized (`schedule:slack` → `schedule_slack`), and the output
//! is deterministic: series appear in sorted key order and contain no
//! timestamps, so two runs that did the same work produce byte-identical
//! expositions regardless of worker count.

use std::fmt::Write as _;

use crate::{Metrics, Trace, HISTOGRAM_BOUNDS};

/// Serializes a drained trace's metrics in Prometheus text exposition
/// format.
pub fn to_prometheus(trace: &Trace) -> String {
    metrics_to_prometheus(&trace.metrics)
}

/// Serializes a metrics set in Prometheus text exposition format.
pub fn metrics_to_prometheus(metrics: &Metrics) -> String {
    let mut out = String::new();
    for ((scope, key), value) in &metrics.counters {
        let name = format!("lsms_{}_{}_total", sanitize(scope), sanitize(key));
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, h) in &metrics.histograms {
        let name = format!("lsms_{}", sanitize(name));
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in HISTOGRAM_BOUNDS.iter().zip(h.buckets.iter()) {
            cumulative += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        cumulative += h.buckets[HISTOGRAM_BOUNDS.len()];
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

/// A histogram series parsed back out of a text exposition: the
/// cumulative `(le, count)` buckets in file order plus the `_sum` and
/// `_count` samples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParsedHistogram {
    /// Cumulative buckets, `(le label, cumulative count)`, in the order
    /// they appeared (ascending bounds, `+Inf` last).
    pub buckets: Vec<(String, u64)>,
    /// The `_sum` sample.
    pub sum: u64,
    /// The `_count` sample.
    pub count: u64,
}

/// Everything [`parse_prometheus`] recovers from an exposition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParsedExposition {
    /// Counter samples by full series name (e.g.
    /// `lsms_schedule_slack_ii_total`).
    pub counters: std::collections::BTreeMap<String, u64>,
    /// Histogram series by base name (e.g. `lsms_sched_slack`).
    pub histograms: std::collections::BTreeMap<String, ParsedHistogram>,
}

/// Parses the subset of the Prometheus text exposition format that
/// [`metrics_to_prometheus`] emits, so tests — and tooling that shells
/// out to `lsmsc --metrics` — can round-trip the exposition instead of
/// string-matching it. `# TYPE name histogram` declares a histogram;
/// sample lines are `name[{le="..."}] value`. Unparseable lines are
/// skipped.
pub fn parse_prometheus(text: &str) -> ParsedExposition {
    let mut out = ParsedExposition::default();
    for line in text.lines() {
        let line = line.trim();
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            if let Some((name, "histogram")) = decl.split_once(' ') {
                out.histograms.entry(name.to_owned()).or_default();
            }
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.parse::<u64>() else {
            continue;
        };
        if let Some((name, le)) = series.split_once("_bucket{le=\"") {
            let le = le.trim_end_matches("\"}").to_owned();
            if let Some(h) = out.histograms.get_mut(name) {
                h.buckets.push((le, value));
            }
        } else if let Some(h) = series
            .strip_suffix("_sum")
            .and_then(|n| out.histograms.get_mut(n))
        {
            h.sum = value;
        } else if let Some(h) = series
            .strip_suffix("_count")
            .and_then(|n| out.histograms.get_mut(n))
        {
            h.count = value;
        } else {
            out.counters.insert(series.to_owned(), value);
        }
    }
    out
}

/// Maps a name onto the Prometheus metric-name alphabet
/// (`[a-zA-Z0-9_]`); every other character becomes `_`.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn counters_and_histograms_export() {
        let mut m = Metrics::default();
        m.counters.insert(("schedule:slack", "ii"), 42);
        m.counters.insert(("sched", "placements"), 7);
        let mut h = Histogram::default();
        h.observe(3);
        h.observe(5000);
        m.histograms.insert("sched_slack", h);

        let text = metrics_to_prometheus(&m);
        assert!(text.contains("# TYPE lsms_schedule_slack_ii_total counter"));
        assert!(text.contains("lsms_schedule_slack_ii_total 42"));
        assert!(text.contains("lsms_sched_placements_total 7"));
        // Buckets are cumulative: the value 3 lands in le=4 and stays
        // counted in every later bucket.
        assert!(text.contains("lsms_sched_slack_bucket{le=\"2\"} 0"));
        assert!(text.contains("lsms_sched_slack_bucket{le=\"4\"} 1"));
        assert!(text.contains("lsms_sched_slack_bucket{le=\"4096\"} 1"));
        assert!(text.contains("lsms_sched_slack_bucket{le=\"8192\"} 2"));
        assert!(text.contains("lsms_sched_slack_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lsms_sched_slack_sum 5003"));
        assert!(text.contains("lsms_sched_slack_count 2"));
    }

    #[test]
    fn exposition_is_deterministic() {
        let build = || {
            let mut m = Metrics::default();
            m.counters.insert(("b", "y"), 1);
            m.counters.insert(("a", "x"), 2);
            metrics_to_prometheus(&m)
        };
        assert_eq!(build(), build());
        // Sorted key order regardless of insertion order.
        let text = build();
        let a = text.find("lsms_a_x_total").unwrap();
        let b = text.find("lsms_b_y_total").unwrap();
        assert!(a < b);
    }

    #[test]
    fn parser_round_trips_the_exposition() {
        let mut m = Metrics::default();
        m.counters.insert(("schedule:slack", "ii"), 42);
        m.counters.insert(("sched", "placements"), 7);
        let mut h = Histogram::default();
        for v in [1, 3, 3, 900, 5_000, 1 << 20] {
            h.observe(v);
        }
        m.histograms.insert("sched_slack", h.clone());

        let parsed = parse_prometheus(&metrics_to_prometheus(&m));
        assert_eq!(parsed.counters["lsms_schedule_slack_ii_total"], 42);
        assert_eq!(parsed.counters["lsms_sched_placements_total"], 7);
        assert_eq!(parsed.counters.len(), 2);

        let ph = &parsed.histograms["lsms_sched_slack"];
        // One bucket per bound plus the mandatory +Inf terminator.
        assert_eq!(ph.buckets.len(), HISTOGRAM_BOUNDS.len() + 1);
        assert_eq!(ph.buckets.last().unwrap().0, "+Inf");
        // Exposition buckets are cumulative, so counts never decrease
        // and the +Inf bucket agrees with _count.
        for w in ph.buckets.windows(2) {
            assert!(w[0].1 <= w[1].1, "buckets must be cumulative: {w:?}");
        }
        assert_eq!(ph.buckets.last().unwrap().1, ph.count);
        assert_eq!(ph.count, h.count);
        assert_eq!(ph.sum, h.sum);
        // De-cumulating recovers the original per-bucket counts exactly.
        let mut prev = 0;
        for (i, (_, cumulative)) in ph.buckets.iter().enumerate() {
            assert_eq!(cumulative - prev, h.buckets[i], "bucket {i}");
            prev = *cumulative;
        }
    }

    #[test]
    fn parser_skips_malformed_lines() {
        let parsed = parse_prometheus(
            "# HELP noise ignored\n\
             garbage\n\
             lsms_ok_total 3\n\
             lsms_bad_total not_a_number\n",
        );
        assert_eq!(parsed.counters["lsms_ok_total"], 3);
        assert_eq!(parsed.counters.len(), 1);
        assert!(parsed.histograms.is_empty());
    }

    #[test]
    fn sanitize_maps_punctuation() {
        assert_eq!(sanitize("schedule:slack"), "schedule_slack");
        assert_eq!(sanitize("if-convert"), "if_convert");
        assert_eq!(sanitize("sched.place"), "sched_place");
    }
}
