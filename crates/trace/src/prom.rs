//! Prometheus text-exposition exporter for the collected metrics.
//!
//! Counters export as `lsms_<scope>_<key>_total`; histograms as
//! `lsms_<name>` with the standard `_bucket{le="..."}` / `_sum` /
//! `_count` series (buckets cumulated per the exposition format). Names
//! are sanitized (`schedule:slack` → `schedule_slack`), and the output
//! is deterministic: series appear in sorted key order and contain no
//! timestamps, so two runs that did the same work produce byte-identical
//! expositions regardless of worker count.

use std::fmt::Write as _;

use crate::{Metrics, Trace, HISTOGRAM_BOUNDS};

/// Serializes a drained trace's metrics in Prometheus text exposition
/// format.
pub fn to_prometheus(trace: &Trace) -> String {
    metrics_to_prometheus(&trace.metrics)
}

/// Serializes a metrics set in Prometheus text exposition format.
pub fn metrics_to_prometheus(metrics: &Metrics) -> String {
    let mut out = String::new();
    for ((scope, key), value) in &metrics.counters {
        let name = format!("lsms_{}_{}_total", sanitize(scope), sanitize(key));
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, h) in &metrics.histograms {
        let name = format!("lsms_{}", sanitize(name));
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in HISTOGRAM_BOUNDS.iter().zip(h.buckets.iter()) {
            cumulative += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        cumulative += h.buckets[HISTOGRAM_BOUNDS.len()];
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

/// Maps a name onto the Prometheus metric-name alphabet
/// (`[a-zA-Z0-9_]`); every other character becomes `_`.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn counters_and_histograms_export() {
        let mut m = Metrics::default();
        m.counters.insert(("schedule:slack", "ii"), 42);
        m.counters.insert(("sched", "placements"), 7);
        let mut h = Histogram::default();
        h.observe(3);
        h.observe(5000);
        m.histograms.insert("sched_slack", h);

        let text = metrics_to_prometheus(&m);
        assert!(text.contains("# TYPE lsms_schedule_slack_ii_total counter"));
        assert!(text.contains("lsms_schedule_slack_ii_total 42"));
        assert!(text.contains("lsms_sched_placements_total 7"));
        // Buckets are cumulative: the value 3 lands in le=4 and stays
        // counted in every later bucket.
        assert!(text.contains("lsms_sched_slack_bucket{le=\"2\"} 0"));
        assert!(text.contains("lsms_sched_slack_bucket{le=\"4\"} 1"));
        assert!(text.contains("lsms_sched_slack_bucket{le=\"4096\"} 1"));
        assert!(text.contains("lsms_sched_slack_bucket{le=\"8192\"} 2"));
        assert!(text.contains("lsms_sched_slack_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lsms_sched_slack_sum 5003"));
        assert!(text.contains("lsms_sched_slack_count 2"));
    }

    #[test]
    fn exposition_is_deterministic() {
        let build = || {
            let mut m = Metrics::default();
            m.counters.insert(("b", "y"), 1);
            m.counters.insert(("a", "x"), 2);
            metrics_to_prometheus(&m)
        };
        assert_eq!(build(), build());
        // Sorted key order regardless of insertion order.
        let text = build();
        let a = text.find("lsms_a_x_total").unwrap();
        let b = text.find("lsms_b_y_total").unwrap();
        assert!(a < b);
    }

    #[test]
    fn sanitize_maps_punctuation() {
        assert_eq!(sanitize("schedule:slack"), "schedule_slack");
        assert_eq!(sanitize("if-convert"), "if_convert");
        assert_eq!(sanitize("sched.place"), "sched_place");
    }
}
