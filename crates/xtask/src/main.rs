//! `cargo xtask` — repo maintenance tasks.
//!
//! ```text
//! cargo run -p xtask -- timings-diff OLD.json NEW.json [--max-ratio R] [--floor-us N]
//! cargo run -p xtask -- bench-diff OLD.json NEW.json [--max-ratio R] [--floor-ms F]
//! cargo run -p xtask -- quality-diff OLD.json NEW.json
//! cargo run -p xtask -- cache-check TIMINGS.json [--min-warm N]
//! cargo run -p xtask -- backend-audit
//! ```
//!
//! `timings-diff` is the CI perf gate: it compares two `lsmsc --timings`
//! JSON reports pass by pass and fails (exit 1) when any pass's
//! wall-clock regressed by more than `--max-ratio` (default 2.0×).
//! Passes whose new wall time is under `--floor-us` (default 10 ms) are
//! ignored — at that scale the numbers are scheduler-noise, not
//! regressions. A missing OLD file is a clean skip (exit 0), so the
//! first run of a fresh cache passes.
//!
//! `backend-audit` is the consistency gate for the scheduler-backend
//! registry: for every registered backend it checks that the derived
//! `schedule:<name>` pass label, the `PASSES` registry row (summary and
//! counter set), the `--list-backends` listing, and the live trace span
//! names all agree. It compiles one loop per backend with tracing on, so
//! a backend whose span never opens fails the audit too.
//!
//! `bench-diff` gates the corpus benchmark the same way, on the p99
//! per-loop latency out of two `corpus_time` reports (`BENCH_corpus.json`
//! shape). Each report's p99 is the best across its runs — both runs
//! evaluate the same corpus, so the minimum is the least noisy estimate.
//! New p99s under `--floor-ms` (default 1 ms) are ignored, and a missing
//! OLD file is again a clean skip.
//!
//! `quality-diff` gates schedule *quality* out of two `lsmsc --quality`
//! reports (`BENCH_quality.json` shape). Unlike the wall-clock gates it
//! is exact-count: scheduling is deterministic, so any increase in the
//! corpus-wide II sum or MaxLive sum over the records both reports share
//! (matched by loop name + backend, so corpus resizes never false-fail)
//! is a regression — no ratio, no noise floor. Every loop that moved is
//! attributed by name with the `schedule:<backend>` pass that produced
//! it. A missing OLD file is a clean first-run skip.
//!
//! `cache-check` closes the warm-start loop in CI: given the `--timings`
//! report of an `--eval-corpus --warm-start` run, it fails unless the
//! `sched-cache` pass reports at least `--min-warm` warm hits — proof
//! that the persisted schedule-cache ledger was loaded and actually
//! seeded II escalation, rather than silently falling back to cold runs.

use std::process::ExitCode;

/// One pass's wall time out of a `lsmsc --timings` report.
#[derive(Debug, PartialEq)]
struct PassWall {
    name: String,
    wall_us: u64,
}

/// Extracts `(name, wall_us)` per pass from the timings JSON. The format
/// is the driver's own fixed emission, so a targeted scan beats a full
/// JSON parser here; unknown surroundings are ignored.
fn parse_timings(json: &str) -> Vec<PassWall> {
    let mut out = Vec::new();
    for record in json.split("{\"name\": \"").skip(1) {
        let Some(name) = record.split('"').next() else {
            continue;
        };
        let Some(wall) = record
            .split("\"wall_us\": ")
            .nth(1)
            .and_then(|r| r.split(|c: char| !c.is_ascii_digit()).next())
            .and_then(|n| n.parse().ok())
        else {
            continue;
        };
        out.push(PassWall {
            name: name.to_owned(),
            wall_us: wall,
        });
    }
    out
}

/// A pass that got slower than the gate allows.
#[derive(Debug, PartialEq)]
struct Regression {
    name: String,
    old_us: u64,
    new_us: u64,
}

/// The gate: every pass present in both reports whose new wall time
/// exceeds both `floor_us` and `max_ratio × old` is a regression.
fn diff(old: &[PassWall], new: &[PassWall], max_ratio: f64, floor_us: u64) -> Vec<Regression> {
    new.iter()
        .filter(|n| n.wall_us >= floor_us)
        .filter_map(|n| {
            let o = old.iter().find(|o| o.name == n.name)?;
            (n.wall_us as f64 > o.wall_us as f64 * max_ratio).then(|| Regression {
                name: n.name.clone(),
                old_us: o.wall_us,
                new_us: n.wall_us,
            })
        })
        .collect()
}

fn timings_diff(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut max_ratio = 2.0f64;
    let mut floor_us = 10_000u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-ratio" => match it.next().and_then(|v| v.parse().ok()) {
                Some(r) => max_ratio = r,
                None => return usage("--max-ratio needs a number"),
            },
            "--floor-us" => match it.next().and_then(|v| v.parse().ok()) {
                Some(f) => floor_us = f,
                None => return usage("--floor-us needs an integer"),
            },
            other => paths.push(other.to_owned()),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return usage("timings-diff wants exactly OLD.json and NEW.json");
    };

    let Ok(old_json) = std::fs::read_to_string(old_path) else {
        println!("timings-diff: no previous report at {old_path}; skipping (first run)");
        return ExitCode::SUCCESS;
    };
    let new_json = match std::fs::read_to_string(new_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("timings-diff: cannot read {new_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let old = parse_timings(&old_json);
    let new = parse_timings(&new_json);
    if new.is_empty() {
        eprintln!("timings-diff: {new_path} contains no passes");
        return ExitCode::FAILURE;
    }
    let regressions = diff(&old, &new, max_ratio, floor_us);
    for r in &regressions {
        eprintln!(
            "timings-diff: pass {} regressed {:.2}x ({} us -> {} us, gate {max_ratio}x)",
            r.name,
            r.new_us as f64 / (r.old_us.max(1)) as f64,
            r.old_us,
            r.new_us
        );
    }
    if regressions.is_empty() {
        println!(
            "timings-diff: {} passes compared, none above {max_ratio}x (floor {floor_us} us)",
            new.len()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Pulls one per-loop latency percentile (`"p50"`, `"p99"`, …) out of a
/// `corpus_time` report: the minimum across the report's runs (same
/// corpus, so the best run is the least noisy measurement). The format is
/// the bench binary's own fixed emission, so a targeted scan suffices, as
/// in [`parse_timings`].
fn parse_bench_stat(json: &str, stat: &str) -> Option<f64> {
    let tag = format!("\"{stat}\": ");
    json.split(tag.as_str())
        .skip(1)
        .filter_map(|rest| {
            rest.split(|c: char| !c.is_ascii_digit() && c != '.')
                .next()
                .and_then(|n| n.parse::<f64>().ok())
        })
        .min_by(f64::total_cmp)
}

/// The bench gate: a new percentile is a regression when it clears both
/// the noise floor and `max_ratio ×` the old value.
fn bench_regressed(old_ms: f64, new_ms: f64, max_ratio: f64, floor_ms: f64) -> bool {
    new_ms > floor_ms && new_ms > old_ms * max_ratio
}

fn bench_diff(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut max_ratio = 2.0f64;
    let mut floor_ms = 1.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-ratio" => match it.next().and_then(|v| v.parse().ok()) {
                Some(r) => max_ratio = r,
                None => return usage("--max-ratio needs a number"),
            },
            "--floor-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(f) => floor_ms = f,
                None => return usage("--floor-ms needs a number"),
            },
            other => paths.push(other.to_owned()),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return usage("bench-diff wants exactly OLD.json and NEW.json");
    };

    let Ok(old_json) = std::fs::read_to_string(old_path) else {
        println!("bench-diff: no previous report at {old_path}; skipping (first run)");
        return ExitCode::SUCCESS;
    };
    let new_json = match std::fs::read_to_string(new_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench-diff: cannot read {new_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Both ends of the latency distribution are gated with the same rule:
    // the p99 tail (the expensive loops) and the p50 median (the common
    // case the ready-set/sparsity machinery must never bloat). The 1 ms
    // floor keeps sub-millisecond medians from tripping on noise.
    let mut failed = false;
    for stat in ["p50", "p99"] {
        let Some(old_ms) = parse_bench_stat(&old_json, stat) else {
            eprintln!("bench-diff: {old_path} contains no {stat} samples");
            return ExitCode::FAILURE;
        };
        let Some(new_ms) = parse_bench_stat(&new_json, stat) else {
            eprintln!("bench-diff: {new_path} contains no {stat} samples");
            return ExitCode::FAILURE;
        };
        if bench_regressed(old_ms, new_ms, max_ratio, floor_ms) {
            eprintln!(
                "bench-diff: corpus {stat} regressed {:.2}x ({old_ms:.4} ms -> {new_ms:.4} ms, gate {max_ratio}x)",
                new_ms / old_ms.max(1e-9)
            );
            failed = true;
        } else {
            println!(
                "bench-diff: corpus {stat} {old_ms:.4} ms -> {new_ms:.4} ms, within {max_ratio}x (floor {floor_ms} ms)"
            );
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn quality_diff(args: &[String]) -> ExitCode {
    let [old_path, new_path] = args else {
        return usage("quality-diff wants exactly OLD.json and NEW.json");
    };

    let Ok(old_json) = std::fs::read_to_string(old_path) else {
        println!("quality-diff: no previous report at {old_path}; skipping (first run)");
        return ExitCode::SUCCESS;
    };
    let new_json = match std::fs::read_to_string(new_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("quality-diff: cannot read {new_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let old = lsms_obs::parse_quality(&old_json);
    let new = lsms_obs::parse_quality(&new_json);
    if new.is_empty() {
        eprintln!("quality-diff: {new_path} contains no loop records");
        return ExitCode::FAILURE;
    }
    if old.is_empty() {
        eprintln!("quality-diff: {old_path} contains no loop records");
        return ExitCode::FAILURE;
    }
    let diff = lsms_obs::diff_quality(&old, &new);
    if diff.compared == 0 {
        eprintln!("quality-diff: the reports share no (loop, backend) records");
        return ExitCode::FAILURE;
    }

    // Per-loop attribution: every mover, worsened or improved, with the
    // pass that produced the new schedule.
    for m in &diff.moved {
        eprintln!(
            "quality-diff: loop {} [{}]: II {} -> {}, MaxLive {} -> {}{}",
            m.name,
            m.pass,
            m.ii_old,
            m.ii_new,
            m.max_live_old,
            m.max_live_new,
            if m.worsened() { "  <- regressed" } else { "" }
        );
    }
    if diff.only_old + diff.only_new > 0 {
        println!(
            "quality-diff: corpus changed shape ({} records only in OLD, {} only in NEW) — \
             sums cover the {} shared records",
            diff.only_old, diff.only_new, diff.compared
        );
    }
    if diff.regressed() {
        eprintln!(
            "quality-diff: schedule quality regressed over {} shared records: \
             II sum {} -> {}, MaxLive sum {} -> {} (exact-count gate: any increase fails)",
            diff.compared,
            diff.ii_sum_old,
            diff.ii_sum_new,
            diff.max_live_sum_old,
            diff.max_live_sum_new
        );
        ExitCode::FAILURE
    } else {
        println!(
            "quality-diff: {} shared records, II sum {} -> {}, MaxLive sum {} -> {} ({} moved, none worse in sum)",
            diff.compared,
            diff.ii_sum_old,
            diff.ii_sum_new,
            diff.max_live_sum_old,
            diff.max_live_sum_new,
            diff.moved.len()
        );
        ExitCode::SUCCESS
    }
}

/// One loop every built-in backend can schedule, for the live span check.
const AUDIT_LOOP: &str = "loop daxpy(i = 1..n) { real x[], y[]; param real a;
    y[i] = y[i] + a * x[i]; }";

/// The registry consistency gate: backend names, `schedule:<name>` pass
/// labels, `PASSES` rows, `--list-backends` text, and live trace span
/// names must all agree for every registered backend.
fn backend_audit() -> ExitCode {
    use lsms_pipeline::{
        list_backends_text, pass_info, registered_backends, BackendSelection, CompileSession,
        SessionConfig, SCHED_COUNTERS,
    };

    let entries = registered_backends();
    let mut problems: Vec<String> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();

    let listing = list_backends_text();
    for entry in &entries {
        let name = entry.scheduler.name().to_owned();
        // The pass label is derived from the name, nothing else.
        if entry.pass != format!("schedule:{name}") {
            problems.push(format!(
                "backend `{name}` carries pass label `{}` (want `schedule:{name}`)",
                entry.pass
            ));
        }
        if !seen.insert(name.clone()) {
            problems.push(format!("backend name `{name}` appears twice"));
        }
        // Each built-in has a PASSES row that tells the same story.
        match pass_info(entry.pass) {
            None => problems.push(format!("pass `{}` missing from PASSES", entry.pass)),
            Some(info) => {
                let summary = entry.scheduler.describe().summary;
                if info.summary != summary {
                    problems.push(format!(
                        "pass `{}`: PASSES summary `{}` != backend summary `{summary}`",
                        entry.pass, info.summary
                    ));
                }
                if info.counters != SCHED_COUNTERS {
                    problems.push(format!(
                        "pass `{}` does not record the shared SCHED_COUNTERS set",
                        entry.pass
                    ));
                }
            }
        }
        // --list-backends names it, with its capability flags.
        if !listing.contains(&name) {
            problems.push(format!("`--list-backends` omits `{name}`"));
        }
        if !listing.contains(&entry.scheduler.capabilities().flags()) {
            problems.push(format!("`--list-backends` omits the flags of `{name}`"));
        }
    }

    // Live check: one compile per backend, traced; the span under the
    // derived pass label must actually open.
    lsms_trace::set_enabled(true);
    for entry in &entries {
        let mut config = SessionConfig::new(lsms_machine::huff_machine());
        config.backend = BackendSelection::named(entry.scheduler.name());
        let session = CompileSession::new(config);
        let compiled = session
            .compile_source(AUDIT_LOOP)
            .and_then(|unit| session.run_loop(&unit.loops[0]));
        if let Err(e) = compiled {
            problems.push(format!(
                "backend `{}` fails to schedule the audit loop: {e}",
                entry.scheduler.name()
            ));
        }
    }
    lsms_trace::set_enabled(false);
    let trace = lsms_trace::drain();
    for entry in &entries {
        let spanned = trace
            .threads
            .iter()
            .flat_map(|t| &t.events)
            .any(|e| e.name == entry.pass);
        if !spanned {
            problems.push(format!(
                "no trace span named `{}` opened for backend `{}`",
                entry.pass,
                entry.scheduler.name()
            ));
        }
    }

    if problems.is_empty() {
        println!(
            "backend-audit: {} backends consistent across registry, PASSES, \
             --list-backends, and trace spans",
            entries.len()
        );
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("backend-audit: {p}");
        }
        ExitCode::FAILURE
    }
}

/// One counter of one pass out of a `lsmsc --timings` report, scanned
/// with the same targeted approach as [`parse_timings`].
fn parse_pass_counter(json: &str, pass: &str, counter: &str) -> Option<u64> {
    let record = json
        .split("{\"name\": \"")
        .skip(1)
        .find(|r| r.split('"').next() == Some(pass))?;
    record
        .split(&format!("\"{counter}\": "))
        .nth(1)
        .and_then(|r| r.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|n| n.parse().ok())
}

/// `cache-check TIMINGS.json [--min-warm N]`: asserts that a warm-started
/// run actually used its schedule-cache ledger — the `sched-cache` pass
/// must report at least `--min-warm` (default 1) warm hits. CI runs this
/// on the second `--eval-corpus --warm-start` invocation to prove the
/// persisted ledger round-trips.
fn cache_check(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut min_warm = 1u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--min-warm" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => min_warm = n,
                None => return usage("--min-warm needs a count"),
            },
            other => paths.push(other.to_owned()),
        }
    }
    let [path] = paths.as_slice() else {
        return usage("cache-check wants exactly one TIMINGS.json");
    };
    let json = match std::fs::read_to_string(path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cache-check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(warm) = parse_pass_counter(&json, "sched-cache", "warm_hits") else {
        eprintln!("cache-check: {path} has no sched-cache pass (cache disabled or no run?)");
        return ExitCode::FAILURE;
    };
    let hits = parse_pass_counter(&json, "sched-cache", "hits").unwrap_or(0);
    let misses = parse_pass_counter(&json, "sched-cache", "misses").unwrap_or(0);
    if warm < min_warm {
        eprintln!(
            "cache-check: only {warm} warm hit(s) in {path} (wanted >= {min_warm}; \
             {hits} cache hits, {misses} misses) — the warm-start ledger did not take"
        );
        ExitCode::FAILURE
    } else {
        println!(
            "cache-check: {warm} warm hit(s), {hits} cache hit(s), {misses} miss(es) in {path}"
        );
        ExitCode::SUCCESS
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("xtask: {message}");
    eprintln!("usage: cargo run -p xtask -- timings-diff OLD.json NEW.json [--max-ratio R] [--floor-us N]");
    eprintln!(
        "       cargo run -p xtask -- bench-diff OLD.json NEW.json [--max-ratio R] [--floor-ms F]"
    );
    eprintln!("       cargo run -p xtask -- quality-diff OLD.json NEW.json");
    eprintln!("       cargo run -p xtask -- cache-check TIMINGS.json [--min-warm N]");
    eprintln!("       cargo run -p xtask -- backend-audit");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("timings-diff") => timings_diff(&args[1..]),
        Some("bench-diff") => bench_diff(&args[1..]),
        Some("quality-diff") => quality_diff(&args[1..]),
        Some("cache-check") => cache_check(&args[1..]),
        Some("backend-audit") => backend_audit(),
        _ => {
            usage("known tasks: timings-diff, bench-diff, quality-diff, cache-check, backend-audit")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{
  "schema_version": 1,
  "passes": [
    {"name": "parse", "invocations": 1, "wall_us": 120, "counters": {"loops": 1}},
    {"name": "schedule:slack", "invocations": 1, "wall_us": 50000, "counters": {"ii": 4}}
  ]
}
"#;

    const CACHE_TIMINGS: &str = r#"{
  "schema_version": 1,
  "passes": [
    {"name": "depgraph", "invocations": 24, "wall_us": 900, "counters": {"arcs": 100}},
    {"name": "sched-cache", "invocations": 72, "wall_us": 3, "counters": {"hits": 5, "inserts": 67, "misses": 67, "warm_hits": 61}}
  ]
}
"#;

    #[test]
    fn pass_counters_parse_for_cache_check() {
        let get = |pass, counter| parse_pass_counter(CACHE_TIMINGS, pass, counter);
        assert_eq!(get("sched-cache", "warm_hits"), Some(61));
        assert_eq!(get("sched-cache", "hits"), Some(5));
        assert_eq!(get("sched-cache", "absent"), None);
        assert_eq!(get("sched-cache", "arcs"), None);
        assert_eq!(get("no-such-pass", "hits"), None);
    }

    #[test]
    fn parses_the_driver_timings_format() {
        let passes = parse_timings(REPORT);
        assert_eq!(
            passes,
            vec![
                PassWall {
                    name: "parse".into(),
                    wall_us: 120
                },
                PassWall {
                    name: "schedule:slack".into(),
                    wall_us: 50_000
                },
            ]
        );
    }

    #[test]
    fn flags_only_large_real_regressions() {
        let old = parse_timings(REPORT);
        // parse blew up 100x but sits under the floor; slack is 3x over.
        let new = vec![
            PassWall {
                name: "parse".into(),
                wall_us: 9_999,
            },
            PassWall {
                name: "schedule:slack".into(),
                wall_us: 150_001,
            },
        ];
        let regressions = diff(&old, &new, 2.0, 10_000);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].name, "schedule:slack");
        assert_eq!(regressions[0].old_us, 50_000);
    }

    #[test]
    fn new_passes_and_shrinkage_are_fine() {
        let old = parse_timings(REPORT);
        let new = vec![
            // Not in the old report: no baseline, no verdict.
            PassWall {
                name: "regalloc".into(),
                wall_us: 900_000,
            },
            // Faster than before.
            PassWall {
                name: "schedule:slack".into(),
                wall_us: 20_000,
            },
        ];
        assert!(diff(&old, &new, 2.0, 10_000).is_empty());
    }

    const BENCH: &str = r#"{
  "benchmark": "corpus_time",
  "corpus_size": 1525,
  "runs": [
    {"jobs": 1, "total_secs": 3.5, "per_loop_ms": {"p50": 0.0357, "p90": 1.1457, "p99": 23.3062}},
    {"jobs": 4, "total_secs": 1.2, "per_loop_ms": {"p50": 0.0348, "p90": 1.1567, "p99": 25.1881}}
  ]
}
"#;

    #[test]
    fn bench_stats_take_the_best_run() {
        assert_eq!(parse_bench_stat(BENCH, "p99"), Some(23.3062));
        assert_eq!(parse_bench_stat(BENCH, "p50"), Some(0.0348));
        assert_eq!(parse_bench_stat(BENCH, "p90"), Some(1.1457));
        assert_eq!(parse_bench_stat("{}", "p99"), None);
    }

    const QUALITY: &str = r#"{
  "schema_version": 1,
  "kind": "lsms-quality",
  "machine": "huff-cydra",
  "loops": [
    {"name": "gen_7", "backend": "slack", "pass": "schedule:slack", "rec_mii": 2, "res_mii": 3, "mii": 3, "ii": 3, "counted_ii": 3, "ii_gap": 0, "max_live": 9, "lifetime_sum": 21, "lifetime_mean": 3.00, "lifetime_max": 8, "ejected_ops": 0, "backtracks": 0, "degraded": false, "wall_us": 150},
    {"name": "gen_7", "backend": "cydrome", "pass": "schedule:cydrome", "rec_mii": 2, "res_mii": 3, "mii": 3, "ii": 4, "counted_ii": 4, "ii_gap": 1, "max_live": 11, "lifetime_sum": 25, "lifetime_mean": 3.57, "lifetime_max": 9, "ejected_ops": 2, "backtracks": 1, "degraded": false, "wall_us": 90}
  ],
  "rollup": {"loops": 1, "records": 2, "ii_sum": 7, "mii_sum": 6, "max_live_sum": 20}
}
"#;

    #[test]
    fn parses_the_driver_quality_format() {
        let records = lsms_obs::parse_quality(QUALITY);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "gen_7");
        assert_eq!(records[0].backend, "slack");
        assert_eq!(records[0].pass, "schedule:slack");
        assert_eq!(records[0].counted_ii, 3);
        assert_eq!(records[1].max_live, 11);
    }

    #[test]
    fn quality_gate_is_exact_count_with_attribution() {
        let old = lsms_obs::parse_quality(QUALITY);

        // Unchanged rerun: clean.
        let same = lsms_obs::diff_quality(&old, &old);
        assert!(!same.regressed());
        assert!(same.moved.is_empty());

        // A synthetically injected II regression of exactly one cycle on
        // one loop trips the gate and names the loop and its pass.
        let worse = QUALITY.replace(
            "\"ii\": 3, \"counted_ii\": 3",
            "\"ii\": 4, \"counted_ii\": 4",
        );
        let diff = lsms_obs::diff_quality(&old, &lsms_obs::parse_quality(&worse));
        assert!(diff.regressed());
        assert_eq!((diff.ii_sum_old, diff.ii_sum_new), (7, 8));
        assert_eq!(diff.moved.len(), 1);
        assert_eq!(diff.moved[0].name, "gen_7");
        assert_eq!(diff.moved[0].pass, "schedule:slack");
        assert!(diff.moved[0].worsened());

        // MaxLive is the second gated axis.
        let pressure = QUALITY.replace("\"max_live\": 9,", "\"max_live\": 10,");
        assert!(lsms_obs::diff_quality(&old, &lsms_obs::parse_quality(&pressure)).regressed());

        // A shrunk corpus gates over the shared records only.
        let shrunk: Vec<_> = old
            .iter()
            .filter(|r| r.backend == "slack")
            .cloned()
            .collect();
        let diff = lsms_obs::diff_quality(&old, &shrunk);
        assert!(!diff.regressed());
        assert_eq!((diff.compared, diff.only_old), (1, 1));
    }

    #[test]
    fn bench_gate_respects_ratio_and_floor() {
        let old = parse_bench_stat(BENCH, "p99").unwrap();
        // 3x over the baseline trips the 2x gate; improvement never does.
        assert!(bench_regressed(old, old * 3.0, 2.0, 1.0));
        assert!(!bench_regressed(old, old * 1.9, 2.0, 1.0));
        assert!(!bench_regressed(old, old / 2.0, 2.0, 1.0));
        // A p99 under the floor never regresses, however large the
        // ratio: sub-floor numbers are noise, not regressions. This is
        // also what keeps the p50 gate (same rule, same floor) quiet on
        // the corpus's sub-0.1 ms medians while still catching a median
        // that blows past a full millisecond.
        assert!(!bench_regressed(0.01, 0.9, 2.0, 1.0));
        let p50 = parse_bench_stat(BENCH, "p50").unwrap();
        assert!(!bench_regressed(p50, p50 * 20.0, 2.0, 1.0));
        assert!(bench_regressed(p50, 1.5, 2.0, 1.0));
    }
}
