//! `cargo xtask` — repo maintenance tasks.
//!
//! ```text
//! cargo run -p xtask -- timings-diff OLD.json NEW.json [--max-ratio R] [--floor-us N]
//! ```
//!
//! `timings-diff` is the CI perf gate: it compares two `lsmsc --timings`
//! JSON reports pass by pass and fails (exit 1) when any pass's
//! wall-clock regressed by more than `--max-ratio` (default 2.0×).
//! Passes whose new wall time is under `--floor-us` (default 10 ms) are
//! ignored — at that scale the numbers are scheduler-noise, not
//! regressions. A missing OLD file is a clean skip (exit 0), so the
//! first run of a fresh cache passes.

use std::process::ExitCode;

/// One pass's wall time out of a `lsmsc --timings` report.
#[derive(Debug, PartialEq)]
struct PassWall {
    name: String,
    wall_us: u64,
}

/// Extracts `(name, wall_us)` per pass from the timings JSON. The format
/// is the driver's own fixed emission, so a targeted scan beats a full
/// JSON parser here; unknown surroundings are ignored.
fn parse_timings(json: &str) -> Vec<PassWall> {
    let mut out = Vec::new();
    for record in json.split("{\"name\": \"").skip(1) {
        let Some(name) = record.split('"').next() else {
            continue;
        };
        let Some(wall) = record
            .split("\"wall_us\": ")
            .nth(1)
            .and_then(|r| r.split(|c: char| !c.is_ascii_digit()).next())
            .and_then(|n| n.parse().ok())
        else {
            continue;
        };
        out.push(PassWall {
            name: name.to_owned(),
            wall_us: wall,
        });
    }
    out
}

/// A pass that got slower than the gate allows.
#[derive(Debug, PartialEq)]
struct Regression {
    name: String,
    old_us: u64,
    new_us: u64,
}

/// The gate: every pass present in both reports whose new wall time
/// exceeds both `floor_us` and `max_ratio × old` is a regression.
fn diff(old: &[PassWall], new: &[PassWall], max_ratio: f64, floor_us: u64) -> Vec<Regression> {
    new.iter()
        .filter(|n| n.wall_us >= floor_us)
        .filter_map(|n| {
            let o = old.iter().find(|o| o.name == n.name)?;
            (n.wall_us as f64 > o.wall_us as f64 * max_ratio).then(|| Regression {
                name: n.name.clone(),
                old_us: o.wall_us,
                new_us: n.wall_us,
            })
        })
        .collect()
}

fn timings_diff(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut max_ratio = 2.0f64;
    let mut floor_us = 10_000u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-ratio" => match it.next().and_then(|v| v.parse().ok()) {
                Some(r) => max_ratio = r,
                None => return usage("--max-ratio needs a number"),
            },
            "--floor-us" => match it.next().and_then(|v| v.parse().ok()) {
                Some(f) => floor_us = f,
                None => return usage("--floor-us needs an integer"),
            },
            other => paths.push(other.to_owned()),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return usage("timings-diff wants exactly OLD.json and NEW.json");
    };

    let Ok(old_json) = std::fs::read_to_string(old_path) else {
        println!("timings-diff: no previous report at {old_path}; skipping (first run)");
        return ExitCode::SUCCESS;
    };
    let new_json = match std::fs::read_to_string(new_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("timings-diff: cannot read {new_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let old = parse_timings(&old_json);
    let new = parse_timings(&new_json);
    if new.is_empty() {
        eprintln!("timings-diff: {new_path} contains no passes");
        return ExitCode::FAILURE;
    }
    let regressions = diff(&old, &new, max_ratio, floor_us);
    for r in &regressions {
        eprintln!(
            "timings-diff: pass {} regressed {:.2}x ({} us -> {} us, gate {max_ratio}x)",
            r.name,
            r.new_us as f64 / (r.old_us.max(1)) as f64,
            r.old_us,
            r.new_us
        );
    }
    if regressions.is_empty() {
        println!(
            "timings-diff: {} passes compared, none above {max_ratio}x (floor {floor_us} us)",
            new.len()
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("xtask: {message}");
    eprintln!("usage: cargo run -p xtask -- timings-diff OLD.json NEW.json [--max-ratio R] [--floor-us N]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("timings-diff") => timings_diff(&args[1..]),
        _ => usage("known tasks: timings-diff"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{
  "passes": [
    {"name": "parse", "invocations": 1, "wall_us": 120, "counters": {"loops": 1}},
    {"name": "schedule:slack", "invocations": 1, "wall_us": 50000, "counters": {"ii": 4}}
  ]
}
"#;

    #[test]
    fn parses_the_driver_timings_format() {
        let passes = parse_timings(REPORT);
        assert_eq!(
            passes,
            vec![
                PassWall {
                    name: "parse".into(),
                    wall_us: 120
                },
                PassWall {
                    name: "schedule:slack".into(),
                    wall_us: 50_000
                },
            ]
        );
    }

    #[test]
    fn flags_only_large_real_regressions() {
        let old = parse_timings(REPORT);
        // parse blew up 100x but sits under the floor; slack is 3x over.
        let new = vec![
            PassWall {
                name: "parse".into(),
                wall_us: 9_999,
            },
            PassWall {
                name: "schedule:slack".into(),
                wall_us: 150_001,
            },
        ];
        let regressions = diff(&old, &new, 2.0, 10_000);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].name, "schedule:slack");
        assert_eq!(regressions[0].old_us, 50_000);
    }

    #[test]
    fn new_passes_and_shrinkage_are_fine() {
        let old = parse_timings(REPORT);
        let new = vec![
            // Not in the old report: no baseline, no verdict.
            PassWall {
                name: "regalloc".into(),
                wall_us: 900_000,
            },
            // Faster than before.
            PassWall {
                name: "schedule:slack".into(),
                wall_us: 20_000,
            },
        ];
        assert!(diff(&old, &new, 2.0, 10_000).is_empty());
    }
}
