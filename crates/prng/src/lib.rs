//! A small, vendored, deterministic PRNG.
//!
//! The workspace must build with no external crates (the evaluation runs
//! in hermetic environments with no registry access), so this crate
//! replaces the `rand` dependency with a self-contained xoshiro256++
//! generator seeded through SplitMix64 — the same construction `rand`'s
//! `SmallRng` has used on 64-bit targets, reimplemented from the public
//! reference algorithms.
//!
//! The API mirrors the subset of `rand` the workspace consumes
//! ([`SmallRng::seed_from_u64`], [`SmallRng::gen_range`],
//! [`SmallRng::gen_ratio`], [`SmallRng::gen_bool`]) so call sites read
//! identically. Streams are stable: the exact output sequence for a given
//! seed is part of this crate's contract (the benchmark corpus and every
//! seeded test depend on it) and is pinned by unit tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A deterministic xoshiro256++ generator.
///
/// Not cryptographically secure; statistically excellent for synthetic
/// workload generation and randomized testing.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Seeds the generator by expanding `seed` through SplitMix64, the
    /// initialization recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `range`, which may be half-open (`a..b`) or
    /// inclusive (`a..=b`) over any primitive integer type.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// True with probability `num / den`, using one uniform draw.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero or `num > den`.
    pub fn gen_ratio(&mut self, num: u32, den: u32) -> bool {
        assert!(
            den > 0 && num <= den,
            "gen_ratio({num}, {den}) is not a probability"
        );
        (u64::from(self.next_u32()) * u64::from(den)) >> 32 < u64::from(num)
    }

    /// True with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool({p}) is not a probability"
        );
        // 53 random bits against the probability scaled to the same grid.
        let scaled = (p * (1u64 << 53) as f64) as u64;
        (self.next_u64() >> 11) < scaled
    }
}

/// Ranges [`SmallRng::gen_range`] accepts.
pub trait UniformRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

/// Debiased uniform draw in `[0, span)` via Lemire's multiply-shift with
/// rejection.
fn uniform_below(rng: &mut SmallRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Zone: the largest multiple of `span` not exceeding 2^64.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let hi = ((u128::from(v) * u128::from(span)) >> 64) as u64;
        if v <= zone {
            return hi;
        }
    }
}

macro_rules! impl_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl UniformRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_pinned() {
        // The exact sequence is a compatibility contract: the corpus
        // generator and the seeded tests depend on it never changing.
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 5987356902031041503);
        assert_eq!(rng.next_u64(), 7051070477665621255);
        assert_eq!(rng.next_u64(), 6633766593972829180);
        let mut rng = SmallRng::seed_from_u64(1993);
        let first = rng.next_u64();
        let mut again = SmallRng::seed_from_u64(1993);
        assert_eq!(first, again.next_u64());
        assert_ne!(SmallRng::seed_from_u64(2).next_u64(), first);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let a = rng.gen_range(0..5u32);
            assert!(a < 5);
            let b = rng.gen_range(-200..200i32);
            assert!((-200..200).contains(&b));
            let c = rng.gen_range(3..=6usize);
            assert!((3..=6).contains(&c));
            let d = rng.gen_range(1..9i64);
            assert!((1..9).contains(&d));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_ratio_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!(
            (23_000..27_000).contains(&hits),
            "1/4 ratio hit {hits}/100000"
        );
        assert!((0..1000).all(|_| rng.gen_ratio(1, 1)));
        assert!(!(0..1000).any(|_| rng.gen_ratio(0, 7)));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.55)).count();
        assert!((53_000..57_000).contains(&hits), "p=0.55 hit {hits}/100000");
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = SmallRng::seed_from_u64(0).gen_range(5..5u32);
    }
}
