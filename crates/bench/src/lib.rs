//! Experiment engine for reproducing the paper's evaluation (§6–§7).
//!
//! Every table and figure has a binary in `src/bin/` that prints the
//! paper-style rows; this library does the shared work: run the corpus
//! through the three schedulers (bidirectional slack, unidirectional
//! slack, Cydrome-style baseline), collect per-loop [`LoopRecord`]s, and
//! provide percentile/histogram formatting.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table 1 (machine description) |
//! | `table2` | Table 2 (corpus complexity percentiles) |
//! | `table3` | Table 3 (slack-scheduler II performance by class) |
//! | `table4` | Table 4 (baseline II performance by class) |
//! | `fig5`   | Figure 5 (MaxLive − MinAvg distribution, all schedulers) |
//! | `fig6`   | Figure 6 (MaxLive distribution) |
//! | `fig7`   | Figure 7 (GPRs and GPRs + MaxLive) |
//! | `fig8`   | Figure 8 (ICR predicate usage) |
//! | `compile_time` | §6 (backtracking and work counters) |
//! | `heuristic_stats` | §4.3/§5.2 decision percentages |
//! | `robustness` | §7 (alternative machine latencies) |
//! | `allocation` | §3.2 footnote 4 (registers vs MaxLive) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lsms_front::CompiledLoop;
use lsms_ir::LoopClass;
use lsms_machine::Machine;
use lsms_pipeline::{CompileSession, LsmsError};
use lsms_sched::{bounds, DecisionStats};

pub use lsms_pipeline::SchedOutcome;

/// Everything the experiments need about one loop.
#[derive(Clone, Debug)]
pub struct LoopRecord {
    /// Loop name.
    pub name: String,
    /// Table 3/4 class.
    pub class: LoopClass,
    /// Operation count (including `brtop`).
    pub num_ops: usize,
    /// Basic blocks before if-conversion.
    pub basic_blocks: u32,
    /// Operations on critical resources at MII.
    pub critical_ops: usize,
    /// Operations on non-trivial recurrence circuits.
    pub ops_on_recurrences: usize,
    /// Divider operations (div/mod/sqrt).
    pub div_ops: usize,
    /// The §3.1 bounds.
    pub rec_mii: u32,
    /// Resource bound.
    pub res_mii: u32,
    /// `max(ResMII, RecMII)`.
    pub mii: u32,
    /// Schedule-independent `MinAvg` at MII.
    pub min_avg_at_mii: u32,
    /// GPR (loop-invariant) count.
    pub gprs: u32,
    /// Bidirectional slack scheduler ("New Scheduler").
    pub new: SchedOutcome,
    /// Unidirectional (always-early) slack ablation.
    pub early: SchedOutcome,
    /// Cydrome-style baseline ("Old Scheduler").
    pub old: SchedOutcome,
    /// §5.2 decision tallies from the bidirectional run.
    pub decisions: DecisionStats,
}

impl LoopRecord {
    /// Evaluates one compiled loop through a [`CompileSession`]: the
    /// session runs the three schedulers over one shared `MinDistCache`
    /// (each distinct II this loop visits costs exactly one
    /// Floyd–Warshall) and this crate adds the corpus bookkeeping.
    ///
    /// A malformed loop (invalid body, zero-ω circuit) comes back as an
    /// [`LsmsError`] instead of panicking, so one bad generated loop
    /// degrades to a recorded failure rather than aborting a corpus run.
    pub fn try_evaluate(
        session: &CompileSession,
        compiled: &CompiledLoop,
    ) -> Result<Self, LsmsError> {
        Self::try_evaluate_impl(session, compiled, false)
    }

    /// As [`try_evaluate`](Self::try_evaluate), but running the three
    /// scheduler fan-out (bidirectional, always-early, baseline) on
    /// scoped threads. Useful when evaluating few loops on many cores;
    /// the produced record is identical to the sequential one.
    pub fn try_evaluate_fanout(
        session: &CompileSession,
        compiled: &CompiledLoop,
    ) -> Result<Self, LsmsError> {
        Self::try_evaluate_impl(session, compiled, true)
    }

    /// Convenience wrapper over [`try_evaluate`](Self::try_evaluate) for
    /// known-good loops (panics on malformed input).
    pub fn evaluate(compiled: &CompiledLoop, machine: &Machine) -> Self {
        let session = CompileSession::with_machine(machine.clone());
        Self::try_evaluate(&session, compiled)
            .unwrap_or_else(|e| panic!("{}: {e}", compiled.def.name))
    }

    /// Convenience wrapper over
    /// [`try_evaluate_fanout`](Self::try_evaluate_fanout) for known-good
    /// loops (panics on malformed input).
    pub fn evaluate_fanout(compiled: &CompiledLoop, machine: &Machine) -> Self {
        let session = CompileSession::with_machine(machine.clone());
        Self::try_evaluate_fanout(&session, compiled)
            .unwrap_or_else(|e| panic!("{}: {e}", compiled.def.name))
    }

    /// The observatory's view of this loop: one
    /// [`ScheduleQuality`](lsms_obs::ScheduleQuality) record per
    /// scheduler in the evaluation trio, in the paper's new/early/old
    /// order. Wall time is the only nondeterministic field; everything
    /// else is a pure function of the (deterministic) evaluation.
    pub fn quality_records(&self) -> [lsms_obs::ScheduleQuality; 3] {
        let mk = |backend: &str, outcome: &SchedOutcome| {
            lsms_pipeline::quality_of(
                &self.name,
                backend,
                &format!("schedule:{backend}"),
                self.rec_mii,
                self.res_mii,
                self.mii,
                outcome,
            )
        };
        [
            mk("slack", &self.new),
            mk("early", &self.early),
            mk("cydrome", &self.old),
        ]
    }

    fn try_evaluate_impl(
        session: &CompileSession,
        compiled: &CompiledLoop,
        fan_out: bool,
    ) -> Result<Self, LsmsError> {
        let eval = session.evaluate_variants(compiled, fan_out)?;
        let machine = &session.config().machine;
        let body = &compiled.body;
        Ok(LoopRecord {
            name: compiled.def.name.clone(),
            class: body.class(),
            num_ops: body.num_ops(),
            basic_blocks: body.meta().basic_blocks,
            critical_ops: bounds::critical_ops(machine, body, eval.mii),
            ops_on_recurrences: bounds::ops_on_recurrences(body),
            div_ops: body.num_divider_ops(),
            rec_mii: eval.rec_mii,
            res_mii: eval.res_mii,
            mii: eval.mii,
            min_avg_at_mii: eval.min_avg_at_mii,
            gprs: eval.gprs,
            new: eval.new,
            early: eval.early,
            old: eval.old,
            decisions: eval.decisions,
        })
    }
}

/// One loop the corpus evaluation could not process (its diagnostic is
/// kept; the run continues).
#[derive(Clone, Debug)]
pub struct CorpusFailure {
    /// Position in the input loop list.
    pub index: usize,
    /// Loop name.
    pub name: String,
    /// What went wrong.
    pub error: LsmsError,
}

/// The outcome of evaluating a loop list: the successful records, in
/// input order, plus any per-loop failures.
#[derive(Clone, Debug, Default)]
pub struct CorpusReport {
    /// Successfully evaluated loops, in input order.
    pub records: Vec<LoopRecord>,
    /// Loops that failed a pipeline stage, in input order.
    pub failures: Vec<CorpusFailure>,
    /// Total worker idle time (µs) spent waiting for the slowest worker
    /// to finish — the parallel run's straggler tax. Always 0 on the
    /// sequential path. Purely informational: records are identical
    /// whatever this reports.
    pub straggler_idle_us: u64,
}

impl CorpusReport {
    /// Prints one stderr warning per failed loop (no-op when none failed).
    pub fn warn_failures(&self) {
        for f in &self.failures {
            eprintln!("warning: loop {} (#{}): {}", f.name, f.index, f.error);
        }
    }

    /// Flattens every record's trio into the observatory's corpus-wide
    /// record list, in corpus order (so the list is byte-stable across
    /// `--jobs` counts, like the records themselves).
    pub fn quality_records(&self) -> Vec<lsms_obs::ScheduleQuality> {
        self.records
            .iter()
            .flat_map(LoopRecord::quality_records)
            .collect()
    }
}

/// Evaluates the standard corpus (kernels + generated) through a
/// session, using [`default_jobs`] worker threads. Records come back in
/// corpus order regardless of thread count, so the output of every
/// experiment binary is byte-identical to a single-threaded run.
pub fn evaluate_corpus_session(
    session: &CompileSession,
    count: usize,
    seed: u64,
    jobs: usize,
) -> CorpusReport {
    let loops = lsms_loops::corpus(count, seed);
    evaluate_loops_session(session, &loops, jobs)
}

/// Evaluates an already-built loop list through a session on `jobs`
/// worker threads, preserving input order in the output.
///
/// The parallel path dispatches loops in descending expected-cost order
/// (longest-processing-time-first over [`CompileSession::corpus_cost_hint`]),
/// so the expensive tail of the corpus starts early instead of landing
/// on one straggling worker at the end of the run. Dispatch order only
/// affects wall clock: results are reassembled by input index, so every
/// downstream report is byte-identical to a sequential run.
pub fn evaluate_loops_session(
    session: &CompileSession,
    loops: &[CompiledLoop],
    jobs: usize,
) -> CorpusReport {
    let jobs = jobs.max(1).min(loops.len().max(1));
    // Each loop's evaluation gets a span so corpus traces show one B/E
    // pair per loop per worker thread; the index arg links it back to
    // the corpus order.
    let eval_one = |i: usize| {
        let _span = lsms_trace::span_with("corpus.loop", &[("index", i as i64)]);
        LoopRecord::try_evaluate(session, &loops[i])
    };
    let mut straggler_idle_us = 0u64;
    let results: Vec<Result<LoopRecord, LsmsError>> = if jobs == 1 {
        (0..loops.len()).map(eval_one).collect()
    } else {
        // Work-stealing by atomic counter over the cost-sorted order;
        // results are reassembled by index so the order (and thus every
        // downstream text report) is deterministic.
        let order = tail_aware_order(session, loops);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let (tx, rx) = std::sync::mpsc::channel::<(usize, Result<LoopRecord, LsmsError>)>();
        std::thread::scope(|s| {
            let workers: Vec<_> = (0..jobs)
                .map(|_| {
                    let tx = tx.clone();
                    let next = &next;
                    let eval_one = &eval_one;
                    let order = &order;
                    s.spawn(move || {
                        loop {
                            let slot = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(&i) = order.get(slot) else { break };
                            let result = eval_one(i);
                            if tx.send((i, result)).is_err() {
                                break;
                            }
                        }
                        std::time::Instant::now()
                    })
                })
                .collect();
            drop(tx);
            let mut slots: Vec<Option<Result<LoopRecord, LsmsError>>> =
                (0..loops.len()).map(|_| None).collect();
            for (i, result) in rx {
                slots[i] = Some(result);
            }
            let finishes: Vec<std::time::Instant> = workers
                .into_iter()
                .map(|w| w.join().expect("corpus worker panicked"))
                .collect();
            if let Some(&last) = finishes.iter().max() {
                straggler_idle_us = finishes
                    .iter()
                    .map(|&f| last.duration_since(f).as_micros() as u64)
                    .sum();
            }
            slots
                .into_iter()
                .map(|r| r.expect("every corpus index evaluated"))
                .collect()
        })
    };
    let mut report = CorpusReport {
        straggler_idle_us,
        ..CorpusReport::default()
    };
    for (index, result) in results.into_iter().enumerate() {
        match result {
            Ok(record) => report.records.push(record),
            Err(error) => report.failures.push(CorpusFailure {
                index,
                name: loops[index].def.name.clone(),
                error,
            }),
        }
    }
    report
}

/// Largest-expected-cost-first dispatch order for a parallel corpus run.
/// Ties (and ledger-less runs over uniform loops) fall back to input
/// order, keeping dispatch deterministic.
fn tail_aware_order(session: &CompileSession, loops: &[CompiledLoop]) -> Vec<usize> {
    let costs: Vec<u64> = loops.iter().map(|l| session.corpus_cost_hint(l)).collect();
    let mut order: Vec<usize> = (0..loops.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
    order
}

/// Evaluates the standard corpus on a machine with [`default_jobs`]
/// worker threads (an ephemeral-session convenience over
/// [`evaluate_corpus_session`]; failures are warned to stderr).
pub fn evaluate_corpus(count: usize, seed: u64, machine: &Machine) -> Vec<LoopRecord> {
    evaluate_corpus_jobs(count, seed, machine, default_jobs())
}

/// As [`evaluate_corpus`] with an explicit worker-thread count (1 forces
/// the sequential path).
pub fn evaluate_corpus_jobs(
    count: usize,
    seed: u64,
    machine: &Machine,
    jobs: usize,
) -> Vec<LoopRecord> {
    let session = CompileSession::with_machine(machine.clone());
    let report = evaluate_corpus_session(&session, count, seed, jobs);
    report.warn_failures();
    report.records
}

/// Evaluates an already-built loop list on `jobs` worker threads through
/// an ephemeral session, preserving input order in the output.
pub fn evaluate_loops(loops: &[CompiledLoop], machine: &Machine, jobs: usize) -> Vec<LoopRecord> {
    let session = CompileSession::with_machine(machine.clone());
    let report = evaluate_loops_session(&session, loops, jobs);
    report.warn_failures();
    report.records
}

/// The corpus size used by the experiment binaries: the paper's 1,525.
pub fn default_corpus_size() -> usize {
    std::env::var("LSMS_CORPUS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(lsms_loops::PAPER_CORPUS_SIZE)
}

/// Worker threads used by [`evaluate_corpus`]: the `LSMS_JOBS` environment
/// variable when set, else the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::env::var("LSMS_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&j| j >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// Common command-line options of the experiment binaries.
///
/// `--corpus-size N` (env `LSMS_CORPUS`) sets the number of loops;
/// `--jobs N` (env `LSMS_JOBS`) sets the worker-thread count. Flags win
/// over environment variables.
#[derive(Clone, Copy, Debug)]
pub struct BenchArgs {
    /// Number of corpus loops to evaluate.
    pub corpus_size: usize,
    /// Worker threads for corpus evaluation.
    pub jobs: usize,
}

impl BenchArgs {
    /// Parses `std::env::args`, printing the usage line and exiting with
    /// code 2 (the usage-error convention shared with `lsmsc`) on
    /// malformed input.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1)).unwrap_or_else(|message| {
            eprintln!("error: {message}");
            eprintln!("usage: [--corpus-size N] [--jobs N]");
            std::process::exit(2);
        })
    }

    /// Parses an explicit argument list; malformed input comes back as a
    /// usage-error message instead of a panic.
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Self {
            corpus_size: default_corpus_size(),
            jobs: default_jobs(),
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value_for = |flag: &str| -> Result<usize, String> {
                it.next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("{flag} needs a positive integer"))
            };
            match arg.as_str() {
                "--corpus-size" => out.corpus_size = value_for("--corpus-size")?,
                "--jobs" => out.jobs = value_for("--jobs")?.max(1),
                other => {
                    return Err(format!(
                        "unknown option `{other}` (expected --corpus-size N / --jobs N)"
                    ))
                }
            }
        }
        Ok(out)
    }
}

/// The corpus seed used by the experiment binaries.
pub const CORPUS_SEED: u64 = 1993;

/// min / median / 90th percentile / max of a sample (Table 2/3/4 style).
pub fn percentiles(values: &mut [u64]) -> (u64, u64, u64, u64) {
    assert!(!values.is_empty(), "percentiles of an empty sample");
    values.sort_unstable();
    let n = values.len();
    (
        values[0],
        values[n / 2],
        values[(n * 9 / 10).min(n - 1)],
        values[n - 1],
    )
}

/// Formats one Table 2 row.
pub fn stat_row(label: &str, values: &mut [u64]) -> String {
    let (min, p50, p90, max) = percentiles(values);
    format!("{label:<24} {min:>6} {p50:>6} {p90:>6} {max:>6}")
}

/// A cumulative-percentage histogram over register counts, the textual
/// analogue of the paper's Figures 5–8.
pub fn cumulative_histogram(title: &str, series: &[(&str, Vec<i64>)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let lo = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .min()
        .unwrap_or(0)
        .min(0);
    let hi = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .max()
        .unwrap_or(0);
    let _ = write!(out, "{:>10} ", "registers");
    for (name, _) in series {
        let _ = write!(out, "{name:>18}");
    }
    let _ = writeln!(out);
    // Bucket boundaries: fine near zero, coarser beyond.
    let mut edges: Vec<i64> = (lo..=8).collect();
    let mut e = 10;
    while e <= hi.max(8) + 2 {
        edges.push(e);
        e += if e < 32 {
            2
        } else if e < 64 {
            8
        } else {
            32
        };
    }
    for &edge in &edges {
        let _ = write!(out, "{edge:>10} ");
        for (_, values) in series {
            let within = values.iter().filter(|&&v| v <= edge).count();
            let pct = 100.0 * within as f64 / values.len().max(1) as f64;
            let _ = write!(out, "{pct:>17.1}%");
        }
        let _ = writeln!(out);
        if series.iter().all(|(_, v)| v.iter().all(|&x| x <= edge)) {
            break;
        }
    }
    out
}

/// The dense-vs-sparse bounds-propagation A/B over the corpus's
/// ejection-heavy loops (the `bounds_sweep` microbench; see DESIGN.md
/// "Engine complexity").
#[derive(Clone, Debug, Default)]
pub struct BoundsSweepReport {
    /// Loops drawn from the corpus.
    pub corpus_size: usize,
    /// Loops whose dependence graph built into a scheduling problem.
    pub probed: usize,
    /// Ejection-heavy subset actually timed (`ejected_ops > 0` on the
    /// probe run — the loops where `recompute_bounds` and the forcing
    /// sweep, the O(n²)-per-ejection terms, run at all).
    pub kept: usize,
    /// Total operations ejected across the kept loops.
    pub ejections: u64,
    /// Wall-clock for the kept loops under the dense reference.
    pub dense_ms: f64,
    /// Wall-clock for the kept loops under the sparse (default) path.
    pub sparse_ms: f64,
    /// `MinDist` cells probed by dense bounds propagation.
    pub dense_cells: u64,
    /// Reachability-list entries read by sparse bounds propagation.
    pub sparse_cells: u64,
}

impl BoundsSweepReport {
    /// The JSON object embedded in `BENCH_corpus.json` and written by the
    /// `bounds_sweep` binary.
    pub fn json(&self) -> String {
        format!(
            "{{\"corpus_size\":{},\"probed\":{},\"kept\":{},\"ejections\":{},\
             \"dense_ms\":{:.4},\"sparse_ms\":{:.4},\"dense_cells\":{},\"sparse_cells\":{}}}",
            self.corpus_size,
            self.probed,
            self.kept,
            self.ejections,
            self.dense_ms,
            self.sparse_ms,
            self.dense_cells,
            self.sparse_cells,
        )
    }

    /// Human-readable summary lines.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bounds_sweep: {} corpus loops, {} schedulable, {} ejection-heavy ({} ejections)",
            self.corpus_size, self.probed, self.kept, self.ejections
        );
        let _ = writeln!(
            out,
            "  dense reference: {:>9.3} ms  ({} MinDist cells probed)",
            self.dense_ms, self.dense_cells
        );
        let _ = writeln!(
            out,
            "  sparse (default):{:>9.3} ms  ({} reachability entries read)",
            self.sparse_ms, self.sparse_cells
        );
        if self.sparse_ms > 0.0 && self.sparse_cells > 0 {
            let _ = writeln!(
                out,
                "  speedup {:.2}x, cells ratio {:.2}x",
                self.dense_ms / self.sparse_ms,
                self.dense_cells as f64 / self.sparse_cells as f64
            );
        }
        out
    }
}

/// Times dense-reference vs sparse bounds propagation over the corpus's
/// ejection-heavy loops, asserting the schedules are identical. Each arm
/// recycles one mode-pinned [`lsms_sched::EngineWorkspace`] across loops
/// and pays for a fresh `MinDistCache` per loop, so the arms differ only
/// in [`lsms_sched::BoundsMode`].
pub fn bounds_sweep(count: usize, seed: u64) -> BoundsSweepReport {
    use lsms_sched::{BoundsMode, EngineWorkspace, MinDistCache, SchedProblem, SlackScheduler};
    use std::time::Instant;

    let machine = lsms_machine::huff_machine();
    let scheduler = SlackScheduler::new();
    let loops = lsms_loops::corpus(count, seed);
    let mut report = BoundsSweepReport {
        corpus_size: loops.len(),
        ..BoundsSweepReport::default()
    };

    // Probe pass (sparse, untimed): find the loops where the ejection
    // machinery actually runs.
    let mut probe_ws = EngineWorkspace::new();
    let mut kept: Vec<&lsms_front::CompiledLoop> = Vec::new();
    for l in &loops {
        let Ok(problem) = SchedProblem::new(&l.body, &machine) else {
            continue;
        };
        report.probed += 1;
        let (result, _) = scheduler.run_in(&problem, &MinDistCache::new(), None, &mut probe_ws);
        if let Ok(s) = result {
            if s.stats.ejected_ops > 0 {
                report.ejections += s.stats.ejected_ops;
                kept.push(l);
            }
        }
    }
    report.kept = kept.len();

    // Timed arms. Dense first so the sparse arm cannot borrow its warmed
    // caches unfairly — both arms still re-lower and re-schedule from
    // scratch per loop.
    let run_arm = |mode: BoundsMode| -> (f64, u64, Vec<(u32, Vec<i64>)>) {
        let mut ws = EngineWorkspace::new();
        ws.set_bounds_mode(mode);
        let mut cells = 0u64;
        let mut schedules = Vec::with_capacity(kept.len());
        let started = Instant::now();
        for l in &kept {
            let problem = SchedProblem::new(&l.body, &machine).expect("probed already");
            let (result, _) = scheduler.run_in(&problem, &MinDistCache::new(), None, &mut ws);
            let s = result.expect("probed loop schedules");
            cells += s.stats.bounds_cells_touched;
            schedules.push((s.ii, s.times));
        }
        let elapsed = started.elapsed().as_secs_f64() * 1e3;
        (elapsed, cells, schedules)
    };
    let (dense_ms, dense_cells, dense_schedules) = run_arm(BoundsMode::DenseReference);
    let (sparse_ms, sparse_cells, sparse_schedules) = run_arm(BoundsMode::Sparse);
    assert_eq!(
        dense_schedules, sparse_schedules,
        "sparse bounds propagation changed a schedule"
    );
    report.dense_ms = dense_ms;
    report.sparse_ms = sparse_ms;
    report.dense_cells = dense_cells;
    report.sparse_cells = sparse_cells;
    report
}

/// Sums II over records using achieved-or-last-attempted (Table 4's
/// failure convention).
pub fn class_line(
    label: &str,
    records: &[&LoopRecord],
    pick: impl Fn(&LoopRecord) -> &SchedOutcome,
) -> String {
    let all = records.len();
    let optimal = records.iter().filter(|r| pick(r).ii == Some(r.mii)).count();
    let sum_ii: u64 = records.iter().map(|r| pick(r).counted_ii()).sum();
    let sum_mii: u64 = records.iter().map(|r| u64::from(r.mii)).sum();
    let pct = 100.0 * optimal as f64 / all.max(1) as f64;
    let ratio = sum_ii as f64 / sum_mii.max(1) as f64;
    format!("{label:<18} {optimal:>5} {all:>5} {pct:>5.1}% {sum_ii:>8} {sum_mii:>8} {ratio:>6.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_machine::huff_machine;

    #[test]
    fn percentile_math() {
        let mut v = vec![5, 1, 9, 3, 7];
        assert_eq!(percentiles(&mut v), (1, 5, 9, 9));
        let mut v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentiles(&mut v), (1, 51, 91, 100));
    }

    #[test]
    fn record_evaluation_is_consistent() {
        let machine = huff_machine();
        let records = evaluate_corpus(30, 5, &machine);
        assert_eq!(records.len(), 30);
        for r in &records {
            assert!(r.mii >= 1);
            assert_eq!(r.mii, r.res_mii.max(r.rec_mii));
            if let Some(ii) = r.new.ii {
                assert!(ii >= r.mii, "{}: II {ii} < MII {}", r.name, r.mii);
            }
            if let (Some(a), Some(b)) = (r.new.ii, r.old.ii) {
                // The baseline never beats the bidirectional scheduler's
                // time on this corpus by construction of the heuristics —
                // but equality is common.
                assert!(b >= r.mii && a >= r.mii);
            }
        }
        // Most loops schedule optimally (the paper reports 96%).
        let optimal = records.iter().filter(|r| r.new.ii == Some(r.mii)).count();
        assert!(
            optimal * 10 >= records.len() * 8,
            "{optimal}/{}",
            records.len()
        );
    }

    /// Everything observable about an outcome except wall-clock time.
    fn outcome_key(o: &SchedOutcome) -> impl PartialEq + std::fmt::Debug {
        (
            o.ii,
            o.last_ii,
            o.pressure.clone(),
            o.stats.central_iterations,
            o.stats.ejected_ops,
            o.stats.attempts,
        )
    }

    fn assert_records_identical(a: &[LoopRecord], b: &[LoopRecord]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.mii, y.mii, "{}", x.name);
            assert_eq!(x.min_avg_at_mii, y.min_avg_at_mii, "{}", x.name);
            assert_eq!(x.decisions, y.decisions, "{}", x.name);
            for (xo, yo) in [(&x.new, &y.new), (&x.early, &y.early), (&x.old, &y.old)] {
                assert_eq!(outcome_key(xo), outcome_key(yo), "{}", x.name);
            }
        }
    }

    #[test]
    fn parallel_corpus_evaluation_matches_sequential() {
        let machine = huff_machine();
        let sequential = evaluate_corpus_jobs(24, CORPUS_SEED, &machine, 1);
        let parallel = evaluate_corpus_jobs(24, CORPUS_SEED, &machine, 4);
        assert_records_identical(&sequential, &parallel);
    }

    #[test]
    fn fanout_evaluation_matches_sequential() {
        let machine = huff_machine();
        let loops = lsms_loops::corpus(6, CORPUS_SEED);
        for l in &loops {
            let a = LoopRecord::evaluate(l, &machine);
            let b = LoopRecord::evaluate_fanout(l, &machine);
            assert_records_identical(std::slice::from_ref(&a), std::slice::from_ref(&b));
        }
    }

    #[test]
    fn bench_args_parse_flags() {
        let args = BenchArgs::from_args(["--corpus-size", "40", "--jobs", "3"].map(String::from))
            .expect("parses");
        assert_eq!(args.corpus_size, 40);
        assert_eq!(args.jobs, 3);
    }

    #[test]
    fn bench_args_reject_malformed_input_as_usage_errors() {
        let err = BenchArgs::from_args(["--frobnicate"].map(String::from)).unwrap_err();
        assert!(err.contains("unknown option `--frobnicate`"), "{err}");
        let err = BenchArgs::from_args(["--jobs"].map(String::from)).unwrap_err();
        assert!(err.contains("--jobs needs a positive integer"), "{err}");
        let err = BenchArgs::from_args(["--corpus-size", "many"].map(String::from)).unwrap_err();
        assert!(err.contains("--corpus-size"), "{err}");
    }

    /// The tail-aware dispatch order is a pure scheduling hint: a
    /// parallel run must stay byte-identical to a sequential one, and
    /// the order itself must be deterministic, largest-first.
    #[test]
    fn tail_aware_order_is_deterministic_and_cost_sorted() {
        let session = CompileSession::with_machine(huff_machine());
        let loops = lsms_loops::corpus(12, CORPUS_SEED);
        let order = tail_aware_order(&session, &loops);
        assert_eq!(order.len(), loops.len());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..loops.len()).collect::<Vec<_>>());
        assert_eq!(order, tail_aware_order(&session, &loops));
        let costs: Vec<u64> = loops.iter().map(|l| session.corpus_cost_hint(l)).collect();
        for pair in order.windows(2) {
            assert!(costs[pair[0]] >= costs[pair[1]]);
        }
    }

    #[test]
    fn histograms_render() {
        let h = cumulative_histogram("test", &[("a", vec![0, 1, 5, 9]), ("b", vec![2, 2, 3, 40])]);
        assert!(h.contains("registers"));
        assert!(h.contains("100.0%"));
    }

    /// A malformed loop (zero-ω dependence circuit) must degrade to a
    /// recorded [`CorpusFailure`], not a panic, and must not disturb the
    /// records of its healthy neighbours.
    #[test]
    fn malformed_loop_degrades_to_recorded_failure() {
        use lsms_ir::{LoopBuilder, OpKind, ValueType};
        use lsms_pipeline::Stage;

        let session = CompileSession::with_machine(huff_machine());
        let mut loops = lsms_loops::corpus(3, CORPUS_SEED);

        // Replace the middle loop's body with a zero-ω circuit, which
        // the dependence-graph pass rejects as unschedulable.
        let mut b = LoopBuilder::new("zero_omega");
        let x = b.new_value(ValueType::Float);
        let y = b.new_value(ValueType::Float);
        let o1 = b.op(OpKind::FAdd, &[y, y], Some(x));
        let o2 = b.op(OpKind::FMul, &[x, x], Some(y));
        b.flow_dep(o1, o2, 0);
        b.flow_dep(o2, o1, 0);
        loops[1].body = b.finish();

        let report = evaluate_loops_session(&session, &loops, 1);
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.failures.len(), 1);
        let failure = &report.failures[0];
        assert_eq!(failure.index, 1);
        assert_eq!(failure.error.stage, Stage::DepGraph);
        assert_eq!(failure.error.code, "E0402");

        // The surviving records match a run over the healthy loops alone.
        let healthy = [loops[0].clone(), loops[2].clone()];
        let clean = evaluate_loops_session(&session, &healthy, 1);
        assert_records_identical(&report.records, &clean.records);
    }
}
