//! §2.3's hardware trade-off, quantified: rotating register files vs
//! modulo variable expansion.
//!
//! "In the absence of hardware support, the loop may be unrolled and the
//! duplicate register specifiers renamed appropriately \[9\]. However, this
//! modulo variable expansion technique can result in a large amount of
//! code expansion \[18\]. A rotating register file can solve this problem
//! without duplicating code."

use lsms_codegen::{emit, emit_mve};
use lsms_ir::RegClass;
use lsms_machine::huff_machine;
use lsms_regalloc::{allocate_rotating, Strategy};
use lsms_sched::{SchedProblem, SlackScheduler};

fn main() {
    let count = std::env::var("LSMS_CORPUS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let machine = huff_machine();
    let corpus = lsms_loops::corpus(count, lsms_bench::CORPUS_SEED);
    let mut scheduled = 0usize;
    let mut rot_insts = 0u64;
    let mut mve_insts = 0u64;
    let mut rot_regs = 0u64;
    let mut mve_regs = 0u64;
    let mut unrolls: Vec<u32> = Vec::new();
    for l in &corpus {
        let Ok(problem) = SchedProblem::new(&l.body, &machine) else {
            continue;
        };
        let Ok(schedule) = SlackScheduler::new().run(&problem) else {
            continue;
        };
        let Ok(rr) = allocate_rotating(&problem, &schedule, RegClass::Rr, Strategy::default())
        else {
            continue;
        };
        let Ok(icr) = allocate_rotating(&problem, &schedule, RegClass::Icr, Strategy::default())
        else {
            continue;
        };
        let Ok(rot) = emit(&problem, &schedule, &rr, &icr) else {
            continue;
        };
        let Ok(mve) = emit_mve(&problem, &schedule) else {
            continue;
        };
        scheduled += 1;
        rot_insts += rot.num_insts() as u64 + 1; // + brtop
        mve_insts += mve.total_insts() as u64 + 1;
        rot_regs += u64::from(rot.rr_size);
        mve_regs += u64::from(mve.num_regs);
        unrolls.push(mve.unroll);
    }
    unrolls.sort_unstable();
    let median_unroll = unrolls.get(unrolls.len() / 2).copied().unwrap_or(0);
    let max_unroll = unrolls.last().copied().unwrap_or(0);
    println!("Rotating files vs modulo variable expansion over {scheduled} loops:");
    println!("{:<26} {:>14} {:>14}", "", "rotating", "MVE (no rotation)");
    println!(
        "{:<26} {rot_insts:>14} {mve_insts:>14}",
        "static instructions"
    );
    println!(
        "{:<26} {rot_regs:>14} {mve_regs:>14}",
        "loop-variant registers"
    );
    println!(
        "\ncode expansion: {:.2}x (median unroll x{median_unroll}, max x{max_unroll}); \
         register cost: {:.2}x",
        mve_insts as f64 / rot_insts.max(1) as f64,
        mve_regs as f64 / rot_regs.max(1) as f64,
    );
    println!("(§2.3: rotation avoids this duplication entirely — the kernel is emitted once.)");
}
