//! §2.3's hardware trade-off, quantified: rotating register files vs
//! modulo variable expansion.
//!
//! "In the absence of hardware support, the loop may be unrolled and the
//! duplicate register specifiers renamed appropriately \[9\]. However, this
//! modulo variable expansion technique can result in a large amount of
//! code expansion \[18\]. A rotating register file can solve this problem
//! without duplicating code."

use lsms_machine::huff_machine;
use lsms_pipeline::{CompileSession, SessionConfig};

fn main() {
    let count = std::env::var("LSMS_CORPUS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let mut config = SessionConfig::new(huff_machine());
    config.codegen = true;
    config.mve = true;
    let session = CompileSession::new(config);
    let corpus = lsms_loops::corpus(count, lsms_bench::CORPUS_SEED);
    let mut scheduled = 0usize;
    let mut rot_insts = 0u64;
    let mut mve_insts = 0u64;
    let mut rot_regs = 0u64;
    let mut mve_regs = 0u64;
    let mut unrolls: Vec<u32> = Vec::new();
    for l in &corpus {
        // Any stage failure (depgraph, schedule, regalloc, codegen) is a
        // recorded skip; the session carries the loop end-to-end otherwise.
        let Ok(artifacts) = session.run_loop(l) else {
            continue;
        };
        let (Some(rot), Some(mve)) = (artifacts.kernel.as_ref(), artifacts.mve.as_ref()) else {
            continue;
        };
        scheduled += 1;
        rot_insts += rot.num_insts() as u64 + 1; // + brtop
        mve_insts += mve.total_insts() as u64 + 1;
        rot_regs += u64::from(rot.rr_size);
        mve_regs += u64::from(mve.num_regs);
        unrolls.push(mve.unroll);
    }
    unrolls.sort_unstable();
    let median_unroll = unrolls.get(unrolls.len() / 2).copied().unwrap_or(0);
    let max_unroll = unrolls.last().copied().unwrap_or(0);
    println!("Rotating files vs modulo variable expansion over {scheduled} loops:");
    println!("{:<26} {:>14} {:>14}", "", "rotating", "MVE (no rotation)");
    println!(
        "{:<26} {rot_insts:>14} {mve_insts:>14}",
        "static instructions"
    );
    println!(
        "{:<26} {rot_regs:>14} {mve_regs:>14}",
        "loop-variant registers"
    );
    println!(
        "\ncode expansion: {:.2}x (median unroll x{median_unroll}, max x{max_unroll}); \
         register cost: {:.2}x",
        mve_insts as f64 / rot_insts.max(1) as f64,
        mve_regs as f64 / rot_regs.max(1) as f64,
    );
    println!("(§2.3: rotation avoids this duplication entirely — the kernel is emitted once.)");
}
