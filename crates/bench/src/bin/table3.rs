//! Table 3: slack-scheduling performance by loop class.
//!
//! Paper values (1,525 loops): 1,463 of 1,525 optimal (96%), overall
//! ΣII/ΣMII = 1.01; for the 62 non-optimal loops, II − MII has
//! min/50%/90%/max = 1/1/4/15 and II/MII = 1.005/1.08/1.5/3.0.

use lsms_bench::{class_line, evaluate_corpus_session, percentiles, BenchArgs, CORPUS_SEED};
use lsms_ir::LoopClass;
use lsms_machine::huff_machine;
use lsms_pipeline::CompileSession;

fn main() {
    let session = CompileSession::with_machine(huff_machine());
    let args = BenchArgs::parse();
    let corpus = evaluate_corpus_session(&session, args.corpus_size, CORPUS_SEED, args.jobs);
    corpus.warn_failures();
    let records = corpus.records;
    println!("Table 3: Slack Scheduling Performance (New Scheduler)");
    println!(
        "{:<18} {:>5} {:>5} {:>6} {:>8} {:>8} {:>6}",
        "Loop Class", "Opt", "All", "%", "Sum II", "Sum MII", "Ratio"
    );
    for class in [
        LoopClass::Conditional,
        LoopClass::Recurrence,
        LoopClass::Both,
        LoopClass::Neither,
    ] {
        let rows: Vec<_> = records.iter().filter(|r| r.class == class).collect();
        if rows.is_empty() {
            continue;
        }
        println!("{}", class_line(&class.to_string(), &rows, |r| &r.new));
    }
    let all: Vec<_> = records.iter().collect();
    println!("{}", class_line("All Loops", &all, |r| &r.new));

    let behind: Vec<_> = records
        .iter()
        .filter(|r| r.new.counted_ii() > u64::from(r.mii))
        .collect();
    println!("\nFor the {} loops with II > MII:", behind.len());
    if !behind.is_empty() {
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>8}",
            "Metric", "Min", "50%", "90%", "Max"
        );
        let mut gaps: Vec<u64> = behind
            .iter()
            .map(|r| r.new.counted_ii() - u64::from(r.mii))
            .collect();
        let (a, b, c, d) = percentiles(&mut gaps);
        println!("{:<12} {a:>8} {b:>8} {c:>8} {d:>8}", "II - MII");
        let mut ratios: Vec<u64> = behind
            .iter()
            .map(|r| r.new.counted_ii() * 1000 / u64::from(r.mii))
            .collect();
        let (a, b, c, d) = percentiles(&mut ratios);
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            "II / MII",
            a as f64 / 1000.0,
            b as f64 / 1000.0,
            c as f64 / 1000.0,
            d as f64 / 1000.0
        );
    }
    let failures = records.iter().filter(|r| r.new.ii.is_none()).count();
    println!("\nPipelining failures: {failures}");
}
