//! §7 robustness: "other experiments with different latencies for the
//! functional units give very similar performance results and compilation
//! times."
//!
//! Runs a corpus slice against the paper machine and two latency
//! variants, reporting the headline metrics side by side.

use lsms_bench::{evaluate_corpus_session, BenchArgs, CORPUS_SEED};
use lsms_machine::alternate_machines;
use lsms_pipeline::CompileSession;

fn main() {
    // Robustness sweeps three machines, so it defaults to a 400-loop slice
    // rather than the full paper corpus; `--corpus-size` / `LSMS_CORPUS`
    // still override.
    let mut args = BenchArgs::parse();
    if std::env::var("LSMS_CORPUS").is_err() && !std::env::args().any(|a| a == "--corpus-size") {
        args.corpus_size = 400;
    }
    let count = args.corpus_size;
    println!("Robustness across machine variants ({count} loops each)");
    println!(
        "{:<16} {:>8} {:>10} {:>12} {:>14} {:>12}",
        "machine", "optimal", "II/MII", "mean excess", "median MaxLive", "failures"
    );
    for machine in alternate_machines() {
        let session = CompileSession::with_machine(machine.clone());
        let corpus = evaluate_corpus_session(&session, count, CORPUS_SEED, args.jobs);
        corpus.warn_failures();
        let records = corpus.records;
        let optimal = records.iter().filter(|r| r.new.ii == Some(r.mii)).count();
        let sum_ii: u64 = records.iter().map(|r| r.new.counted_ii()).sum();
        let sum_mii: u64 = records.iter().map(|r| u64::from(r.mii)).sum();
        let excesses: Vec<i64> = records
            .iter()
            .filter_map(|r| r.new.pressure.as_ref().map(|p| p.excess()))
            .collect();
        let mean_excess = excesses.iter().sum::<i64>() as f64 / excesses.len().max(1) as f64;
        let mut maxlive: Vec<u32> = records
            .iter()
            .filter_map(|r| r.new.pressure.as_ref().map(|p| p.rr_max_live))
            .collect();
        maxlive.sort_unstable();
        let median_maxlive = maxlive.get(maxlive.len() / 2).copied().unwrap_or(0);
        let failures = records.iter().filter(|r| r.new.ii.is_none()).count();
        println!(
            "{:<16} {:>7.1}% {:>10.3} {:>12.2} {:>14} {:>12}",
            machine.name(),
            100.0 * optimal as f64 / records.len().max(1) as f64,
            sum_ii as f64 / sum_mii.max(1) as f64,
            mean_excess,
            median_maxlive,
            failures,
        );
    }
}
