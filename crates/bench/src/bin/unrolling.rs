//! §3.1's future-work experiment: exploiting fractional lower bounds by
//! unrolling.
//!
//! "If a loop had an exact minimum II of 3/2, then the compiler could
//! unroll the loop once and attempt to schedule for an II of 3.
//! Unfortunately, the current compiler does not perform any such loop
//! transformations." This binary performs them: every corpus loop is
//! unrolled ×2 and ×3, scheduled, and compared on *effective* II per
//! source iteration (`II / factor`).

use lsms_machine::huff_machine;
use lsms_pipeline::{CompileSession, SessionConfig};

fn main() {
    let count = std::env::var("LSMS_CORPUS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let machine = huff_machine();
    // One session per unroll factor; the ×2/×3 sessions run the unroll
    // pass before depgraph/schedule.
    let session_for = |factor: u32| {
        let mut config = SessionConfig::new(machine.clone());
        config.unroll = factor;
        CompileSession::new(config)
    };
    let base_session = session_for(1);
    let unrolled_sessions = [(2u32, session_for(2)), (3u32, session_for(3))];
    let corpus = lsms_loops::corpus(count, lsms_bench::CORPUS_SEED);
    let mut improved = 0usize;
    let mut examined = 0usize;
    let mut base_total = 0f64;
    let mut best_total = 0f64;
    let mut examples = Vec::new();
    for l in &corpus {
        let Ok(base) = base_session.run_loop(l) else {
            continue;
        };
        let base_ii = base.schedule.ii;
        examined += 1;
        let mut best = f64::from(base_ii);
        let mut best_factor = 1u32;
        for (factor, session) in &unrolled_sessions {
            let Ok(artifacts) = session.run_loop(l) else {
                continue;
            };
            let effective = f64::from(artifacts.schedule.ii) / f64::from(*factor);
            if effective + 1e-9 < best {
                best = effective;
                best_factor = *factor;
            }
        }
        base_total += f64::from(base_ii);
        best_total += best;
        if best_factor > 1 {
            improved += 1;
            if examples.len() < 10 {
                examples.push(format!(
                    "  {:<12} II {} -> {:.2}/iter at x{}",
                    l.def.name, base_ii, best, best_factor
                ));
            }
        }
    }
    println!("Fractional-MII unrolling over {examined} loops:");
    println!(
        "{improved} loops ({:.1}%) improve their effective II by unrolling x2/x3",
        100.0 * improved as f64 / examined.max(1) as f64
    );
    println!(
        "total effective II: {base_total:.0} -> {best_total:.1} ({:.2}% faster)",
        100.0 * (base_total - best_total) / base_total.max(1.0)
    );
    for e in &examples {
        println!("{e}");
    }
}
