//! Table 4: Cydrome-style baseline performance by loop class.
//!
//! Paper values: 1,393 of 1,525 optimal (91%), overall ΣII/ΣMII = 1.12,
//! 14 loops failed to pipeline (counted at the last II attempted); for
//! the 132 non-optimal loops II − MII reaches 198 and II/MII reaches 12.

use lsms_bench::{class_line, evaluate_corpus_session, percentiles, BenchArgs, CORPUS_SEED};
use lsms_ir::LoopClass;
use lsms_machine::huff_machine;
use lsms_pipeline::CompileSession;

fn main() {
    let session = CompileSession::with_machine(huff_machine());
    let args = BenchArgs::parse();
    let corpus = evaluate_corpus_session(&session, args.corpus_size, CORPUS_SEED, args.jobs);
    corpus.warn_failures();
    let records = corpus.records;
    println!("Table 4: Cydrome-Style Scheduling Performance (Old Scheduler)");
    println!(
        "{:<18} {:>5} {:>5} {:>6} {:>8} {:>8} {:>6}",
        "Loop Class", "Opt", "All", "%", "Sum II", "Sum MII", "Ratio"
    );
    for class in [
        LoopClass::Conditional,
        LoopClass::Recurrence,
        LoopClass::Both,
        LoopClass::Neither,
    ] {
        let rows: Vec<_> = records.iter().filter(|r| r.class == class).collect();
        if rows.is_empty() {
            continue;
        }
        println!("{}", class_line(&class.to_string(), &rows, |r| &r.old));
    }
    let all: Vec<_> = records.iter().collect();
    println!("{}", class_line("All Loops", &all, |r| &r.old));

    let behind: Vec<_> = records
        .iter()
        .filter(|r| r.old.counted_ii() > u64::from(r.mii))
        .collect();
    println!("\nFor the {} loops with II > MII:", behind.len());
    if !behind.is_empty() {
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>8}",
            "Metric", "Min", "50%", "90%", "Max"
        );
        let mut gaps: Vec<u64> = behind
            .iter()
            .map(|r| r.old.counted_ii() - u64::from(r.mii))
            .collect();
        let (a, b, c, d) = percentiles(&mut gaps);
        println!("{:<12} {a:>8} {b:>8} {c:>8} {d:>8}", "II - MII");
        let mut ratios: Vec<u64> = behind
            .iter()
            .map(|r| r.old.counted_ii() * 1000 / u64::from(r.mii))
            .collect();
        let (a, b, c, d) = percentiles(&mut ratios);
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            "II / MII",
            a as f64 / 1000.0,
            b as f64 / 1000.0,
            c as f64 / 1000.0,
            d as f64 / 1000.0
        );
    }
    let failures = records.iter().filter(|r| r.old.ii.is_none()).count();
    println!("\nPipelining failures (reported at last attempted II): {failures}");

    // The headline comparison: the slack scheduler's speedup over the
    // baseline, 1.11x in the paper.
    let new_ii: u64 = records.iter().map(|r| r.new.counted_ii()).sum();
    let old_ii: u64 = records.iter().map(|r| r.old.counted_ii()).sum();
    println!(
        "\nOverall Sum II: new {new_ii}, old {old_ii}; old/new = {:.3}",
        old_ii as f64 / new_ii.max(1) as f64
    );
}
