//! §4.2 footnote 6: the II-escalation trade-off.
//!
//! "In practice, almost all loops succeed at MII. Even so, in Step 6 the
//! compiler increments II by `max(⌊0.04·II⌋, 1)` rather than by 1, in
//! order to avoid spending an excessive amount of time compiling large
//! complex loops. Incrementing II by 1 lowered the total II by 45 at the
//! expense of 29% more time spent in the scheduler."

use std::time::Duration;

use lsms_machine::huff_machine;
use lsms_pipeline::{BackendSelection, CompileSession, SessionConfig};

fn main() {
    let count = std::env::var("LSMS_CORPUS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(600);
    let machine = huff_machine();
    let corpus = lsms_loops::corpus(count, lsms_bench::CORPUS_SEED);
    println!("II escalation policy over {count} loops (paper footnote 6)");
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12}",
        "policy", "Sum II", "failures", "II attempts", "sched time"
    );
    let mut results: Vec<(u64, Duration)> = Vec::new();
    for (name, increment) in [("4% steps", "four-percent"), ("by one", "by-one")] {
        let mut config = SessionConfig::new(machine.clone());
        config.backend = BackendSelection::parse(&format!("slack:increment={increment}"))
            .expect("static backend spec");
        let session = CompileSession::new(config);
        let mut sum_ii = 0u64;
        let mut failures = 0usize;
        let mut attempts = 0u64;
        let mut elapsed = Duration::ZERO;
        for l in &corpus {
            let Ok(outcome) = session.schedule_outcome(l) else {
                continue;
            };
            failures += usize::from(outcome.ii.is_none());
            sum_ii += outcome.counted_ii();
            attempts += u64::from(outcome.stats.attempts);
            elapsed += outcome.stats.elapsed;
        }
        println!("{name:<14} {sum_ii:>10} {failures:>10} {attempts:>12} {elapsed:>12.2?}");
        results.push((sum_ii, elapsed));
    }
    let saved = results[0].0 as i64 - results[1].0 as i64;
    let cost = 100.0 * (results[1].1.as_secs_f64() / results[0].1.as_secs_f64() - 1.0);
    println!(
        "\nincrementing by 1 lowers total II by {saved} at {cost:+.0}% scheduler time \
         (paper: 45 lower at +29%)"
    );
}
