//! Wall-clock benchmark of corpus evaluation, writing machine-readable
//! `BENCH_corpus.json` at the repository root (or `LSMS_BENCH_OUT`).
//!
//! Reports total evaluation time for the configured corpus plus per-loop
//! latency percentiles, for both the requested `--jobs` count and a forced
//! single-threaded run, so the speedup is measured rather than assumed.

use std::time::Instant;

use lsms_bench::{evaluate_corpus_session, BenchArgs, LoopRecord, CORPUS_SEED};
use lsms_machine::huff_machine;
use lsms_pipeline::CompileSession;

struct Timing {
    jobs: usize,
    total_secs: f64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    mindist: MinDistCounters,
    records: Vec<LoopRecord>,
}

/// The session's `mindist` accounting entry: how the shared MinDist
/// caches served this run's matrix requests.
#[derive(Clone, Copy, Default)]
struct MinDistCounters {
    hits: u64,
    misses: u64,
    fw_computes: u64,
    parametric_builds: u64,
    materialized: u64,
}

/// Snapshot of the session's cumulative `mindist` counters (the session's
/// report accumulates across runs, so per-run numbers are a difference of
/// two snapshots).
fn mindist_snapshot(session: &CompileSession) -> MinDistCounters {
    let report = session.report();
    let Some(record) = report.get("mindist") else {
        return MinDistCounters::default();
    };
    let get = |key| record.counters.get(key).copied().unwrap_or(0);
    MinDistCounters {
        hits: get("hits"),
        misses: get("misses"),
        fw_computes: get("fw_computes"),
        parametric_builds: get("parametric_builds"),
        materialized: get("materialized"),
    }
}

impl MinDistCounters {
    fn since(self, before: MinDistCounters) -> MinDistCounters {
        MinDistCounters {
            hits: self.hits - before.hits,
            misses: self.misses - before.misses,
            fw_computes: self.fw_computes - before.fw_computes,
            parametric_builds: self.parametric_builds - before.parametric_builds,
            materialized: self.materialized - before.materialized,
        }
    }
}

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn run(count: usize, session: &CompileSession, jobs: usize) -> Timing {
    // Per-loop latencies come from the scheduler's own elapsed counters
    // (summed over the three runs), so they are meaningful even when the
    // loops ran concurrently.
    let before = mindist_snapshot(session);
    let started = Instant::now();
    let corpus = evaluate_corpus_session(session, count, CORPUS_SEED, jobs);
    let total_secs = started.elapsed().as_secs_f64();
    let mindist = mindist_snapshot(session).since(before);
    corpus.warn_failures();
    let records = corpus.records;
    let mut per_loop: Vec<f64> = records
        .iter()
        .map(|r| {
            (r.new.stats.elapsed + r.early.stats.elapsed + r.old.stats.elapsed).as_secs_f64() * 1e3
        })
        .collect();
    per_loop.sort_by(|a, b| a.total_cmp(b));
    Timing {
        jobs,
        total_secs,
        p50_ms: percentile_ms(&per_loop, 0.50),
        p90_ms: percentile_ms(&per_loop, 0.90),
        p99_ms: percentile_ms(&per_loop, 0.99),
        mindist,
        records,
    }
}

fn json_entry(t: &Timing) -> String {
    let m = &t.mindist;
    format!(
        "{{\"jobs\": {}, \"total_secs\": {:.6}, \"per_loop_ms\": {{\"p50\": {:.4}, \"p90\": {:.4}, \"p99\": {:.4}}}, \
         \"mindist\": {{\"hits\": {}, \"misses\": {}, \"fw_computes\": {}, \"parametric_builds\": {}, \"materialized\": {}}}}}",
        t.jobs, t.total_secs, t.p50_ms, t.p90_ms, t.p99_ms,
        m.hits, m.misses, m.fw_computes, m.parametric_builds, m.materialized
    )
}

fn main() {
    let args = BenchArgs::parse();
    let session = CompileSession::with_machine(huff_machine());

    println!(
        "corpus_time: {} loops, {} job(s)",
        args.corpus_size, args.jobs
    );
    let single = run(args.corpus_size, &session, 1);
    println!(
        "  jobs=1     {:>8.3}s  p50 {:.2}ms  p90 {:.2}ms  p99 {:.2}ms",
        single.total_secs, single.p50_ms, single.p90_ms, single.p99_ms
    );
    let multi = run(args.corpus_size, &session, args.jobs);
    println!(
        "  jobs={:<4}  {:>8.3}s  p50 {:.2}ms  p90 {:.2}ms  p99 {:.2}ms",
        multi.jobs, multi.total_secs, multi.p50_ms, multi.p90_ms, multi.p99_ms
    );
    let speedup = single.total_secs / multi.total_secs.max(1e-9);
    println!("  speedup {speedup:.2}x");
    let m = &multi.mindist;
    println!(
        "  mindist: {} hits / {} misses ({} FW, {} materialized from {} parametric builds)",
        m.hits, m.misses, m.fw_computes, m.materialized, m.parametric_builds
    );

    // Cross-check determinism while we have both runs in hand.
    assert_eq!(single.records.len(), multi.records.len());
    for (a, b) in single.records.iter().zip(&multi.records) {
        assert_eq!(a.name, b.name, "corpus order must not depend on jobs");
        assert_eq!(a.new.ii, b.new.ii, "{}: II must not depend on jobs", a.name);
    }

    let hardware = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"benchmark\": \"corpus_time\",\n  \"corpus_size\": {},\n  \"seed\": {},\n  \"hardware_threads\": {},\n  \"speedup\": {:.3},\n  \"runs\": [\n    {},\n    {}\n  ]\n}}\n",
        args.corpus_size,
        CORPUS_SEED,
        hardware,
        speedup,
        json_entry(&single),
        json_entry(&multi),
    );
    let out = std::env::var("LSMS_BENCH_OUT").unwrap_or_else(|_| "BENCH_corpus.json".into());
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("  wrote {out}");
}
