//! Wall-clock benchmark of corpus evaluation, writing machine-readable
//! `BENCH_corpus.json` at the repository root (or `LSMS_BENCH_OUT`).
//!
//! Three runs are measured: a cold single-threaded run, a cold run at the
//! requested `--jobs` count (each in a fresh session, so neither benefits
//! from the schedule cache), and a cached re-run of the single-threaded
//! session, which replays every schedule from the in-memory
//! content-addressed cache. The parallel speedup and the cached-rerun
//! speedup are both measured rather than assumed.

use std::time::Instant;

use lsms_bench::{bounds_sweep, evaluate_corpus_session, BenchArgs, LoopRecord, CORPUS_SEED};
use lsms_machine::huff_machine;
use lsms_pipeline::CompileSession;

struct Timing {
    label: &'static str,
    jobs: usize,
    total_secs: f64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    mindist: MinDistCounters,
    sched_cache: SchedCacheCounters,
    straggler_idle_us: u64,
    records: Vec<LoopRecord>,
}

/// The session's `mindist` accounting entry: how the shared MinDist
/// caches served this run's matrix requests.
#[derive(Clone, Copy, Default)]
struct MinDistCounters {
    hits: u64,
    misses: u64,
    fw_computes: u64,
    parametric_builds: u64,
    materialized: u64,
}

/// The session's `sched-cache` accounting entry: how the
/// content-addressed schedule cache served this run's backend
/// invocations.
#[derive(Clone, Copy, Default)]
struct SchedCacheCounters {
    hits: u64,
    misses: u64,
    inserts: u64,
    warm_hits: u64,
}

/// Snapshot of the session's cumulative `mindist` counters (the session's
/// report accumulates across runs, so per-run numbers are a difference of
/// two snapshots).
fn mindist_snapshot(session: &CompileSession) -> MinDistCounters {
    let report = session.report();
    let Some(record) = report.get("mindist") else {
        return MinDistCounters::default();
    };
    let get = |key| record.counters.get(key).copied().unwrap_or(0);
    MinDistCounters {
        hits: get("hits"),
        misses: get("misses"),
        fw_computes: get("fw_computes"),
        parametric_builds: get("parametric_builds"),
        materialized: get("materialized"),
    }
}

/// Snapshot of the session's cumulative `sched-cache` counters.
fn sched_cache_snapshot(session: &CompileSession) -> SchedCacheCounters {
    let report = session.report();
    let Some(record) = report.get("sched-cache") else {
        return SchedCacheCounters::default();
    };
    let get = |key| record.counters.get(key).copied().unwrap_or(0);
    SchedCacheCounters {
        hits: get("hits"),
        misses: get("misses"),
        inserts: get("inserts"),
        warm_hits: get("warm_hits"),
    }
}

impl MinDistCounters {
    fn since(self, before: MinDistCounters) -> MinDistCounters {
        MinDistCounters {
            hits: self.hits - before.hits,
            misses: self.misses - before.misses,
            fw_computes: self.fw_computes - before.fw_computes,
            parametric_builds: self.parametric_builds - before.parametric_builds,
            materialized: self.materialized - before.materialized,
        }
    }
}

impl SchedCacheCounters {
    fn since(self, before: SchedCacheCounters) -> SchedCacheCounters {
        SchedCacheCounters {
            hits: self.hits - before.hits,
            misses: self.misses - before.misses,
            inserts: self.inserts - before.inserts,
            warm_hits: self.warm_hits - before.warm_hits,
        }
    }
}

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn run(label: &'static str, count: usize, session: &CompileSession, jobs: usize) -> Timing {
    // Per-loop latencies come from the scheduler's own elapsed counters
    // (summed over the three runs), so they are meaningful even when the
    // loops ran concurrently — and a cached replay reports the stored
    // cold latencies, keeping the percentiles comparable across rows.
    let before = mindist_snapshot(session);
    let cache_before = sched_cache_snapshot(session);
    let started = Instant::now();
    let corpus = evaluate_corpus_session(session, count, CORPUS_SEED, jobs);
    let total_secs = started.elapsed().as_secs_f64();
    let mindist = mindist_snapshot(session).since(before);
    let sched_cache = sched_cache_snapshot(session).since(cache_before);
    corpus.warn_failures();
    let straggler_idle_us = corpus.straggler_idle_us;
    let records = corpus.records;
    let mut per_loop: Vec<f64> = records
        .iter()
        .map(|r| {
            (r.new.stats.elapsed + r.early.stats.elapsed + r.old.stats.elapsed).as_secs_f64() * 1e3
        })
        .collect();
    per_loop.sort_by(|a, b| a.total_cmp(b));
    Timing {
        label,
        jobs,
        total_secs,
        p50_ms: percentile_ms(&per_loop, 0.50),
        p90_ms: percentile_ms(&per_loop, 0.90),
        p99_ms: percentile_ms(&per_loop, 0.99),
        mindist,
        sched_cache,
        straggler_idle_us,
        records,
    }
}

/// Engine work counters summed over a run's records (all three scheduler
/// variants): the sparsity counters `--timings`/`--metrics` also report.
fn engine_counters(records: &[LoopRecord]) -> (u64, u64) {
    records.iter().fold((0, 0), |(cells, scans), r| {
        let outcomes = [&r.new, &r.early, &r.old];
        (
            cells
                + outcomes
                    .iter()
                    .map(|o| o.stats.bounds_cells_touched)
                    .sum::<u64>(),
            scans
                + outcomes
                    .iter()
                    .map(|o| o.stats.choose_scan_len)
                    .sum::<u64>(),
        )
    })
}

fn json_entry(t: &Timing) -> String {
    let m = &t.mindist;
    let c = &t.sched_cache;
    let (cells, scans) = engine_counters(&t.records);
    format!(
        "{{\"label\": \"{}\", \"jobs\": {}, \"total_secs\": {:.6}, \"per_loop_ms\": {{\"p50\": {:.4}, \"p90\": {:.4}, \"p99\": {:.4}}}, \
         \"straggler_idle_us\": {}, \
         \"engine\": {{\"bounds_cells_touched\": {}, \"choose_scan_len\": {}}}, \
         \"mindist\": {{\"hits\": {}, \"misses\": {}, \"fw_computes\": {}, \"parametric_builds\": {}, \"materialized\": {}}}, \
         \"sched_cache\": {{\"hits\": {}, \"misses\": {}, \"inserts\": {}, \"warm_hits\": {}}}}}",
        t.label, t.jobs, t.total_secs, t.p50_ms, t.p90_ms, t.p99_ms,
        t.straggler_idle_us,
        cells, scans,
        m.hits, m.misses, m.fw_computes, m.parametric_builds, m.materialized,
        c.hits, c.misses, c.inserts, c.warm_hits
    )
}

fn print_row(t: &Timing) {
    println!(
        "  {:<12} jobs={:<3} {:>8.3}s  p50 {:.2}ms  p90 {:.2}ms  p99 {:.2}ms",
        t.label, t.jobs, t.total_secs, t.p50_ms, t.p90_ms, t.p99_ms
    );
}

fn main() {
    let args = BenchArgs::parse();

    println!(
        "corpus_time: {} loops, {} job(s)",
        args.corpus_size, args.jobs
    );
    // Fresh sessions per cold row: the schedule cache lives in the
    // session, so sharing one would turn the second row into a replay.
    let single_session = CompileSession::with_machine(huff_machine());
    let single = run("cold", args.corpus_size, &single_session, 1);
    print_row(&single);
    let multi_session = CompileSession::with_machine(huff_machine());
    let multi = run("cold", args.corpus_size, &multi_session, args.jobs);
    print_row(&multi);
    // Re-running the first session replays every schedule from the
    // in-memory content-addressed cache.
    let cached = run("cached", args.corpus_size, &single_session, 1);
    print_row(&cached);

    let speedup = single.total_secs / multi.total_secs.max(1e-9);
    let cached_speedup = single.total_secs / cached.total_secs.max(1e-9);
    println!("  parallel speedup {speedup:.2}x, cached-rerun speedup {cached_speedup:.2}x");
    let m = &multi.mindist;
    println!(
        "  mindist: {} hits / {} misses ({} FW, {} materialized from {} parametric builds)",
        m.hits, m.misses, m.fw_computes, m.materialized, m.parametric_builds
    );
    let c = &cached.sched_cache;
    println!(
        "  sched-cache (cached rerun): {} hits / {} misses, straggler idle {}us at jobs={}",
        c.hits, c.misses, multi.straggler_idle_us, multi.jobs
    );

    // Cross-check determinism while we have all three runs in hand.
    for other in [&multi, &cached] {
        assert_eq!(single.records.len(), other.records.len());
        for (a, b) in single.records.iter().zip(&other.records) {
            assert_eq!(a.name, b.name, "corpus order must not depend on jobs");
            assert_eq!(a.new.ii, b.new.ii, "{}: II must not depend on jobs", a.name);
        }
    }

    // The dense-vs-sparse bounds-propagation A/B over the ejection-heavy
    // subset rides along in the same report.
    let sweep = bounds_sweep(args.corpus_size, CORPUS_SEED);
    print!("{}", sweep.summary());

    let hardware = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let json = format!(
        "{{\n  \"benchmark\": \"corpus_time\",\n  \"corpus_size\": {},\n  \"seed\": {},\n  \"hardware_threads\": {},\n  \"speedup\": {:.3},\n  \"cached_speedup\": {:.3},\n  \"bounds_sweep\": {},\n  \"runs\": [\n    {},\n    {},\n    {}\n  ]\n}}\n",
        args.corpus_size,
        CORPUS_SEED,
        hardware,
        speedup,
        cached_speedup,
        sweep.json(),
        json_entry(&single),
        json_entry(&multi),
        json_entry(&cached),
    );
    let out = std::env::var("LSMS_BENCH_OUT").unwrap_or_else(|_| "BENCH_corpus.json".into());
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("  wrote {out}");
}
