//! Table 1: functional-unit latencies of the target machine.
//!
//! The machine description is an *input* to the evaluation; this binary
//! prints it in the paper's layout so the configuration is auditable.

use lsms_machine::huff_machine;

fn main() {
    let machine = huff_machine();
    println!("Table 1: Functional Unit Latencies ({})", machine.name());
    println!(
        "{:<14} {:>4}  {:<40} {:>8}",
        "Pipeline", "No.", "Operations", "Latency"
    );
    // Group opcodes by (class, latency, pipelined?) like the paper's rows.
    let mut rows: Vec<(usize, u32, bool, Vec<String>)> = Vec::new();
    for (kind, desc) in machine.op_table() {
        let pipelined = desc.reservation.len() == 1;
        if let Some(row) = rows
            .iter_mut()
            .find(|(c, l, p, _)| *c == desc.class.index() && *l == desc.latency && *p == pipelined)
        {
            row.3.push(kind.to_string());
        } else {
            rows.push((
                desc.class.index(),
                desc.latency,
                pipelined,
                vec![kind.to_string()],
            ));
        }
    }
    rows.sort();
    let mut last_class = usize::MAX;
    for (class, latency, pipelined, ops) in rows {
        let (name, count) = if class == last_class {
            (String::new(), String::new())
        } else {
            last_class = class;
            (
                machine.classes()[class].name.clone(),
                machine.classes()[class].count.to_string(),
            )
        };
        let note = if pipelined { "" } else { " (not pipelined)" };
        println!(
            "{name:<14} {count:>4}  {:<40} {latency:>8}{note}",
            ops.join(" / ")
        );
    }
}
