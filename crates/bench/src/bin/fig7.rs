//! Figure 7: GPR usage, and combined GPRs + MaxLive.
//!
//! Paper observations: 97% of loops use no more than 16 GPRs, only 3 use
//! more than 32; 82% of loops keep RRs + GPRs ≤ 32 and only 16 exceed 64.

use lsms_bench::{cumulative_histogram, evaluate_corpus_session, BenchArgs, CORPUS_SEED};
use lsms_machine::huff_machine;
use lsms_pipeline::CompileSession;

fn main() {
    let session = CompileSession::with_machine(huff_machine());
    let args = BenchArgs::parse();
    let corpus = evaluate_corpus_session(&session, args.corpus_size, CORPUS_SEED, args.jobs);
    corpus.warn_failures();
    let records = corpus.records;
    let gprs: Vec<i64> = records.iter().map(|r| i64::from(r.gprs)).collect();
    let combined = |pick: &dyn Fn(&lsms_bench::LoopRecord) -> Option<i64>| -> Vec<i64> {
        records.iter().filter_map(pick).collect()
    };
    let new = combined(&|r| {
        r.new
            .pressure
            .as_ref()
            .map(|p| i64::from(p.rr_max_live + r.gprs))
    });
    let old = combined(&|r| {
        r.old
            .pressure
            .as_ref()
            .map(|p| i64::from(p.rr_max_live + r.gprs))
    });
    println!(
        "{}",
        cumulative_histogram(
            "Figure 7: GPRs and GPRs + MaxLive (cumulative % of loops)",
            &[
                ("GPRs", gprs.clone()),
                ("new GPR+RR", new.clone()),
                ("old GPR+RR", old),
            ],
        )
    );
    let g16 = gprs.iter().filter(|&&x| x <= 16).count();
    let g32 = gprs.iter().filter(|&&x| x > 32).count();
    let c32 = new.iter().filter(|&&x| x <= 32).count();
    let c64 = new.iter().filter(|&&x| x > 64).count();
    println!(
        "GPRs: {:.1}% <= 16, {} loops > 32 (paper: 97% / 3). GPR+RR: {:.1}% <= 32, {} loops > 64 (paper: 82% / 16).",
        100.0 * g16 as f64 / gprs.len().max(1) as f64,
        g32,
        100.0 * c32 as f64 / new.len().max(1) as f64,
        c64,
    );
}
