//! §4.3 / §5.2: the dynamic-priority and bidirectional-heuristic decision
//! mix.
//!
//! Paper values: the minimum dynamic priority identifies a unique
//! operation 48% of the time; 46% of candidates have no slack; among the
//! rest, more stretchable inputs than outputs 30%, fewer 4%, ties 20%;
//! overall the heuristics favour early placement about 2:1.

use lsms_bench::{evaluate_corpus_session, BenchArgs, CORPUS_SEED};
use lsms_machine::huff_machine;
use lsms_pipeline::CompileSession;
use lsms_sched::DecisionStats;

fn main() {
    let session = CompileSession::with_machine(huff_machine());
    let args = BenchArgs::parse();
    let corpus = evaluate_corpus_session(&session, args.corpus_size, CORPUS_SEED, args.jobs);
    corpus.warn_failures();
    let records = corpus.records;
    let mut total = DecisionStats::default();
    for r in &records {
        total += &r.decisions;
    }
    let pct = |x: u64| 100.0 * x as f64 / total.selections.max(1) as f64;
    println!(
        "Heuristic decision mix over {} candidate selections",
        total.selections
    );
    println!(
        "unique minimum dynamic priority: {:>6.1}%   (paper: 48%)",
        pct(total.unique_min_priority)
    );
    println!(
        "zero slack (no direction choice): {:>6.1}%   (paper: 46%)",
        pct(total.zero_slack)
    );
    println!(
        "more stretchable inputs -> early: {:>6.1}%   (paper: 30%)",
        pct(total.early_more_inputs)
    );
    println!(
        "fewer stretchable inputs -> late: {:>6.1}%   (paper:  4%)",
        pct(total.late_more_outputs)
    );
    println!(
        "ties (early {:>5.1}% / late {:>5.1}%):  {:>6.1}%   (paper: 20%)",
        pct(total.tie_early),
        pct(total.tie_late),
        pct(total.tie_early + total.tie_late + total.isolated_early)
    );
    let early = total.early();
    let late = total.late();
    println!(
        "early : late among sloppy ops = {early} : {late} = {:.2} : 1   (paper: ~2 : 1)",
        early as f64 / late.max(1) as f64
    );
}
