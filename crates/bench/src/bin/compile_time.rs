//! §6: compilation-time profile of both schedulers.
//!
//! Paper values: 889 of 1,525 loops needed no backtracking; the other 636
//! placed 23,603 operations in 306,860 central-loop iterations, invoking
//! Step 3 157,694 times (ejecting 282,130 operations) and Step 6 a mere
//! 139 times. Scheduling took 3.96 minutes on an HP 9000/730; Cydrome's
//! scheduler took 6.5× longer, backtracking 3.7× as much.

use std::time::Duration;

use lsms_bench::{evaluate_corpus_session, BenchArgs, CORPUS_SEED};
use lsms_machine::huff_machine;
use lsms_pipeline::CompileSession;
use lsms_sched::SchedStats;

fn report(label: &str, per_loop: &[(&str, usize, SchedStats)]) {
    let clean = per_loop
        .iter()
        .filter(|(_, _, s)| s.backtrack_free())
        .count();
    let dirty: Vec<_> = per_loop
        .iter()
        .filter(|(_, _, s)| !s.backtrack_free())
        .collect();
    let dirty_ops: usize = dirty.iter().map(|(_, ops, _)| ops).sum();
    let mut total = SchedStats::default();
    for (_, _, s) in per_loop {
        total += s;
    }
    let mut dirty_total = SchedStats::default();
    for (_, _, s) in &dirty {
        dirty_total += s;
    }
    println!("== {label} ==");
    println!(
        "loops needing no backtracking: {clean} of {}",
        per_loop.len()
    );
    println!(
        "backtracking loops: {} loops, {} ops, {} central-loop iterations",
        dirty.len(),
        dirty_ops,
        dirty_total.central_iterations
    );
    println!(
        "Step 3 invocations: {} (ejecting {} operations); Step 6 restarts: {}",
        total.step3_invocations, total.ejected_ops, total.step6_restarts
    );
    println!(
        "II attempts: {}; scheduler wall time: {:.2?}",
        total.attempts, total.elapsed
    );
    println!();
}

fn main() {
    let session = CompileSession::with_machine(huff_machine());
    let args = BenchArgs::parse();
    let corpus = evaluate_corpus_session(&session, args.corpus_size, CORPUS_SEED, args.jobs);
    corpus.warn_failures();
    let records = corpus.records;

    let new: Vec<(&str, usize, SchedStats)> = records
        .iter()
        .map(|r| (r.name.as_str(), r.num_ops, r.new.stats.clone()))
        .collect();
    let old: Vec<(&str, usize, SchedStats)> = records
        .iter()
        .map(|r| (r.name.as_str(), r.num_ops, r.old.stats.clone()))
        .collect();
    report("New scheduler (bidirectional slack)", &new);
    report("Old scheduler (Cydrome-style)", &old);

    let sum = |rows: &[(&str, usize, SchedStats)]| -> (u64, Duration) {
        let mut ejected = 0;
        let mut time = Duration::ZERO;
        for (_, _, s) in rows {
            ejected += s.ejected_ops;
            time += s.elapsed;
        }
        (ejected, time)
    };
    let (new_ej, new_t) = sum(&new);
    let (old_ej, old_t) = sum(&old);
    println!(
        "old/new backtracking ratio: {:.2}x (paper: 3.7x); old/new time ratio: {:.2}x (paper: 6.5x)",
        old_ej as f64 / new_ej.max(1) as f64,
        old_t.as_secs_f64() / new_t.as_secs_f64().max(1e-9),
    );
}
