//! Correctness soak: random generated loops through the full pipeline —
//! both code-generation schemes, several trip counts and direction
//! policies — compared bit for bit against the reference interpreter.
//!
//! ```sh
//! LSMS_SOAK_START=0 LSMS_SOAK_COUNT=2000 \
//!     cargo run --release -p lsms-bench --bin soak
//! ```

use lsms_machine::huff_machine;
use lsms_pipeline::{BackendSelection, CompileSession, SessionConfig, Stage, VerifySpec};

fn env(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let start = env("LSMS_SOAK_START", 100_000);
    let count = env("LSMS_SOAK_COUNT", 1_000);
    let machine = huff_machine();
    let front = CompileSession::with_machine(machine.clone());
    let mut ok = 0u64;
    let mut sched_fails = 0u64;
    let mut fails = 0u64;
    for seed in start..start + count {
        let loops = lsms_loops::generate(&lsms_loops::GeneratorConfig { seed, count: 1 });
        let unit = match front.compile_source(&loops[0].source) {
            Ok(u) => u,
            Err(e) => {
                println!("COMPILE FAIL {seed}: {e}");
                fails += 1;
                continue;
            }
        };
        for (trip, policy) in [(1, "slack"), (7, "late"), (23, "early")] {
            // One session per configuration: full codegen (rotating and
            // MVE kernels) plus the simulate-verify pass, which checks
            // both kernels against the reference interpreter.
            let mut config = SessionConfig::new(machine.clone());
            config.backend = BackendSelection::named(policy);
            config.codegen = true;
            config.mve = true;
            config.verify = Some(VerifySpec {
                trip,
                seed: seed ^ 0x1111,
            });
            let session = CompileSession::new(config);
            match session.run_loop(&unit.loops[0]) {
                Ok(_) => ok += 1,
                // A loop the scheduler cannot pipeline is an expected
                // degradation, not a correctness failure.
                Err(e) if e.stage == Stage::Schedule => sched_fails += 1,
                Err(e) => {
                    fails += 1;
                    if fails <= 8 {
                        println!("FAIL seed {seed} trip {trip} {policy:?}: {e}");
                    }
                }
            }
        }
    }
    println!("ok={ok} sched_fails={sched_fails} real_fails={fails}");
    if fails > 0 {
        std::process::exit(1);
    }
}
