//! §8's closing suggestion: "Future experimentation may assess how well
//! slack-scheduling would work in the context where IPS has been studied"
//! — lifetime-sensitive scheduling of *straight-line* code.
//!
//! Every corpus body is scheduled as a single basic block (no iteration
//! overlap) with the bidirectional heuristic and with the always-early
//! ablation (the unidirectional strategy IPS competes against), comparing
//! schedule length and peak register pressure.

use lsms_ir::RegClass;
use lsms_machine::huff_machine;
use lsms_pipeline::{BackendSelection, CompileSession, SessionConfig};
use lsms_sched::pressure::{lifetimes, live_vector};

fn main() {
    let count = std::env::var("LSMS_CORPUS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let machine = huff_machine();
    // One straight-line session per direction policy.
    let sessions: Vec<CompileSession> = ["slack", "early"]
        .into_iter()
        .map(|backend| {
            let mut config = SessionConfig::new(machine.clone());
            config.straight_line = true;
            config.backend = BackendSelection::named(backend);
            CompileSession::new(config)
        })
        .collect();
    let corpus = lsms_loops::corpus(count, lsms_bench::CORPUS_SEED);
    let mut rows = 0usize;
    let mut len = [0u64; 2];
    let mut pressure = [0u64; 2];
    let mut wins = 0usize;
    let mut losses = 0usize;
    for l in &corpus {
        let mut this = [0u64; 2];
        let mut ok = true;
        for (slot, session) in sessions.iter().enumerate() {
            let Ok(artifacts) = session.run_loop(l) else {
                ok = false;
                break;
            };
            let problem = artifacts
                .problem(&machine)
                .unwrap_or_else(|e| panic!("{}: {e}", l.def.name));
            let schedule = &artifacts.schedule;
            let lt = lifetimes(&problem, schedule);
            let vector = live_vector(&problem, schedule, &lt, RegClass::Rr);
            let max_live = u64::from(vector.iter().copied().max().unwrap_or(0));
            len[slot] += schedule.length() as u64;
            pressure[slot] += max_live;
            this[slot] = max_live;
        }
        if ok {
            rows += 1;
            if this[0] < this[1] {
                wins += 1;
            } else if this[0] > this[1] {
                losses += 1;
            }
        }
    }
    println!("Straight-line (basic-block) scheduling over {rows} bodies:");
    println!("{:<22} {:>14} {:>14}", "", "bidirectional", "always-early");
    println!(
        "{:<22} {:>14} {:>14}",
        "total schedule length", len[0], len[1]
    );
    println!(
        "{:<22} {:>14} {:>14}",
        "total peak pressure", pressure[0], pressure[1]
    );
    println!(
        "\nbidirectional uses fewer registers on {wins} bodies, more on {losses} \
         ({:.1}% pressure saved overall, schedule length {:+.2}%)",
        100.0 * (pressure[1] as f64 - pressure[0] as f64) / pressure[1].max(1) as f64,
        100.0 * (len[0] as f64 / len[1].max(1) as f64 - 1.0),
    );
}
