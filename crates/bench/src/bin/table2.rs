//! Table 2: complexity measurements over the whole corpus.
//!
//! Paper values for comparison (1,525 loops):
//!
//! ```text
//! Metric                    Min    50%    90%    Max
//! # Basic Blocks              1      1      5     30
//! # Operations                3     15     48    322
//! # Critical Ops at MII       0      6     24    133
//! # Ops on Recurrences        0      0     14    166
//! # Div/Mod/Sqrt Ops          0      0      1     28
//! RecMII                      1      1     23    278
//! ResMII                      1      5     17    163
//! MII                         1      6     26    278
//! MinAvg at MII               1     10     32    212
//! # GPRs                      0     11     27     85
//! ```

use lsms_bench::{evaluate_corpus_session, stat_row, BenchArgs, CORPUS_SEED};
use lsms_machine::huff_machine;
use lsms_pipeline::CompileSession;

fn main() {
    let session = CompileSession::with_machine(huff_machine());
    let args = BenchArgs::parse();
    let corpus = evaluate_corpus_session(&session, args.corpus_size, CORPUS_SEED, args.jobs);
    corpus.warn_failures();
    let records = corpus.records;
    println!("Table 2: Measurements from all {} loops", records.len());
    println!(
        "{:<24} {:>6} {:>6} {:>6} {:>6}",
        "Metric", "Min", "50%", "90%", "Max"
    );
    let col = |label: &str, f: &dyn Fn(&lsms_bench::LoopRecord) -> u64| {
        let mut values: Vec<u64> = records.iter().map(f).collect();
        println!("{}", stat_row(label, &mut values));
    };
    col("# Basic Blocks", &|r| u64::from(r.basic_blocks));
    col("# Operations", &|r| r.num_ops as u64);
    col("# Critical Ops at MII", &|r| r.critical_ops as u64);
    col("# Ops on Recurrences", &|r| r.ops_on_recurrences as u64);
    col("# Div/Mod/Sqrt Ops", &|r| r.div_ops as u64);
    col("RecMII", &|r| u64::from(r.rec_mii));
    col("ResMII", &|r| u64::from(r.res_mii));
    col("MII", &|r| u64::from(r.mii));
    col("MinAvg at MII", &|r| u64::from(r.min_avg_at_mii));
    col("# GPRs", &|r| u64::from(r.gprs));
}
