//! §3.2 footnote 4: rotating register allocation vs the MaxLive bound.
//!
//! Rau et al. (PLDI'92) report that good strategies almost always achieve
//! MaxLive — the fact that justifies the paper's use of MaxLive as *the*
//! pressure measure. This experiment allocates every scheduled corpus
//! loop with four strategy variants and tabulates `registers − MaxLive`
//! for each, plus the per-loop best. Allocations are brute-force verified.

use lsms_ir::RegClass;
use lsms_machine::huff_machine;
use lsms_pipeline::CompileSession;
use lsms_regalloc::{allocate_rotating, verify_allocation, Fit, Ordering, Strategy};

fn main() {
    let count = std::env::var("LSMS_CORPUS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let machine = huff_machine();
    let session = CompileSession::with_machine(machine.clone());
    let corpus = lsms_loops::corpus(count, lsms_bench::CORPUS_SEED);
    let strategies = [
        (
            "start/first",
            Strategy {
                ordering: Ordering::StartTime,
                fit: Fit::FirstFit,
            },
        ),
        (
            "start/end",
            Strategy {
                ordering: Ordering::StartTime,
                fit: Fit::EndFit,
            },
        ),
        (
            "long/first",
            Strategy {
                ordering: Ordering::LongestFirst,
                fit: Fit::FirstFit,
            },
        ),
        (
            "long/end",
            Strategy {
                ordering: Ordering::LongestFirst,
                fit: Fit::EndFit,
            },
        ),
    ];
    let mut excess: Vec<Vec<u32>> = vec![Vec::new(); strategies.len() + 1];
    let mut scheduled = 0usize;
    for l in &corpus {
        // Dependence-graph or scheduling failures degrade to skips here;
        // the session already recorded them in its pass report.
        let Ok(artifacts) = session.run_loop(l) else {
            continue;
        };
        let problem = artifacts
            .problem(&machine)
            .unwrap_or_else(|e| panic!("{}: {e}", l.def.name));
        let schedule = &artifacts.schedule;
        scheduled += 1;
        let mut best = u32::MAX;
        for (s, (_, strategy)) in strategies.iter().enumerate() {
            let alloc = allocate_rotating(&problem, schedule, RegClass::Rr, *strategy)
                .unwrap_or_else(|e| panic!("{}: {e}", l.def.name));
            verify_allocation(&problem, schedule, RegClass::Rr, &alloc, 16)
                .unwrap_or_else(|(a, b, r)| panic!("{}: {a} and {b} collide in r{r}", l.def.name));
            excess[s].push(alloc.excess());
            best = best.min(alloc.excess());
        }
        excess[strategies.len()].push(best);
    }
    println!("Rotating allocation vs MaxLive over {scheduled} scheduled loops");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "strategy", "= MaxLive", "<= +1", "<= +5", "max excess"
    );
    let names = strategies.iter().map(|(n, _)| *n).chain(["best-of-4"]);
    for (name, data) in names.zip(&excess) {
        let n = data.len().max(1) as f64;
        println!(
            "{:<12} {:>9.1}% {:>9.1}% {:>9.1}% {:>10}",
            name,
            100.0 * data.iter().filter(|&&e| e == 0).count() as f64 / n,
            100.0 * data.iter().filter(|&&e| e <= 1).count() as f64 / n,
            100.0 * data.iter().filter(|&&e| e <= 5).count() as f64 / n,
            data.iter().max().copied().unwrap_or(0),
        );
    }
    println!("(Rau et al.: best strategies stay within MaxLive + 1 almost always.)");
}
