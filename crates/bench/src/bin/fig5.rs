//! Figure 5: distribution of MaxLive − MinAvg for the new (bidirectional),
//! ablated (always-early), and old (Cydrome-style) schedulers.
//!
//! Paper observations: for the new scheduler, 46% of loops achieve
//! MaxLive = MinAvg exactly, and 93% are within 10 rotating registers of
//! ideal; the old scheduler's curve sits far to the right. §7 also notes
//! that *without* the bidirectional heuristics the slack scheduler
//! "generates nearly the same register pressure as Cydrome's scheduler" —
//! the `slack/early` series shows that ablation.

use lsms_bench::{cumulative_histogram, evaluate_corpus_session, BenchArgs, CORPUS_SEED};
use lsms_machine::huff_machine;
use lsms_pipeline::CompileSession;

fn main() {
    let session = CompileSession::with_machine(huff_machine());
    let args = BenchArgs::parse();
    let corpus = evaluate_corpus_session(&session, args.corpus_size, CORPUS_SEED, args.jobs);
    corpus.warn_failures();
    let records = corpus.records;
    let series = |pick: &dyn Fn(&lsms_bench::LoopRecord) -> Option<i64>| -> Vec<i64> {
        records.iter().filter_map(pick).collect()
    };
    let new = series(&|r| r.new.pressure.as_ref().map(|p| p.excess()));
    let early = series(&|r| r.early.pressure.as_ref().map(|p| p.excess()));
    let old = series(&|r| r.old.pressure.as_ref().map(|p| p.excess()));
    println!(
        "{}",
        cumulative_histogram(
            "Figure 5: MaxLive - MinAvg (cumulative % of loops)",
            &[
                ("new (bidir)", new.clone()),
                ("slack/early", early),
                ("old (Cydrome)", old)
            ],
        )
    );
    let optimal = new.iter().filter(|&&x| x <= 0).count();
    let within10 = new.iter().filter(|&&x| x <= 10).count();
    println!(
        "new scheduler: {:.1}% of loops achieve MinAvg exactly; {:.1}% within 10 RRs (paper: 46% / 93%)",
        100.0 * optimal as f64 / new.len().max(1) as f64,
        100.0 * within10 as f64 / new.len().max(1) as f64,
    );
}
