//! How sensitive are the paper's headline results to the synthesized
//! corpus's composition?
//!
//! The real 1,525-loop FORTRAN corpus is not redistributable, so the
//! reproduction's corpus is synthesized (DESIGN.md). This experiment
//! re-runs the headline metrics under deliberately skewed generator
//! profiles — recurrence-heavy, streaming, division-heavy — to show that
//! the paper's *qualitative* claims (near-optimal II; bidirectional
//! pressure < unidirectional ≈ baseline) hold across corpus compositions,
//! not just at the calibrated one.

use lsms_loops::{generate_with_profile, GeneratorConfig, Profile};
use lsms_machine::huff_machine;
use lsms_pipeline::CompileSession;

fn main() {
    let count = std::env::var("LSMS_CORPUS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    let session = CompileSession::with_machine(huff_machine());
    println!("Corpus sensitivity ({count} generated loops per profile)");
    println!(
        "{:<18} {:>8} {:>8} | {:>10} {:>10} {:>10}",
        "profile", "optimal", "II/MII", "RR bidir", "RR early", "RR old"
    );
    let profiles = [
        ("calibrated", Profile::calibrated()),
        ("recurrence-heavy", Profile::recurrence_heavy()),
        ("streaming", Profile::streaming()),
        ("division-heavy", Profile::division_heavy()),
    ];
    for (name, profile) in profiles {
        let sources = generate_with_profile(&GeneratorConfig { seed: 2024, count }, &profile);
        let mut optimal = 0usize;
        let mut total = 0usize;
        let mut sum_ii = 0u64;
        let mut sum_mii = 0u64;
        let mut rr = [0u64; 3];
        for source in &sources {
            let Ok(unit) = session.compile_source(&source.source) else {
                continue;
            };
            let Ok(eval) = session.evaluate_variants(&unit.loops[0], false) else {
                continue;
            };
            // Keep the original skip rule: only count loops where all
            // three scheduler variants succeeded.
            let (Some(bidir_ii), Some(bidir), Some(early), Some(old)) = (
                eval.new.ii,
                eval.new.pressure.as_ref(),
                eval.early.pressure.as_ref(),
                eval.old.pressure.as_ref(),
            ) else {
                continue;
            };
            total += 1;
            optimal += usize::from(bidir_ii == eval.mii);
            sum_ii += u64::from(bidir_ii);
            sum_mii += u64::from(eval.mii);
            rr[0] += u64::from(bidir.rr_max_live);
            rr[1] += u64::from(early.rr_max_live);
            rr[2] += u64::from(old.rr_max_live);
        }
        println!(
            "{:<18} {:>7.1}% {:>8.3} | {:>10} {:>10} {:>10}",
            name,
            100.0 * optimal as f64 / total.max(1) as f64,
            sum_ii as f64 / sum_mii.max(1) as f64,
            rr[0],
            rr[1],
            rr[2],
        );
    }
    println!(
        "\nExpected invariants: optimal% stays high, RR(bidir) < RR(early) ≈ RR(old) everywhere."
    );
}
