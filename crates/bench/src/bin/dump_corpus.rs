//! Writes the benchmark corpus to disk as `.loop` files — the shareable
//! stand-in for the paper's 1,525 FORTRAN loops.
//!
//! ```sh
//! LSMS_CORPUS=1525 cargo run --release -p lsms-bench --bin dump_corpus -- corpus/
//! ```

fn main() -> std::io::Result<()> {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "corpus".to_owned());
    let count = std::env::var("LSMS_CORPUS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(lsms_loops::PAPER_CORPUS_SIZE);
    let written =
        lsms_loops::write_corpus(std::path::Path::new(&dir), count, lsms_bench::CORPUS_SEED)?;
    println!("wrote {written} loops to {dir}/");
    Ok(())
}
