//! Dense-vs-sparse bounds-propagation microbench over the corpus's
//! ejection-heavy loops, writing `BENCH_bounds_sweep.json` at the
//! repository root (or `LSMS_BOUNDS_OUT`).
//!
//! Huff's §4.4 backtracking path (`recompute_bounds` plus the forcing
//! violation sweep) is where the engine's dense O(n²)-per-ejection cost
//! lived; this bench isolates exactly those loops and times the retained
//! dense reference against the default reachability-indexed path,
//! asserting the schedules are identical. `--jobs` is accepted for CLI
//! uniformity but both arms are single-threaded by design: the A/B is a
//! per-ejection cost comparison, not a throughput measurement.

use lsms_bench::{bounds_sweep, BenchArgs, CORPUS_SEED};

fn main() {
    let args = BenchArgs::parse();
    println!("bounds_sweep: {} corpus loops", args.corpus_size);
    let report = bounds_sweep(args.corpus_size, CORPUS_SEED);
    print!("{}", report.summary());
    let json = format!(
        "{{\n  \"benchmark\": \"bounds_sweep\",\n  \"seed\": {},\n  \"report\": {}\n}}\n",
        CORPUS_SEED,
        report.json()
    );
    let out = std::env::var("LSMS_BOUNDS_OUT").unwrap_or_else(|_| "BENCH_bounds_sweep.json".into());
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("  wrote {out}");
}
