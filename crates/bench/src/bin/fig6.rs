//! Figure 6: distribution of MaxLive (rotating-register pressure).
//!
//! Paper observations: modulo scheduling does not require excessively
//! many rotating registers — with the new scheduler 92% of loops use no
//! more than 32 RRs and only 5 loops use more than 64.

use lsms_bench::{cumulative_histogram, evaluate_corpus_session, BenchArgs, CORPUS_SEED};
use lsms_machine::huff_machine;
use lsms_pipeline::CompileSession;

fn main() {
    let session = CompileSession::with_machine(huff_machine());
    let args = BenchArgs::parse();
    let corpus = evaluate_corpus_session(&session, args.corpus_size, CORPUS_SEED, args.jobs);
    corpus.warn_failures();
    let records = corpus.records;
    let pick = |f: &dyn Fn(&lsms_bench::LoopRecord) -> Option<i64>| -> Vec<i64> {
        records.iter().filter_map(f).collect()
    };
    let new = pick(&|r| r.new.pressure.as_ref().map(|p| i64::from(p.rr_max_live)));
    let early = pick(&|r| r.early.pressure.as_ref().map(|p| i64::from(p.rr_max_live)));
    let old = pick(&|r| r.old.pressure.as_ref().map(|p| i64::from(p.rr_max_live)));
    println!(
        "{}",
        cumulative_histogram(
            "Figure 6: MaxLive (cumulative % of loops)",
            &[
                ("new (bidir)", new.clone()),
                ("slack/early", early),
                ("old (Cydrome)", old)
            ],
        )
    );
    let within32 = new.iter().filter(|&&x| x <= 32).count();
    let over64 = new.iter().filter(|&&x| x > 64).count();
    println!(
        "new scheduler: {:.1}% of loops use <= 32 RRs; {} loops use > 64 (paper: 92% / 5 loops)",
        100.0 * within32 as f64 / new.len().max(1) as f64,
        over64,
    );
}
