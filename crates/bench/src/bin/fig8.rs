//! Figure 8: ICR predicate usage.
//!
//! Paper observations: ICR pressure is of no real concern — only one loop
//! used more than 32 predicates, and the two schedulers generate very
//! similar ICR pressure.

use lsms_bench::{cumulative_histogram, evaluate_corpus_session, BenchArgs, CORPUS_SEED};
use lsms_machine::huff_machine;
use lsms_pipeline::CompileSession;

fn main() {
    let session = CompileSession::with_machine(huff_machine());
    let args = BenchArgs::parse();
    let corpus = evaluate_corpus_session(&session, args.corpus_size, CORPUS_SEED, args.jobs);
    corpus.warn_failures();
    let records = corpus.records;
    let pick = |f: &dyn Fn(&lsms_bench::LoopRecord) -> Option<i64>| -> Vec<i64> {
        records.iter().filter_map(f).collect()
    };
    let new = pick(&|r| r.new.pressure.as_ref().map(|p| i64::from(p.icr_max_live)));
    let old = pick(&|r| r.old.pressure.as_ref().map(|p| i64::from(p.icr_max_live)));
    println!(
        "{}",
        cumulative_histogram(
            "Figure 8: ICR predicate usage (cumulative % of loops; stage predicates included)",
            &[("new (bidir)", new.clone()), ("old (Cydrome)", old.clone())],
        )
    );
    let over32_new = new.iter().filter(|&&x| x > 32).count();
    let over32_old = old.iter().filter(|&&x| x > 32).count();
    println!("loops using > 32 ICR predicates: new {over32_new}, old {over32_old} (paper: 1)");
}
