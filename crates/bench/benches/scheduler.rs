//! Benchmarks: scheduler throughput and the cost of its supporting
//! analyses, per §6's compilation-time discussion.
//!
//! Hand-rolled harness (`harness = false`): the container has no registry
//! access, so instead of criterion each case is timed directly — a short
//! calibration pass sizes the batch, then the mean over the batch is
//! reported. Run with `cargo bench -p lsms-bench`; pass a substring to run
//! matching cases only.

use std::time::{Duration, Instant};

use lsms_front::compile;
use lsms_machine::{huff_machine, Mrt};
use lsms_sched::bounds::{rec_mii_by_enumeration, rec_mii_min_ratio};
use lsms_sched::{
    CydromeScheduler, MinDist, MinDistCache, ParametricMinDist, SchedProblem, SlackScheduler,
};

/// Times `f`, printing mean wall-clock per iteration.
fn bench(filter: &str, name: &str, mut f: impl FnMut()) {
    if !name.contains(filter) {
        return;
    }
    // Calibrate: run until 50ms have passed to pick a batch size.
    let calib_start = Instant::now();
    let mut calib_iters = 0u32;
    while calib_start.elapsed() < Duration::from_millis(50) && calib_iters < 1_000 {
        f();
        calib_iters += 1;
    }
    let per_iter = calib_start.elapsed() / calib_iters.max(1);
    let iters = (Duration::from_millis(200).as_nanos() / per_iter.as_nanos().max(1))
        .clamp(10, 100_000) as u32;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let mean = start.elapsed() / iters;
    println!(
        "{name:<44} {:>12.3} µs/iter  ({iters} iters)",
        mean.as_nanos() as f64 / 1e3
    );
}

fn kernel_source(name: &str) -> String {
    lsms_loops::kernels()
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("no kernel named {name}"))
        .source
}

/// A large generated loop for the heavy cases.
fn big_loop_source() -> String {
    lsms_loops::generate(&lsms_loops::GeneratorConfig {
        seed: 77,
        count: 64,
    })
    .into_iter()
    .max_by_key(|l| l.source.len())
    .expect("generator produced loops")
    .source
}

fn bench_schedulers(filter: &str) {
    let machine = huff_machine();
    let sources = [
        ("huff_sample", kernel_source("huff_sample")),
        ("ll7_state", kernel_source("ll7_state")),
        ("ll6_recurrence", kernel_source("ll6_recurrence")),
        ("generated_big", big_loop_source()),
    ];
    for (name, source) in &sources {
        let unit = compile(source).expect("benchmark kernels compile");
        let body = unit.loops[0].body.clone();
        let problem = SchedProblem::new(&body, &machine).expect("schedulable");
        bench(filter, &format!("schedule/slack/{name}"), || {
            SlackScheduler::new().run(&problem).expect("schedules");
        });
        bench(filter, &format!("schedule/cydrome/{name}"), || {
            let _ = CydromeScheduler::new().run(&problem);
        });
    }
}

fn bench_analyses(filter: &str) {
    let machine = huff_machine();
    let unit = compile(&big_loop_source()).expect("compiles");
    let body = unit.loops[0].body.clone();
    let problem = SchedProblem::new(&body, &machine).expect("schedulable");
    let mii = problem.mii();
    bench(filter, "mindist/big", || {
        MinDist::compute(&problem, mii);
    });
    // The II sweep an escalating scheduler performs, uncached vs cached:
    // the cached variant pays one Floyd–Warshall per distinct II and then
    // answers from the table, which is the shape of a real corpus run
    // (three schedulers revisiting the same IIs).
    let sweep: Vec<u32> = (mii..mii + 4).collect();
    bench(filter, "mindist/sweep_x3/uncached", || {
        for _ in 0..3 {
            for &ii in &sweep {
                MinDist::compute(&problem, ii);
            }
        }
    });
    bench(filter, "mindist/sweep_x3/cached", || {
        let cache = MinDistCache::new();
        for _ in 0..3 {
            for &ii in &sweep {
                cache.get(&problem, ii);
            }
        }
    });
    // The tentpole comparison: re-evaluating MinDist at fresh IIs (the
    // shape of II escalation) by per-II Floyd–Warshall versus by
    // materializing from the once-per-problem parametric envelope. The
    // envelope build itself is timed separately — it is paid once, then
    // every subsequent II costs only an O(n²·envelope) evaluation.
    let parametric = ParametricMinDist::compute(&problem).expect("envelope builds");
    let fresh: Vec<u32> = (parametric.rec_mii()..parametric.rec_mii() + 8).collect();
    // Both variants recycle one matrix buffer, as the cache's pool does.
    let mut buf = Vec::new();
    bench(filter, "mindist_sweep/floyd_warshall_x8", || {
        for &ii in &fresh {
            let md = MinDist::compute_into(&problem, ii, std::mem::take(&mut buf));
            buf = std::hint::black_box(md).into_buf();
        }
    });
    bench(filter, "mindist_sweep/parametric_build", || {
        std::hint::black_box(ParametricMinDist::compute(&problem));
    });
    bench(filter, "mindist_sweep/materialize_x8", || {
        for &ii in &fresh {
            let md = parametric.materialize_into(ii, std::mem::take(&mut buf));
            buf = std::hint::black_box(md).into_buf();
        }
    });
    bench(filter, "recmii/circuits/big", || {
        let _ = rec_mii_by_enumeration(&problem, 1_000_000);
    });
    bench(filter, "recmii/min_ratio/big", || {
        rec_mii_min_ratio(&problem);
    });
}

fn bench_mrt(filter: &str) {
    use lsms_ir::{OpId, OpKind};
    let machine = huff_machine();
    let ii = 8u32;
    let fadd = machine.desc(OpKind::FAdd).clone();
    let div = machine.desc(OpKind::FDiv).clone();
    // fits on a half-full table: the scheduler's hottest query.
    let mut mrt = Mrt::new(&machine, ii);
    for t in (0..i64::from(ii)).step_by(2) {
        mrt.place(OpId::new(t as usize), &fadd, 0, t);
    }
    bench(filter, "mrt/fits/fadd", || {
        for t in 0..i64::from(ii) {
            std::hint::black_box(mrt.fits(OpId::new(99), &fadd, 0, t));
        }
    });
    bench(filter, "mrt/fits/div_long_pattern", || {
        for t in 0..i64::from(ii) {
            std::hint::black_box(mrt.fits(OpId::new(99), &div, 0, t));
        }
    });
    bench(filter, "mrt/place_remove/fadd", || {
        let mut m = Mrt::new(&machine, ii);
        for t in 0..i64::from(ii) {
            m.place(OpId::new(t as usize), &fadd, 0, t);
        }
        for t in 0..i64::from(ii) {
            m.remove(OpId::new(t as usize), &fadd, 0, t);
        }
    });
    bench(filter, "mrt/conflicts_into/fadd", || {
        let mut buf = Vec::new();
        for t in 0..i64::from(ii) {
            mrt.conflicts_into(OpId::new(99), &fadd, 0, t, &mut buf);
            std::hint::black_box(buf.len());
        }
    });
}

fn bench_frontend(filter: &str) {
    let source = big_loop_source();
    bench(filter, "frontend/compile_big", || {
        compile(&source).expect("compiles");
    });
}

fn bench_backend(filter: &str) {
    use lsms_ir::RegClass;
    use lsms_regalloc::{allocate_rotating, Strategy};
    use lsms_sim::{make_workspace, run_kernel, run_reference};

    let machine = huff_machine();
    let unit = compile(&kernel_source("huff_sample")).expect("compiles");
    let compiled = unit.loops.into_iter().next().expect("one loop");
    let body = compiled.body.clone();
    let problem = SchedProblem::new(&body, &machine).expect("schedulable");
    let schedule = SlackScheduler::new().run(&problem).expect("schedules");

    bench(filter, "regalloc/rotating/sample", || {
        allocate_rotating(&problem, &schedule, RegClass::Rr, Strategy::default())
            .expect("allocates");
    });

    let rr = allocate_rotating(&problem, &schedule, RegClass::Rr, Strategy::default())
        .expect("allocates");
    let icr = allocate_rotating(&problem, &schedule, RegClass::Icr, Strategy::default())
        .expect("allocates");
    bench(filter, "codegen/kernel/sample", || {
        lsms_codegen::emit(&problem, &schedule, &rr, &icr).expect("emits");
    });
    bench(filter, "codegen/mve/sample", || {
        lsms_codegen::emit_mve(&problem, &schedule).expect("emits");
    });

    let kernel = lsms_codegen::emit(&problem, &schedule, &rr, &icr).expect("emits");
    let workspace = make_workspace(&compiled, 256, 7);
    bench(filter, "sim/rotating/sample/256iters", || {
        run_kernel(
            &compiled, &problem, &schedule, &kernel, &rr, &icr, &workspace,
        )
        .expect("runs");
    });
    bench(filter, "sim/reference/sample/256iters", || {
        run_reference(&compiled, &workspace);
    });
}

fn main() {
    // `cargo bench` passes `--bench`; anything else is a name filter.
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_default();
    bench_schedulers(&filter);
    bench_analyses(&filter);
    bench_mrt(&filter);
    bench_frontend(&filter);
    bench_backend(&filter);
}
