//! Criterion benchmarks: scheduler throughput and the cost of its
//! supporting analyses, per §6's compilation-time discussion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsms_front::compile;
use lsms_machine::huff_machine;
use lsms_sched::bounds::{rec_mii_by_enumeration, rec_mii_min_ratio};
use lsms_sched::{CydromeScheduler, MinDist, SchedProblem, SlackScheduler};

fn kernel_source(name: &str) -> String {
    lsms_loops::kernels()
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("no kernel named {name}"))
        .source
}

/// A large generated loop for the heavy cases.
fn big_loop_source() -> String {
    lsms_loops::generate(&lsms_loops::GeneratorConfig { seed: 77, count: 64 })
        .into_iter()
        .max_by_key(|l| l.source.len())
        .expect("generator produced loops")
        .source
}

fn bench_schedulers(c: &mut Criterion) {
    let machine = huff_machine();
    let sources = [
        ("huff_sample", kernel_source("huff_sample")),
        ("ll7_state", kernel_source("ll7_state")),
        ("ll6_recurrence", kernel_source("ll6_recurrence")),
        ("generated_big", big_loop_source()),
    ];
    let mut group = c.benchmark_group("schedule");
    for (name, source) in &sources {
        let unit = compile(source).expect("benchmark kernels compile");
        let body = unit.loops[0].body.clone();
        let problem = SchedProblem::new(&body, &machine).expect("schedulable");
        group.bench_with_input(BenchmarkId::new("slack", name), &problem, |b, p| {
            b.iter(|| SlackScheduler::new().run(p).expect("schedules"))
        });
        group.bench_with_input(BenchmarkId::new("cydrome", name), &problem, |b, p| {
            b.iter(|| CydromeScheduler::new().run(p))
        });
    }
    group.finish();
}

fn bench_analyses(c: &mut Criterion) {
    let machine = huff_machine();
    let unit = compile(&big_loop_source()).expect("compiles");
    let body = unit.loops[0].body.clone();
    let problem = SchedProblem::new(&body, &machine).expect("schedulable");
    let mii = problem.mii();
    c.bench_function("mindist/big", |b| b.iter(|| MinDist::compute(&problem, mii)));
    c.bench_function("recmii/circuits/big", |b| {
        b.iter(|| rec_mii_by_enumeration(&problem, 1_000_000))
    });
    c.bench_function("recmii/min_ratio/big", |b| b.iter(|| rec_mii_min_ratio(&problem)));
}

fn bench_frontend(c: &mut Criterion) {
    let source = big_loop_source();
    c.bench_function("frontend/compile_big", |b| b.iter(|| compile(&source).expect("compiles")));
}

criterion_group!(benches, bench_schedulers, bench_analyses, bench_frontend);

fn bench_backend(c: &mut Criterion) {
    use lsms_ir::RegClass;
    use lsms_regalloc::{allocate_rotating, Strategy};
    use lsms_sim::{make_workspace, run_kernel, run_reference};

    let machine = huff_machine();
    let unit = compile(&kernel_source("huff_sample")).expect("compiles");
    let compiled = unit.loops.into_iter().next().expect("one loop");
    let body = compiled.body.clone();
    let problem = SchedProblem::new(&body, &machine).expect("schedulable");
    let schedule = SlackScheduler::new().run(&problem).expect("schedules");

    c.bench_function("regalloc/rotating/sample", |b| {
        b.iter(|| {
            allocate_rotating(&problem, &schedule, RegClass::Rr, Strategy::default())
                .expect("allocates")
        })
    });

    let rr = allocate_rotating(&problem, &schedule, RegClass::Rr, Strategy::default())
        .expect("allocates");
    let icr = allocate_rotating(&problem, &schedule, RegClass::Icr, Strategy::default())
        .expect("allocates");
    c.bench_function("codegen/kernel/sample", |b| {
        b.iter(|| lsms_codegen::emit(&problem, &schedule, &rr, &icr).expect("emits"))
    });
    c.bench_function("codegen/mve/sample", |b| {
        b.iter(|| lsms_codegen::emit_mve(&problem, &schedule).expect("emits"))
    });

    let kernel = lsms_codegen::emit(&problem, &schedule, &rr, &icr).expect("emits");
    let workspace = make_workspace(&compiled, 256, 7);
    c.bench_function("sim/rotating/sample/256iters", |b| {
        b.iter(|| {
            run_kernel(&compiled, &problem, &schedule, &kernel, &rr, &icr, &workspace)
                .expect("runs")
        })
    });
    c.bench_function("sim/reference/sample/256iters", |b| {
        b.iter(|| run_reference(&compiled, &workspace))
    });
}

criterion_group!(backend, bench_backend);
criterion_main!(benches, backend);
