//! Property tests: rotating allocations over compiled random loops are
//! always conflict-free under the brute-force oracle, for every strategy.
//!
//! Formerly a `proptest` suite; rewritten over the vendored deterministic
//! PRNG so the workspace builds without external crates.

use lsms_front::compile;
use lsms_ir::RegClass;
use lsms_machine::huff_machine;
use lsms_prng::SmallRng;
use lsms_regalloc::{allocate_rotating, mve_plan, verify_allocation, Fit, Ordering, Strategy};
use lsms_sched::pressure::measure;
use lsms_sched::{SchedProblem, SlackScheduler};

fn strategies() -> [Strategy; 4] {
    [
        Strategy {
            ordering: Ordering::StartTime,
            fit: Fit::FirstFit,
        },
        Strategy {
            ordering: Ordering::StartTime,
            fit: Fit::EndFit,
        },
        Strategy {
            ordering: Ordering::LongestFirst,
            fit: Fit::FirstFit,
        },
        Strategy {
            ordering: Ordering::LongestFirst,
            fit: Fit::EndFit,
        },
    ]
}

#[test]
fn allocations_verify_for_every_strategy() {
    for case in 0u64..40 {
        let seed = SmallRng::seed_from_u64(0xa110c + case).gen_range(0..50_000u64);
        let generated = lsms_loops::generate(&lsms_loops::GeneratorConfig { seed, count: 1 });
        let unit = compile(&generated[0].source).expect("generator emits valid DSL");
        let compiled = &unit.loops[0];
        let machine = huff_machine();
        let problem = SchedProblem::new(&compiled.body, &machine).expect("problem builds");
        let Ok(schedule) = SlackScheduler::new().run(&problem) else {
            continue; // scheduling failures are measured elsewhere
        };
        let report = measure(&problem, &schedule);
        for strategy in strategies() {
            for class in [RegClass::Rr, RegClass::Icr] {
                let alloc = allocate_rotating(&problem, &schedule, class, strategy)
                    .expect("allocation succeeds within the cap");
                verify_allocation(&problem, &schedule, class, &alloc, 12).unwrap_or_else(
                    |(a, b, r)| panic!("{strategy:?}/{class:?}: {a} and {b} collide in r{r}"),
                );
                if class == RegClass::Rr {
                    // Never below the MaxLive lower bound.
                    assert!(alloc.num_regs >= report.rr_max_live, "seed {seed}");
                }
            }
        }
    }
}

#[test]
fn mve_plan_is_consistent_with_lifetimes() {
    for case in 0u64..40 {
        let seed = SmallRng::seed_from_u64(0x33e9 + case).gen_range(0..50_000u64);
        let generated = lsms_loops::generate(&lsms_loops::GeneratorConfig { seed, count: 1 });
        let unit = compile(&generated[0].source).expect("generator emits valid DSL");
        let machine = huff_machine();
        let problem = SchedProblem::new(&unit.loops[0].body, &machine).expect("problem builds");
        let Ok(schedule) = SlackScheduler::new().run(&problem) else {
            continue;
        };
        let plan = mve_plan(&problem, &schedule);
        assert!(plan.unroll >= 1);
        assert!(plan.unroll >= plan.unroll_max);
        assert_eq!(
            plan.expanded_ops,
            u64::from(plan.unroll) * problem.num_real_ops() as u64,
            "seed {seed}"
        );
        // Registers: at least one per register-holding value with a
        // positive lifetime, at most unroll_max per value.
        assert!(
            u64::from(plan.registers)
                <= u64::from(plan.unroll_max) * problem.body().values().len() as u64,
            "seed {seed}"
        );
    }
}
