//! Property tests: rotating allocations over compiled random loops are
//! always conflict-free under the brute-force oracle, for every strategy.

use lsms_front::compile;
use lsms_ir::RegClass;
use lsms_machine::huff_machine;
use lsms_regalloc::{allocate_rotating, mve_plan, verify_allocation, Fit, Ordering, Strategy};
use lsms_sched::pressure::measure;
use lsms_sched::{SchedProblem, SlackScheduler};
use proptest::prelude::*;

fn strategies() -> [Strategy; 4] {
    [
        Strategy { ordering: Ordering::StartTime, fit: Fit::FirstFit },
        Strategy { ordering: Ordering::StartTime, fit: Fit::EndFit },
        Strategy { ordering: Ordering::LongestFirst, fit: Fit::FirstFit },
        Strategy { ordering: Ordering::LongestFirst, fit: Fit::EndFit },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn allocations_verify_for_every_strategy(seed in 0u64..50_000) {
        let generated =
            lsms_loops::generate(&lsms_loops::GeneratorConfig { seed, count: 1 });
        let unit = compile(&generated[0].source).expect("generator emits valid DSL");
        let compiled = &unit.loops[0];
        let machine = huff_machine();
        let problem = SchedProblem::new(&compiled.body, &machine).expect("problem builds");
        let Ok(schedule) = SlackScheduler::new().run(&problem) else {
            return Ok(()); // scheduling failures are measured elsewhere
        };
        let report = measure(&problem, &schedule);
        for strategy in strategies() {
            for class in [RegClass::Rr, RegClass::Icr] {
                let alloc = allocate_rotating(&problem, &schedule, class, strategy)
                    .expect("allocation succeeds within the cap");
                verify_allocation(&problem, &schedule, class, &alloc, 12).unwrap_or_else(
                    |(a, b, r)| panic!("{strategy:?}/{class:?}: {a} and {b} collide in r{r}"),
                );
                if class == RegClass::Rr {
                    // Never below the MaxLive lower bound.
                    prop_assert!(alloc.num_regs >= report.rr_max_live);
                }
            }
        }
    }

    #[test]
    fn mve_plan_is_consistent_with_lifetimes(seed in 0u64..50_000) {
        let generated =
            lsms_loops::generate(&lsms_loops::GeneratorConfig { seed, count: 1 });
        let unit = compile(&generated[0].source).expect("generator emits valid DSL");
        let machine = huff_machine();
        let problem = SchedProblem::new(&unit.loops[0].body, &machine).expect("problem builds");
        let Ok(schedule) = SlackScheduler::new().run(&problem) else {
            return Ok(());
        };
        let plan = mve_plan(&problem, &schedule);
        prop_assert!(plan.unroll >= 1);
        prop_assert!(plan.unroll >= plan.unroll_max);
        prop_assert!(plan.unroll >= plan.unroll_max);
        prop_assert_eq!(
            plan.expanded_ops,
            u64::from(plan.unroll) * problem.num_real_ops() as u64
        );
        // Registers: at least one per register-holding value with a
        // positive lifetime, at most unroll_max per value.
        prop_assert!(u64::from(plan.registers)
            <= u64::from(plan.unroll_max) * problem.body().values().len() as u64);
    }
}
