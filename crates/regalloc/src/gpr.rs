//! GPR (loop-invariant) register assignment.
//!
//! Loop invariants never change during the loop, so their "allocation" is
//! a stable enumeration: one static register per invariant that the body
//! actually reads. The same assignment serves both code-generation
//! schemas, and its size is the GPR-pressure figure of the paper's
//! Figure 7.

use lsms_ir::{RegClass, ValueId};
use lsms_sched::SchedProblem;

/// One static register index per live GPR value, in value order.
///
/// Included are loop invariants and any loop-variant value without an
/// in-loop definition (live-in scalars kept static); values nothing reads
/// — such as placeholders orphaned by the front end's rewriting — get no
/// register.
pub fn assign_gprs(problem: &SchedProblem<'_>) -> Vec<(ValueId, u32)> {
    let body = problem.body();
    let mut read = vec![false; body.values().len()];
    for op in body.ops() {
        for v in op.reads() {
            read[v.index()] = true;
        }
    }
    let mut bindings = Vec::new();
    for v in body.values() {
        if v.def.is_none() && v.reg_class() != RegClass::Icr && read[v.id.index()] {
            bindings.push((v.id, bindings.len() as u32));
        }
    }
    bindings
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_front::compile;
    use lsms_machine::huff_machine;
    use lsms_sched::pressure::gpr_count;

    #[test]
    fn bindings_match_the_pressure_count() {
        let unit = compile(
            "loop k(i = 1..n) {
                 real x[], y[];
                 param real a, b;
                 y[i] = a * x[i] + b * x[i-1] + 2.5;
             }",
        )
        .unwrap();
        let machine = huff_machine();
        let problem = SchedProblem::new(&unit.loops[0].body, &machine).unwrap();
        let bindings = assign_gprs(&problem);
        assert_eq!(bindings.len() as u32, gpr_count(&problem));
        // Indices are dense and ordered.
        for (i, (_, idx)) in bindings.iter().enumerate() {
            assert_eq!(*idx, i as u32);
        }
    }

    #[test]
    fn unread_invariants_get_no_register() {
        let unit = compile("loop k(i = 1..n) { real x[]; x[i] = 1.0; }").unwrap();
        let machine = huff_machine();
        let problem = SchedProblem::new(&unit.loops[0].body, &machine).unwrap();
        let bindings = assign_gprs(&problem);
        // stride8, the ref base, and the 1.0 constant are all read.
        assert!(bindings.len() >= 3);
        for (v, _) in &bindings {
            let value = problem.body().value(*v);
            assert!(value.def.is_none());
        }
    }
}
