//! Register allocation for modulo-scheduled loops.
//!
//! The paper approximates a schedule's register pressure by `MaxLive`
//! because Rau et al. (PLDI 1992, the paper's \[18\]) showed allocation
//! strategies for software-pipelined loops almost always achieve it —
//! "the wands-only strategy using end-fit with adjacency ordering never
//! needed more than MaxLive + 1 registers" (§3.2, footnote 4). This crate
//! reproduces that substrate:
//!
//! * [`allocate_rotating`] assigns each loop variant an offset in a
//!   rotating register file (§2.3), searching upward from `MaxLive` for
//!   the smallest file size that admits a conflict-free assignment under a
//!   configurable ordering/fit [`Strategy`];
//! * [`verify_allocation`] is an independent brute-force oracle that
//!   replays the allocation over concrete cycles and register indices;
//! * [`mve_plan`] quantifies the *modulo variable expansion* alternative
//!   for machines without rotating files — the unroll-and-rename scheme
//!   whose code expansion motivates rotation (§2.3, \[9\], \[18\]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gpr;
mod mve;
mod rotating;

pub use gpr::assign_gprs;
pub use mve::{mve_plan, MvePlan};
pub use rotating::{
    allocate_rotating, verify_allocation, AllocError, Fit, Ordering, RotatingAllocation, Strategy,
};
