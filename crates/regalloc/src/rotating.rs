//! Offset assignment in a rotating register file.
//!
//! # The conflict model
//!
//! The file rotates once per kernel iteration: register specifiers are
//! added to an iteration control pointer (ICP) that decrements every II
//! cycles (§2.3). A value `v` defined at schedule time `t_v` in iteration
//! `i` resolves its destination offset `o_v` against the ICP at issue, so
//! its instance occupies physical register
//!
//! ```text
//! P(v, i) = (o_v − (i + stage(v))) mod N        stage(v) = t_v div II
//! ```
//!
//! for the `LT(v)` cycles of its lifetime. Instances of `v` and `w` (with
//! iteration skew `d = j − i`) collide exactly when they share a physical
//! register *and* their lifetime intervals overlap, which reduces to the
//! **forbidden-distance** condition
//!
//! ```text
//! o_w ≡ o_v + d + stage(w) − stage(v)   (mod N)
//! for every d with  −LT(w) < d·II + t_w − t_v < LT(v)
//! ```
//!
//! Allocation is then circular graph colouring with distance constraints:
//! order the values, give each the first (or best) non-forbidden offset,
//! and grow `N` from `MaxLive` until everything fits.

use std::collections::BTreeMap;

use lsms_ir::{RegClass, ValueId};
use lsms_sched::pressure::{lifetimes, live_vector};
use lsms_sched::{SchedProblem, Schedule};

/// The order in which values claim offsets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Ordering {
    /// By definition time (Rau et al.'s *start-time ordering*).
    #[default]
    StartTime,
    /// By decreasing lifetime length, so the hardest values go first
    /// (*adjacency ordering*'s effect: long lifetimes pack end to end).
    LongestFirst,
}

/// How a value picks among its allowed offsets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Fit {
    /// The smallest allowed offset.
    #[default]
    FirstFit,
    /// The allowed offset whose predecessor offset is busiest — packing
    /// values tightly against one another (*end fit*).
    EndFit,
}

/// An allocation strategy: ordering × fit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Strategy {
    /// Value ordering.
    pub ordering: Ordering,
    /// Offset choice.
    pub fit: Fit,
}

/// A successful rotating-file allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RotatingAllocation {
    /// File size (number of rotating registers used).
    pub num_regs: u32,
    /// Offset per allocated value.
    pub offsets: BTreeMap<ValueId, u32>,
    /// The `MaxLive` lower bound the search started from.
    pub max_live: u32,
}

impl RotatingAllocation {
    /// How far above `MaxLive` the allocation landed — the §3.2 claim is
    /// that good strategies keep this at 0 or 1 almost always.
    pub fn excess(&self) -> u32 {
        self.num_regs - self.max_live
    }
}

/// Allocation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// No conflict-free assignment found up to the size cap.
    CapExceeded {
        /// The largest file size attempted.
        cap: u32,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::CapExceeded { cap } => {
                write!(
                    f,
                    "no conflict-free rotating allocation within {cap} registers"
                )
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// One value's placement-relevant geometry.
#[derive(Clone, Copy, Debug)]
struct Live {
    value: ValueId,
    /// Definition issue time.
    def: i64,
    /// Lifetime length in cycles (> 0).
    len: i64,
    /// Pre-loop instances `j ∈ [-depth, 0)` are *live-ins*: they sit in
    /// the file from cycle 0 (seeded before the loop, like Figure 3's
    /// initial recurrence values) until their last use, so their
    /// occupancy is `[0, j·II + def + len)` — clamped at zero, much
    /// longer than a regular instance's.
    depth: i64,
}

/// Allocates rotating registers for all live values of `class`
/// (`RegClass::Rr` for the paper's study; `RegClass::Icr` works the same
/// way for predicates).
///
/// Searches file sizes from `MaxLive` upward; each size tries the
/// strategy's ordering and fit.
///
/// # Errors
///
/// Returns [`AllocError::CapExceeded`] if no assignment exists within
/// `MaxLive + 64` registers (never observed; a defensive bound).
pub fn allocate_rotating(
    problem: &SchedProblem<'_>,
    schedule: &Schedule,
    class: RegClass,
    strategy: Strategy,
) -> Result<RotatingAllocation, AllocError> {
    let lt = lifetimes(problem, schedule);
    let vector = live_vector(problem, schedule, &lt, class);
    let max_live = vector.iter().copied().max().unwrap_or(0);
    let ii = i64::from(schedule.ii);

    // Live-in depth: the deepest ω any use reaches back; the first
    // `depth` iterations read pre-loop instances seeded at cycle 0.
    let mut depth = vec![0i64; problem.body().values().len()];
    for op in problem.body().ops() {
        for (&v, &w) in op.inputs.iter().zip(&op.input_omegas) {
            depth[v.index()] = depth[v.index()].max(i64::from(w));
        }
    }
    let mut lives: Vec<Live> = problem
        .body()
        .values()
        .iter()
        .filter(|v| v.reg_class() == class)
        .filter_map(|v| {
            let def = v.def?;
            // Values with no register-flow use still occupy their
            // destination register at the write itself: give them a
            // one-cycle lifetime so every defined value gets an offset
            // (code generation requires it).
            let len = lt[v.id.index()].unwrap_or(1).max(1);
            Some(Live {
                value: v.id,
                def: schedule.times[def.index()],
                len,
                depth: depth[v.id.index()],
            })
        })
        .collect();
    match strategy.ordering {
        Ordering::StartTime => lives.sort_by_key(|l| (l.def, l.value)),
        Ordering::LongestFirst => lives.sort_by_key(|l| (-l.len, l.def, l.value)),
    }

    if lives.is_empty() {
        return Ok(RotatingAllocation {
            num_regs: 0,
            offsets: BTreeMap::new(),
            max_live,
        });
    }

    // The self-overlap constraint alone forces N*II >= max lifetime.
    let self_min = lives
        .iter()
        .map(|l| l.len.div_euclid(ii) + 1)
        .max()
        .unwrap_or(1) as u32;
    let start = max_live.max(self_min).max(1);
    let cap = start + 64;
    for n in start..=cap {
        if let Some(offsets) = try_size(&lives, ii, n, strategy.fit) {
            lsms_trace::add("regalloc", "allocations", 1);
            lsms_trace::observe("regalloc_regs", u64::from(n));
            lsms_trace::observe("regalloc_excess", u64::from(n.saturating_sub(max_live)));
            return Ok(RotatingAllocation {
                num_regs: n,
                offsets,
                max_live,
            });
        }
    }
    lsms_trace::instant(
        "regalloc.alloc_fail",
        &[("max_live", i64::from(max_live)), ("cap", i64::from(cap))],
    );
    lsms_trace::add("regalloc", "alloc_failures", 1);
    Err(AllocError::CapExceeded { cap })
}

fn try_size(lives: &[Live], ii: i64, n: u32, fit: Fit) -> Option<BTreeMap<ValueId, u32>> {
    let n_i = i64::from(n);
    let mut offsets: BTreeMap<ValueId, u32> = BTreeMap::new();
    let mut placed: Vec<(Live, i64)> = Vec::new();
    for &live in lives {
        // Self conflict: instances i and i + k*n share a register; they
        // must not overlap in time (strictly, when live-in seeds extend
        // the first instances' occupancy). Live-in depth must also fit.
        if n_i * ii < live.len || (live.depth > 0 && n_i * ii <= live.len) || live.depth >= n_i {
            return None;
        }
        let mut forbidden = vec![false; n as usize];
        for &(other, o_w) in &placed {
            for o_v in 0..n_i {
                if !forbidden[o_v as usize] && pair_conflicts(&live, o_v, &other, o_w, ii, n_i) {
                    forbidden[o_v as usize] = true;
                }
            }
        }
        let choice = match fit {
            Fit::FirstFit => (0..n as usize).find(|&o| !forbidden[o]),
            Fit::EndFit => (0..n as usize).filter(|&o| !forbidden[o]).max_by_key(|&o| {
                // Prefer offsets adjacent to forbidden (busy) slots.
                let prev = (o + n as usize - 1) % n as usize;
                (forbidden[prev] as u8, std::cmp::Reverse(o))
            }),
        };
        let o = choice? as i64;
        offsets.insert(live.value, o as u32);
        placed.push((live, o));
    }
    Some(offsets)
}

/// True when values `v` (at offset `o_v`) and `w` (at `o_w`) have some
/// pair of instances sharing a physical register while both are live.
///
/// Instance `i ≥ 0` of `v` occupies rotation frame `i + stage(v)` during
/// `[i·II + t_v, + LT_v)`; live-in instances `i < 0` occupy their frame
/// from cycle 0 instead.
fn pair_conflicts(v: &Live, o_v: i64, w: &Live, o_w: i64, ii: i64, n: i64) -> bool {
    let s_v = v.def.div_euclid(ii);
    let s_w = w.def.div_euclid(ii);
    // Regular-regular: conflicts depend only on the skew d = j - i.
    let diff = w.def - v.def;
    let d_lo = div_floor(-w.len - diff, ii) + 1;
    let d_hi = div_ceil(v.len - diff, ii) - 1;
    for d in d_lo..=d_hi {
        if (o_w - o_v - d - s_w + s_v).rem_euclid(n) == 0 {
            return true;
        }
    }
    // v's live-in seeds against w's regular instances. A seed whose last
    // read is at cycle `end` occupies its register for `[0, end]` — the
    // closed end is conservative by one cycle but keeps the model immune
    // to read-at-end/write-at-end ordering subtleties.
    let seeds_vs_regular = |a: &Live, o_a: i64, s_a: i64, b: &Live, o_b: i64, s_b: i64| {
        for j in -a.depth..0 {
            let end = j * ii + a.def + a.len;
            if end < 0 {
                continue; // nothing reads this seed after the loop starts
            }
            // Regular instances m >= 0 of b writing within [0, end].
            let m_hi = div_floor(end - b.def, ii);
            for m in 0..=m_hi.max(-1) {
                if (o_a - j - s_a - (o_b - m - s_b)).rem_euclid(n) == 0 {
                    return true;
                }
            }
        }
        false
    };
    if seeds_vs_regular(v, o_v, s_v, w, o_w, s_w) || seeds_vs_regular(w, o_w, s_w, v, o_v, s_v) {
        return true;
    }
    // Seed against seed: both are written at loop-setup time and read at
    // or after cycle 0, so sharing a frame is enough.
    for j_v in -v.depth..0 {
        if j_v * ii + v.def + v.len < 0 {
            continue;
        }
        for j_w in -w.depth..0 {
            if j_w * ii + w.def + w.len < 0 {
                continue;
            }
            if (o_v - j_v - s_v - (o_w - j_w - s_w)).rem_euclid(n) == 0 {
                return true;
            }
        }
    }
    false
}

fn div_floor(a: i64, b: i64) -> i64 {
    a.div_euclid(b)
}

fn div_ceil(a: i64, b: i64) -> i64 {
    -(-a).div_euclid(b)
}

/// Brute-force check of an allocation: replays every value instance over
/// `iters` kernel iterations onto concrete physical registers and cycle
/// numbers, reporting the first double booking.
///
/// Shares no geometry code with the allocator, so it serves as an oracle
/// for property tests.
///
/// # Errors
///
/// Returns the two values (and the physical register) that collide.
pub fn verify_allocation(
    problem: &SchedProblem<'_>,
    schedule: &Schedule,
    class: RegClass,
    alloc: &RotatingAllocation,
    iters: i64,
) -> Result<(), (ValueId, ValueId, u32)> {
    if alloc.num_regs == 0 {
        return Ok(());
    }
    let lt = lifetimes(problem, schedule);
    let ii = i64::from(schedule.ii);
    let n = i64::from(alloc.num_regs);
    let mut depth = vec![0i64; problem.body().values().len()];
    for op in problem.body().ops() {
        for (&v, &w) in op.inputs.iter().zip(&op.input_omegas) {
            depth[v.index()] = depth[v.index()].max(i64::from(w));
        }
    }
    // occupancy[phys][cycle] = (value, instance)
    let horizon = (iters + 8) * ii + schedule.length() + 8;
    let mut occupancy: Vec<Vec<Option<(ValueId, i64)>>> =
        vec![vec![None; horizon as usize]; alloc.num_regs as usize];
    for v in problem.body().values() {
        if v.reg_class() != class {
            continue;
        }
        let Some(def) = v.def else { continue };
        let Some(&offset) = alloc.offsets.get(&v.id) else {
            continue;
        };
        let len = lt[v.id.index()].unwrap_or(1).max(1);
        // Live-in instances are seeded before the loop and occupy their
        // register from cycle 0 through their last read (closed interval,
        // matching the allocator's conservative seed model).
        for i in -depth[v.id.index()]..iters {
            let t_def = i * ii + schedule.times[def.index()];
            let rotations = t_def.div_euclid(ii);
            let phys = (i64::from(offset) - rotations).rem_euclid(n) as usize;
            let begin = t_def.max(0);
            let end = if i < 0 { t_def + len + 1 } else { t_def + len };
            for c in begin..end.min(horizon) {
                let slot = &mut occupancy[phys][c as usize];
                if let Some((other, inst)) = *slot {
                    if other != v.id || inst != i {
                        return Err((other, v.id, phys as u32));
                    }
                } else {
                    *slot = Some((v.id, i));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_front::compile;
    use lsms_machine::huff_machine;
    use lsms_sched::pressure::measure;
    use lsms_sched::SlackScheduler;

    fn strategies() -> Vec<Strategy> {
        vec![
            Strategy {
                ordering: Ordering::StartTime,
                fit: Fit::FirstFit,
            },
            Strategy {
                ordering: Ordering::StartTime,
                fit: Fit::EndFit,
            },
            Strategy {
                ordering: Ordering::LongestFirst,
                fit: Fit::FirstFit,
            },
            Strategy {
                ordering: Ordering::LongestFirst,
                fit: Fit::EndFit,
            },
        ]
    }

    fn check_loop(src: &str, slack_excess: u32) {
        let unit = compile(src).unwrap();
        let machine = huff_machine();
        for l in &unit.loops {
            let problem = SchedProblem::new(&l.body, &machine).unwrap();
            let schedule = SlackScheduler::new().run(&problem).unwrap();
            let report = measure(&problem, &schedule);
            let mut best = u32::MAX;
            for strategy in strategies() {
                let alloc = allocate_rotating(&problem, &schedule, RegClass::Rr, strategy).unwrap();
                assert_eq!(alloc.max_live, report.rr_max_live);
                best = best.min(alloc.excess());
                verify_allocation(&problem, &schedule, RegClass::Rr, &alloc, 24)
                    .unwrap_or_else(|(a, b, r)| panic!("{a} and {b} collide in r{r}"));
            }
            // The paper's §3.2 claim concerns the *best* strategy: near
            // MaxLive. Live-in seeds (occupying registers from cycle 0)
            // can push individual strategies higher.
            assert!(
                best <= slack_excess,
                "best strategy used MaxLive + {best} (> +{slack_excess})"
            );
        }
    }

    #[test]
    fn allocates_the_sample_loop_near_max_live() {
        check_loop(
            "loop sample(i = 3..n) {
                 real x[], y[];
                 x[i] = x[i-1] + y[i-2];
                 y[i] = y[i-1] + x[i-2];
             }",
            2,
        );
    }

    #[test]
    fn allocates_long_lifetimes_from_loads() {
        check_loop(
            "loop axpy(i = 1..n) {
                 real x[], y[];
                 param real a;
                 y[i] = y[i] + a * x[i];
             }",
            2,
        );
    }

    #[test]
    fn allocates_reductions() {
        check_loop(
            "loop dot(i = 1..n) {
                 real x[], y[];
                 real s;
                 s = s + x[i] * y[i];
             }",
            2,
        );
    }

    #[test]
    fn icr_class_allocates_predicates() {
        let unit = compile(
            "loop clip(i = 1..n) {
                 real x[], y[];
                 param real t;
                 if (x[i] > t) { y[i] = t; } else { y[i] = x[i]; }
             }",
        )
        .unwrap();
        let machine = huff_machine();
        let problem = SchedProblem::new(&unit.loops[0].body, &machine).unwrap();
        let schedule = SlackScheduler::new().run(&problem).unwrap();
        let alloc =
            allocate_rotating(&problem, &schedule, RegClass::Icr, Strategy::default()).unwrap();
        assert!(alloc.num_regs >= 1);
        verify_allocation(&problem, &schedule, RegClass::Icr, &alloc, 24).unwrap();
    }

    #[test]
    fn empty_class_allocates_zero_registers() {
        let unit = compile("loop t(i = 1..n) { real x[]; x[i] = 0.5; }").unwrap();
        let machine = huff_machine();
        let problem = SchedProblem::new(&unit.loops[0].body, &machine).unwrap();
        let schedule = SlackScheduler::new().run(&problem).unwrap();
        let alloc =
            allocate_rotating(&problem, &schedule, RegClass::Icr, Strategy::default()).unwrap();
        assert_eq!(alloc.num_regs, 0);
    }

    #[test]
    fn division_helpers() {
        assert_eq!(div_floor(-3, 2), -2);
        assert_eq!(div_floor(3, 2), 1);
        assert_eq!(div_ceil(-3, 2), -1);
        assert_eq!(div_ceil(3, 2), 2);
    }
}
