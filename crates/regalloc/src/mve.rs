//! Modulo variable expansion (MVE): the no-rotating-hardware alternative.
//!
//! When a value lives longer than II, adjacent iterations cannot target
//! the same register. Without a rotating file, the kernel is unrolled and
//! the duplicate register specifiers renamed (§2.3, citing Lam \[9\]); the
//! price is code expansion, which Rau et al. \[18\] found can be large —
//! the trade-off this module quantifies.

use lsms_ir::RegClass;
use lsms_sched::pressure::lifetimes;
use lsms_sched::{SchedProblem, Schedule};

/// The unroll-and-rename plan for one scheduled loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MvePlan {
    /// Copies of the kernel needed so each value's `q_v = ⌈LT(v)/II⌉`
    /// names divide the unroll evenly: `lcm(q_v)` (capped; the cap is
    /// never hit in the corpus).
    pub unroll: u32,
    /// The cheaper variant: `max(q_v)` copies, at the cost of some values
    /// wasting register names.
    pub unroll_max: u32,
    /// Static registers consumed: `Σ q_v` (each value needs `q_v` names).
    pub registers: u32,
    /// Kernel operations after expansion: `unroll × ops`.
    pub expanded_ops: u64,
}

impl MvePlan {
    /// Code-expansion factor relative to the rotating-file kernel.
    pub fn expansion(&self) -> u32 {
        self.unroll
    }
}

/// Computes the MVE plan for the RR-class values of a schedule.
pub fn mve_plan(problem: &SchedProblem<'_>, schedule: &Schedule) -> MvePlan {
    let lt = lifetimes(problem, schedule);
    let ii = i64::from(schedule.ii);
    let mut unroll: u64 = 1;
    let mut unroll_max: u64 = 1;
    let mut registers: u64 = 0;
    for v in problem.body().values() {
        if v.reg_class() != RegClass::Rr || v.def.is_none() {
            continue;
        }
        let Some(len) = lt[v.id.index()] else {
            continue;
        };
        if len <= 0 {
            continue;
        }
        let q = ((len + ii - 1) / ii) as u64;
        registers += q;
        unroll_max = unroll_max.max(q);
        unroll = lcm(unroll, q).min(1 << 20); // defensive cap
    }
    MvePlan {
        unroll: unroll as u32,
        unroll_max: unroll_max as u32,
        registers: registers as u32,
        expanded_ops: unroll * problem.num_real_ops() as u64,
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_front::compile;
    use lsms_machine::huff_machine;
    use lsms_sched::SlackScheduler;

    #[test]
    fn lcm_and_gcd() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(1, 7), 7);
    }

    #[test]
    fn long_load_lifetimes_force_unrolling() {
        // The load's 13-cycle latency at a small II keeps x live across
        // several iterations, so MVE must unroll.
        let unit = compile(
            "loop axpy(i = 1..n) {
                 real x[], y[];
                 param real a;
                 y[i] = y[i] + a * x[i];
             }",
        )
        .unwrap();
        let machine = huff_machine();
        let problem = SchedProblem::new(&unit.loops[0].body, &machine).unwrap();
        let schedule = SlackScheduler::new().run(&problem).unwrap();
        let plan = mve_plan(&problem, &schedule);
        assert!(plan.unroll >= 2, "unroll = {}", plan.unroll);
        assert!(plan.unroll >= plan.unroll_max);
        assert_eq!(
            plan.expanded_ops,
            u64::from(plan.unroll) * problem.num_real_ops() as u64
        );
        assert!(plan.registers >= plan.unroll_max);
    }

    #[test]
    fn short_lifetimes_need_no_unrolling() {
        // A pure store loop: the only variant lifetimes are within one II.
        let unit = compile("loop s(i = 1..n) { real x[]; x[i] = 1.5; }").unwrap();
        let machine = huff_machine();
        let problem = SchedProblem::new(&unit.loops[0].body, &machine).unwrap();
        let schedule = SlackScheduler::new().run(&problem).unwrap();
        let plan = mve_plan(&problem, &schedule);
        // iv8 and the address stream still live about one iteration each.
        assert!(plan.unroll <= 2, "unroll = {}", plan.unroll);
    }
}
