//! `lsmsc` — the lifetime-sensitive modulo scheduling compiler driver.
//!
//! ```text
//! lsmsc FILE.loop [options]
//!
//!   --machine huff|short|wide    target machine (default: huff)
//!   --policy  bidir|early|late   direction policy (default: bidir);
//!                                sugar for --backend slack|early|late
//!   --backend NAME[:key=val,...] scheduler backend from the registry,
//!                                with backend-specific options
//!                                (default: slack)
//!   --list-backends              list registered backends with their
//!                                capability flags and exit
//!   --emit    report|sched|asm|mve|dot|all   what to print (default: report)
//!   --unroll  N                  unroll the loop N times before scheduling
//!   --straight-line              schedule as a basic block (no overlap)
//!   --run     TRIP               simulate TRIP iterations and verify
//!                                against the reference interpreter
//!   --timings PATH               write the per-pass report as JSON to
//!                                PATH ("-" = stdout)
//!   --trace PATH                 write a Chrome trace-event JSON file
//!                                (load it at https://ui.perfetto.dev);
//!                                corpus runs merge all workers into one
//!                                trace, one row per worker thread
//!   --metrics PATH               write counters and histograms in
//!                                Prometheus text exposition format
//!                                ("-" = stdout); totals reconcile with
//!                                --timings
//!   --pass-budget NAME=MILLIS    per-invocation wall-clock deadline for
//!                                a pass; overruns emit a
//!                                `budget_exceeded` trace event and
//!                                counter (repeatable, never aborts)
//!   --warm-start PATH            load the schedule-cache ledger at PATH
//!                                (fingerprint → achieved II) before
//!                                running, seed II escalation from it,
//!                                and rewrite it afterwards with every
//!                                schedule this run memoized; schedules
//!                                stay byte-identical to a cold run
//!   --quality PATH               write per-loop schedule-quality records
//!                                (II vs MII, MaxLive, lifetimes,
//!                                backtracking) plus the corpus rollup as
//!                                JSON ("-" = stdout); writing a real
//!                                file also appends a timestamped line to
//!                                the results/quality_history.jsonl
//!                                ledger (override the ledger path with
//!                                LSMS_QUALITY_HISTORY, or set it to "0"
//!                                to disable the append)
//!   --quality-report PATH        write a self-contained HTML quality
//!                                dashboard (tables, distribution bars,
//!                                and — when the history ledger exists —
//!                                inline SVG sparklines; no JS)
//!   --explain-pass NAME          describe a pipeline pass; with a FILE
//!                                or --eval-corpus, also print what the
//!                                pass did on this invocation
//!
//!   --eval-corpus                no FILE: schedule the synthetic corpus
//!                                and print a summary instead
//!   --corpus-size N              corpus loops for --eval-corpus
//!                                (env LSMS_CORPUS)
//!   --jobs N                     worker threads for --eval-corpus
//!                                (env LSMS_JOBS)
//! ```
//!
//! Diagnostics are uniform (`error[E0101]: FILE:3:7: message [parse]`)
//! and the exit code identifies the failing stage: 2 usage, 3 I/O,
//! 4 parse, 5 sema, 6 lower, 7 depgraph, 8 schedule, 9 regalloc,
//! 10 codegen, 11 simulate.
//!
//! Example:
//!
//! ```sh
//! echo 'loop daxpy(i = 1..n) { real x[], y[]; param real a;
//!       y[i] = y[i] + a * x[i]; }' > /tmp/daxpy.loop
//! lsmsc /tmp/daxpy.loop --emit asm --run 100 --timings -
//! ```

use std::process::ExitCode;

use lsms_machine::{huff_machine, short_latency_machine, wide_machine, Machine};
use lsms_pipeline::{
    list_backends_text, lookup_backend, pass_info, registered_backends, BackendSelection,
    CompileSession, LsmsError, PassBudget, SessionConfig, Stage, VerifySpec,
};
use lsms_sched::explain;

const EMITS: &[&str] = &["report", "sched", "list", "asm", "mve", "dot", "svg"];

struct Options {
    file: String,
    machine: Machine,
    backend: BackendSelection,
    list_backends: bool,
    emit: Vec<String>,
    unroll: u32,
    straight_line: bool,
    run: Option<u64>,
    eval_corpus: bool,
    corpus_size: usize,
    jobs: usize,
    timings: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
    quality: Option<String>,
    quality_report: Option<String>,
    budgets: Vec<PassBudget>,
    explain_pass: Option<String>,
    warm_start: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: lsmsc FILE.loop [--machine huff|short|wide] [--policy bidir|early|late]\n\
         \x20             [--backend NAME[:key=val,...]] [--emit report|sched|list|asm|mve|dot|svg|all]\n\
         \x20             [--unroll N] [--straight-line] [--run TRIP] [--timings PATH|-]\n\
         \x20             [--trace PATH] [--metrics PATH|-] [--pass-budget NAME=MILLIS]\n\
         \x20             [--quality PATH|-] [--quality-report PATH|-]\n\
         \x20             [--warm-start PATH] [--explain-pass NAME]\n\
         \x20      lsmsc --eval-corpus [--corpus-size N] [--jobs N] [--machine ...]\n\
         \x20      lsmsc --explain-pass NAME\n\
         \x20      lsmsc --list-backends"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut options = Options {
        file: String::new(),
        machine: huff_machine(),
        backend: BackendSelection::default(),
        list_backends: false,
        emit: vec!["report".to_owned()],
        unroll: 1,
        straight_line: false,
        run: None,
        eval_corpus: false,
        corpus_size: lsms_bench::default_corpus_size(),
        jobs: lsms_bench::default_jobs(),
        timings: None,
        trace: None,
        metrics: None,
        quality: None,
        quality_report: None,
        budgets: Vec::new(),
        explain_pass: None,
        warm_start: None,
    };
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage();
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--machine" => {
                options.machine = match need(&mut args, "--machine").as_str() {
                    "huff" => huff_machine(),
                    "short" => short_latency_machine(),
                    "wide" => wide_machine(),
                    other => {
                        eprintln!("unknown machine `{other}`");
                        usage();
                    }
                }
            }
            "--policy" => {
                // Sugar for the slack-family backend names.
                options.backend = match need(&mut args, "--policy").as_str() {
                    "bidir" => BackendSelection::named("slack"),
                    "early" => BackendSelection::named("early"),
                    "late" => BackendSelection::named("late"),
                    other => {
                        eprintln!("unknown policy `{other}`");
                        usage();
                    }
                }
            }
            "--backend" => {
                let spec = need(&mut args, "--backend");
                options.backend = BackendSelection::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("lsmsc: {}", e.render(None));
                    std::process::exit(e.exit_code().into());
                });
            }
            "--list-backends" => options.list_backends = true,
            "--emit" => {
                let what = need(&mut args, "--emit");
                options.emit = if what == "all" {
                    EMITS.iter().map(|s| (*s).to_owned()).collect()
                } else if EMITS.contains(&what.as_str()) {
                    vec![what]
                } else {
                    eprintln!("unknown --emit `{what}`");
                    usage();
                };
            }
            "--unroll" => {
                options.unroll = need(&mut args, "--unroll").parse().unwrap_or_else(|_| {
                    eprintln!("--unroll needs a positive integer");
                    usage();
                });
                if options.unroll == 0 {
                    usage();
                }
            }
            "--straight-line" => options.straight_line = true,
            "--eval-corpus" => options.eval_corpus = true,
            "--corpus-size" => {
                options.corpus_size =
                    need(&mut args, "--corpus-size")
                        .parse()
                        .unwrap_or_else(|_| {
                            eprintln!("--corpus-size needs a positive integer");
                            usage();
                        })
            }
            "--jobs" => {
                options.jobs = need(&mut args, "--jobs")
                    .parse()
                    .ok()
                    .filter(|&j: &usize| j >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--jobs needs a positive integer");
                        usage();
                    })
            }
            "--run" => {
                options.run = Some(need(&mut args, "--run").parse().unwrap_or_else(|_| {
                    eprintln!("--run needs an iteration count");
                    usage();
                }))
            }
            "--timings" => options.timings = Some(need(&mut args, "--timings")),
            "--trace" => options.trace = Some(need(&mut args, "--trace")),
            "--metrics" => options.metrics = Some(need(&mut args, "--metrics")),
            "--quality" => options.quality = Some(need(&mut args, "--quality")),
            "--quality-report" => {
                options.quality_report = Some(need(&mut args, "--quality-report"))
            }
            "--pass-budget" => {
                let spec = need(&mut args, "--pass-budget");
                options
                    .budgets
                    .push(parse_budget(&spec).unwrap_or_else(|e| {
                        eprintln!("{e}");
                        usage();
                    }));
            }
            "--explain-pass" => options.explain_pass = Some(need(&mut args, "--explain-pass")),
            "--warm-start" => options.warm_start = Some(need(&mut args, "--warm-start")),
            "--help" | "-h" => usage(),
            other if options.file.is_empty() && !other.starts_with('-') => {
                options.file = other.to_owned();
            }
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    if options.file.is_empty()
        && !options.eval_corpus
        && options.explain_pass.is_none()
        && !options.list_backends
    {
        usage();
    }
    options
}

/// Every pass name this invocation could run: the static registry plus
/// the `schedule:*` labels of runtime-registered backends.
fn known_pass_names() -> Vec<&'static str> {
    let mut known: Vec<&'static str> = lsms_pipeline::PASSES.iter().map(|p| p.name).collect();
    for entry in registered_backends() {
        if !known.contains(&entry.pass) {
            known.push(entry.pass);
        }
    }
    known
}

/// Resolves a user-supplied pass name to its interned `&'static` label,
/// consulting both the static pass registry and the backend registry (so
/// runtime-registered backends can be budgeted and explained).
fn interned_pass_name(name: &str) -> Option<&'static str> {
    if let Some(info) = pass_info(name) {
        return Some(info.name);
    }
    registered_backends()
        .iter()
        .find(|e| e.pass == name)
        .map(|e| e.pass)
}

/// Parses a `--pass-budget NAME=MILLIS` spec, resolving NAME to its
/// interned entry in the pass registry so unknown names fail up front.
fn parse_budget(spec: &str) -> Result<PassBudget, String> {
    let (name, millis) = spec
        .split_once('=')
        .ok_or_else(|| format!("--pass-budget wants NAME=MILLIS, got `{spec}`"))?;
    let pass = interned_pass_name(name).ok_or_else(|| {
        format!(
            "unknown pass `{name}` (passes: {})",
            known_pass_names().join(", ")
        )
    })?;
    let millis: u64 = millis
        .parse()
        .map_err(|_| format!("--pass-budget wants an integer millisecond limit, got `{millis}`"))?;
    Ok(PassBudget {
        pass,
        limit: std::time::Duration::from_millis(millis),
    })
}

/// The session configuration an option set implies. The session runs
/// codegen exactly when an emission needs the artifacts.
fn session_config(options: &Options) -> SessionConfig {
    let mut config = SessionConfig::new(options.machine.clone());
    config.backend = options.backend.clone();
    config.unroll = options.unroll;
    config.straight_line = options.straight_line;
    config.codegen = options.emit.iter().any(|e| e == "asm");
    config.mve = options.emit.iter().any(|e| e == "mve");
    config.verify = options.run.map(VerifySpec::with_trip);
    config.budgets = options.budgets.clone();
    config.warm_start = options.warm_start.clone().map(Into::into);
    config
}

/// `--eval-corpus`: schedule the synthetic corpus with the three schedulers
/// and print a headline summary (the quick health check the experiment
/// binaries expand into full tables). Returns the corpus's quality
/// records for `--quality` / `--quality-report`.
fn eval_corpus(options: &Options, session: &CompileSession) -> Vec<lsms_obs::ScheduleQuality> {
    let corpus = lsms_bench::evaluate_corpus_session(
        session,
        options.corpus_size,
        lsms_bench::CORPUS_SEED,
        options.jobs,
    );
    corpus.warn_failures();
    let quality = corpus.quality_records();
    let records = corpus.records;
    let scheduled = records.iter().filter(|r| r.new.ii.is_some()).count();
    let optimal = records.iter().filter(|r| r.new.ii == Some(r.mii)).count();
    let sum_ii: u64 = records.iter().map(|r| r.new.counted_ii()).sum();
    let sum_mii: u64 = records.iter().map(|r| u64::from(r.mii)).sum();
    println!(
        "corpus: {} loops on {} ({} jobs): {} scheduled, {} at MII ({:.1}%), II/MII {:.3}",
        records.len(),
        options.machine.name(),
        options.jobs,
        scheduled,
        optimal,
        100.0 * optimal as f64 / records.len().max(1) as f64,
        sum_ii as f64 / sum_mii.max(1) as f64,
    );
    let report = session.report();
    if let Some(record) = report.get("sched-cache") {
        let get = |key| record.counters.get(key).copied().unwrap_or(0);
        println!(
            "schedule-cache: hits={} misses={} inserts={} warm={} ledger={} straggler-idle-us={}",
            get("hits"),
            get("misses"),
            get("inserts"),
            get("warm_hits"),
            session.warm_ledger_len(),
            corpus.straggler_idle_us,
        );
    }
    quality
}

/// `--warm-start PATH`: rewrites the schedule-cache ledger with the
/// loaded entries merged with everything this run memoized.
fn write_warm_ledger(path: &str, session: &CompileSession) -> Result<(), LsmsError> {
    let lines = session.warm_ledger_lines();
    if session.warm_ledger_skipped() > 0 {
        eprintln!(
            "lsmsc: warm-start ledger {path}: skipped {} corrupt line(s)",
            session.warm_ledger_skipped()
        );
    }
    let parent = std::path::Path::new(path).parent();
    if let Some(dir) = parent.filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)
            .map_err(|e| LsmsError::io(format!("cannot create {}: {e}", dir.display())))?;
    }
    std::fs::write(path, lines).map_err(|e| LsmsError::io(format!("cannot write {path}: {e}")))
}

/// Compiles the input file and prints everything the options ask for.
/// Returns one quality record per compiled loop for `--quality` /
/// `--quality-report`.
fn compile_and_emit(
    options: &Options,
    session: &CompileSession,
) -> Result<Vec<lsms_obs::ScheduleQuality>, LsmsError> {
    let unit = session.compile_file(&options.file)?;
    if unit.loops.is_empty() {
        return Err(LsmsError::usage(format!("no loops in {}", options.file)));
    }
    let backend = session.backend()?.clone();
    let mut quality = Vec::with_capacity(unit.loops.len());
    for compiled in &unit.loops {
        let artifacts = session.run_loop(compiled)?;
        quality.push(artifacts.quality.clone());
        let problem = artifacts.problem(&session.config().machine)?;
        let schedule = &artifacts.schedule;
        for emit in &options.emit {
            match emit.as_str() {
                "report" => print!(
                    "{}",
                    explain::report_for_backend(&problem, schedule, backend.scheduler.as_ref())
                ),
                "sched" => {
                    println!("loop {}: II = {}", artifacts.name, schedule.ii);
                    for op in artifacts.body.ops() {
                        println!("  {:>4}  {}", schedule.times[op.id.index()], op.kind);
                    }
                }
                "dot" => print!("{}", lsms_ir::to_dot(&artifacts.body)),
                "list" => print!("{}", lsms_ir::to_listing(&artifacts.body)),
                "svg" => println!(
                    "{}",
                    lsms_sched::svg::to_svg_for_backend(
                        &problem,
                        schedule,
                        backend.scheduler.as_ref()
                    )
                ),
                "asm" => {
                    let kernel = artifacts.kernel.as_ref().expect("--emit asm ran codegen");
                    print!("{}", lsms_codegen::to_asm(kernel, &problem));
                }
                "mve" => {
                    let kernel = artifacts.mve.as_ref().expect("--emit mve ran codegen");
                    print!("{}", lsms_codegen::to_asm_mve(kernel));
                }
                _ => unreachable!("emit names validated in parse_args"),
            }
        }
        if let (Some(trip), Some(report)) = (options.run, &artifacts.equiv) {
            println!(
                "run: {} iterations in {} cycles (II {}, {} stages); \
                 {} array elements verified against the reference interpreter",
                trip, report.cycles, report.ii, report.stages, report.elements
            );
        }
    }
    Ok(quality)
}

/// `--explain-pass NAME`: static documentation for the pass plus, when
/// this invocation ran it, the measured work.
///
/// `schedule:*` names resolve through the backend registry's
/// [`describe`](lsms_sched::ModuloScheduler::describe), so runtime-registered
/// backends are explainable too; a backend with empty details gets a
/// graceful "no explanation available" instead of an error.
fn explain_pass(name: &str, session: &CompileSession) -> Result<(), LsmsError> {
    let registry_backend = name
        .strip_prefix("schedule:")
        .and_then(lookup_backend)
        .filter(|entry| entry.pass == name);
    if let Some(entry) = &registry_backend {
        let info = entry.scheduler.describe();
        println!("pass {}: {}", entry.pass, info.summary);
        println!();
        if info.details.is_empty() {
            println!("no explanation available");
        } else {
            println!("{}", info.details);
        }
        println!();
        println!("counters:");
        for (key, meaning) in lsms_pipeline::SCHED_COUNTERS {
            println!("  {key:<20} {meaning}");
        }
    } else {
        let info = pass_info(name).ok_or_else(|| {
            LsmsError::usage(format!(
                "unknown pass `{name}` (passes: {})",
                known_pass_names().join(", ")
            ))
        })?;
        println!("pass {}: {}", info.name, info.summary);
        println!();
        println!("{}", info.details);
        if !info.counters.is_empty() {
            println!();
            println!("counters:");
            for (key, meaning) in info.counters {
                println!("  {key:<20} {meaning}");
            }
        }
    }
    let report = session.report();
    match report.get(name) {
        Some(record) => {
            println!();
            println!(
                "this invocation: {} run(s), {:.2?} wall",
                record.invocations, record.wall
            );
            for (key, value) in &record.counters {
                println!("  {key:<20} {value}");
            }
        }
        None if !report.is_empty() => {
            println!();
            println!("this invocation: pass did not run");
        }
        None => {}
    }
    Ok(())
}

/// `--timings PATH`: the session's per-pass report as JSON.
fn write_timings(path: &str, session: &CompileSession) -> Result<(), LsmsError> {
    let json = session.report().to_json();
    if path == "-" {
        print!("{json}");
    } else {
        std::fs::write(path, json)
            .map_err(|e| LsmsError::io(format!("cannot write {path}: {e}")))?;
    }
    Ok(())
}

/// Where the quality-history ledger lives: `results/quality_history.jsonl`
/// by default, overridden by `LSMS_QUALITY_HISTORY` (set it to `0` or
/// empty to disable the append entirely).
fn history_path() -> Option<std::path::PathBuf> {
    match std::env::var("LSMS_QUALITY_HISTORY") {
        Ok(v) if v.is_empty() || v == "0" => None,
        Ok(v) => Some(v.into()),
        Err(_) => Some("results/quality_history.jsonl".into()),
    }
}

/// `--quality PATH|-` / `--quality-report PATH|-`: rolls the run's
/// per-loop records up and writes the JSON report and/or the HTML
/// dashboard. Writing the JSON to a real file (not `-`) also appends one
/// timestamped line to the history ledger — stdout dumps and dashboards
/// never grow the ledger, so exploratory runs stay side-effect-free.
fn write_quality_outputs(
    options: &Options,
    machine_name: &str,
    records: Vec<lsms_obs::ScheduleQuality>,
) -> Result<(), LsmsError> {
    use std::fmt::Write as _;
    let rollup = lsms_obs::QualityRollup::new(machine_name, records);
    if let Some(path) = &options.quality {
        let json = rollup.to_json();
        if path == "-" {
            print!("{json}");
        } else {
            std::fs::write(path, json)
                .map_err(|e| LsmsError::io(format!("cannot write {path}: {e}")))?;
            if let Some(ledger) = history_path() {
                let secs = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map_or(0, |d| d.as_secs());
                let mut line = rollup.history_line(&lsms_obs::iso8601_utc(secs));
                let _ = writeln!(line);
                if let Some(dir) = ledger.parent().filter(|d| !d.as_os_str().is_empty()) {
                    std::fs::create_dir_all(dir).map_err(|e| {
                        LsmsError::io(format!("cannot create {}: {e}", dir.display()))
                    })?;
                }
                use std::io::Write as _;
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&ledger)
                    .and_then(|mut f| f.write_all(line.as_bytes()))
                    .map_err(|e| {
                        LsmsError::io(format!("cannot append {}: {e}", ledger.display()))
                    })?;
            }
        }
    }
    if let Some(path) = &options.quality_report {
        let history = history_path()
            .and_then(|p| std::fs::read_to_string(p).ok())
            .map(|text| lsms_obs::parse_history(&text))
            .unwrap_or_default();
        let html = lsms_obs::quality_dashboard_html(&rollup, &history);
        if path == "-" {
            print!("{html}");
        } else {
            std::fs::write(path, html)
                .map_err(|e| LsmsError::io(format!("cannot write {path}: {e}")))?;
        }
    }
    Ok(())
}

/// `--trace PATH` / `--metrics PATH`: drains the trace collector once
/// and writes whichever exports were requested.
fn write_trace_outputs(options: &Options) -> Result<(), LsmsError> {
    let trace = lsms_trace::drain();
    if let Some(path) = &options.trace {
        let json = lsms_trace::to_chrome_json(&trace);
        if path == "-" {
            print!("{json}");
        } else {
            std::fs::write(path, json)
                .map_err(|e| LsmsError::io(format!("cannot write {path}: {e}")))?;
        }
    }
    if let Some(path) = &options.metrics {
        let text = lsms_trace::to_prometheus(&trace);
        if path == "-" {
            print!("{text}");
        } else {
            std::fs::write(path, text)
                .map_err(|e| LsmsError::io(format!("cannot write {path}: {e}")))?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = parse_args();
    if options.list_backends {
        print!("{}", list_backends_text());
        return ExitCode::SUCCESS;
    }
    if options.trace.is_some() || options.metrics.is_some() {
        lsms_trace::set_enabled(true);
    }
    let session = CompileSession::new(session_config(&options));
    if let Err(e) = session.validate() {
        eprintln!("lsmsc: {}", e.render(None));
        return ExitCode::from(e.exit_code());
    }

    let mut code = 0u8;
    let mut quality_records = Vec::new();
    if options.eval_corpus {
        quality_records = eval_corpus(&options, &session);
    } else if !options.file.is_empty() {
        match compile_and_emit(&options, &session) {
            Ok(quality) => quality_records = quality,
            Err(e) => {
                // I/O messages already name the path; don't prefix it twice.
                let origin = (e.stage != Stage::Io).then_some(options.file.as_str());
                eprintln!("lsmsc: {}", e.render(origin));
                code = e.exit_code();
            }
        }
    }
    if options.quality.is_some() || options.quality_report.is_some() {
        if let Err(e) =
            write_quality_outputs(&options, session.config().machine.name(), quality_records)
        {
            eprintln!("lsmsc: {}", e.render(None));
            if code == 0 {
                code = e.exit_code();
            }
        }
    }

    if let Some(path) = &options.warm_start {
        if options.eval_corpus || !options.file.is_empty() {
            if let Err(e) = write_warm_ledger(path, &session) {
                eprintln!("lsmsc: {}", e.render(None));
                if code == 0 {
                    code = e.exit_code();
                }
            }
        }
    }
    if let Some(name) = &options.explain_pass {
        if let Err(e) = explain_pass(name, &session) {
            eprintln!("lsmsc: {}", e.render(None));
            if code == 0 {
                code = e.exit_code();
            }
        }
    }
    if let Some(path) = &options.timings {
        if let Err(e) = write_timings(path, &session) {
            eprintln!("lsmsc: {}", e.render(None));
            if code == 0 {
                code = e.exit_code();
            }
        }
    }
    if options.trace.is_some() || options.metrics.is_some() {
        if let Err(e) = write_trace_outputs(&options) {
            eprintln!("lsmsc: {}", e.render(None));
            if code == 0 {
                code = e.exit_code();
            }
        }
    }
    ExitCode::from(code)
}
