//! `lsmsc` — the lifetime-sensitive modulo scheduling compiler driver.
//!
//! ```text
//! lsmsc FILE.loop [options]
//!
//!   --machine huff|short|wide    target machine (default: huff)
//!   --policy  bidir|early|late   direction policy (default: bidir)
//!   --emit    report|sched|asm|mve|dot|all   what to print (default: report)
//!   --unroll  N                  unroll the loop N times before scheduling
//!   --straight-line              schedule as a basic block (no overlap)
//!   --run     TRIP               simulate TRIP iterations and verify
//!                                against the reference interpreter
//!
//!   --eval-corpus                no FILE: schedule the synthetic corpus
//!                                and print a summary instead
//!   --corpus-size N              corpus loops for --eval-corpus
//!                                (env LSMS_CORPUS)
//!   --jobs N                     worker threads for --eval-corpus
//!                                (env LSMS_JOBS)
//! ```
//!
//! Example:
//!
//! ```sh
//! echo 'loop daxpy(i = 1..n) { real x[], y[]; param real a;
//!       y[i] = y[i] + a * x[i]; }' > /tmp/daxpy.loop
//! lsmsc /tmp/daxpy.loop --emit asm --run 100
//! ```

use std::process::ExitCode;

use lsms_front::compile;
use lsms_ir::RegClass;
use lsms_machine::{huff_machine, short_latency_machine, wide_machine, Machine};
use lsms_regalloc::{allocate_rotating, Strategy};
use lsms_sched::{explain, DirectionPolicy, SchedProblem, Schedule, SlackConfig, SlackScheduler};
use lsms_sim::{check_equivalence, RunConfig};

struct Options {
    file: String,
    machine: Machine,
    policy: DirectionPolicy,
    emit: Vec<String>,
    unroll: u32,
    straight_line: bool,
    run: Option<u64>,
    eval_corpus: bool,
    corpus_size: usize,
    jobs: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: lsmsc FILE.loop [--machine huff|short|wide] [--policy bidir|early|late]\n\
         \x20             [--emit report|sched|list|asm|mve|dot|svg|all] [--unroll N]\n\
         \x20             [--straight-line] [--run TRIP]\n\
         \x20      lsmsc --eval-corpus [--corpus-size N] [--jobs N] [--machine ...]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut options = Options {
        file: String::new(),
        machine: huff_machine(),
        policy: DirectionPolicy::Bidirectional,
        emit: vec!["report".to_owned()],
        unroll: 1,
        straight_line: false,
        run: None,
        eval_corpus: false,
        corpus_size: lsms_bench::default_corpus_size(),
        jobs: lsms_bench::default_jobs(),
    };
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage();
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--machine" => {
                options.machine = match need(&mut args, "--machine").as_str() {
                    "huff" => huff_machine(),
                    "short" => short_latency_machine(),
                    "wide" => wide_machine(),
                    other => {
                        eprintln!("unknown machine `{other}`");
                        usage();
                    }
                }
            }
            "--policy" => {
                options.policy = match need(&mut args, "--policy").as_str() {
                    "bidir" => DirectionPolicy::Bidirectional,
                    "early" => DirectionPolicy::AlwaysEarly,
                    "late" => DirectionPolicy::AlwaysLate,
                    other => {
                        eprintln!("unknown policy `{other}`");
                        usage();
                    }
                }
            }
            "--emit" => {
                let what = need(&mut args, "--emit");
                options.emit = if what == "all" {
                    ["report", "sched", "list", "asm", "mve", "dot", "svg"]
                        .iter()
                        .map(|s| (*s).to_owned())
                        .collect()
                } else {
                    vec![what]
                };
            }
            "--unroll" => {
                options.unroll = need(&mut args, "--unroll").parse().unwrap_or_else(|_| {
                    eprintln!("--unroll needs a positive integer");
                    usage();
                });
                if options.unroll == 0 {
                    usage();
                }
            }
            "--straight-line" => options.straight_line = true,
            "--eval-corpus" => options.eval_corpus = true,
            "--corpus-size" => {
                options.corpus_size =
                    need(&mut args, "--corpus-size")
                        .parse()
                        .unwrap_or_else(|_| {
                            eprintln!("--corpus-size needs a positive integer");
                            usage();
                        })
            }
            "--jobs" => {
                options.jobs = need(&mut args, "--jobs")
                    .parse()
                    .ok()
                    .filter(|&j: &usize| j >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--jobs needs a positive integer");
                        usage();
                    })
            }
            "--run" => {
                options.run = Some(need(&mut args, "--run").parse().unwrap_or_else(|_| {
                    eprintln!("--run needs an iteration count");
                    usage();
                }))
            }
            "--help" | "-h" => usage(),
            other if options.file.is_empty() && !other.starts_with('-') => {
                options.file = other.to_owned();
            }
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    if options.file.is_empty() && !options.eval_corpus {
        usage();
    }
    options
}

/// `--eval-corpus`: schedule the synthetic corpus with the three schedulers
/// and print a headline summary (the quick health check the experiment
/// binaries expand into full tables).
fn eval_corpus(options: &Options) -> ExitCode {
    let records = lsms_bench::evaluate_corpus_jobs(
        options.corpus_size,
        lsms_bench::CORPUS_SEED,
        &options.machine,
        options.jobs,
    );
    let scheduled = records.iter().filter(|r| r.new.ii.is_some()).count();
    let optimal = records.iter().filter(|r| r.new.ii == Some(r.mii)).count();
    let sum_ii: u64 = records.iter().map(|r| r.new.counted_ii()).sum();
    let sum_mii: u64 = records.iter().map(|r| u64::from(r.mii)).sum();
    println!(
        "corpus: {} loops on {} ({} jobs): {} scheduled, {} at MII ({:.1}%), II/MII {:.3}",
        records.len(),
        options.machine.name(),
        options.jobs,
        scheduled,
        optimal,
        100.0 * optimal as f64 / records.len().max(1) as f64,
        sum_ii as f64 / sum_mii.max(1) as f64,
    );
    ExitCode::SUCCESS
}

fn schedule_body(
    options: &Options,
    problem: &SchedProblem<'_>,
) -> Result<Schedule, lsms_sched::SchedFailure> {
    let scheduler = SlackScheduler::with_config(SlackConfig {
        direction: options.policy,
        ..SlackConfig::default()
    });
    if options.straight_line {
        scheduler.run_straight_line(problem)
    } else {
        scheduler.run(problem)
    }
}

fn main() -> ExitCode {
    let options = parse_args();
    if options.eval_corpus {
        return eval_corpus(&options);
    }
    let source = match std::fs::read_to_string(&options.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lsmsc: cannot read {}: {e}", options.file);
            return ExitCode::FAILURE;
        }
    };
    let unit = match compile(&source) {
        Ok(u) => u,
        Err(e) => {
            eprintln!("{}:{e}", options.file);
            return ExitCode::FAILURE;
        }
    };
    if unit.loops.is_empty() {
        eprintln!("lsmsc: no loops in {}", options.file);
        return ExitCode::FAILURE;
    }

    for compiled in &unit.loops {
        let unrolled;
        let body = if options.unroll > 1 {
            unrolled = lsms_ir::unroll(&compiled.body, options.unroll);
            &unrolled
        } else {
            &compiled.body
        };
        let problem = match SchedProblem::new(body, &options.machine) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("lsmsc: {}: {e}", compiled.def.name);
                return ExitCode::FAILURE;
            }
        };
        let schedule = match schedule_body(&options, &problem) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lsmsc: {}: {e}", compiled.def.name);
                return ExitCode::FAILURE;
            }
        };

        for emit in &options.emit {
            match emit.as_str() {
                "report" => print!("{}", explain::report(&problem, &schedule)),
                "sched" => {
                    println!("loop {}: II = {}", compiled.def.name, schedule.ii);
                    for op in body.ops() {
                        println!("  {:>4}  {}", schedule.times[op.id.index()], op.kind);
                    }
                }
                "dot" => print!("{}", lsms_ir::to_dot(body)),
                "list" => print!("{}", lsms_ir::to_listing(body)),
                "svg" => println!("{}", lsms_sched::svg::to_svg(&problem, &schedule)),
                "asm" => {
                    let rr =
                        allocate_rotating(&problem, &schedule, RegClass::Rr, Strategy::default());
                    let icr =
                        allocate_rotating(&problem, &schedule, RegClass::Icr, Strategy::default());
                    match (rr, icr) {
                        (Ok(rr), Ok(icr)) => {
                            match lsms_codegen::emit(&problem, &schedule, &rr, &icr) {
                                Ok(kernel) => {
                                    print!("{}", lsms_codegen::to_asm(&kernel, &problem))
                                }
                                Err(e) => eprintln!("lsmsc: codegen: {e}"),
                            }
                        }
                        _ => eprintln!("lsmsc: allocation failed"),
                    }
                }
                "mve" => match lsms_codegen::emit_mve(&problem, &schedule) {
                    Ok(kernel) => print!("{}", lsms_codegen::to_asm_mve(&kernel)),
                    Err(e) => eprintln!("lsmsc: mve: {e}"),
                },
                other => {
                    eprintln!("unknown --emit `{other}`");
                    return ExitCode::FAILURE;
                }
            }
        }

        if let Some(trip) = options.run {
            if options.unroll > 1 || options.straight_line {
                eprintln!("lsmsc: --run applies to the plain modulo pipeline only");
                return ExitCode::FAILURE;
            }
            let config = RunConfig {
                trip,
                seed: 0x5eed,
                scheduler: SlackConfig {
                    direction: options.policy,
                    ..SlackConfig::default()
                },
            };
            match check_equivalence(compiled, &options.machine, &config) {
                Ok(report) => println!(
                    "run: {} iterations in {} cycles (II {}, {} stages); \
                     {} array elements verified against the reference interpreter",
                    trip, report.cycles, report.ii, report.stages, report.elements
                ),
                Err(e) => {
                    eprintln!("lsmsc: verification FAILED: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
