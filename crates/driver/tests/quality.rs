//! End-to-end tests of `--quality` / `--quality-report`: report shape,
//! determinism across worker counts, and the history ledger.

use std::process::Command;

fn lsmsc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lsmsc"))
}

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(name)
}

/// Cuts stdout down to the quality JSON document (the corpus summary
/// banner that precedes it names the job count) and strips the only
/// nondeterministic field (`wall_us`) so reports compare byte-for-byte.
fn strip_wall(report: &str) -> String {
    let json_start = report.find("{\n").expect("quality JSON on stdout");
    report[json_start..]
        .lines()
        .map(|line| match line.find("\"wall_us\":") {
            Some(at) => &line[..at],
            None => line,
        })
        .fold(String::new(), |mut out, line| {
            out.push_str(line);
            out.push('\n');
            out
        })
}

/// The acceptance bar for the quality observatory: per-loop II and
/// MaxLive (indeed, everything but wall time) must be byte-identical
/// between `--jobs 1` and `--jobs 4`.
#[test]
fn corpus_quality_is_identical_across_job_counts() {
    let run = |jobs: &str| {
        let out = lsmsc()
            .args(["--eval-corpus", "--corpus-size", "32", "--jobs", jobs])
            .args(["--quality", "-"])
            .env("LSMS_QUALITY_HISTORY", "") // keep the test hermetic
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf-8 report")
    };
    let serial = run("1");
    let parallel = run("4");
    assert_eq!(
        strip_wall(&serial),
        strip_wall(&parallel),
        "quality must not depend on worker count"
    );
    // 32 loops × 3 backends in the eval harness.
    assert!(serial.contains("\"loops\": 32,"), "{serial}");
    assert!(serial.contains("\"records\": 96,"), "{serial}");
    assert!(serial.contains("\"kind\": \"lsms-quality\""), "{serial}");
    for backend in ["slack", "early", "cydrome"] {
        assert!(
            serial.contains(&format!("\"backend\": \"{backend}\"")),
            "missing backend {backend} in rollup: {serial}"
        );
    }
}

/// Single-loop compiles report quality too, and stdout output must not
/// touch the history ledger.
#[test]
fn single_loop_quality_reports_bounds_and_skips_the_ledger() {
    let source = "loop daxpy(i = 1..n) {
    real x[], y[];
    param real a;
    y[i] = y[i] + a * x[i];
}";
    let path = temp("lsmsc_quality_daxpy.loop");
    std::fs::write(&path, source).expect("write test loop");
    let ledger = temp("lsmsc_quality_daxpy_history.jsonl");
    let _ = std::fs::remove_file(&ledger);

    let out = lsmsc()
        .arg(&path)
        .args(["--emit", "asm", "--quality", "-"])
        .env("LSMS_QUALITY_HISTORY", &ledger)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("\"name\": \"daxpy\""), "{report}");
    assert!(report.contains("\"backend\": \"slack\""), "{report}");
    // daxpy on the Table 1 machine: MII = achieved II = 2, no gap.
    assert!(report.contains("\"mii\": 2"), "{report}");
    assert!(report.contains("\"ii\": 2"), "{report}");
    assert!(report.contains("\"ii_gap\": 0"), "{report}");
    assert!(
        !ledger.exists(),
        "stdout reports must not append to the history ledger"
    );
}

/// File output appends one ledger line per run, and the dashboard is a
/// self-contained HTML document with a sparkline once history exists.
#[test]
fn quality_file_appends_history_and_dashboard_renders() {
    let source = "loop saxpy(i = 1..n) {
    real x[], y[];
    param real a;
    y[i] = a * x[i] + y[i];
}";
    let path = temp("lsmsc_quality_saxpy.loop");
    std::fs::write(&path, source).expect("write test loop");
    let report_path = temp("lsmsc_quality_saxpy.json");
    let html_path = temp("lsmsc_quality_saxpy.html");
    let ledger = temp("lsmsc_quality_saxpy_history.jsonl");
    let _ = std::fs::remove_file(&ledger);

    for _ in 0..2 {
        let out = lsmsc()
            .arg(&path)
            .args(["--emit", "asm", "--quality"])
            .arg(&report_path)
            .arg("--quality-report")
            .arg(&html_path)
            .env("LSMS_QUALITY_HISTORY", &ledger)
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let ledger_text = std::fs::read_to_string(&ledger).expect("ledger written");
    let lines: Vec<&str> = ledger_text.lines().collect();
    assert_eq!(lines.len(), 2, "one ledger line per run: {ledger_text}");
    for line in &lines {
        assert!(line.starts_with("{\"ts\": \""), "{line}");
        assert!(line.contains("\"ii_sum\":"), "{line}");
        assert!(line.contains("\"max_live_sum\":"), "{line}");
    }

    let html = std::fs::read_to_string(&html_path).expect("dashboard written");
    assert!(html.starts_with("<!DOCTYPE html>"), "{html}");
    assert!(html.contains("<svg"), "history sparkline expected: {html}");
    assert!(html.contains("saxpy"), "{html}");
    assert!(
        !html.contains("<script"),
        "dashboard must be JS-free: {html}"
    );
}
