//! End-to-end tests of the `lsmsc` binary.

use std::process::Command;

fn lsmsc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lsmsc"))
}

fn write_loop(name: &str, source: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, source).expect("write test loop");
    path
}

const DAXPY: &str = "loop daxpy(i = 1..n) {
    real x[], y[];
    param real a;
    y[i] = y[i] + a * x[i];
}";

#[test]
fn report_prints_bounds_and_pressure() {
    let path = write_loop("lsmsc_daxpy.loop", DAXPY);
    let out = lsmsc().arg(&path).output().expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ResMII 2"), "{text}");
    assert!(text.contains("MaxLive"), "{text}");
    assert!(text.contains("LiveVector"), "{text}");
}

#[test]
fn run_verifies_against_the_reference() {
    let path = write_loop("lsmsc_daxpy_run.loop", DAXPY);
    let out = lsmsc()
        .arg(&path)
        .args(["--run", "64", "--emit", "sched"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("verified against the reference interpreter"),
        "{text}"
    );
    assert!(text.contains("II = 2"), "{text}");
}

#[test]
fn emit_variants_produce_their_formats() {
    let path = write_loop("lsmsc_daxpy_emit.loop", DAXPY);
    for (emit, marker) in [
        ("asm", "; kernel: II="),
        ("mve", "; MVE kernel:"),
        ("dot", "digraph"),
        ("svg", "<svg"),
        ("list", "loop daxpy ("),
    ] {
        let out = lsmsc()
            .arg(&path)
            .args(["--emit", emit])
            .output()
            .expect("runs");
        assert!(out.status.success(), "--emit {emit}");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains(marker), "--emit {emit}: {text}");
    }
}

#[test]
fn unroll_halves_the_effective_ii() {
    let path = write_loop("lsmsc_daxpy_unroll.loop", DAXPY);
    let out = lsmsc()
        .arg(&path)
        .args(["--unroll", "2", "--emit", "sched"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("II = 3"),
        "unrolled daxpy runs at 1.5 cycles/iter: {text}"
    );
}

#[test]
fn machine_and_policy_flags_are_honoured() {
    let path = write_loop("lsmsc_daxpy_flags.loop", DAXPY);
    let out = lsmsc()
        .arg(&path)
        .args(["--machine", "short", "--policy", "early", "--emit", "sched"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let out = lsmsc()
        .arg(&path)
        .args(["--machine", "bogus"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
}

#[test]
fn compile_errors_are_reported_with_location() {
    let path = write_loop("lsmsc_bad.loop", "loop b(i = 1..9) { real x[]; x[i] = q; }");
    let out = lsmsc().arg(&path).output().expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("undeclared scalar"), "{err}");
}
