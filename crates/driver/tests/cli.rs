//! End-to-end tests of the `lsmsc` binary.

use std::process::Command;

fn lsmsc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lsmsc"))
}

fn write_loop(name: &str, source: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, source).expect("write test loop");
    path
}

const DAXPY: &str = "loop daxpy(i = 1..n) {
    real x[], y[];
    param real a;
    y[i] = y[i] + a * x[i];
}";

#[test]
fn report_prints_bounds_and_pressure() {
    let path = write_loop("lsmsc_daxpy.loop", DAXPY);
    let out = lsmsc().arg(&path).output().expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ResMII 2"), "{text}");
    assert!(text.contains("MaxLive"), "{text}");
    assert!(text.contains("LiveVector"), "{text}");
}

#[test]
fn run_verifies_against_the_reference() {
    let path = write_loop("lsmsc_daxpy_run.loop", DAXPY);
    let out = lsmsc()
        .arg(&path)
        .args(["--run", "64", "--emit", "sched"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("verified against the reference interpreter"),
        "{text}"
    );
    assert!(text.contains("II = 2"), "{text}");
}

#[test]
fn emit_variants_produce_their_formats() {
    let path = write_loop("lsmsc_daxpy_emit.loop", DAXPY);
    for (emit, marker) in [
        ("asm", "; kernel: II="),
        ("mve", "; MVE kernel:"),
        ("dot", "digraph"),
        ("svg", "<svg"),
        ("list", "loop daxpy ("),
    ] {
        let out = lsmsc()
            .arg(&path)
            .args(["--emit", emit])
            .output()
            .expect("runs");
        assert!(out.status.success(), "--emit {emit}");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains(marker), "--emit {emit}: {text}");
    }
}

#[test]
fn unroll_halves_the_effective_ii() {
    let path = write_loop("lsmsc_daxpy_unroll.loop", DAXPY);
    let out = lsmsc()
        .arg(&path)
        .args(["--unroll", "2", "--emit", "sched"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("II = 3"),
        "unrolled daxpy runs at 1.5 cycles/iter: {text}"
    );
}

#[test]
fn machine_and_policy_flags_are_honoured() {
    let path = write_loop("lsmsc_daxpy_flags.loop", DAXPY);
    let out = lsmsc()
        .arg(&path)
        .args(["--machine", "short", "--policy", "early", "--emit", "sched"])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let out = lsmsc()
        .arg(&path)
        .args(["--machine", "bogus"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
}

#[test]
fn list_backends_names_every_builtin_with_flags() {
    let out = lsmsc().arg("--list-backends").output().expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["slack", "early", "late", "cydrome"] {
        assert!(text.contains(name), "{text}");
    }
    assert!(text.contains("capabilities ["), "{text}");
    assert!(text.contains("warm-start"), "{text}");
}

#[test]
fn backend_flag_selects_and_configures_a_backend() {
    let path = write_loop("lsmsc_daxpy_backend.loop", DAXPY);
    let out = lsmsc()
        .arg(&path)
        .args(["--backend", "cydrome", "--emit", "sched"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = lsmsc()
        .arg(&path)
        .args(["--backend", "slack:increment=by-one", "--emit", "sched"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn unknown_backend_is_a_stable_usage_error() {
    let path = write_loop("lsmsc_daxpy_badbackend.loop", DAXPY);
    let out = lsmsc()
        .arg(&path)
        .args(["--backend", "quantum"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error[E0003]"), "{err}");
    assert!(err.contains("unknown backend `quantum`"), "{err}");
    assert!(err.contains("slack"), "lists registered names: {err}");
}

#[test]
fn explain_pass_describes_backends_from_the_registry() {
    let out = lsmsc()
        .args(["--explain-pass", "schedule:cydrome"])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Cydrome-style baseline"), "{text}");
}

#[test]
fn compile_errors_are_reported_with_location() {
    let path = write_loop("lsmsc_bad.loop", "loop b(i = 1..9) { real x[]; x[i] = q; }");
    let out = lsmsc().arg(&path).output().expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("undeclared scalar"), "{err}");
}
