//! End-to-end tests of `--trace`, `--metrics`, and `--pass-budget`.
//!
//! These run `lsmsc` as a subprocess, which also gives each test a fresh
//! trace collector (the collector is process-global).

use std::collections::BTreeMap;
use std::process::Command;

fn lsmsc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lsmsc"))
}

fn write_loop(name: &str, source: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, source).expect("write test loop");
    path
}

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(name)
}

/// A corpus loop (`gen_0011` under the default seed) chosen because the
/// slack scheduler's trace on it contains every decision event type:
/// placements, MRT conflicts, ejections, and an II escalation.
const HARD: &str = "loop hard(i = 4..n) {
    real a0[], a1[], a2[];
    real s0;
    a1[i] = ((a2[i] * 1.00) - a0[i]);
    a2[i] = ((a0[i-3] * (a1[i] * 0.75)) - ((a1[i-2] + a2[i+2]) + (3.88 - 0.88)));
    if ((a0[i] + 3.50) < (a0[i+1] + a2[i])) {
        a0[i+1] = ((s0 - s0) - (s0 + s0));
        s0 = 3.75;
    } else {
        a0[i+1] = 1.00;
    }
}";

/// Minimal recursive-descent JSON well-formedness check (no external
/// crates in this workspace).
fn assert_valid_json(text: &str) {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }
        fn eat(&mut self, c: u8) {
            self.ws();
            assert_eq!(
                self.b.get(self.i).copied(),
                Some(c),
                "expected {:?} at byte {}",
                c as char,
                self.i
            );
            self.i += 1;
        }
        fn peek(&mut self) -> u8 {
            self.ws();
            *self
                .b
                .get(self.i)
                .unwrap_or_else(|| panic!("eof at {}", self.i))
        }
        fn string(&mut self) {
            self.eat(b'"');
            while self.b[self.i] != b'"' {
                if self.b[self.i] == b'\\' {
                    self.i += 1;
                }
                self.i += 1;
            }
            self.i += 1;
        }
        fn value(&mut self) {
            match self.peek() {
                b'{' => {
                    self.eat(b'{');
                    if self.peek() != b'}' {
                        loop {
                            self.string();
                            self.eat(b':');
                            self.value();
                            if self.peek() != b',' {
                                break;
                            }
                            self.eat(b',');
                        }
                    }
                    self.eat(b'}');
                }
                b'[' => {
                    self.eat(b'[');
                    if self.peek() != b']' {
                        loop {
                            self.value();
                            if self.peek() != b',' {
                                break;
                            }
                            self.eat(b',');
                        }
                    }
                    self.eat(b']');
                }
                b'"' => self.string(),
                _ => {
                    while self.i < self.b.len()
                        && matches!(
                            self.b[self.i],
                            b'0'..=b'9'
                                | b'-'
                                | b'+'
                                | b'.'
                                | b'e'
                                | b'E'
                                | b't'
                                | b'r'
                                | b'u'
                                | b'f'
                                | b'a'
                                | b'l'
                                | b's'
                                | b'n'
                        )
                    {
                        self.i += 1;
                    }
                }
            }
        }
    }
    let mut p = P {
        b: text.as_bytes(),
        i: 0,
    };
    p.value();
    p.ws();
    assert_eq!(p.i, text.len(), "trailing garbage after JSON value");
}

/// Pulls `(name, ph, tid)` out of every trace event. Leans on the
/// exporter's one-event-per-line formatting.
fn trace_events(json: &str) -> Vec<(String, String, u64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix("{\"name\": \"") else {
            continue;
        };
        let name = rest.split('"').next().expect("name").to_owned();
        let ph = line
            .split("\"ph\": \"")
            .nth(1)
            .expect("ph field")
            .split('"')
            .next()
            .expect("ph")
            .to_owned();
        let tid: u64 = line
            .split("\"tid\": ")
            .nth(1)
            .expect("tid field")
            .split(|c: char| !c.is_ascii_digit())
            .next()
            .expect("tid")
            .parse()
            .expect("tid number");
        out.push((name, ph, tid));
    }
    out
}

/// Parses the Prometheus exposition into `name -> value` (counters and
/// histogram series alike; sample lines only).
fn prom_samples(text: &str) -> BTreeMap<String, u64> {
    text.lines()
        .filter(|l| l.starts_with("lsms_"))
        .map(|l| {
            let (name, value) = l.rsplit_once(' ').expect("sample line");
            (name.to_owned(), value.parse().expect("sample value"))
        })
        .collect()
}

/// Mirrors the exporter's metric-name sanitization.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[test]
fn trace_is_wellformed_balanced_and_covers_the_pipeline() {
    let path = write_loop("lsmsc_trace_hard.loop", HARD);
    let trace_path = temp("lsmsc_trace_hard.json");
    let out = lsmsc()
        .arg(&path)
        .args(["--run", "50", "--trace"])
        .arg(&trace_path)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&trace_path).expect("trace file written");
    assert_valid_json(&json);

    let events = trace_events(&json);
    // Spans nest properly per thread: B/E pairs match like parentheses,
    // with names agreeing (Perfetto rejects mismatched pairs).
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for (name, ph, tid) in &events {
        match ph.as_str() {
            "B" => stacks.entry(*tid).or_default().push(name.clone()),
            "E" => {
                let open = stacks.entry(*tid).or_default().pop();
                assert_eq!(
                    open.as_deref(),
                    Some(name.as_str()),
                    "mismatched E on {tid}"
                );
            }
            _ => {}
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }

    let spans: Vec<&str> = events
        .iter()
        .filter(|(_, ph, _)| ph == "B")
        .map(|(name, _, _)| name.as_str())
        .collect();
    for required in [
        "parse",
        "sema",
        "lower",
        "depgraph",
        "schedule:slack",
        "simulate-verify",
    ] {
        assert!(
            spans.contains(&required),
            "missing span {required}: {spans:?}"
        );
    }

    // The acceptance bar: at least three scheduler decision event types.
    let instants: Vec<&str> = events
        .iter()
        .filter(|(_, ph, _)| ph == "i")
        .map(|(name, _, _)| name.as_str())
        .collect();
    for required in [
        "sched.place",
        "sched.eject",
        "sched.mrt_conflict",
        "sched.ii_escalate",
    ] {
        assert!(
            instants.contains(&required),
            "missing decision event {required}: {instants:?}"
        );
    }
}

#[test]
fn metrics_totals_reconcile_with_timings_counters() {
    let path = write_loop("lsmsc_trace_reconcile.loop", HARD);
    let timings_path = temp("lsmsc_trace_reconcile_timings.json");
    let out = lsmsc()
        .arg(&path)
        .args(["--run", "50", "--metrics", "-", "--timings"])
        .arg(&timings_path)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let metrics = prom_samples(&String::from_utf8_lossy(&out.stdout));
    let timings = std::fs::read_to_string(&timings_path).expect("timings written");

    // Every per-pass counter in the timings JSON must reappear as a
    // metrics total with the same value, and invocation counts match.
    let mut passes = 0;
    for record in timings.split("{\"name\": \"").skip(1) {
        let pass = record.split('"').next().expect("pass name");
        let invocations: u64 = record
            .split("\"invocations\": ")
            .nth(1)
            .expect("invocations")
            .split(',')
            .next()
            .expect("invocations value")
            .trim()
            .parse()
            .expect("invocations number");
        assert_eq!(
            metrics.get(&format!("lsms_{}_invocations_total", sanitize(pass))),
            Some(&invocations),
            "invocations mismatch for {pass}"
        );
        let counters = record
            .split("\"counters\": {")
            .nth(1)
            .expect("counters object")
            .split('}')
            .next()
            .expect("counters body");
        for pair in counters.split(", ").filter(|p| !p.is_empty()) {
            let (key, value) = pair.split_once(": ").expect("counter pair");
            let key = key.trim_matches('"');
            let value: u64 = value.parse().expect("counter value");
            let metric = format!("lsms_{}_{}_total", sanitize(pass), sanitize(key));
            assert_eq!(
                metrics.get(&metric),
                Some(&value),
                "{metric} disagrees with --timings {pass}.{key}"
            );
        }
        passes += 1;
    }
    assert!(
        passes >= 5,
        "expected a full pipeline in timings: {timings}"
    );
}

#[test]
fn corpus_metrics_are_identical_across_job_counts() {
    let run = |jobs: &str, out_name: &str, trace_name: &str| {
        let metrics_path = temp(out_name);
        let trace_path = temp(trace_name);
        let out = lsmsc()
            .args(["--eval-corpus", "--corpus-size", "32", "--jobs", jobs])
            .args(["--metrics"])
            .arg(&metrics_path)
            .args(["--trace"])
            .arg(&trace_path)
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            std::fs::read_to_string(&metrics_path).expect("metrics written"),
            std::fs::read_to_string(&trace_path).expect("trace written"),
        )
    };
    let (serial, _) = run("1", "lsmsc_metrics_jobs1.txt", "lsmsc_trace_jobs1.json");
    let (parallel, trace) = run("4", "lsmsc_metrics_jobs4.txt", "lsmsc_trace_jobs4.json");
    assert_eq!(serial, parallel, "metrics must not depend on worker count");
    assert!(
        serial.contains("lsms_schedule_slack_invocations_total 32"),
        "{serial}"
    );

    // The merged corpus trace is valid JSON with per-thread balanced
    // B/E streams and one corpus.loop span per loop.
    assert_valid_json(&trace);
    let events = trace_events(&trace);
    let mut depth: BTreeMap<u64, i64> = BTreeMap::new();
    for (_, ph, tid) in &events {
        match ph.as_str() {
            "B" => *depth.entry(*tid).or_default() += 1,
            "E" => *depth.entry(*tid).or_default() -= 1,
            _ => {}
        }
    }
    assert!(
        depth.values().all(|&d| d == 0),
        "unbalanced corpus trace: {depth:?}"
    );
    let loop_spans = events
        .iter()
        .filter(|(name, ph, _)| name == "corpus.loop" && ph == "B")
        .count();
    assert_eq!(loop_spans, 32, "one corpus.loop span per loop");
}

/// A pass that panics mid-span must not leave a dangling `B` event:
/// `SpanGuard` emits its `E` from `Drop` during unwinding, so a drained
/// trace stays balanced per thread — the invariant Perfetto enforces on
/// import, and the reason the collector survives a buggy backend.
///
/// This one runs in-process (the only test here that touches this
/// process's collector; every other test shells out to `lsmsc`).
#[test]
fn spans_balance_after_a_panicking_pass() {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    lsms_trace::set_enabled(true);
    let _ = lsms_trace::drain(); // start from an empty collector
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _pipeline = lsms_trace::span("pipeline");
        let _pass = lsms_trace::span("schedule:panicky");
        panic!("injected backend bug");
    }));
    lsms_trace::set_enabled(false);
    assert!(result.is_err(), "the pass must actually panic");

    let trace = lsms_trace::drain();
    let mut closed_panicky_spans = 0;
    for thread in &trace.threads {
        let mut stack: Vec<&str> = Vec::new();
        for event in &thread.events {
            match event.phase {
                lsms_trace::Phase::Begin => stack.push(event.name),
                lsms_trace::Phase::End => {
                    assert_eq!(
                        stack.pop(),
                        Some(event.name),
                        "mismatched E on tid {}",
                        thread.tid
                    );
                    if event.name == "schedule:panicky" {
                        closed_panicky_spans += 1;
                    }
                }
                lsms_trace::Phase::Instant => {}
            }
        }
        assert!(
            stack.is_empty(),
            "unclosed spans on tid {}: {stack:?}",
            thread.tid
        );
    }
    assert_eq!(
        closed_panicky_spans, 1,
        "the panicking pass must close its span on unwind"
    );
}

#[test]
fn pass_budget_overruns_are_reported() {
    let path = write_loop("lsmsc_trace_budget.loop", HARD);
    let trace_path = temp("lsmsc_trace_budget.json");
    // A zero-millisecond deadline on parse always overruns.
    let out = lsmsc()
        .arg(&path)
        .args(["--pass-budget", "parse=0", "--metrics", "-", "--trace"])
        .arg(&trace_path)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "budgets warn, never abort: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let metrics = String::from_utf8_lossy(&out.stdout);
    assert!(
        metrics.contains("lsms_parse_budget_exceeded_total 1"),
        "{metrics}"
    );
    let json = std::fs::read_to_string(&trace_path).expect("trace written");
    assert!(json.contains("\"budget_exceeded\""), "{json}");
}

#[test]
fn pass_budget_rejects_unknown_passes() {
    let path = write_loop("lsmsc_trace_badbudget.loop", HARD);
    let out = lsmsc()
        .arg(&path)
        .args(["--pass-budget", "nonsense=5"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2), "usage error expected");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown pass"), "{err}");
}
