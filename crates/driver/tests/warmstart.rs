//! End-to-end tests of `--warm-start`: the schedule-cache ledger round
//! trip, byte-identical quality across cold and warm runs, and graceful
//! degradation on corrupt ledgers.

use std::process::Command;

fn lsmsc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lsmsc"))
}

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("{name}-{}", std::process::id()))
}

/// Cuts stdout down to the quality JSON document and strips the only
/// nondeterministic field (`wall_us`) so reports compare byte-for-byte.
fn strip_wall(report: &str) -> String {
    let json_start = report.find("{\n").expect("quality JSON on stdout");
    report[json_start..]
        .lines()
        .map(|line| match line.find("\"wall_us\":") {
            Some(at) => &line[..at],
            None => line,
        })
        .fold(String::new(), |mut out, line| {
            out.push_str(line);
            out.push('\n');
            out
        })
}

/// The `schedule-cache:` summary line of an `--eval-corpus` run.
fn cache_line(stdout: &str) -> &str {
    stdout
        .lines()
        .find(|l| l.starts_with("schedule-cache:"))
        .expect("schedule-cache line on stdout")
}

fn run_corpus(ledger: &std::path::Path) -> (String, String) {
    let out = lsmsc()
        .args(["--eval-corpus", "--corpus-size", "24", "--jobs", "1"])
        .args(["--quality", "-"])
        .arg("--warm-start")
        .arg(ledger)
        .env("LSMS_QUALITY_HISTORY", "") // keep the test hermetic
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
    )
}

/// A cold run writes the ledger; a warm rerun loads it, reports warm
/// hits, and produces byte-identical quality records.
#[test]
fn warm_start_round_trips_and_matches_cold() {
    let ledger = temp("lsms-warmstart-roundtrip.jsonl");
    std::fs::remove_file(&ledger).ok();

    let (cold, _) = run_corpus(&ledger);
    let cold_line = cache_line(&cold);
    assert!(cold_line.contains("warm=0"), "{cold_line}");
    assert!(cold_line.contains("ledger=0"), "{cold_line}");
    let written = std::fs::read_to_string(&ledger).expect("ledger written");
    assert!(!written.is_empty());
    assert!(written.lines().all(|l| l.contains("\"fp\":")), "{written}");

    let (warm, _) = run_corpus(&ledger);
    let warm_line = cache_line(&warm);
    assert!(!warm_line.contains("warm=0"), "{warm_line}");
    assert!(!warm_line.contains("ledger=0"), "{warm_line}");
    assert_eq!(
        strip_wall(&cold),
        strip_wall(&warm),
        "warm-started quality must match the cold run"
    );
    // The rewrite is stable: a warm rerun reproduces the same entries.
    let rewritten = std::fs::read_to_string(&ledger).expect("ledger rewritten");
    assert_eq!(
        written.lines().count(),
        rewritten.lines().count(),
        "warm rerun must not grow the ledger"
    );
    std::fs::remove_file(&ledger).ok();
}

/// Corrupt ledger lines are skipped with a warning, and the run falls
/// back to cold scheduling with identical results.
#[test]
fn corrupt_ledger_degrades_to_cold_run() {
    let clean = temp("lsms-warmstart-clean.jsonl");
    std::fs::remove_file(&clean).ok();
    let (cold, _) = run_corpus(&clean);

    let corrupt = temp("lsms-warmstart-corrupt.jsonl");
    std::fs::write(&corrupt, "this is not a ledger\n{\"v\":7}\n").expect("writes");
    let (warm, stderr) = run_corpus(&corrupt);
    assert!(stderr.contains("skipped 2 corrupt line(s)"), "{stderr}");
    let line = cache_line(&warm);
    assert!(line.contains("warm=0"), "{line}");
    assert_eq!(strip_wall(&cold), strip_wall(&warm));
    // The rewrite drops the corrupt lines and keeps the fresh entries.
    let rewritten = std::fs::read_to_string(&corrupt).expect("rewritten");
    assert!(
        rewritten.lines().all(|l| l.contains("\"fp\":")),
        "{rewritten}"
    );
    std::fs::remove_file(&clean).ok();
    std::fs::remove_file(&corrupt).ok();
}

/// `--warm-start` appears in the usage text, and a missing value is a
/// usage error (exit 2).
#[test]
fn warm_start_usage_and_missing_value() {
    let out = lsmsc().arg("--warm-start").output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--warm-start"), "{stderr}");
}
