//! The scheduler-backend registry: the process-wide table of
//! [`ModuloScheduler`] trait objects a [`CompileSession`](crate::CompileSession)
//! dispatches through.
//!
//! The registry is seeded with the four built-in backends (`slack`,
//! `early`, `late`, `cydrome`) and is extensible: any crate may call
//! [`register_backend`] before building a session, and the new backend is
//! immediately selectable by name, listed by `--list-backends`, timed
//! under its derived `schedule:<name>` pass label, and usable as a
//! degradation target — with no edits to the session's dispatch code.
//!
//! Pass labels for runtime-registered backends are interned (leaked once
//! per distinct name) because [`PassReport`](crate::PassReport) and the
//! trace layer key on `&'static str`; the built-ins reuse the string
//! literals already in [`PASSES`](crate::PASSES), so their report rows
//! sort in canonical pipeline order exactly as before.

use std::sync::{Arc, OnceLock, RwLock};

use lsms_sched::{CydromeBackend, ModuloScheduler, SlackBackend};

use crate::error::LsmsError;

/// One resolved registry entry: the shared backend object plus the
/// interned pass label every report row and trace span for it uses.
#[derive(Clone, Debug)]
pub struct BackendEntry {
    /// The backend, shared across the session's worker threads.
    pub scheduler: Arc<dyn ModuloScheduler>,
    /// The interned `schedule:<name>` pass label.
    pub pass: &'static str,
}

/// Which backend a session runs, by registry name, plus the `key=value`
/// options forwarded to [`ModuloScheduler::configure`]. Replaces the
/// closed `SchedulerBackend` enum of earlier revisions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackendSelection {
    /// The registry name (`slack`, `cydrome`, ...).
    pub name: String,
    /// Backend-specific options, applied in order.
    pub options: Vec<(String, String)>,
}

impl Default for BackendSelection {
    fn default() -> Self {
        Self::named("slack")
    }
}

impl BackendSelection {
    /// Selects a backend by name with no options.
    pub fn named(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            options: Vec::new(),
        }
    }

    /// Parses a `NAME[:key=val,...]` spec, the `--backend` syntax.
    ///
    /// # Errors
    ///
    /// `E0003` when the name is empty or an option is not `key=value`.
    /// Whether the name exists is checked at resolution time, against
    /// whatever is registered then.
    pub fn parse(spec: &str) -> Result<Self, LsmsError> {
        let (name, opts) = match spec.split_once(':') {
            Some((name, opts)) => (name, Some(opts)),
            None => (spec, None),
        };
        if name.is_empty() {
            return Err(LsmsError::backend(format!(
                "empty backend name in `{spec}` (want NAME[:key=val,...])"
            )));
        }
        let mut options = Vec::new();
        if let Some(opts) = opts {
            for part in opts.split(',') {
                let pair = part.split_once('=');
                let Some((key, value)) = pair.filter(|(k, v)| !k.is_empty() && !v.is_empty())
                else {
                    return Err(LsmsError::backend(format!(
                        "malformed backend option `{part}` (want key=value)"
                    )));
                };
                options.push((key.to_owned(), value.to_owned()));
            }
        }
        Ok(Self {
            name: name.to_owned(),
            options,
        })
    }
}

static REGISTRY: OnceLock<RwLock<Vec<BackendEntry>>> = OnceLock::new();

fn registry() -> &'static RwLock<Vec<BackendEntry>> {
    REGISTRY.get_or_init(|| {
        RwLock::new(vec![
            BackendEntry {
                scheduler: Arc::new(SlackBackend::bidirectional()),
                pass: "schedule:slack",
            },
            BackendEntry {
                scheduler: Arc::new(SlackBackend::early()),
                pass: "schedule:early",
            },
            BackendEntry {
                scheduler: Arc::new(SlackBackend::late()),
                pass: "schedule:late",
            },
            BackendEntry {
                scheduler: Arc::new(CydromeBackend::new()),
                pass: "schedule:cydrome",
            },
        ])
    })
}

/// Registers a backend process-wide, making it selectable by
/// [`BackendSelection`] and visible to `--list-backends`. Call before
/// building the sessions that should see it.
///
/// The backend's `schedule:<name>` pass label is interned here — matched
/// to the static [`PASSES`](crate::PASSES) literal when one exists, leaked
/// once otherwise — so its report rows and trace spans carry a `'static`
/// name like every built-in pass.
///
/// # Errors
///
/// `E0003` when the name is empty, contains `:`/`,`/`=`/whitespace, or is
/// already registered.
pub fn register_backend(scheduler: Arc<dyn ModuloScheduler>) -> Result<(), LsmsError> {
    let name = scheduler.name().to_owned();
    if name.is_empty()
        || name
            .chars()
            .any(|c| matches!(c, ':' | ',' | '=') || c.is_whitespace())
    {
        return Err(LsmsError::backend(format!(
            "invalid backend name `{name}` (must be non-empty and free of \
             `:`, `,`, `=`, and whitespace)"
        )));
    }
    let mut entries = registry().write().expect("backend registry lock");
    if entries.iter().any(|e| e.scheduler.name() == name) {
        return Err(LsmsError::backend(format!(
            "backend `{name}` is already registered"
        )));
    }
    let label = format!("schedule:{name}");
    let pass = match crate::passes::pass_info(&label) {
        Some(info) => info.name,
        None => Box::leak(label.into_boxed_str()),
    };
    entries.push(BackendEntry { scheduler, pass });
    Ok(())
}

/// A snapshot of every registered backend, in registration order
/// (built-ins first).
pub fn registered_backends() -> Vec<BackendEntry> {
    registry().read().expect("backend registry lock").clone()
}

/// Looks up one backend by registry name.
pub fn lookup_backend(name: &str) -> Option<BackendEntry> {
    registry()
        .read()
        .expect("backend registry lock")
        .iter()
        .find(|e| e.scheduler.name() == name)
        .cloned()
}

/// The names of every registered backend, in registration order.
pub fn backend_names() -> Vec<String> {
    registry()
        .read()
        .expect("backend registry lock")
        .iter()
        .map(|e| e.scheduler.name().to_owned())
        .collect()
}

/// Resolves a selection against the registry, applying its options.
///
/// # Errors
///
/// `E0003` naming the registered backends when the name is unknown, or
/// relaying the backend's complaint when an option is rejected.
pub fn resolve_backend(selection: &BackendSelection) -> Result<BackendEntry, LsmsError> {
    let Some(entry) = lookup_backend(&selection.name) else {
        return Err(LsmsError::backend(format!(
            "unknown backend `{}` (backends: {})",
            selection.name,
            backend_names().join(", ")
        )));
    };
    if selection.options.is_empty() {
        return Ok(entry);
    }
    let scheduler = entry
        .scheduler
        .configure(&selection.options)
        .map_err(|msg| LsmsError::backend(format!("backend `{}`: {msg}", selection.name)))?;
    Ok(BackendEntry {
        scheduler,
        pass: entry.pass,
    })
}

/// The `--list-backends` text: one block per backend with its capability
/// flags and one-line summary. `xtask backend-audit` asserts this stays
/// consistent with the [`PASSES`](crate::PASSES) registry.
pub fn list_backends_text() -> String {
    let mut out = String::from("registered backends (--backend NAME[:key=val,...]):\n");
    for entry in registered_backends() {
        out.push_str(&format!(
            "  {:<10} {}\n  {:<10} capabilities {}\n",
            entry.scheduler.name(),
            entry.scheduler.describe().summary,
            "",
            entry.scheduler.capabilities().flags(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_seeded_with_canonical_pass_labels() {
        for (name, pass) in [
            ("slack", "schedule:slack"),
            ("early", "schedule:early"),
            ("late", "schedule:late"),
            ("cydrome", "schedule:cydrome"),
        ] {
            let entry = lookup_backend(name).expect(name);
            assert_eq!(entry.pass, pass);
            assert_eq!(entry.scheduler.name(), name);
            assert!(crate::passes::pass_info(entry.pass).is_some());
        }
        assert!(lookup_backend("quantum").is_none());
    }

    #[test]
    fn selection_parsing_round_trips_and_rejects_garbage() {
        assert_eq!(
            BackendSelection::parse("slack").unwrap(),
            BackendSelection::named("slack")
        );
        let sel = BackendSelection::parse("slack:increment=by-one,budget-factor=3").unwrap();
        assert_eq!(sel.name, "slack");
        assert_eq!(
            sel.options,
            vec![
                ("increment".to_owned(), "by-one".to_owned()),
                ("budget-factor".to_owned(), "3".to_owned()),
            ]
        );
        for bad in ["", ":x=y", "slack:increment", "slack:=y", "slack:k="] {
            let err = BackendSelection::parse(bad).unwrap_err();
            assert_eq!(err.code, "E0003", "{bad}");
        }
    }

    #[test]
    fn resolution_applies_options_and_reports_unknown_names() {
        let entry =
            resolve_backend(&BackendSelection::parse("slack:budget-factor=7").unwrap()).unwrap();
        assert_eq!(entry.scheduler.verify_config().unwrap().budget_factor, 7);
        assert_eq!(entry.pass, "schedule:slack");

        let err = resolve_backend(&BackendSelection::named("quantum")).unwrap_err();
        assert_eq!(err.code, "E0003");
        assert!(err.message.contains("slack"), "{}", err.message);
        assert!(err.message.contains("cydrome"), "{}", err.message);

        let err = resolve_backend(&BackendSelection::parse("cydrome:increment=by-one").unwrap())
            .unwrap_err();
        assert_eq!(err.code, "E0003");
        assert!(err.message.contains("unknown option"), "{}", err.message);
    }

    #[test]
    fn registration_rejects_bad_and_duplicate_names() {
        let err = register_backend(Arc::new(SlackBackend::bidirectional())).unwrap_err();
        assert_eq!(err.code, "E0003");
        assert!(
            err.message.contains("already registered"),
            "{}",
            err.message
        );
    }

    #[test]
    fn listing_names_every_backend_with_flags() {
        let text = list_backends_text();
        for name in backend_names() {
            assert!(text.contains(&name), "{text}");
        }
        assert!(text.contains("capabilities ["), "{text}");
    }
}
