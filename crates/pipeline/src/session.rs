//! The `CompileSession` pass manager: the one place the fixed pipeline
//! (parse → sema → lower → depgraph → schedule → regalloc → codegen →
//! simulate-verify) is wired together.
//!
//! The driver, the bench library, and every experiment binary build a
//! session and call [`CompileSession::compile_source`],
//! [`CompileSession::run_loop`], or
//! [`CompileSession::evaluate_variants`]; the session owns stage order,
//! `MinDistCache` sharing, error unification ([`LsmsError`]), and
//! per-pass observability (the [`PassReport`]).

use std::sync::Mutex;
use std::time::Instant;

use lsms_codegen::{KernelCode, MveKernel};
use lsms_front::{analyze, lex, lower_loop, parse, CompiledLoop, CompiledUnit, LoopDef};
use lsms_ir::{LoopBody, RegClass};
use lsms_machine::Machine;
use lsms_regalloc::{allocate_rotating, RotatingAllocation, Strategy};
use lsms_sched::pressure::{gpr_count, measure_cached, min_avg_cached};
use lsms_sched::{
    validate, DecisionStats, EngineWorkspace, MinDistCache, PressureReport, SchedContext,
    SchedProblem, SchedStats, Schedule,
};
use lsms_sim::{check_equivalence, check_equivalence_mve, EquivReport, RunConfig};

use crate::backend::{lookup_backend, resolve_backend, BackendEntry, BackendSelection};
use crate::error::{LsmsError, Stage};
use crate::report::PassReport;
use crate::schedcache::{CachedRun, ScheduleCache, WarmLedger};

/// A wall-clock deadline for one pass. When an invocation overruns it,
/// the session emits a `budget_exceeded` trace event and bumps the
/// pass's `budget_exceeded` counter in the [`PassReport`] — it never
/// aborts the pass. Groundwork for degrading to a cheaper backend when a
/// latency budget is blown.
#[derive(Clone, Copy, Debug)]
pub struct PassBudget {
    /// The pass the deadline applies to. Use
    /// [`pass_info`](crate::pass_info) to resolve a user-supplied name to
    /// its interned registry entry.
    pub pass: &'static str,
    /// The per-invocation wall-clock deadline.
    pub limit: std::time::Duration,
}

/// Parameters of the simulate-verify pass.
#[derive(Clone, Copy, Debug)]
pub struct VerifySpec {
    /// Loop trip count to simulate.
    pub trip: u64,
    /// Seed for the deterministic input generator.
    pub seed: u64,
}

impl VerifySpec {
    /// A verify spec with the driver's historical default seed.
    pub fn with_trip(trip: u64) -> Self {
        Self { trip, seed: 0x5eed }
    }
}

/// Everything a [`CompileSession`] needs to know before running.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Target machine description.
    pub machine: Machine,
    /// Scheduler backend, by registry name with `key=value` options
    /// (default: bidirectional slack). Resolved against the
    /// [backend registry](crate::backend) when the session is built.
    pub backend: BackendSelection,
    /// The backend a budget-capped schedule pass degrades to, by registry
    /// name (default `cydrome`). Only consulted when a [`PassBudget`]
    /// covers the primary scheduling pass.
    pub degrade_to: String,
    /// Unroll factor applied before scheduling (1 = off).
    pub unroll: u32,
    /// Schedule as a single basic block instead of a modulo pipeline.
    pub straight_line: bool,
    /// Run rotating register allocation (implied by `codegen`).
    pub regalloc: bool,
    /// Emit rotating-file kernel code.
    pub codegen: bool,
    /// Also emit the modulo-variable-expansion kernel, and (when
    /// verifying) check it against the reference too.
    pub mve: bool,
    /// Run the simulate-verify pass with these parameters.
    pub verify: Option<VerifySpec>,
    /// Optional per-pass wall-clock deadlines (see [`PassBudget`]).
    pub budgets: Vec<PassBudget>,
    /// Memoize scheduling results in the session's content-addressed
    /// cache (default on). Passes running under a [`PassBudget`]
    /// deadline bypass the cache either way, because a deadline-capped
    /// result is not deterministic.
    pub sched_cache: bool,
    /// Warm-start ledger to load (`lsmsc --warm-start PATH`): recorded
    /// IIs seed the first escalation attempt, and verified hits reuse
    /// the recorded counters. A missing file is an empty ledger.
    pub warm_start: Option<std::path::PathBuf>,
}

impl SessionConfig {
    /// The default pipeline for a machine: bidirectional slack
    /// scheduling, no unrolling, no codegen, no verification.
    pub fn new(machine: Machine) -> Self {
        Self {
            machine,
            backend: BackendSelection::default(),
            degrade_to: "cydrome".to_owned(),
            unroll: 1,
            straight_line: false,
            regalloc: false,
            codegen: false,
            mve: false,
            verify: None,
            budgets: Vec::new(),
            sched_cache: true,
            warm_start: None,
        }
    }
}

/// Owned results of running the pipeline on one loop.
///
/// [`SchedProblem`] borrows the loop body, so it is not stored; rebuild
/// it deterministically with [`LoopArtifacts::problem`] when a consumer
/// (report rendering, pressure measurement) needs it.
#[derive(Clone, Debug)]
pub struct LoopArtifacts {
    /// The loop's name.
    pub name: String,
    /// The scheduled body — the unrolled one if the session unrolls.
    pub body: LoopBody,
    /// The schedule the configured backend produced.
    pub schedule: Schedule,
    /// RR-file rotating allocation, when the session ran regalloc.
    pub rr: Option<RotatingAllocation>,
    /// ICR-file rotating allocation, when the session ran regalloc.
    pub icr: Option<RotatingAllocation>,
    /// Rotating-file kernel, when the session ran codegen.
    pub kernel: Option<KernelCode>,
    /// Modulo-variable-expansion kernel, when requested.
    pub mve: Option<MveKernel>,
    /// Equivalence report, when the session ran simulate-verify.
    pub equiv: Option<EquivReport>,
    /// The loop's schedule-quality record (II vs. MII, MaxLive,
    /// lifetimes, backtracking work) for the observatory.
    pub quality: lsms_obs::ScheduleQuality,
}

impl LoopArtifacts {
    /// Rebuilds the scheduling problem for this body (cheap and
    /// deterministic — the same problem the schedule was produced from).
    pub fn problem<'a>(&'a self, machine: &'a Machine) -> Result<SchedProblem<'a>, LsmsError> {
        Ok(SchedProblem::new(&self.body, machine)?)
    }
}

/// One scheduler's result on one loop, with failure kept as data: a loop
/// that fails to pipeline still reports the last II attempted and its
/// work counters (Table 4's convention).
#[derive(Clone, Debug)]
pub struct SchedOutcome {
    /// Achieved II, or `None` if the loop failed to pipeline.
    pub ii: Option<u32>,
    /// The last II attempted (equals `ii` on success).
    pub last_ii: u32,
    /// Register pressure of the final schedule, when one exists.
    pub pressure: Option<PressureReport>,
    /// Work counters.
    pub stats: SchedStats,
    /// True when the configured backend blew its [`PassBudget`] and this
    /// outcome comes from the degradation fallback.
    pub degraded: bool,
}

impl SchedOutcome {
    /// The II this loop contributes to ΣII: achieved or last-attempted.
    pub fn counted_ii(&self) -> u64 {
        u64::from(self.ii.unwrap_or(self.last_ii))
    }
}

/// What one schedule-pass invocation actually ran: the result plus the
/// registry entry that produced it, which is the fallback's after budget
/// degradation — so quality records attribute schedules to the backend
/// that made them, not merely the one that was asked.
struct ScheduledRun {
    result: Result<Schedule, lsms_sched::SchedFailure>,
    pass: &'static str,
    backend: String,
    degraded: bool,
}

/// The three-scheduler evaluation of one loop (the paper's experimental
/// unit): bidirectional slack, always-early ablation, Cydrome baseline,
/// plus the schedule-independent bounds, all sharing one `MinDistCache`.
#[derive(Clone, Debug)]
pub struct LoopEvaluation {
    /// Recurrence-constrained MII (§3.1).
    pub rec_mii: u32,
    /// Resource-constrained MII.
    pub res_mii: u32,
    /// `max(RecMII, ResMII)`.
    pub mii: u32,
    /// Schedule-independent `MinAvg` at MII.
    pub min_avg_at_mii: u32,
    /// Loop-invariant (GPR) count.
    pub gprs: u32,
    /// Bidirectional slack scheduler ("New Scheduler").
    pub new: SchedOutcome,
    /// Always-early slack ablation.
    pub early: SchedOutcome,
    /// Cydrome-style baseline ("Old Scheduler").
    pub old: SchedOutcome,
    /// §5.2 decision tallies from the bidirectional run.
    pub decisions: DecisionStats,
}

/// The pass manager. See the [module docs](self).
///
/// A session is `Sync`: corpus evaluation calls
/// [`evaluate_variants`](Self::evaluate_variants) from many worker
/// threads against one session, and pass measurements accumulate into
/// the shared report behind a mutex.
#[derive(Debug)]
pub struct CompileSession {
    config: SessionConfig,
    /// The configured backend, resolved once at build time so every
    /// worker thread shares one `Arc`; resolution failure is kept as data
    /// and surfaced by [`backend`](Self::backend) / [`validate`](Self::validate).
    primary: Result<BackendEntry, LsmsError>,
    /// The degradation target (`config.degrade_to`), resolved likewise.
    fallback: Result<BackendEntry, LsmsError>,
    /// The three-scheduler evaluation trio (`slack`, `early`, `cydrome`),
    /// resolved once so the parallel corpus pool shares the `Arc`s.
    eval: [BackendEntry; 3],
    report: Mutex<PassReport>,
    /// In-memory schedule memoization, shared by every worker thread.
    sched_cache: ScheduleCache,
    /// The warm-start ledger loaded from [`SessionConfig::warm_start`].
    ledger: WarmLedger,
}

impl CompileSession {
    /// A session over an explicit configuration.
    ///
    /// Building never fails: an unknown backend name is carried as a
    /// deferred diagnostic that [`validate`](Self::validate) or the first
    /// scheduling call surfaces.
    pub fn new(config: SessionConfig) -> Self {
        let primary = resolve_backend(&config.backend);
        let fallback = lookup_backend(&config.degrade_to).ok_or_else(|| {
            LsmsError::backend(format!(
                "unknown degradation backend `{}` (backends: {})",
                config.degrade_to,
                crate::backend::backend_names().join(", ")
            ))
        });
        let eval = ["slack", "early", "cydrome"]
            .map(|name| lookup_backend(name).expect("built-in backend registered"));
        let ledger = match &config.warm_start {
            Some(path) => WarmLedger::load(path),
            None => WarmLedger::empty(),
        };
        Self {
            config,
            primary,
            fallback,
            eval,
            report: Mutex::new(PassReport::new()),
            sched_cache: ScheduleCache::new(),
            ledger,
        }
    }

    /// A default-pipeline session for a machine (the common bench case).
    pub fn with_machine(machine: Machine) -> Self {
        Self::new(SessionConfig::new(machine))
    }

    /// The session's configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The resolved primary backend.
    ///
    /// # Errors
    ///
    /// `E0003` when the configured name is unknown or its options were
    /// rejected; `E0002` when the configuration asks for straight-line
    /// scheduling from a backend without that capability.
    pub fn backend(&self) -> Result<&BackendEntry, LsmsError> {
        let entry = self.primary.as_ref().map_err(Clone::clone)?;
        if self.config.straight_line && !entry.scheduler.capabilities().straight_line {
            return Err(LsmsError::usage(format!(
                "backend `{}` does not support --straight-line",
                entry.scheduler.name()
            )));
        }
        Ok(entry)
    }

    /// Checks the whole backend configuration eagerly — primary backend,
    /// capability requirements, degradation target — so drivers can fail
    /// fast instead of erroring on the first loop.
    ///
    /// # Errors
    ///
    /// As [`backend`](Self::backend), plus `E0003` for an unknown
    /// `degrade_to` name.
    pub fn validate(&self) -> Result<(), LsmsError> {
        self.backend()?;
        self.fallback.as_ref().map_err(Clone::clone)?;
        Ok(())
    }

    /// A snapshot of everything measured so far.
    pub fn report(&self) -> PassReport {
        self.report.lock().expect("report lock").clone()
    }

    /// Records one pass invocation everywhere it is observable: the
    /// [`PassReport`], the trace metrics (scoped by pass name, so
    /// `--metrics` totals reconcile with `--timings`), and — when the
    /// invocation overran a configured [`PassBudget`] — a
    /// `budget_exceeded` event and counter.
    fn record(&self, pass: &'static str, started: Instant, counters: &[(&'static str, u64)]) {
        let elapsed = started.elapsed();
        lsms_trace::add_all(pass, counters);
        lsms_trace::add(pass, "invocations", 1);
        let over_budget = self
            .config
            .budgets
            .iter()
            .any(|b| b.pass == pass && elapsed > b.limit);
        if over_budget {
            lsms_trace::instant(
                "budget_exceeded",
                &[("wall_us", elapsed.as_micros().min(i64::MAX as u128) as i64)],
            );
            lsms_trace::add(pass, "budget_exceeded", 1);
        }
        let mut report = self.report.lock().expect("report lock");
        report.record(pass, elapsed, counters);
        if over_budget {
            report.bump(pass, "budget_exceeded", 1);
        }
    }

    /// Runs `parse`: DSL source → loop definitions.
    pub fn parse_source(&self, source: &str) -> Result<Vec<LoopDef>, LsmsError> {
        let started = Instant::now();
        let result = {
            let _span = lsms_trace::span("parse");
            lex(source).and_then(|tokens| parse(&tokens))
        };
        let loops = result.as_ref().map_or(0, |l| l.len() as u64);
        self.record("parse", started, &[("loops", loops)]);
        result.map_err(|e| LsmsError::from_front(e, Stage::Parse))
    }

    /// Runs `parse`, `sema`, and `lower` (with its fused `if-convert`)
    /// over every loop in the source.
    pub fn compile_source(&self, source: &str) -> Result<CompiledUnit, LsmsError> {
        let defs = self.parse_source(source)?;
        let mut compiled = Vec::with_capacity(defs.len());
        for def in defs {
            let started = Instant::now();
            let info = {
                let _span = lsms_trace::span("sema");
                analyze(&def)
            };
            self.record("sema", started, &[("loops", 1)]);
            let info = info.map_err(|e| LsmsError::from_front(e, Stage::Sema))?;

            let started = Instant::now();
            let lowered = {
                let _span = lsms_trace::span("lower");
                lower_loop(def, &info)
            };
            let ops = lowered.as_ref().map_or(0, |l| l.body.num_ops() as u64);
            self.record("lower", started, &[("ops", ops)]);
            let lowered = lowered.map_err(|e| LsmsError::from_front(e, Stage::Lower))?;

            // If-conversion happens inside the lowering walk; surface its
            // work as the `if-convert` accounting entry.
            let guarded = lowered
                .body
                .ops()
                .iter()
                .filter(|op| op.predicate.is_some())
                .count() as u64;
            let mut predicates: Vec<_> = lowered
                .body
                .ops()
                .iter()
                .filter_map(|op| op.predicate)
                .collect();
            predicates.sort_unstable();
            predicates.dedup();
            self.record(
                "if-convert",
                Instant::now(),
                &[
                    ("guarded_ops", guarded),
                    ("predicates", predicates.len() as u64),
                ],
            );
            compiled.push(lowered);
        }
        Ok(CompiledUnit { loops: compiled })
    }

    /// Reads a file and compiles it.
    pub fn compile_file(&self, path: &str) -> Result<CompiledUnit, LsmsError> {
        let source = std::fs::read_to_string(path)
            .map_err(|e| LsmsError::io(format!("cannot read {path}: {e}")))?;
        self.compile_source(&source)
    }

    /// Runs `depgraph`: body validation + dependence graph + bounds.
    fn depgraph<'a>(&'a self, body: &'a LoopBody) -> Result<SchedProblem<'a>, LsmsError> {
        let started = Instant::now();
        let problem = {
            let _span = lsms_trace::span("depgraph");
            SchedProblem::new(body, &self.config.machine)
        };
        let counters = match &problem {
            Ok(p) => [
                ("nodes", p.num_nodes() as u64),
                ("arcs", p.arcs().len() as u64),
                ("mii", u64::from(p.mii())),
            ],
            Err(_) => [("nodes", 0), ("arcs", 0), ("mii", 0)],
        };
        self.record("depgraph", started, &counters);
        Ok(problem?)
    }

    /// Runs the schedule pass through one registry entry, keeping failure
    /// as data.
    ///
    /// When a [`PassBudget`] covers the entry's pass, its limit becomes a
    /// wall-clock deadline on II escalation; a deadline-capped failure
    /// degrades to the registry backend named by
    /// [`SessionConfig::degrade_to`] (recorded under that backend's own
    /// pass label with a `degraded` counter) instead of failing the loop.
    /// The returned [`ScheduledRun`] names the backend that actually
    /// produced the result (the fallback's, after degradation), so the
    /// quality record attributes the schedule to the right pass.
    fn schedule(
        &self,
        entry: &BackendEntry,
        problem: &SchedProblem<'_>,
        cache: &MinDistCache,
        ws: &mut EngineWorkspace,
    ) -> ScheduledRun {
        let pass = entry.pass;
        let deadline = self
            .config
            .budgets
            .iter()
            .find(|b| b.pass == pass)
            .map(|b| Instant::now() + b.limit);
        let started = Instant::now();
        let result = {
            let _span = lsms_trace::span(pass);
            self.run_backend_memo(
                entry,
                &self.config.backend.options,
                self.config.straight_line,
                problem,
                cache,
                ws,
                deadline,
            )
            .0
        };
        let capped = matches!(&result, Err(f) if f.deadline_capped);
        let (stats, counters) = match &result {
            Ok(s) => (&s.stats, [("ii", u64::from(s.ii)), ("failures", 0)]),
            // A capped run is not a pipeline failure: the fallback below
            // decides whether the loop compiles.
            Err(f) => (&f.stats, [("ii", 0), ("failures", u64::from(!capped))]),
        };
        let mut all = vec![
            counters[0],
            ("central_iterations", stats.central_iterations),
            ("step3_invocations", stats.step3_invocations),
            ("ejected_ops", stats.ejected_ops),
            ("step6_restarts", stats.step6_restarts),
            ("attempts", u64::from(stats.attempts)),
            ("bounds_cells_touched", stats.bounds_cells_touched),
            ("choose_scan_len", stats.choose_scan_len),
            counters[1],
        ];
        if capped {
            all.push(("budget_capped", 1));
        }
        self.record(pass, started, &all);
        let produced_by = |result, entry: &BackendEntry, degraded| ScheduledRun {
            result,
            pass: entry.pass,
            backend: entry.scheduler.name().to_owned(),
            degraded,
        };
        if !capped {
            return produced_by(result, entry, false);
        }
        let Ok(fallback_entry) = &self.fallback else {
            // Unknown degrade_to name and validate() was skipped: surface
            // the capped failure rather than degrade to nothing.
            return produced_by(result, entry, false);
        };

        // Budget-driven degradation: the configured backend blew its
        // wall-clock budget mid-escalation. Retry with the configured
        // fallback backend rather than reporting the loop unschedulable.
        let last_ii = result.as_ref().err().map_or(0, |f| f.last_ii);
        lsms_trace::instant("sched.degrade", &[("last_ii", i64::from(last_ii))]);
        let started = Instant::now();
        let fallback = {
            let _span = lsms_trace::span(fallback_entry.pass);
            fallback_entry
                .scheduler
                .run(problem, cache, ws, &SchedContext::new(fallback_entry.pass))
                .result
        };
        let (stats, counters) = match &fallback {
            Ok(s) => (&s.stats, [("ii", u64::from(s.ii)), ("failures", 0)]),
            Err(f) => (&f.stats, [("ii", 0), ("failures", 1)]),
        };
        self.record(
            fallback_entry.pass,
            started,
            &[
                counters[0],
                ("central_iterations", stats.central_iterations),
                ("step3_invocations", stats.step3_invocations),
                ("ejected_ops", stats.ejected_ops),
                ("step6_restarts", stats.step6_restarts),
                ("attempts", u64::from(stats.attempts)),
                ("bounds_cells_touched", stats.bounds_cells_touched),
                ("choose_scan_len", stats.choose_scan_len),
                counters[1],
                ("degraded", 1),
            ],
        );
        produced_by(fallback, fallback_entry, true)
    }

    /// Runs one backend through the session's content-addressed schedule
    /// cache.
    ///
    /// A miss runs the backend — seeding the first II attempt from the
    /// warm-start ledger when an entry for this key exists — and
    /// memoizes the outcome; a hit clones the stored run, which is
    /// byte-identical to recomputing because the scheduling framework
    /// is deterministic per (problem, machine, backend, options, mode).
    /// Invocations carrying a [`PassBudget`] deadline bypass the cache
    /// entirely: a deadline-capped result depends on the wall clock,
    /// not just the inputs, so it is never safe to memoize.
    #[allow(clippy::too_many_arguments)]
    fn run_backend_memo(
        &self,
        entry: &BackendEntry,
        options: &[(String, String)],
        straight_line: bool,
        problem: &SchedProblem<'_>,
        cache: &MinDistCache,
        ws: &mut EngineWorkspace,
        deadline: Option<Instant>,
    ) -> (Result<Schedule, lsms_sched::SchedFailure>, DecisionStats) {
        let ctx = |warm_ii| SchedContext {
            pass: entry.pass,
            deadline,
            straight_line,
            warm_ii,
        };
        if deadline.is_some() || !self.config.sched_cache {
            let run = entry.scheduler.run(problem, cache, ws, &ctx(None));
            return (run.result, run.decisions);
        }
        let key = lsms_sched::schedule_key(
            lsms_sched::problem_fingerprint(problem.body(), &self.config.machine),
            entry.scheduler.name(),
            options,
            straight_line,
        );
        if let Some(hit) = self.sched_cache.get(key) {
            self.record(
                "sched-cache",
                Instant::now(),
                &[("hits", 1), ("misses", 0), ("inserts", 0), ("warm_hits", 0)],
            );
            return (hit.result, hit.decisions);
        }
        // Warm starts apply to modulo escalation only; the straight-line
        // "II" is a horizon, not an escalation result.
        let ledger = if straight_line {
            None
        } else {
            self.ledger.get(key)
        };
        let run = entry
            .scheduler
            .run(problem, cache, ws, &ctx(ledger.map(|e| e.ii)));
        let mut result = run.result;
        let mut decisions = run.decisions;
        let mut warm_hit = 0;
        if let (Some(le), Ok(s)) = (ledger, result.as_mut()) {
            if s.ii == le.ii {
                // The warm attempt reproduced the recorded II, skipping
                // the cold escalation's failed attempts — so this run's
                // counters undercount the canonical cold run. Substitute
                // the ledger's recorded counters (keeping this run's
                // wall clock) so warm and cold outcomes are identical
                // modulo elapsed time.
                let elapsed = s.stats.elapsed;
                s.stats = SchedStats {
                    elapsed,
                    ..le.stats.clone()
                };
                decisions = le.decisions.clone();
                warm_hit = 1;
            }
        }
        self.sched_cache.insert(
            key,
            CachedRun {
                backend: entry.scheduler.name().to_owned(),
                result: result.clone(),
                decisions: decisions.clone(),
            },
        );
        self.record(
            "sched-cache",
            Instant::now(),
            &[
                ("hits", 0),
                ("misses", 1),
                ("inserts", 1),
                ("warm_hits", warm_hit),
            ],
        );
        (result, decisions)
    }

    /// The number of entries in the loaded warm-start ledger.
    pub fn warm_ledger_len(&self) -> usize {
        self.ledger.len()
    }

    /// How many lines of the loaded warm-start ledger were corrupt and
    /// skipped.
    pub fn warm_ledger_skipped(&self) -> usize {
        self.ledger.skipped
    }

    /// The warm-start ledger state after a run, serialized as JSONL: the
    /// loaded entries merged with every schedule memoized this session,
    /// sorted by fingerprint so rewrites are deterministic.
    pub fn warm_ledger_lines(&self) -> String {
        self.ledger.merged_lines(self.sched_cache.successes())
    }

    /// A relative cost key for tail-aware corpus ordering: the ledger's
    /// recorded wall time summed over the evaluation trio's cache keys
    /// when available, else a cheap ops×recurrence-bound estimate (the
    /// single-arc-circuit RecMII lower bound — O(deps), no circuit
    /// enumeration). Purely a scheduling hint — output order never
    /// depends on it.
    pub fn corpus_cost_hint(&self, compiled: &CompiledLoop) -> u64 {
        let fp = lsms_sched::problem_fingerprint(&compiled.body, &self.config.machine);
        let mut sum = 0u64;
        let mut found = false;
        for entry in &self.eval {
            let key = lsms_sched::schedule_key(fp, entry.scheduler.name(), &[], false);
            if let Some(e) = self.ledger.get(key) {
                sum = sum.saturating_add(e.wall_us);
                found = true;
            }
        }
        if found {
            return sum.max(1);
        }
        let body = &compiled.body;
        let bound = body
            .deps()
            .iter()
            .filter(|d| d.omega > 0)
            .map(|d| {
                self.config
                    .machine
                    .latency(body.op(d.from).kind)
                    .div_ceil(d.omega)
            })
            .max()
            .unwrap_or(1)
            .max(1);
        (body.num_ops() as u64 + 1).saturating_mul(u64::from(bound))
    }

    /// Folds the shared MinDist cache's counters into the report under
    /// the `mindist` accounting entry (wall ≈ 0 — the compute time lives
    /// inside whichever pass triggered each matrix).
    fn record_mindist(&self, cache: &MinDistCache) {
        let stats = cache.stats();
        if stats.hits == 0 && stats.misses == 0 {
            return;
        }
        self.record(
            "mindist",
            Instant::now(),
            &[
                ("hits", stats.hits),
                ("misses", stats.misses),
                ("fw_computes", stats.fw_computes),
                ("parametric_builds", stats.parametric_builds),
                ("materialized", stats.materializations),
            ],
        );
    }

    /// Runs `regalloc` for one register class.
    fn regalloc(
        &self,
        problem: &SchedProblem<'_>,
        schedule: &Schedule,
        class: RegClass,
    ) -> Result<RotatingAllocation, LsmsError> {
        let started = Instant::now();
        let alloc = {
            let _span = lsms_trace::span("regalloc");
            allocate_rotating(problem, schedule, class, Strategy::default())
        };
        let counters = match (&alloc, class) {
            (Ok(a), RegClass::Rr) => [
                ("rr_regs", u64::from(a.num_regs)),
                ("max_live", u64::from(a.max_live)),
                ("excess", u64::from(a.excess())),
            ],
            (Ok(a), _) => [
                ("icr_regs", u64::from(a.num_regs)),
                ("max_live", u64::from(a.max_live)),
                ("excess", u64::from(a.excess())),
            ],
            (Err(_), _) => [("rr_regs", 0), ("max_live", 0), ("excess", 0)],
        };
        self.record("regalloc", started, &counters);
        Ok(alloc?)
    }

    /// Runs the full configured pipeline on one compiled loop.
    ///
    /// A schedule failure is an error here (`E0501`); use
    /// [`schedule_outcome`](Self::schedule_outcome) or
    /// [`evaluate_variants`](Self::evaluate_variants) when failure should
    /// be recorded as data instead.
    pub fn run_loop(&self, compiled: &CompiledLoop) -> Result<LoopArtifacts, LsmsError> {
        let cfg = &self.config;
        let body = if cfg.unroll > 1 {
            let started = Instant::now();
            let unrolled = {
                let _span = lsms_trace::span("unroll");
                lsms_ir::unroll(&compiled.body, cfg.unroll)
            };
            self.record(
                "unroll",
                started,
                &[
                    ("factor", u64::from(cfg.unroll)),
                    ("ops", unrolled.num_ops() as u64),
                ],
            );
            unrolled
        } else {
            compiled.body.clone()
        };

        let backend = self.backend()?.clone();
        let cache = MinDistCache::new();
        let (schedule, rr, icr, kernel, mve, quality) = {
            let problem = self.depgraph(&body)?;
            let run = self.schedule(&backend, &problem, &cache, &mut EngineWorkspace::new());
            let (sched_pass, sched_backend, degraded) = (run.pass, run.backend, run.degraded);
            let schedule = run.result?;
            if !cfg.straight_line {
                validate(&problem, &schedule)?;
            }
            let quality = crate::quality::quality_of(
                &compiled.def.name,
                &sched_backend,
                sched_pass,
                problem.rec_mii(),
                problem.res_mii(),
                problem.mii(),
                &SchedOutcome {
                    ii: Some(schedule.ii),
                    last_ii: schedule.ii,
                    pressure: Some(measure_cached(&problem, &schedule, &cache)),
                    stats: schedule.stats.clone(),
                    degraded,
                },
            );
            self.record_mindist(&cache);
            let (rr, icr) = if cfg.regalloc || cfg.codegen {
                (
                    Some(self.regalloc(&problem, &schedule, RegClass::Rr)?),
                    Some(self.regalloc(&problem, &schedule, RegClass::Icr)?),
                )
            } else {
                (None, None)
            };
            let kernel = if cfg.codegen {
                let started = Instant::now();
                let kernel = {
                    let _span = lsms_trace::span("codegen");
                    lsms_codegen::emit(
                        &problem,
                        &schedule,
                        rr.as_ref().expect("codegen implies regalloc"),
                        icr.as_ref().expect("codegen implies regalloc"),
                    )
                };
                let insts = kernel.as_ref().map_or(0, |k| k.num_insts() as u64);
                self.record("codegen", started, &[("kernel_insts", insts)]);
                Some(kernel?)
            } else {
                None
            };
            let mve = if cfg.mve {
                let started = Instant::now();
                let kernel = {
                    let _span = lsms_trace::span("codegen");
                    lsms_codegen::emit_mve(&problem, &schedule)
                };
                let counters = match &kernel {
                    Ok(k) => [
                        ("mve_insts", k.total_insts() as u64),
                        ("mve_unroll", u64::from(k.unroll)),
                    ],
                    Err(_) => [("mve_insts", 0), ("mve_unroll", 0)],
                };
                self.record("codegen", started, &counters);
                Some(kernel?)
            } else {
                None
            };
            (schedule, rr, icr, kernel, mve, quality)
        };

        let equiv = match &cfg.verify {
            Some(spec) => Some(self.verify(compiled, *spec)?),
            None => None,
        };

        Ok(LoopArtifacts {
            name: compiled.def.name.clone(),
            body,
            schedule,
            rr,
            icr,
            kernel,
            mve,
            equiv,
            quality,
        })
    }

    /// Runs `simulate-verify`: end-to-end execution of the generated code
    /// checked bit for bit against the reference interpreter (and the MVE
    /// kernel too, when the session emits one).
    fn verify(&self, compiled: &CompiledLoop, spec: VerifySpec) -> Result<EquivReport, LsmsError> {
        let cfg = &self.config;
        if cfg.unroll > 1 || cfg.straight_line {
            return Err(LsmsError::usage(
                "simulate-verify applies to the plain modulo pipeline only \
                 (drop --unroll / --straight-line)",
            ));
        }
        let backend = self.backend()?;
        let Some(slack) = backend.scheduler.verify_config() else {
            return Err(LsmsError::usage(
                "simulate-verify requires a slack scheduler backend",
            ));
        };
        let run = RunConfig {
            trip: spec.trip,
            seed: spec.seed,
            scheduler: slack,
        };
        let started = Instant::now();
        let _span = lsms_trace::span("simulate-verify");
        let mut result =
            check_equivalence(compiled, &cfg.machine, &run).map_err(LsmsError::verification);
        if result.is_ok() && cfg.mve {
            if let Err(e) = check_equivalence_mve(compiled, &cfg.machine, &run) {
                result = Err(LsmsError::verification(format!("mve: {e}")));
            }
        }
        let counters = match &result {
            Ok(r) => [("cycles", r.cycles), ("elements", r.elements as u64)],
            Err(_) => [("cycles", 0), ("elements", 0)],
        };
        self.record("simulate-verify", started, &counters);
        result
    }

    /// Schedules one loop with the configured backend, keeping schedule
    /// failure as data (`ii: None` plus the last II attempted) while
    /// earlier-stage problems still propagate as errors.
    pub fn schedule_outcome(&self, compiled: &CompiledLoop) -> Result<SchedOutcome, LsmsError> {
        let backend = self.backend()?.clone();
        let cache = MinDistCache::new();
        let problem = self.depgraph(&compiled.body)?;
        let run = self.schedule(&backend, &problem, &cache, &mut EngineWorkspace::new());
        let outcome = outcome_of(run.result, &problem, &cache, run.degraded);
        self.record_mindist(&cache);
        Ok(outcome)
    }

    /// The paper's three-scheduler evaluation of one loop, sharing one
    /// `MinDistCache` across the scheduler runs, both pressure
    /// measurements, and the MinAvg bound (one Floyd–Warshall per
    /// distinct II). With `fan_out` the three runs use scoped threads;
    /// the result is identical either way.
    ///
    /// A malformed loop (invalid body, zero-ω circuit) returns an error
    /// instead of panicking, so corpus runs can record the failure and
    /// keep going.
    pub fn evaluate_variants(
        &self,
        compiled: &CompiledLoop,
        fan_out: bool,
    ) -> Result<LoopEvaluation, LsmsError> {
        let problem = self.depgraph(&compiled.body)?;
        let mii = problem.mii();
        let cache = MinDistCache::new();

        // The trio entries were resolved once at session build, so the
        // parallel corpus workers all share the same backend `Arc`s.
        let run_entry = |entry: &BackendEntry| -> (SchedOutcome, DecisionStats) {
            let started = Instant::now();
            let (result, decisions) = {
                let _span = lsms_trace::span(entry.pass);
                self.run_backend_memo(
                    entry,
                    &[],
                    false,
                    &problem,
                    &cache,
                    &mut EngineWorkspace::new(),
                    None,
                )
            };
            let outcome = outcome_of(result, &problem, &cache, false);
            self.record_outcome(entry.pass, started, &outcome);
            (outcome, decisions)
        };
        let [slack, early_entry, cydrome] = &self.eval;

        let ((new, decisions), (early, _), (old, _)) = if fan_out {
            std::thread::scope(|s| {
                let new = s.spawn(|| run_entry(slack));
                let early = s.spawn(|| run_entry(early_entry));
                let old = s.spawn(|| run_entry(cydrome));
                (
                    new.join().expect("bidirectional run panicked"),
                    early.join().expect("always-early run panicked"),
                    old.join().expect("baseline run panicked"),
                )
            })
        } else {
            (run_entry(slack), run_entry(early_entry), run_entry(cydrome))
        };

        let min_avg_at_mii = min_avg_cached(&problem, mii, &cache);
        self.record_mindist(&cache);
        Ok(LoopEvaluation {
            rec_mii: problem.rec_mii(),
            res_mii: problem.res_mii(),
            mii,
            min_avg_at_mii,
            gprs: gpr_count(&problem),
            new,
            early,
            old,
            decisions,
        })
    }

    fn record_outcome(&self, pass: &'static str, started: Instant, outcome: &SchedOutcome) {
        self.record(
            pass,
            started,
            &[
                ("ii", outcome.ii.map_or(0, u64::from)),
                ("central_iterations", outcome.stats.central_iterations),
                ("step3_invocations", outcome.stats.step3_invocations),
                ("ejected_ops", outcome.stats.ejected_ops),
                ("step6_restarts", outcome.stats.step6_restarts),
                ("attempts", u64::from(outcome.stats.attempts)),
                ("bounds_cells_touched", outcome.stats.bounds_cells_touched),
                ("choose_scan_len", outcome.stats.choose_scan_len),
                ("failures", u64::from(outcome.ii.is_none())),
            ],
        );
    }
}

fn outcome_of(
    result: Result<Schedule, lsms_sched::SchedFailure>,
    problem: &SchedProblem<'_>,
    cache: &MinDistCache,
    degraded: bool,
) -> SchedOutcome {
    match result {
        Ok(schedule) => SchedOutcome {
            ii: Some(schedule.ii),
            last_ii: schedule.ii,
            pressure: Some(measure_cached(problem, &schedule, cache)),
            stats: schedule.stats,
            degraded,
        },
        Err(failure) => SchedOutcome {
            ii: None,
            last_ii: failure.last_ii,
            pressure: None,
            stats: failure.stats,
            degraded,
        },
    }
}
