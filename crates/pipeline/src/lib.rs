//! The unified compilation pipeline: a [`CompileSession`] pass manager
//! over the fixed stage order the paper's system implies —
//!
//! ```text
//! parse → sema → lower(+if-convert) → [unroll] → depgraph
//!       → schedule:{slack,early,late,cydrome}
//!       → [regalloc] → [codegen] → [simulate-verify]
//! ```
//!
//! Before this crate, the driver, the bench library, and ~20 experiment
//! binaries each re-wired those stages by hand and stringified six
//! unrelated error enums at the joints. A session is now the one place
//! where stage order, `MinDistCache` sharing, diagnostics
//! ([`LsmsError`], with stable codes and per-stage exit codes), and
//! observability (per-pass wall clock and work counters in a
//! [`PassReport`], serializable to JSON for `lsmsc --timings`) live.
//!
//! # Example
//!
//! ```
//! use lsms_machine::huff_machine;
//! use lsms_pipeline::{CompileSession, SessionConfig};
//!
//! let session = CompileSession::new(SessionConfig::new(huff_machine()));
//! let unit = session.compile_source(
//!     "loop daxpy(i = 1..n) { real x[], y[]; param real a;
//!          y[i] = y[i] + a * x[i]; }",
//! )?;
//! let artifacts = session.run_loop(&unit.loops[0])?;
//! assert!(artifacts.schedule.ii >= 1);
//! let report = session.report();
//! assert!(report.get("schedule:slack").is_some());
//! # Ok::<(), lsms_pipeline::LsmsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod error;
pub mod passes;
pub mod quality;
mod report;
mod schedcache;
mod session;

pub use backend::{
    list_backends_text, lookup_backend, register_backend, registered_backends, resolve_backend,
    BackendEntry, BackendSelection,
};
pub use error::{LsmsError, Stage};
pub use passes::{pass_info, PassInfo, PASSES, SCHED_COUNTERS};
pub use quality::quality_of;
pub use report::{PassRecord, PassReport};
pub use session::{
    CompileSession, LoopArtifacts, LoopEvaluation, PassBudget, SchedOutcome, SessionConfig,
    VerifySpec,
};

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_machine::huff_machine;
    use lsms_sched::{DirectionPolicy, SlackConfig};

    const DAXPY: &str = "loop daxpy(i = 1..n) { real x[], y[]; param real a;
         y[i] = y[i] + a * x[i]; }";

    #[test]
    fn full_pipeline_records_every_pass_that_ran() {
        let mut config = SessionConfig::new(huff_machine());
        config.codegen = true;
        config.mve = true;
        config.verify = Some(VerifySpec::with_trip(20));
        let session = CompileSession::new(config);
        let unit = session.compile_source(DAXPY).expect("compiles");
        let artifacts = session.run_loop(&unit.loops[0]).expect("pipelines");
        assert!(artifacts.kernel.is_some());
        assert!(artifacts.mve.is_some());
        assert!(artifacts.rr.is_some());
        let equiv = artifacts.equiv.expect("verified");
        assert!(equiv.elements > 0);

        let report = session.report();
        for pass in [
            "parse",
            "sema",
            "lower",
            "if-convert",
            "depgraph",
            "schedule:slack",
            "regalloc",
            "codegen",
            "simulate-verify",
        ] {
            let record = report.get(pass).unwrap_or_else(|| panic!("{pass} missing"));
            assert!(record.invocations >= 1, "{pass}");
        }
        // Canonical ordering regardless of recording order.
        let names: Vec<&str> = report.passes().iter().map(|r| r.name).collect();
        let mut expected = names.clone();
        expected.sort_by_key(|n| passes::PASSES.iter().position(|p| p.name == *n));
        assert_eq!(names, expected);
        // The scheduler recorded real work.
        let sched = report.get("schedule:slack").unwrap();
        assert!(sched.counters["central_iterations"] >= 1);
        assert!(sched.counters["ii"] >= 1);
    }

    #[test]
    fn parse_errors_carry_code_span_and_exit_code() {
        let session = CompileSession::with_machine(huff_machine());
        let err = session.compile_source("loop broken(").unwrap_err();
        assert_eq!(err.stage, Stage::Parse);
        assert_eq!(err.code, "E0101");
        assert!(err.span.is_some());
        assert_eq!(err.exit_code(), 4);
    }

    #[test]
    fn evaluate_variants_matches_schedule_outcome() {
        let session = CompileSession::with_machine(huff_machine());
        let unit = session.compile_source(DAXPY).expect("compiles");
        let eval = session
            .evaluate_variants(&unit.loops[0], false)
            .expect("evaluates");
        assert_eq!(eval.mii, eval.res_mii.max(eval.rec_mii));
        assert_eq!(eval.new.ii, Some(eval.mii));
        let outcome = session.schedule_outcome(&unit.loops[0]).expect("schedules");
        assert_eq!(outcome.ii, eval.new.ii);
        // Fan-out is observably identical.
        let fan = session
            .evaluate_variants(&unit.loops[0], true)
            .expect("evaluates");
        assert_eq!(fan.new.ii, eval.new.ii);
        assert_eq!(fan.old.ii, eval.old.ii);
        assert_eq!(fan.decisions, eval.decisions);
    }

    #[test]
    fn verify_rejects_incompatible_configs_as_usage_errors() {
        let mut config = SessionConfig::new(huff_machine());
        config.unroll = 2;
        config.verify = Some(VerifySpec::with_trip(10));
        let session = CompileSession::new(config);
        let unit = session.compile_source(DAXPY).expect("compiles");
        let err = session.run_loop(&unit.loops[0]).unwrap_err();
        assert_eq!(err.stage, Stage::Usage);
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn backend_pass_names_are_stable() {
        for (name, pass) in [
            ("slack", "schedule:slack"),
            ("early", "schedule:early"),
            ("late", "schedule:late"),
            ("cydrome", "schedule:cydrome"),
        ] {
            let entry = lookup_backend(name).expect(name);
            assert_eq!(entry.pass, pass);
        }
        // Backend directions line up with the passes they're named after.
        let early = lookup_backend("early").unwrap();
        assert_eq!(
            early.scheduler.verify_config().unwrap().direction,
            DirectionPolicy::AlwaysEarly
        );
        let _ = SlackConfig::default();
    }

    /// An alpha-renaming of `DAXPY`: every identifier (loop name, index,
    /// arrays, parameter) differs, the structure is identical.
    const DAXPY_RENAMED: &str = "loop saxpy(j = 1..m) { real u[], v[]; param real b;
         v[j] = v[j] + b * u[j]; }";

    const RECURRENCE: &str = "loop rec(i = 1..n) { real s[], x[];
         s[i] = s[i-1] + x[i]; }";

    /// A loop's outcome with the wall clock zeroed — everything that must
    /// be byte-identical between cold, cached, and warm-started runs.
    fn outcome_key(o: &SchedOutcome) -> (Option<u32>, u32, String, lsms_sched::SchedStats, bool) {
        let mut stats = o.stats.clone();
        stats.elapsed = std::time::Duration::ZERO;
        (
            o.ii,
            o.last_ii,
            format!("{:?}", o.pressure),
            stats,
            o.degraded,
        )
    }

    fn eval_key(e: &LoopEvaluation) -> String {
        format!(
            "{:?}",
            (
                e.rec_mii,
                e.res_mii,
                e.mii,
                e.min_avg_at_mii,
                e.gprs,
                outcome_key(&e.new),
                outcome_key(&e.early),
                outcome_key(&e.old),
                &e.decisions,
            )
        )
    }

    fn temp_ledger(tag: &str, contents: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "lsms-test-ledger-{tag}-{}.jsonl",
            std::process::id()
        ));
        std::fs::write(&path, contents).expect("writes ledger");
        path
    }

    #[test]
    fn alpha_equivalent_loops_hit_the_schedule_cache() {
        let session = CompileSession::with_machine(huff_machine());
        let unit = session.compile_source(DAXPY).expect("compiles");
        let renamed = session.compile_source(DAXPY_RENAMED).expect("compiles");
        let a = session.run_loop(&unit.loops[0]).expect("pipelines");
        let b = session.run_loop(&renamed.loops[0]).expect("pipelines");
        // The cached replay is byte-identical, including the stored
        // elapsed time: the second loop never ran a scheduler.
        assert_eq!(a.schedule, b.schedule);
        let report = session.report();
        let record = report.get("sched-cache").expect("recorded");
        assert_eq!(record.counters["hits"], 1);
        assert_eq!(record.counters["misses"], 1);
        assert_eq!(record.counters["inserts"], 1);
    }

    #[test]
    fn repeat_scheduling_replays_byte_identical_outcomes() {
        let session = CompileSession::with_machine(huff_machine());
        let unit = session.compile_source(RECURRENCE).expect("compiles");
        let first = session.schedule_outcome(&unit.loops[0]).expect("schedules");
        let second = session.schedule_outcome(&unit.loops[0]).expect("schedules");
        assert_eq!(first.ii, second.ii);
        assert_eq!(first.stats, second.stats); // including elapsed: a replay
        assert_eq!(
            format!("{:?}", first.pressure),
            format!("{:?}", second.pressure)
        );
        let report = session.report();
        let record = report.get("sched-cache").expect("recorded");
        assert!(record.counters["hits"] >= 1);
    }

    #[test]
    fn disabling_the_cache_reruns_every_backend() {
        let mut config = SessionConfig::new(huff_machine());
        config.sched_cache = false;
        let session = CompileSession::new(config);
        let unit = session.compile_source(DAXPY).expect("compiles");
        let first = session.schedule_outcome(&unit.loops[0]).expect("schedules");
        let second = session.schedule_outcome(&unit.loops[0]).expect("schedules");
        assert_eq!(outcome_key(&first), outcome_key(&second));
        assert!(session.report().get("sched-cache").is_none());
    }

    #[test]
    fn warm_start_ledger_round_trips_byte_identically() {
        let cold = CompileSession::with_machine(huff_machine());
        let mut cold_keys = Vec::new();
        for src in [DAXPY, RECURRENCE] {
            let unit = cold.compile_source(src).expect("compiles");
            let eval = cold
                .evaluate_variants(&unit.loops[0], false)
                .expect("evaluates");
            cold_keys.push(eval_key(&eval));
        }
        let lines = cold.warm_ledger_lines();
        assert!(lines.lines().count() >= 6, "trio × two loops:\n{lines}");
        let path = temp_ledger("roundtrip", &lines);

        let mut config = SessionConfig::new(huff_machine());
        config.warm_start = Some(path.clone());
        let warm = CompileSession::new(config);
        assert_eq!(warm.warm_ledger_len(), lines.lines().count());
        assert_eq!(warm.warm_ledger_skipped(), 0);
        let mut warm_keys = Vec::new();
        for src in [DAXPY, RECURRENCE] {
            let unit = warm.compile_source(src).expect("compiles");
            let eval = warm
                .evaluate_variants(&unit.loops[0], false)
                .expect("evaluates");
            warm_keys.push(eval_key(&eval));
        }
        assert_eq!(cold_keys, warm_keys);
        let report = warm.report();
        let record = report.get("sched-cache").expect("recorded");
        assert_eq!(record.counters["hits"], 0);
        assert_eq!(record.counters["misses"], 6);
        assert_eq!(record.counters["warm_hits"], 6);
        // Rewriting the ledger after a warm run reproduces it (modulo
        // wall time, which keeps the max of old and new).
        let rewritten = warm.warm_ledger_lines();
        assert_eq!(rewritten.lines().count(), lines.lines().count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_and_stale_ledgers_fall_back_to_cold_results() {
        let cold = CompileSession::with_machine(huff_machine());
        let unit = cold.compile_source(RECURRENCE).expect("compiles");
        let eval = cold
            .evaluate_variants(&unit.loops[0], false)
            .expect("evaluates");
        let baseline = eval_key(&eval);

        // Tamper every entry's II to a value no cold escalation reaches,
        // and add lines that must be skipped outright.
        let mut tampered = String::from("not json at all\n{\"v\":99,\"fp\":\"zz\"}\n");
        for line in cold.warm_ledger_lines().lines() {
            let start = line.find("\"ii\":").expect("has ii") + 5;
            let end = start + line[start..].find(',').expect("comma");
            tampered.push_str(&line[..start]);
            tampered.push_str("9001");
            tampered.push_str(&line[end..]);
            tampered.push('\n');
        }
        let path = temp_ledger("stale", &tampered);

        let mut config = SessionConfig::new(huff_machine());
        config.warm_start = Some(path.clone());
        let warm = CompileSession::new(config);
        assert_eq!(warm.warm_ledger_skipped(), 2);
        assert_eq!(warm.warm_ledger_len(), 3);
        let unit = warm.compile_source(RECURRENCE).expect("compiles");
        let eval = warm
            .evaluate_variants(&unit.loops[0], false)
            .expect("evaluates");
        assert_eq!(eval_key(&eval), baseline);
        let report = warm.report();
        let record = report.get("sched-cache").expect("recorded");
        assert_eq!(record.counters["warm_hits"], 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corpus_cost_hints_prefer_ledger_wall_time() {
        let session = CompileSession::with_machine(huff_machine());
        let unit = session.compile_source(DAXPY).expect("compiles");
        let estimate = session.corpus_cost_hint(&unit.loops[0]);
        assert!(estimate > 0, "ops×RecMII estimate");

        let eval_unit = session.compile_source(DAXPY).expect("compiles");
        session
            .evaluate_variants(&eval_unit.loops[0], false)
            .expect("evaluates");
        let path = temp_ledger("hints", &session.warm_ledger_lines());
        let mut config = SessionConfig::new(huff_machine());
        config.warm_start = Some(path.clone());
        let warm = CompileSession::new(config);
        let unit = warm.compile_source(DAXPY).expect("compiles");
        // Ledger wall times are µs-scale sums, clamped to at least 1.
        assert!(warm.corpus_cost_hint(&unit.loops[0]) >= 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sessions_surface_backend_errors_lazily() {
        let mut config = SessionConfig::new(huff_machine());
        config.backend = BackendSelection::named("quantum");
        let session = CompileSession::new(config);
        let err = session.validate().unwrap_err();
        assert_eq!((err.stage, err.code), (Stage::Usage, "E0003"));
        let unit = session.compile_source(DAXPY).expect("compiles");
        let err = session.run_loop(&unit.loops[0]).unwrap_err();
        assert_eq!(err.code, "E0003");

        // Straight-line on a backend without the capability is a usage
        // error surfaced by the same accessor.
        let mut config = SessionConfig::new(huff_machine());
        config.backend = BackendSelection::named("cydrome");
        config.straight_line = true;
        let session = CompileSession::new(config);
        let err = session.validate().unwrap_err();
        assert_eq!(err.code, "E0002");
        assert!(err.message.contains("straight-line"), "{}", err.message);
    }
}
