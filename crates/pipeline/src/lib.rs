//! The unified compilation pipeline: a [`CompileSession`] pass manager
//! over the fixed stage order the paper's system implies —
//!
//! ```text
//! parse → sema → lower(+if-convert) → [unroll] → depgraph
//!       → schedule:{slack,early,late,cydrome}
//!       → [regalloc] → [codegen] → [simulate-verify]
//! ```
//!
//! Before this crate, the driver, the bench library, and ~20 experiment
//! binaries each re-wired those stages by hand and stringified six
//! unrelated error enums at the joints. A session is now the one place
//! where stage order, `MinDistCache` sharing, diagnostics
//! ([`LsmsError`], with stable codes and per-stage exit codes), and
//! observability (per-pass wall clock and work counters in a
//! [`PassReport`], serializable to JSON for `lsmsc --timings`) live.
//!
//! # Example
//!
//! ```
//! use lsms_machine::huff_machine;
//! use lsms_pipeline::{CompileSession, SessionConfig};
//!
//! let session = CompileSession::new(SessionConfig::new(huff_machine()));
//! let unit = session.compile_source(
//!     "loop daxpy(i = 1..n) { real x[], y[]; param real a;
//!          y[i] = y[i] + a * x[i]; }",
//! )?;
//! let artifacts = session.run_loop(&unit.loops[0])?;
//! assert!(artifacts.schedule.ii >= 1);
//! let report = session.report();
//! assert!(report.get("schedule:slack").is_some());
//! # Ok::<(), lsms_pipeline::LsmsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod error;
pub mod passes;
pub mod quality;
mod report;
mod session;

pub use backend::{
    list_backends_text, lookup_backend, register_backend, registered_backends, resolve_backend,
    BackendEntry, BackendSelection,
};
pub use error::{LsmsError, Stage};
pub use passes::{pass_info, PassInfo, PASSES, SCHED_COUNTERS};
pub use quality::quality_of;
pub use report::{PassRecord, PassReport};
pub use session::{
    CompileSession, LoopArtifacts, LoopEvaluation, PassBudget, SchedOutcome, SessionConfig,
    VerifySpec,
};

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_machine::huff_machine;
    use lsms_sched::{DirectionPolicy, SlackConfig};

    const DAXPY: &str = "loop daxpy(i = 1..n) { real x[], y[]; param real a;
         y[i] = y[i] + a * x[i]; }";

    #[test]
    fn full_pipeline_records_every_pass_that_ran() {
        let mut config = SessionConfig::new(huff_machine());
        config.codegen = true;
        config.mve = true;
        config.verify = Some(VerifySpec::with_trip(20));
        let session = CompileSession::new(config);
        let unit = session.compile_source(DAXPY).expect("compiles");
        let artifacts = session.run_loop(&unit.loops[0]).expect("pipelines");
        assert!(artifacts.kernel.is_some());
        assert!(artifacts.mve.is_some());
        assert!(artifacts.rr.is_some());
        let equiv = artifacts.equiv.expect("verified");
        assert!(equiv.elements > 0);

        let report = session.report();
        for pass in [
            "parse",
            "sema",
            "lower",
            "if-convert",
            "depgraph",
            "schedule:slack",
            "regalloc",
            "codegen",
            "simulate-verify",
        ] {
            let record = report.get(pass).unwrap_or_else(|| panic!("{pass} missing"));
            assert!(record.invocations >= 1, "{pass}");
        }
        // Canonical ordering regardless of recording order.
        let names: Vec<&str> = report.passes().iter().map(|r| r.name).collect();
        let mut expected = names.clone();
        expected.sort_by_key(|n| passes::PASSES.iter().position(|p| p.name == *n));
        assert_eq!(names, expected);
        // The scheduler recorded real work.
        let sched = report.get("schedule:slack").unwrap();
        assert!(sched.counters["central_iterations"] >= 1);
        assert!(sched.counters["ii"] >= 1);
    }

    #[test]
    fn parse_errors_carry_code_span_and_exit_code() {
        let session = CompileSession::with_machine(huff_machine());
        let err = session.compile_source("loop broken(").unwrap_err();
        assert_eq!(err.stage, Stage::Parse);
        assert_eq!(err.code, "E0101");
        assert!(err.span.is_some());
        assert_eq!(err.exit_code(), 4);
    }

    #[test]
    fn evaluate_variants_matches_schedule_outcome() {
        let session = CompileSession::with_machine(huff_machine());
        let unit = session.compile_source(DAXPY).expect("compiles");
        let eval = session
            .evaluate_variants(&unit.loops[0], false)
            .expect("evaluates");
        assert_eq!(eval.mii, eval.res_mii.max(eval.rec_mii));
        assert_eq!(eval.new.ii, Some(eval.mii));
        let outcome = session.schedule_outcome(&unit.loops[0]).expect("schedules");
        assert_eq!(outcome.ii, eval.new.ii);
        // Fan-out is observably identical.
        let fan = session
            .evaluate_variants(&unit.loops[0], true)
            .expect("evaluates");
        assert_eq!(fan.new.ii, eval.new.ii);
        assert_eq!(fan.old.ii, eval.old.ii);
        assert_eq!(fan.decisions, eval.decisions);
    }

    #[test]
    fn verify_rejects_incompatible_configs_as_usage_errors() {
        let mut config = SessionConfig::new(huff_machine());
        config.unroll = 2;
        config.verify = Some(VerifySpec::with_trip(10));
        let session = CompileSession::new(config);
        let unit = session.compile_source(DAXPY).expect("compiles");
        let err = session.run_loop(&unit.loops[0]).unwrap_err();
        assert_eq!(err.stage, Stage::Usage);
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn backend_pass_names_are_stable() {
        for (name, pass) in [
            ("slack", "schedule:slack"),
            ("early", "schedule:early"),
            ("late", "schedule:late"),
            ("cydrome", "schedule:cydrome"),
        ] {
            let entry = lookup_backend(name).expect(name);
            assert_eq!(entry.pass, pass);
        }
        // Backend directions line up with the passes they're named after.
        let early = lookup_backend("early").unwrap();
        assert_eq!(
            early.scheduler.verify_config().unwrap().direction,
            DirectionPolicy::AlwaysEarly
        );
        let _ = SlackConfig::default();
    }

    #[test]
    fn sessions_surface_backend_errors_lazily() {
        let mut config = SessionConfig::new(huff_machine());
        config.backend = BackendSelection::named("quantum");
        let session = CompileSession::new(config);
        let err = session.validate().unwrap_err();
        assert_eq!((err.stage, err.code), (Stage::Usage, "E0003"));
        let unit = session.compile_source(DAXPY).expect("compiles");
        let err = session.run_loop(&unit.loops[0]).unwrap_err();
        assert_eq!(err.code, "E0003");

        // Straight-line on a backend without the capability is a usage
        // error surfaced by the same accessor.
        let mut config = SessionConfig::new(huff_machine());
        config.backend = BackendSelection::named("cydrome");
        config.straight_line = true;
        let session = CompileSession::new(config);
        let err = session.validate().unwrap_err();
        assert_eq!(err.code, "E0002");
        assert!(err.message.contains("straight-line"), "{}", err.message);
    }
}
