//! Content-addressed schedule memoization: the in-memory sharded cache
//! a [`CompileSession`](crate::CompileSession) consults before running a
//! scheduling pass, and the persistent warm-start ledger behind
//! `lsmsc --warm-start PATH`.
//!
//! Two tiers:
//!
//! * **In-memory** ([`ScheduleCache`]): fingerprint → the full
//!   `(Result<Schedule, SchedFailure>, DecisionStats)` a backend
//!   produced. A hit clones the stored run — byte-identical to a
//!   recompute because the framework is deterministic per input. The
//!   map is sharded by the key's low bits so the parallel corpus pool
//!   doesn't serialize on one lock.
//! * **Persistent** ([`WarmLedger`]): fingerprint → the achieved II
//!   plus the run's deterministic counters, one JSON line per schedule
//!   in `results/schedule_cache.jsonl`. A later process loads it and
//!   pins the first II attempt to the recorded value
//!   ([`SchedContext::warm_ii`](lsms_sched::SchedContext)); when the
//!   attempt verifies, the ledger's counters are substituted so the
//!   outcome matches the cold escalation it skipped. Entries are keyed
//!   by salted fingerprints ([`lsms_sched::FINGERPRINT_SALT`]), so
//!   ledgers from behaviourally different builds miss instead of lying;
//!   corrupt or hand-edited lines are skipped (and stale IIs are
//!   rejected downstream by the escalation-sequence check), falling
//!   back to cold scheduling.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;
use std::time::Duration;

use lsms_ir::Fingerprint;
use lsms_sched::{DecisionStats, SchedFailure, SchedStats, Schedule};

/// Number of independently locked shards. More than the worker count on
/// any plausible host, so corpus workers rarely contend.
const SHARDS: usize = 16;

/// What one memoized backend run stores: everything the session needs
/// to reproduce the run's observable outcome without scheduling.
#[derive(Clone, Debug)]
pub(crate) struct CachedRun {
    /// The backend's registry name (for ledger serialization).
    pub backend: String,
    /// The schedule or the deterministic failure.
    pub result: Result<Schedule, SchedFailure>,
    /// The §5.2 decision tallies of the run.
    pub decisions: DecisionStats,
}

/// The sharded in-memory tier.
#[derive(Debug, Default)]
pub(crate) struct ScheduleCache {
    shards: [Mutex<HashMap<u128, CachedRun>>; SHARDS],
}

impl ScheduleCache {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    fn shard(&self, key: Fingerprint) -> &Mutex<HashMap<u128, CachedRun>> {
        &self.shards[(key.0 as usize) % SHARDS]
    }

    pub(crate) fn get(&self, key: Fingerprint) -> Option<CachedRun> {
        self.shard(key)
            .lock()
            .expect("schedule cache shard")
            .get(&key.0)
            .cloned()
    }

    /// Inserts a computed run. Racing inserts for the same key carry
    /// identical values (the framework is deterministic), so first-in
    /// wins and the loser's clone is simply dropped.
    pub(crate) fn insert(&self, key: Fingerprint, run: CachedRun) {
        self.shard(key)
            .lock()
            .expect("schedule cache shard")
            .entry(key.0)
            .or_insert(run);
    }

    /// Every successful schedule currently memoized, as ledger entries.
    pub(crate) fn successes(&self) -> Vec<(u128, LedgerEntry)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (&key, run) in shard.lock().expect("schedule cache shard").iter() {
                if let Ok(schedule) = &run.result {
                    out.push((
                        key,
                        LedgerEntry {
                            backend: run.backend.clone(),
                            ii: schedule.ii,
                            wall_us: schedule.stats.elapsed.as_micros().min(u64::MAX as u128)
                                as u64,
                            stats: schedule.stats.clone(),
                            decisions: run.decisions.clone(),
                        },
                    ));
                }
            }
        }
        out
    }
}

/// One persisted schedule: the achieved II plus the deterministic
/// counters of the cold run that achieved it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct LedgerEntry {
    pub backend: String,
    pub ii: u32,
    /// Wall time of the run that produced the entry, for tail-aware
    /// cost ordering (not for correctness).
    pub wall_us: u64,
    pub stats: SchedStats,
    pub decisions: DecisionStats,
}

/// The loaded persistent tier: fingerprint → [`LedgerEntry`].
#[derive(Debug, Default)]
pub(crate) struct WarmLedger {
    entries: HashMap<u128, LedgerEntry>,
    /// Lines the loader could not parse (corrupt ledger diagnostics).
    pub skipped: usize,
}

impl WarmLedger {
    pub(crate) fn empty() -> Self {
        Self::default()
    }

    /// Loads a ledger file; a missing file is an empty ledger, and any
    /// unparsable line is counted in `skipped` rather than failing the
    /// session — the fallback is always a cold run.
    pub(crate) fn load(path: &std::path::Path) -> Self {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Self::empty();
        };
        let mut ledger = Self::empty();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match parse_line(line) {
                Some((fp, entry)) => {
                    ledger.entries.insert(fp, entry);
                }
                None => ledger.skipped += 1,
            }
        }
        ledger
    }

    pub(crate) fn get(&self, key: Fingerprint) -> Option<&LedgerEntry> {
        self.entries.get(&key.0)
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// This ledger merged with the given successes, serialized as JSONL
    /// sorted by fingerprint (so rewrites are deterministic and
    /// diff-friendly). New entries win, except that a warm rerun's tiny
    /// wall time never replaces the cold cost estimate already stored —
    /// the tail-aware sort wants the cold cost.
    pub(crate) fn merged_lines(&self, fresh: Vec<(u128, LedgerEntry)>) -> String {
        let mut merged: BTreeMap<u128, LedgerEntry> =
            self.entries.iter().map(|(&k, v)| (k, v.clone())).collect();
        for (key, mut entry) in fresh {
            if let Some(old) = merged.get(&key) {
                entry.wall_us = entry.wall_us.max(old.wall_us);
            }
            merged.insert(key, entry);
        }
        let mut out = String::new();
        for (key, e) in &merged {
            out.push_str(&format_line(*key, e));
            out.push('\n');
        }
        out
    }
}

fn format_line(fp: u128, e: &LedgerEntry) -> String {
    format!(
        "{{\"v\":1,\"fp\":\"{:032x}\",\"backend\":\"{}\",\"ii\":{},\"wall_us\":{},\
         \"stats\":[{},{},{},{},{},{},{}],\"decisions\":[{},{},{},{},{},{},{},{}]}}",
        fp,
        e.backend,
        e.ii,
        e.wall_us,
        e.stats.central_iterations,
        e.stats.step3_invocations,
        e.stats.ejected_ops,
        e.stats.step6_restarts,
        e.stats.attempts,
        e.stats.bounds_cells_touched,
        e.stats.choose_scan_len,
        e.decisions.zero_slack,
        e.decisions.isolated_early,
        e.decisions.early_more_inputs,
        e.decisions.late_more_outputs,
        e.decisions.tie_early,
        e.decisions.tie_late,
        e.decisions.unique_min_priority,
        e.decisions.selections,
    )
}

/// Minimal scanner for the exact shape [`format_line`] writes. Anything
/// that deviates — wrong schema version, missing field, non-numeric
/// payload — returns `None` and the line is skipped.
fn parse_line(line: &str) -> Option<(u128, LedgerEntry)> {
    fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let tag = format!("\"{key}\":\"");
        let start = line.find(&tag)? + tag.len();
        let end = line[start..].find('"')? + start;
        Some(&line[start..end])
    }
    fn num_field(line: &str, key: &str) -> Option<u64> {
        let tag = format!("\"{key}\":");
        let start = line.find(&tag)? + tag.len();
        let digits: String = line[start..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        digits.parse().ok()
    }
    fn array_field(line: &str, key: &str, n: usize) -> Option<Vec<u64>> {
        let tag = format!("\"{key}\":[");
        let start = line.find(&tag)? + tag.len();
        let end = line[start..].find(']')? + start;
        let items: Vec<u64> = line[start..end]
            .split(',')
            .map(|s| s.trim().parse().ok())
            .collect::<Option<Vec<u64>>>()?;
        (items.len() == n).then_some(items)
    }

    if num_field(line, "v")? != 1 {
        return None;
    }
    let fp = Fingerprint::parse_hex(str_field(line, "fp")?)?;
    let backend = str_field(line, "backend")?.to_owned();
    let ii = u32::try_from(num_field(line, "ii")?).ok()?;
    if ii == 0 {
        return None;
    }
    let wall_us = num_field(line, "wall_us")?;
    // 7 entries since the sparsity counters landed; older 5-entry lines
    // fail here and the loop is simply re-scheduled cold.
    let s = array_field(line, "stats", 7)?;
    let d = array_field(line, "decisions", 8)?;
    Some((
        fp.0,
        LedgerEntry {
            backend,
            ii,
            wall_us,
            stats: SchedStats {
                central_iterations: s[0],
                step3_invocations: s[1],
                ejected_ops: s[2],
                step6_restarts: s[3],
                attempts: u32::try_from(s[4]).ok()?,
                bounds_cells_touched: s[5],
                choose_scan_len: s[6],
                elapsed: Duration::from_micros(wall_us),
            },
            decisions: DecisionStats {
                zero_slack: d[0],
                isolated_early: d[1],
                early_more_inputs: d[2],
                late_more_outputs: d[3],
                tie_early: d[4],
                tie_late: d[5],
                unique_min_priority: d[6],
                selections: d[7],
            },
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> LedgerEntry {
        LedgerEntry {
            backend: "slack".to_owned(),
            ii: 7,
            wall_us: 1234,
            stats: SchedStats {
                central_iterations: 10,
                step3_invocations: 2,
                ejected_ops: 3,
                step6_restarts: 1,
                attempts: 4,
                bounds_cells_touched: 99,
                choose_scan_len: 123,
                elapsed: Duration::from_micros(1234),
            },
            decisions: DecisionStats {
                zero_slack: 1,
                isolated_early: 2,
                early_more_inputs: 3,
                late_more_outputs: 4,
                tie_early: 5,
                tie_late: 6,
                unique_min_priority: 7,
                selections: 8,
            },
        }
    }

    #[test]
    fn ledger_line_round_trips() {
        let e = entry();
        let line = format_line(0xdead_beef, &e);
        let (fp, parsed) = parse_line(&line).expect("round trip");
        assert_eq!(fp, 0xdead_beef);
        assert_eq!(parsed, e);
    }

    #[test]
    fn corrupt_lines_are_rejected() {
        assert!(parse_line("").is_none());
        assert!(parse_line("not json at all").is_none());
        assert!(parse_line("{\"v\":2,\"fp\":\"00\"}").is_none());
        // Truncated stats array.
        let line = format_line(1, &entry()).replace(",123]", "]");
        assert!(parse_line(&line).is_none());
        // Pre-sparsity 5-entry stats line: skipped, loop re-scheduled cold.
        let line = format_line(1, &entry()).replace(",99,123]", "]");
        assert!(parse_line(&line).is_none());
        // Zero II is meaningless.
        let line = format_line(1, &entry()).replace("\"ii\":7", "\"ii\":0");
        assert!(parse_line(&line).is_none());
    }

    #[test]
    fn merge_keeps_cold_wall_and_sorts() {
        let mut ledger = WarmLedger::empty();
        ledger.entries.insert(5, entry());
        let mut warm = entry();
        warm.wall_us = 3; // warm rerun was fast
        let mut other = entry();
        other.backend = "cydrome".to_owned();
        let text = ledger.merged_lines(vec![(5, warm), (2, other)]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"cydrome\""), "sorted by fingerprint");
        assert!(lines[1].contains("\"wall_us\":1234"), "cold cost kept");
    }

    #[test]
    fn cache_round_trips_failures_too() {
        let cache = ScheduleCache::new();
        let key = Fingerprint(42);
        assert!(cache.get(key).is_none());
        cache.insert(
            key,
            CachedRun {
                backend: "slack".to_owned(),
                result: Err(SchedFailure {
                    last_ii: 9,
                    stats: SchedStats::default(),
                    deadline_capped: false,
                }),
                decisions: DecisionStats::default(),
            },
        );
        let hit = cache.get(key).expect("stored");
        assert_eq!(hit.result.unwrap_err().last_ii, 9);
        assert!(
            cache.successes().is_empty(),
            "failures never reach the ledger"
        );
    }
}
