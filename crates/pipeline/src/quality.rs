//! Bridges the session's scheduling outcomes into [`lsms_obs`] quality
//! records — the one place the observatory's per-loop schema is filled
//! in, so the driver's compile path and the bench corpus path cannot
//! drift apart.

use lsms_obs::ScheduleQuality;

use crate::session::SchedOutcome;

/// Builds one loop's [`ScheduleQuality`] record from a scheduling
/// outcome plus the loop's §3.1 bounds. Pressure-derived fields come
/// back zero when the loop failed to pipeline (no schedule, no
/// lifetimes), matching the rollup's failure convention.
pub fn quality_of(
    loop_name: &str,
    backend: &str,
    pass: &str,
    rec_mii: u32,
    res_mii: u32,
    mii: u32,
    outcome: &SchedOutcome,
) -> ScheduleQuality {
    let p = outcome.pressure.as_ref();
    ScheduleQuality {
        loop_name: loop_name.to_owned(),
        backend: backend.to_owned(),
        pass: pass.to_owned(),
        rec_mii,
        res_mii,
        mii,
        ii: outcome.ii,
        last_ii: outcome.last_ii,
        max_live: p.map_or(0, |p| p.rr_max_live),
        lifetime_sum: p.map_or(0, |p| p.rr_total_lifetime),
        lifetime_max: p.map_or(0, |p| p.rr_max_lifetime),
        lifetime_count: p.map_or(0, |p| p.rr_lifetime_count),
        ejected_ops: outcome.stats.ejected_ops,
        backtracks: outcome.stats.backtracks(),
        degraded: outcome.degraded,
        wall_us: outcome.stats.elapsed.as_micros().min(u64::MAX as u128) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_sched::SchedStats;
    use std::time::Duration;

    #[test]
    fn failed_loops_report_zero_pressure_and_last_ii() {
        let outcome = SchedOutcome {
            ii: None,
            last_ii: 17,
            pressure: None,
            stats: SchedStats {
                central_iterations: 40,
                step3_invocations: 3,
                ejected_ops: 9,
                step6_restarts: 2,
                attempts: 5,
                bounds_cells_touched: 0,
                choose_scan_len: 0,
                elapsed: Duration::from_micros(1234),
            },
            degraded: true,
        };
        let q = quality_of("hard", "cydrome", "schedule:cydrome", 4, 2, 4, &outcome);
        assert_eq!(q.ii, None);
        assert_eq!(q.counted_ii(), 17);
        assert_eq!(q.ii_gap(), 13);
        assert_eq!((q.max_live, q.lifetime_sum, q.lifetime_count), (0, 0, 0));
        assert_eq!(q.backtracks, 5);
        assert_eq!(q.ejected_ops, 9);
        assert!(q.degraded);
        assert_eq!(q.wall_us, 1234);
        assert_eq!(q.lifetime_mean(), 0.0);
    }
}
