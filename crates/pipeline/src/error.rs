//! The unified diagnostic type shared by every pipeline stage.
//!
//! Every per-crate error enum — [`FrontError`], [`BodyError`],
//! [`ProblemError`], [`SchedFailure`], [`ScheduleError`], [`AllocError`],
//! [`CodegenError`], [`SimError`] — converts into one [`LsmsError`]
//! carrying a stable error code, the [`Stage`] that produced it, and a
//! source [`Span`] when the front end has one. Drivers render the error
//! uniformly (`error[E0101]: 3:7: unexpected token`) and map the stage to
//! a process exit code, so `lsmsc`'s callers can tell a parse error from
//! a schedule failure from a simulation mismatch without scraping text.

use std::fmt;

use lsms_codegen::CodegenError;
use lsms_front::{FrontError, Span};
use lsms_ir::BodyError;
use lsms_regalloc::AllocError;
use lsms_sched::{ProblemError, SchedFailure, ScheduleError};
use lsms_sim::SimError;

/// The pipeline stage a diagnostic originated from.
///
/// Stages are ordered like the pass pipeline; each maps to a distinct
/// process exit code via [`Stage::exit_code`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Command-line / configuration misuse (exit 2).
    Usage,
    /// Reading source files or writing outputs (exit 3).
    Io,
    /// Lexing and parsing (exit 4).
    Parse,
    /// Semantic analysis (exit 5).
    Sema,
    /// Lowering: if-conversion, load/store elimination, address
    /// generation (exit 6).
    Lower,
    /// Dependence-graph construction and body validation (exit 7).
    DepGraph,
    /// Modulo scheduling (exit 8).
    Schedule,
    /// Rotating register allocation (exit 9).
    Regalloc,
    /// Kernel code emission (exit 10).
    Codegen,
    /// Simulation and equivalence verification (exit 11).
    Simulate,
}

impl Stage {
    /// The process exit code `lsmsc` uses for diagnostics from this stage.
    pub fn exit_code(self) -> u8 {
        match self {
            Stage::Usage => 2,
            Stage::Io => 3,
            Stage::Parse => 4,
            Stage::Sema => 5,
            Stage::Lower => 6,
            Stage::DepGraph => 7,
            Stage::Schedule => 8,
            Stage::Regalloc => 9,
            Stage::Codegen => 10,
            Stage::Simulate => 11,
        }
    }

    /// The stage's short name, as used in pass names and reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Usage => "usage",
            Stage::Io => "io",
            Stage::Parse => "parse",
            Stage::Sema => "sema",
            Stage::Lower => "lower",
            Stage::DepGraph => "depgraph",
            Stage::Schedule => "schedule",
            Stage::Regalloc => "regalloc",
            Stage::Codegen => "codegen",
            Stage::Simulate => "simulate",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic from any pipeline stage.
///
/// The `code` is stable across releases: tooling may match on it. Codes
/// are grouped by stage — `E00xx` usage/IO, `E01xx` parse, `E02xx` sema,
/// `E03xx` lower, `E04xx` dependence graph, `E05xx` schedule, `E06xx`
/// register allocation, `E07xx` codegen, `E08xx` simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct LsmsError {
    /// The stage that produced the diagnostic.
    pub stage: Stage,
    /// Stable machine-matchable error code (`E0101`, ...).
    pub code: &'static str,
    /// Source location, where the front end has one.
    pub span: Option<Span>,
    /// Human-readable description.
    pub message: String,
}

impl LsmsError {
    /// Builds a diagnostic with no source span.
    pub fn new(stage: Stage, code: &'static str, message: impl Into<String>) -> Self {
        Self {
            stage,
            code,
            span: None,
            message: message.into(),
        }
    }

    /// An I/O failure (`E0001`).
    pub fn io(message: impl Into<String>) -> Self {
        Self::new(Stage::Io, "E0001", message)
    }

    /// A configuration / usage error (`E0002`), e.g. `--run` combined
    /// with `--unroll`.
    pub fn usage(message: impl Into<String>) -> Self {
        Self::new(Stage::Usage, "E0002", message)
    }

    /// An unknown or malformed scheduler-backend selection (`E0003`):
    /// a `--backend` name absent from the registry, or an option its
    /// backend rejects.
    pub fn backend(message: impl Into<String>) -> Self {
        Self::new(Stage::Usage, "E0003", message)
    }

    /// A front-end error attributed to an explicit stage: the front end
    /// reports lexical, syntactic, and semantic problems with one type,
    /// so the session tags each with the pass that raised it.
    pub fn from_front(e: FrontError, stage: Stage) -> Self {
        let code = match stage {
            Stage::Sema => "E0201",
            Stage::Lower => "E0301",
            _ => "E0101",
        };
        Self {
            stage,
            code,
            span: Some(e.span),
            message: e.message,
        }
    }

    /// An equivalence-verification mismatch or harness failure (`E0802`).
    pub fn verification(message: impl Into<String>) -> Self {
        Self::new(Stage::Simulate, "E0802", message)
    }

    /// Renders the diagnostic the way `lsmsc` prints it:
    /// `error[E0101]: FILE:3:7: unexpected token`, with the `FILE:` part
    /// present only when an origin is given and the `LINE:COL:` part only
    /// when the stage had a source span.
    pub fn render(&self, origin: Option<&str>) -> String {
        let mut out = format!("error[{}]: ", self.code);
        if let Some(file) = origin {
            out.push_str(file);
            out.push(':');
        }
        if let Some(span) = self.span {
            out.push_str(&format!("{span}: "));
        } else if origin.is_some() {
            out.push(' ');
        }
        out.push_str(&self.message);
        out.push_str(&format!(" [{}]", self.stage));
        out
    }

    /// The process exit code for this diagnostic's stage.
    pub fn exit_code(&self) -> u8 {
        self.stage.exit_code()
    }
}

impl fmt::Display for LsmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(None))
    }
}

impl std::error::Error for LsmsError {}

impl From<FrontError> for LsmsError {
    fn from(e: FrontError) -> Self {
        Self::from_front(e, Stage::Parse)
    }
}

impl From<BodyError> for LsmsError {
    fn from(e: BodyError) -> Self {
        Self::new(Stage::DepGraph, "E0401", format!("invalid loop body: {e}"))
    }
}

impl From<ProblemError> for LsmsError {
    fn from(e: ProblemError) -> Self {
        match e {
            ProblemError::Body(b) => b.into(),
            ProblemError::ZeroOmegaCycle => Self::new(Stage::DepGraph, "E0402", e.to_string()),
        }
    }
}

impl From<SchedFailure> for LsmsError {
    fn from(e: SchedFailure) -> Self {
        Self::new(
            Stage::Schedule,
            "E0501",
            format!(
                "no feasible schedule up to II {} ({} II attempts)",
                e.last_ii, e.stats.attempts
            ),
        )
    }
}

impl From<ScheduleError> for LsmsError {
    fn from(e: ScheduleError) -> Self {
        Self::new(
            Stage::Schedule,
            "E0502",
            format!("schedule validation failed: {e}"),
        )
    }
}

impl From<AllocError> for LsmsError {
    fn from(e: AllocError) -> Self {
        Self::new(Stage::Regalloc, "E0601", e.to_string())
    }
}

impl From<CodegenError> for LsmsError {
    fn from(e: CodegenError) -> Self {
        Self::new(Stage::Codegen, "E0701", e.to_string())
    }
}

impl From<SimError> for LsmsError {
    fn from(e: SimError) -> Self {
        Self::new(Stage::Simulate, "E0801", e.to_string())
    }
}

impl From<std::io::Error> for LsmsError {
    fn from(e: std::io::Error) -> Self {
        Self::io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_stable() {
        let stages = [
            Stage::Usage,
            Stage::Io,
            Stage::Parse,
            Stage::Sema,
            Stage::Lower,
            Stage::DepGraph,
            Stage::Schedule,
            Stage::Regalloc,
            Stage::Codegen,
            Stage::Simulate,
        ];
        let codes: Vec<u8> = stages.iter().map(|s| s.exit_code()).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), stages.len(), "exit codes must be distinct");
        assert_eq!(codes, vec![2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
    }

    #[test]
    fn render_includes_code_origin_and_span() {
        let e = LsmsError::from_front(
            FrontError {
                span: Span { line: 3, col: 7 },
                message: "unexpected token".into(),
            },
            Stage::Parse,
        );
        assert_eq!(
            e.render(Some("x.loop")),
            "error[E0101]: x.loop:3:7: unexpected token [parse]"
        );
        assert_eq!(e.to_string(), "error[E0101]: 3:7: unexpected token [parse]");
    }

    #[test]
    fn every_source_enum_converts_with_its_stage() {
        let f: LsmsError = SchedFailure {
            last_ii: 40,
            stats: Default::default(),
            deadline_capped: false,
        }
        .into();
        assert_eq!((f.stage, f.code), (Stage::Schedule, "E0501"));
        let a: LsmsError = AllocError::CapExceeded { cap: 512 }.into();
        assert_eq!((a.stage, a.code), (Stage::Regalloc, "E0601"));
        let p: LsmsError = ProblemError::ZeroOmegaCycle.into();
        assert_eq!((p.stage, p.code), (Stage::DepGraph, "E0402"));
        let s: LsmsError = SimError::MemoryOutOfBounds { addr: -8 }.into();
        assert_eq!((s.stage, s.code), (Stage::Simulate, "E0801"));
    }
}
