//! Per-pass observability: wall-clock timings and work counters,
//! aggregated across every loop a session touches and serializable to
//! JSON for `lsmsc --timings`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use crate::passes::pass_order;

/// Accumulated measurements for one named pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PassRecord {
    /// The pass name (see [`crate::passes::PASSES`]). Pass names are
    /// compile-time constants, so records hold `&'static str` and never
    /// allocate for a name.
    pub name: &'static str,
    /// How many times the pass ran.
    pub invocations: u64,
    /// Total wall-clock time across invocations. Under parallel corpus
    /// evaluation this sums per-thread time, so it can exceed elapsed
    /// real time.
    pub wall: Duration,
    /// Named work counters, summed across invocations. Counter keys are
    /// `&'static str` (every caller passes literals), so the hot corpus
    /// path records counters without any per-call allocation.
    pub counters: BTreeMap<&'static str, u64>,
}

/// Everything a session observed about the passes it ran.
///
/// Records keep canonical pipeline order regardless of the order loops
/// and variants executed in, so reports are deterministic under `--jobs`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PassReport {
    records: Vec<PassRecord>,
}

impl PassReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one pass invocation: `wall` time plus its counter deltas.
    pub fn record(&mut self, name: &'static str, wall: Duration, counters: &[(&'static str, u64)]) {
        let record = self.entry(name);
        record.invocations += 1;
        record.wall += wall;
        for &(key, value) in counters {
            *record.counters.entry(key).or_insert(0) += value;
        }
    }

    /// Adds to one counter of a pass without counting an invocation
    /// (used for out-of-band tallies such as `budget_exceeded`).
    pub fn bump(&mut self, name: &'static str, key: &'static str, delta: u64) {
        *self.entry(name).counters.entry(key).or_insert(0) += delta;
    }

    fn entry(&mut self, name: &'static str) -> &mut PassRecord {
        match self.records.iter().position(|r| r.name == name) {
            Some(i) => &mut self.records[i],
            None => {
                // Registry passes keep pipeline order; passes the registry
                // doesn't know (all sharing the same sentinel order) tie-break
                // by name, so report order never depends on which worker
                // thread recorded an unknown pass first.
                let key = |n: &'static str| (pass_order(n), n);
                let at = self
                    .records
                    .iter()
                    .position(|r| key(r.name) > key(name))
                    .unwrap_or(self.records.len());
                self.records.insert(
                    at,
                    PassRecord {
                        name,
                        ..PassRecord::default()
                    },
                );
                &mut self.records[at]
            }
        }
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: &PassReport) {
        for r in &other.records {
            let mine = self.entry(r.name);
            mine.invocations += r.invocations;
            mine.wall += r.wall;
            for (&k, v) in &r.counters {
                *mine.counters.entry(k).or_insert(0) += v;
            }
        }
    }

    /// The recorded passes, in canonical pipeline order.
    pub fn passes(&self) -> &[PassRecord] {
        &self.records
    }

    /// The record for one pass, if it ran.
    pub fn get(&self, name: &str) -> Option<&PassRecord> {
        self.records.iter().find(|r| r.name == name)
    }

    /// True if no pass has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes the report as JSON:
    ///
    /// ```json
    /// {
    ///   "schema_version": 1,
    ///   "passes": [
    ///     {"name": "parse", "invocations": 1, "wall_us": 42,
    ///      "counters": {"loops": 1}},
    ///     ...
    ///   ]
    /// }
    /// ```
    ///
    /// The shape is stable: `schema_version` bumps on breaking changes,
    /// passes keep canonical pipeline order (unknown ones sorted by
    /// name), and counter keys are `BTreeMap`-ordered — so `timings-diff`
    /// never flakes on map ordering.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema_version\": 1,\n  \"passes\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"invocations\": {}, \"wall_us\": {}, \"counters\": {{",
                r.name,
                r.invocations,
                r.wall.as_micros()
            );
            for (j, (k, v)) in r.counters.iter().enumerate() {
                let _ = write!(out, "{}\"{k}\": {v}", if j == 0 { "" } else { ", " });
            }
            let _ = writeln!(
                out,
                "}}}}{}",
                if i + 1 == self.records.len() { "" } else { "," }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A human-readable table of the report (used by `--explain-pass` and
    /// handy in logs).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<18} {:>6} {:>12}  counters", "pass", "runs", "wall");
        for r in &self.records {
            let mut counters: Vec<String> =
                r.counters.iter().map(|(k, v)| format!("{k}={v}")).collect();
            if counters.is_empty() {
                counters.push("-".to_owned());
            }
            let _ = writeln!(
                out,
                "{:<18} {:>6} {:>12.2?}  {}",
                r.name,
                r.invocations,
                r.wall,
                counters.join(" ")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_keep_canonical_order() {
        let mut report = PassReport::new();
        report.record("regalloc", Duration::from_micros(5), &[("rr_regs", 4)]);
        report.record("parse", Duration::from_micros(2), &[("loops", 1)]);
        report.record("schedule:slack", Duration::from_micros(9), &[("ii", 3)]);
        report.record("parse", Duration::from_micros(1), &[("loops", 2)]);
        let names: Vec<&str> = report.passes().iter().map(|r| r.name).collect();
        assert_eq!(names, ["parse", "schedule:slack", "regalloc"]);
        let parse = report.get("parse").unwrap();
        assert_eq!(parse.invocations, 2);
        assert_eq!(parse.wall, Duration::from_micros(3));
        assert_eq!(parse.counters["loops"], 3);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = PassReport::new();
        a.record("parse", Duration::from_micros(2), &[("loops", 1)]);
        let mut b = PassReport::new();
        b.record("parse", Duration::from_micros(3), &[("loops", 4)]);
        b.record("depgraph", Duration::from_micros(7), &[("arcs", 9)]);
        a.merge(&b);
        assert_eq!(a.get("parse").unwrap().invocations, 2);
        assert_eq!(a.get("parse").unwrap().counters["loops"], 5);
        assert_eq!(a.get("depgraph").unwrap().counters["arcs"], 9);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut report = PassReport::new();
        report.record("parse", Duration::from_micros(42), &[("loops", 1)]);
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema_version\": 1,\n"));
        assert!(json.contains("\"name\": \"parse\""));
        assert!(json.contains("\"wall_us\": 42"));
        assert!(json.contains("\"loops\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    /// Passes the registry doesn't know (runtime-registered backends)
    /// all share one sentinel order; their report position must not
    /// depend on which one happened to record first.
    #[test]
    fn unknown_passes_order_by_name_not_arrival() {
        let mut a = PassReport::new();
        a.record("schedule:zeta", Duration::from_micros(1), &[]);
        a.record("schedule:acme", Duration::from_micros(1), &[]);
        a.record("parse", Duration::from_micros(1), &[]);
        let mut b = PassReport::new();
        b.record("parse", Duration::from_micros(1), &[]);
        b.record("schedule:acme", Duration::from_micros(1), &[]);
        b.record("schedule:zeta", Duration::from_micros(1), &[]);
        let names = |r: &PassReport| -> Vec<&str> { r.passes().iter().map(|p| p.name).collect() };
        assert_eq!(names(&a), names(&b));
        assert_eq!(names(&a), ["parse", "schedule:acme", "schedule:zeta"]);
    }
}
