//! The static pass registry: every pass the session can run, with the
//! documentation `lsmsc --explain-pass` prints and the canonical ordering
//! used by [`PassReport`](crate::PassReport) serialization.

/// Static description of one named pass.
#[derive(Clone, Copy, Debug)]
pub struct PassInfo {
    /// The pass name, as it appears in reports and `--explain-pass`.
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Longer description for `--explain-pass`.
    pub details: &'static str,
    /// The counters this pass records, as `(key, meaning)` pairs.
    pub counters: &'static [(&'static str, &'static str)],
}

/// Every pass the session can run, in pipeline order.
///
/// `schedule:*` passes are alternatives — a session runs the one its
/// configured backend names (the bench evaluation runs three). `unroll`,
/// `regalloc`, `codegen`, and `simulate-verify` run only when the session
/// configuration asks for them.
pub const PASSES: &[PassInfo] = &[
    PassInfo {
        name: "parse",
        summary: "lex and parse DSL source into loop definitions",
        details: "Tokenizes the loop DSL and builds one AST per `loop` \
                  definition. Errors carry the 1-based line:column of the \
                  offending token (code E0101).",
        counters: &[("loops", "loop definitions parsed")],
    },
    PassInfo {
        name: "sema",
        summary: "semantic analysis: symbols, types, subscripts",
        details: "Resolves arrays, parameters, and carried scalars; checks \
                  types and constant-distance subscripts (code E0201).",
        counters: &[("loops", "loop definitions analyzed")],
    },
    PassInfo {
        name: "lower",
        summary: "lower the AST to branch-free SSA with dependence arcs",
        details: "If-conversion, load/store elimination, address lowering, \
                  and exact-distance memory dependence analysis, producing \
                  a scheduler-ready loop body (code E0301). If-conversion \
                  runs fused inside this walk; its work is itemized by the \
                  `if-convert` report entry.",
        counters: &[("ops", "operations emitted across all loops")],
    },
    PassInfo {
        name: "if-convert",
        summary: "conditionals become predicate defines plus guarded ops",
        details: "Accounting view of the if-conversion performed inside \
                  `lower` (the lowering walks the AST once, so the wall \
                  clock is attributed to `lower`): how many operations \
                  ended up guarded and how many predicate values exist.",
        counters: &[
            ("guarded_ops", "operations carrying a guard predicate"),
            ("predicates", "distinct predicate values used as guards"),
        ],
    },
    PassInfo {
        name: "unroll",
        summary: "replicate the body before scheduling (--unroll N)",
        details: "Unrolls the loop body N times, renaming values and \
                  rewriting iteration distances, to exploit fractional \
                  minimum IIs (§3.1). Runs only when requested.",
        counters: &[
            ("factor", "total unroll factor applied"),
            ("ops", "operations after unrolling"),
        ],
    },
    PassInfo {
        name: "depgraph",
        summary: "build the scheduling problem and the §3.1 lower bounds",
        details: "Validates the body, builds the ω-labelled dependence \
                  graph with START/STOP pseudo nodes, assigns functional \
                  units, and computes RecMII/ResMII (codes E0401, E0402).",
        counters: &[
            ("nodes", "dependence-graph nodes (including pseudo ops)"),
            ("arcs", "dependence arcs"),
            ("mii", "sum of max(RecMII, ResMII) over loops"),
        ],
    },
    PassInfo {
        name: "mindist",
        summary: "MinDist cache accounting: Floyd-Warshall vs parametric",
        details: "Accounting view of the shared MinDist cache (the wall \
                  clock of each matrix lives inside the scheduling pass \
                  that requested it): how many matrix requests hit the \
                  cache, how many misses paid a fixed-II Floyd-Warshall, \
                  and how many were materialized from the once-per-problem \
                  parametric envelope that an II-escalation sweep builds.",
        counters: &[
            ("hits", "requests answered from an already-built matrix"),
            ("misses", "requests that built a new matrix"),
            ("fw_computes", "misses served by fixed-II Floyd-Warshall"),
            ("parametric_builds", "parametric envelope constructions"),
            ("materialized", "misses served by envelope evaluation"),
        ],
    },
    PassInfo {
        name: "sched-cache",
        summary: "content-addressed schedule memoization accounting",
        details: "Accounting view of the session's schedule cache (wall \
                  clock ≈ 0; the cost of a miss lives inside the \
                  scheduling pass that paid it): backend runs are keyed \
                  by an alpha-invariant fingerprint of (dependence graph, \
                  machine, backend, options, straight-line flag). Hits \
                  replay the memoized schedule byte-identically; misses \
                  may still warm-start II escalation from a persisted \
                  ledger entry (lsmsc --warm-start).",
        counters: &[
            ("hits", "backend runs answered from the in-memory cache"),
            ("misses", "backend runs that executed a scheduler"),
            ("inserts", "freshly memoized backend runs"),
            (
                "warm_hits",
                "misses whose ledger-seeded first II attempt verified",
            ),
        ],
    },
    PassInfo {
        name: "schedule:slack",
        summary: "bidirectional slack modulo scheduling (§4-§5)",
        details: "The paper's lifetime-sensitive scheduler: operations are \
                  placed early or late depending on whether stretchable \
                  inputs outnumber stretchable outputs, with limited \
                  ejection backtracking and 4% II escalation (codes E0501 \
                  on failure, E0502 if validation of a produced schedule \
                  fails).",
        counters: SCHED_COUNTERS,
    },
    PassInfo {
        name: "schedule:early",
        summary: "always-early slack scheduling (the §7 ablation)",
        details: "The slack scheduler with the direction heuristic pinned \
                  to early placement — the unidirectional legacy of list \
                  scheduling, used to isolate the value of \
                  bidirectionality.",
        counters: SCHED_COUNTERS,
    },
    PassInfo {
        name: "schedule:late",
        summary: "always-late slack scheduling",
        details: "The slack scheduler with the direction heuristic pinned \
                  to late placement.",
        counters: SCHED_COUNTERS,
    },
    PassInfo {
        name: "schedule:cydrome",
        summary: "Cydrome-style baseline scheduler (§8)",
        details: "The 'old scheduler' the paper compares against: \
                  operation-driven placement without lifetime \
                  sensitivity.",
        counters: SCHED_COUNTERS,
    },
    PassInfo {
        name: "regalloc",
        summary: "rotating register allocation (RR and ICR files)",
        details: "Sorts lifetimes and fits them into the smallest \
                  conflict-free rotating file (§3.2); the paper's claim is \
                  that the result stays within MaxLive + 1 almost always \
                  (code E0601).",
        counters: &[
            ("rr_regs", "rotating registers allocated (RR file)"),
            ("icr_regs", "rotating predicate registers allocated (ICR)"),
            ("max_live", "sum of MaxLive over allocated loops"),
            ("excess", "sum of registers - MaxLive over allocated loops"),
        ],
    },
    PassInfo {
        name: "codegen",
        summary: "emit kernel-only code with rotating specifiers",
        details: "Emits the single-kernel form (plus, when configured, the \
                  modulo-variable-expansion alternative that unrolls \
                  instead of rotating) (code E0701).",
        counters: &[
            ("kernel_insts", "instructions in rotating-file kernels"),
            ("mve_insts", "instructions in MVE kernels"),
            ("mve_unroll", "sum of MVE unroll factors"),
        ],
    },
    PassInfo {
        name: "simulate-verify",
        summary: "run the kernel and compare against the reference",
        details: "Executes the generated code on the VLIW simulator with \
                  seeded inputs and compares every array element bit for \
                  bit against the reference interpreter (codes E0801 for \
                  execution faults, E0802 for mismatches).",
        counters: &[
            ("cycles", "machine cycles simulated"),
            ("elements", "array elements compared"),
        ],
    },
];

/// The counters every `schedule:*` pass records — shared by the built-in
/// backends and, by convention, by runtime-registered ones (the
/// `backend-audit` xtask checks the built-ins keep using exactly this
/// set).
pub const SCHED_COUNTERS: &[(&str, &str)] = &[
    ("ii", "sum of achieved IIs"),
    ("central_iterations", "central-loop iterations (§4.2)"),
    ("step3_invocations", "ejection (Step 3) invocations"),
    ("ejected_ops", "operations ejected"),
    ("step6_restarts", "II increments (Step 6)"),
    ("attempts", "II values attempted"),
    ("failures", "loops that failed to pipeline"),
    (
        "budget_capped",
        "escalations cut short by a blown --pass-budget",
    ),
    (
        "degraded",
        "loops this backend scheduled as a budget fallback",
    ),
];

/// Looks up a pass by name.
pub fn pass_info(name: &str) -> Option<&'static PassInfo> {
    PASSES.iter().find(|p| p.name == name)
}

/// The canonical position of a pass name in reports (unknown names sort
/// last, in first-recorded order).
pub(crate) fn pass_order(name: &str) -> usize {
    PASSES
        .iter()
        .position(|p| p.name == name)
        .unwrap_or(PASSES.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        assert!(pass_info("schedule:slack").is_some());
        assert!(pass_info("simulate-verify").is_some());
        assert!(pass_info("no-such-pass").is_none());
        // Names are unique.
        for (i, p) in PASSES.iter().enumerate() {
            assert_eq!(pass_order(p.name), i, "{}", p.name);
        }
    }
}
