//! Kernel-only code generation for modulo-scheduled loops.
//!
//! With predicated execution and rotating register files, a software
//! pipeline needs no prologue or epilogue code: the kernel alone is
//! emitted, each operation tagged with its *stage* (`time div II`) and
//! guarded by that stage's predicate; `brtop` shifts the stage predicates
//! and rotates the files every II cycles, so ramp-up and ramp-down happen
//! by predication (§2.2–§2.3 and the code schemas of the paper's \[19\]).
//!
//! Register specifiers are rotating-file offsets resolved against the
//! iteration control pointer at issue. For a use of value `v` (allocated
//! offset `o_v`, defined at stage `s_v`) by an operation in stage `s_u`
//! reading the instance from ω iterations back:
//!
//! ```text
//! specifier = o_v + ω + s_u − s_v
//! ```
//!
//! because exactly `ω + s_u − s_v` rotations happen between the def's
//! issue and the use's issue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mve;

pub use mve::{emit_mve, to_asm_mve, MveInst, MveKernel, MveRef};

use std::collections::BTreeMap;
use std::fmt::Write as _;

use lsms_ir::{OpId, OpKind, RegClass, ValueId};
use lsms_regalloc::RotatingAllocation;
use lsms_sched::{SchedProblem, Schedule};

/// A register reference in emitted code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegRef {
    /// Rotating RR file at the given specifier (offset before ICP
    /// addition).
    Rr(u32),
    /// Rotating predicate (ICR) file at the given specifier.
    Icr(u32),
    /// Static GPR file.
    Gpr(u32),
}

impl std::fmt::Display for RegRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegRef::Rr(o) => write!(f, "rr[{o}]"),
            RegRef::Icr(o) => write!(f, "icr[{o}]"),
            RegRef::Gpr(i) => write!(f, "gpr[{i}]"),
        }
    }
}

/// One emitted kernel instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineInst {
    /// The source operation (for semantics and diagnostics).
    pub op: OpId,
    /// Opcode.
    pub kind: OpKind,
    /// Pipeline stage: the instruction executes for source iteration
    /// `k − stage` at kernel iteration `k`.
    pub stage: u32,
    /// Destination register, if the opcode produces a value.
    pub dest: Option<RegRef>,
    /// Source registers, in operand order.
    pub srcs: Vec<RegRef>,
    /// Source-level guard predicate (from if-conversion), if any; the
    /// stage predicate always applies in addition.
    pub guard: Option<RegRef>,
}

/// The kernel: `II` issue groups of instructions plus file sizes.
#[derive(Clone, Debug)]
pub struct KernelCode {
    /// Initiation interval.
    pub ii: u32,
    /// Number of pipeline stages.
    pub stages: u32,
    /// Rotating RR file size.
    pub rr_size: u32,
    /// Rotating ICR file size (source predicates only; stage predicates
    /// are modelled as their own hardware chain).
    pub icr_size: u32,
    /// `slots[c]` = the instructions issuing at kernel cycle `c`.
    pub slots: Vec<Vec<MachineInst>>,
    /// GPR index assigned to each invariant (and otherwise undefined)
    /// value.
    pub gpr_bindings: Vec<(ValueId, u32)>,
}

impl KernelCode {
    /// Total instruction count (excluding the implicit `brtop`).
    pub fn num_insts(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// The GPR index bound to `value`, if any.
    pub fn gpr_index(&self, value: ValueId) -> Option<u32> {
        self.gpr_bindings
            .iter()
            .find(|(v, _)| *v == value)
            .map(|&(_, i)| i)
    }
}

/// Errors from code emission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodegenError {
    /// A loop-variant value read by some operation has no allocated
    /// rotating register (allocation and schedule disagree).
    MissingAllocation(ValueId),
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::MissingAllocation(v) => {
                write!(f, "value {v} has no rotating register allocation")
            }
        }
    }
}

impl std::error::Error for CodegenError {}

/// Emits kernel-only code from a schedule plus its RR and ICR rotating
/// allocations.
///
/// # Errors
///
/// Returns [`CodegenError::MissingAllocation`] if an operation reads a
/// loop-variant value absent from the allocations — values whose lifetime
/// was zero never received a register, so this only happens when the
/// allocation was computed for a different schedule.
pub fn emit(
    problem: &SchedProblem<'_>,
    schedule: &Schedule,
    rr: &RotatingAllocation,
    icr: &RotatingAllocation,
) -> Result<KernelCode, CodegenError> {
    let body = problem.body();
    let ii = schedule.ii;
    let stages = schedule.stages();

    // Static file: invariants (and live-in variants) the body reads.
    let gpr_bindings = lsms_regalloc::assign_gprs(problem);
    let gpr_index: BTreeMap<ValueId, u32> = gpr_bindings.iter().copied().collect();

    let reg_of = |v: ValueId, omega: u32, use_stage: u32| -> Result<RegRef, CodegenError> {
        let value = body.value(v);
        if let Some(&idx) = gpr_index.get(&v) {
            return Ok(RegRef::Gpr(idx));
        }
        let def = value.def.expect("non-GPR values are defined in the loop");
        let def_stage = schedule.stage(def.index());
        let (alloc, make): (&RotatingAllocation, fn(u32) -> RegRef) =
            if value.reg_class() == RegClass::Icr {
                (icr, RegRef::Icr)
            } else {
                (rr, RegRef::Rr)
            };
        let offset = *alloc
            .offsets
            .get(&v)
            .ok_or(CodegenError::MissingAllocation(v))?;
        // offset + omega + use_stage − def_stage rotations separate the
        // def's issue from this use's issue; a dependence-respecting
        // schedule never makes it negative.
        let spec =
            i64::from(offset) + i64::from(omega) + i64::from(use_stage) - i64::from(def_stage);
        debug_assert!(spec >= 0, "negative rotating specifier for {v}");
        Ok(make(spec as u32))
    };

    let mut slots: Vec<Vec<MachineInst>> = vec![Vec::new(); ii as usize];
    for op in body.ops() {
        if op.kind == OpKind::Brtop {
            continue; // implicit in the kernel loop control
        }
        let idx = op.id.index();
        let stage = schedule.stage(idx);
        let cycle = schedule.kernel_cycle(idx) as usize;
        let mut srcs = Vec::with_capacity(op.inputs.len());
        for (&v, &omega) in op.inputs.iter().zip(&op.input_omegas) {
            srcs.push(reg_of(v, omega, stage)?);
        }
        let guard = match op.predicate {
            Some(p) => Some(reg_of(p, 0, stage)?),
            None => None,
        };
        let dest = match op.result {
            Some(r) => {
                let value = body.value(r);
                let (alloc, make): (&RotatingAllocation, fn(u32) -> RegRef) =
                    if value.reg_class() == RegClass::Icr {
                        (icr, RegRef::Icr)
                    } else {
                        (rr, RegRef::Rr)
                    };
                let &o = alloc
                    .offsets
                    .get(&r)
                    .ok_or(CodegenError::MissingAllocation(r))?;
                Some(make(o))
            }
            None => None,
        };
        slots[cycle].push(MachineInst {
            op: op.id,
            kind: op.kind,
            stage,
            dest,
            srcs,
            guard,
        });
    }
    for slot in &mut slots {
        slot.sort_by_key(|inst| inst.op);
    }
    Ok(KernelCode {
        ii,
        stages,
        rr_size: rr.num_regs,
        icr_size: icr.num_regs,
        slots,
        gpr_bindings,
    })
}

/// Pretty-prints the kernel as VLIW assembly, one issue group per line
/// group, with stage annotations — the textual artifact a compiler would
/// show with `-S`.
pub fn to_asm(kernel: &KernelCode, problem: &SchedProblem<'_>) -> String {
    let body = problem.body();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "; kernel: II={} stages={} rr={} icr={} gprs={}",
        kernel.ii,
        kernel.stages,
        kernel.rr_size,
        kernel.icr_size,
        kernel.gpr_bindings.len()
    );
    for (c, slot) in kernel.slots.iter().enumerate() {
        let _ = writeln!(s, "cycle {c}:");
        if slot.is_empty() {
            let _ = writeln!(s, "    nop");
        }
        for inst in slot {
            let dest = inst.dest.map(|d| format!("{d} = ")).unwrap_or_default();
            let srcs: Vec<String> = inst.srcs.iter().map(|r| r.to_string()).collect();
            let guard = inst.guard.map(|g| format!(" if {g}")).unwrap_or_default();
            let _ = writeln!(
                s,
                "    [s{}] {}{} {}{}    ; {}",
                inst.stage,
                dest,
                inst.kind,
                srcs.join(", "),
                guard,
                body.op(inst.op).id,
            );
        }
    }
    let _ = writeln!(s, "    brtop");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_front::compile;
    use lsms_ir::RegClass;
    use lsms_machine::huff_machine;
    use lsms_regalloc::{allocate_rotating, Strategy};
    use lsms_sched::SlackScheduler;

    fn emit_loop(src: &str) -> (KernelCode, usize) {
        let unit = compile(src).unwrap();
        let machine = Box::leak(Box::new(huff_machine()));
        let body = Box::leak(Box::new(unit.loops[0].body.clone()));
        let problem = SchedProblem::new(body, machine).unwrap();
        let schedule = SlackScheduler::new().run(&problem).unwrap();
        let rr = allocate_rotating(&problem, &schedule, RegClass::Rr, Strategy::default()).unwrap();
        let icr =
            allocate_rotating(&problem, &schedule, RegClass::Icr, Strategy::default()).unwrap();
        let ops = problem.num_real_ops();
        let kernel = emit(&problem, &schedule, &rr, &icr).unwrap();
        let asm = to_asm(&kernel, &problem);
        assert!(asm.contains("brtop"));
        (kernel, ops)
    }

    #[test]
    fn every_op_lands_in_exactly_one_slot() {
        let (kernel, ops) = emit_loop(
            "loop sample(i = 3..n) {
                 real x[], y[];
                 x[i] = x[i-1] + y[i-2];
                 y[i] = y[i-1] + x[i-2];
             }",
        );
        // brtop is implicit; everything else is emitted once.
        assert_eq!(kernel.num_insts(), ops - 1);
        assert_eq!(kernel.slots.len(), kernel.ii as usize);
    }

    #[test]
    fn specifiers_account_for_stage_skew() {
        // The load's value crosses many stages at a small II; some use
        // must read a specifier strictly greater than any dest offset,
        // proving the omega/stage correction is applied.
        let (kernel, _) = emit_loop(
            "loop axpy(i = 1..n) {
                 real x[], y[];
                 param real a;
                 y[i] = y[i] + a * x[i];
             }",
        );
        let max_dest = kernel
            .slots
            .iter()
            .flatten()
            .filter_map(|inst| match inst.dest {
                Some(RegRef::Rr(o)) => Some(o),
                _ => None,
            })
            .max()
            .unwrap();
        let max_src = kernel
            .slots
            .iter()
            .flatten()
            .flat_map(|inst| &inst.srcs)
            .filter_map(|r| match r {
                RegRef::Rr(o) => Some(*o),
                _ => None,
            })
            .max()
            .unwrap();
        assert!(max_src > 0);
        let _ = max_dest;
    }

    #[test]
    fn guarded_stores_carry_icr_guards() {
        let (kernel, _) = emit_loop(
            "loop clip(i = 1..n) {
                 real x[], y[];
                 param real t;
                 if (x[i] > t) { y[i] = t; } else { y[i] = x[i]; }
             }",
        );
        let guarded: Vec<_> = kernel
            .slots
            .iter()
            .flatten()
            .filter(|inst| inst.guard.is_some())
            .collect();
        assert_eq!(guarded.len(), 2);
        assert!(guarded
            .iter()
            .all(|i| matches!(i.guard, Some(RegRef::Icr(_)))));
    }

    #[test]
    fn invariants_read_from_gprs() {
        let (kernel, _) = emit_loop("loop c(i = 1..n) { real x[]; param real a; x[i] = a * 2.0; }");
        let gpr_reads = kernel
            .slots
            .iter()
            .flatten()
            .flat_map(|i| &i.srcs)
            .filter(|r| matches!(r, RegRef::Gpr(_)))
            .count();
        assert!(gpr_reads >= 2, "a and 2.0 come from GPRs");
        assert!(kernel.gpr_bindings.len() >= 2);
    }
}
