//! Modulo-variable-expansion code generation: the no-rotating-hardware
//! schema (§2.3, citing Lam \[9\] and the code schemas of \[19\]).
//!
//! Without a rotating file, successive instances of a value that lives
//! longer than II cannot share one register, so the kernel is unrolled and
//! register specifiers renamed: value `v` gets `q_v` static registers and
//! its instance `i` lives in `base_v + (i mod q_v)`. For the renaming to
//! be consistent across the loop back-edge, the unroll factor must be a
//! multiple of every `q_v`; this implementation rounds each `q_v` up to a
//! power of two and unrolls by the maximum — the "wasted registers"
//! variant that trades registers for code size, rather than `lcm(q_v)`
//! which trades code size for registers.
//!
//! The resulting code expansion (unroll × kernel, plus the explicit
//! prologue and epilogue a machine without predicated execution would
//! need) is exactly the cost that motivated the Cydra 5's rotating files.

use std::collections::BTreeMap;

use lsms_ir::{OpId, OpKind, RegClass, ValueId};
use lsms_sched::pressure::lifetimes;
use lsms_sched::{SchedProblem, Schedule};

use crate::CodegenError;

/// A static register reference in MVE code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MveRef {
    /// A renamed loop-variant register (index into one static file).
    Reg(u32),
    /// A predicate register.
    Pred(u32),
    /// A loop invariant.
    Gpr(u32),
}

impl std::fmt::Display for MveRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MveRef::Reg(r) => write!(f, "r{r}"),
            MveRef::Pred(p) => write!(f, "p{p}"),
            MveRef::Gpr(g) => write!(f, "gpr[{g}]"),
        }
    }
}

/// One instruction of the expanded kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MveInst {
    /// Source operation.
    pub op: OpId,
    /// Opcode.
    pub kind: OpKind,
    /// Pipeline stage (for prologue/epilogue membership).
    pub stage: u32,
    /// Destination, if any.
    pub dest: Option<MveRef>,
    /// Sources in operand order.
    pub srcs: Vec<MveRef>,
    /// If-conversion guard, if any.
    pub guard: Option<MveRef>,
}

/// The expanded kernel: `unroll` copies of the II-cycle kernel with
/// renamed registers.
#[derive(Clone, Debug)]
pub struct MveKernel {
    /// Initiation interval of each copy.
    pub ii: u32,
    /// Pipeline stages.
    pub stages: u32,
    /// Kernel copies in the expanded loop body.
    pub unroll: u32,
    /// Static loop-variant registers consumed (`Σ q_v`).
    pub num_regs: u32,
    /// Static predicate registers consumed.
    pub num_preds: u32,
    /// `slots[u][c]` = instructions of copy `u` issuing at cycle `c`.
    pub slots: Vec<Vec<Vec<MveInst>>>,
    /// GPR binding per invariant value.
    pub gpr_bindings: Vec<(ValueId, u32)>,
    /// Per-value `(base, q)` register blocks (RR-class values).
    pub blocks: BTreeMap<ValueId, (u32, u32)>,
    /// Per-predicate `(base, q)` blocks.
    pub pred_blocks: BTreeMap<ValueId, (u32, u32)>,
}

impl MveKernel {
    /// Instructions in the expanded kernel body (excluding prologue and
    /// epilogue).
    pub fn kernel_insts(&self) -> usize {
        self.slots.iter().flatten().map(Vec::len).sum()
    }

    /// Static code size in instructions for a machine without predicated
    /// execution: prologue (stages − 1 partial copies) + expanded kernel +
    /// epilogue (stages − 1 partial copies), as in the schemas of \[19\].
    pub fn total_insts(&self) -> usize {
        let per_copy = self.kernel_insts() / self.unroll.max(1) as usize;
        let ramp = (self.stages as usize).saturating_sub(1) * per_copy;
        self.kernel_insts() + 2 * ramp
    }
}

fn next_pow2(x: u32) -> u32 {
    x.max(1).next_power_of_two()
}

/// Emits modulo-variable-expanded code for a schedule.
///
/// # Errors
///
/// Infallible today; the signature matches [`crate::emit`] for symmetry
/// and future checks.
pub fn emit_mve(
    problem: &SchedProblem<'_>,
    schedule: &Schedule,
) -> Result<MveKernel, CodegenError> {
    let body = problem.body();
    let ii = schedule.ii;
    let stages = schedule.stages();
    let lt = lifetimes(problem, schedule);

    // Seed depth per value (see the rotating allocator): uses at distance
    // ω read pre-loop instances for the first ω iterations.
    let mut depth = vec![0u32; body.values().len()];
    for op in body.ops() {
        for (&v, &w) in op.inputs.iter().zip(&op.input_omegas) {
            depth[v.index()] = depth[v.index()].max(w);
        }
    }

    // Register blocks: q_v registers per value, rounded to a power of two
    // so one unroll factor satisfies everyone.
    let mut blocks = BTreeMap::new();
    let mut pred_blocks = BTreeMap::new();
    let mut num_regs = 0u32;
    let mut num_preds = 0u32;
    let mut unroll = 1u32;
    for v in body.values() {
        if v.def.is_none() {
            continue;
        }
        let len = lt[v.id.index()].unwrap_or(1).max(1) as u64;
        let q_lt = ((len + 1).div_ceil(u64::from(ii))) as u32;
        let q = next_pow2(q_lt.max(depth[v.id.index()] + 1));
        unroll = unroll.max(q);
        match v.reg_class() {
            RegClass::Icr => {
                pred_blocks.insert(v.id, (num_preds, q));
                num_preds += q;
            }
            _ => {
                blocks.insert(v.id, (num_regs, q));
                num_regs += q;
            }
        }
    }

    // GPRs: invariants actually read.
    let gpr_bindings = lsms_regalloc::assign_gprs(problem);
    let gpr_index: BTreeMap<ValueId, u32> = gpr_bindings.iter().copied().collect();

    let reg_of = |v: ValueId, omega: u32, use_stage: u32, copy: u32| -> MveRef {
        if let Some(&g) = gpr_index.get(&v) {
            return MveRef::Gpr(g);
        }
        let value = body.value(v);
        let def = value.def.expect("non-GPR values are defined in the loop");
        let def_stage = schedule.stage(def.index());
        // The producing instance lies ω + s_use − s_def source iterations
        // behind this copy's own, so its register index is
        // (copy − s_use − ω + s_def) mod q; q divides the unroll, keeping
        // the renaming consistent across the back edge.
        match value.reg_class() {
            RegClass::Icr => {
                let (base, q) = pred_blocks[&v];
                let idx = (i64::from(copy) - i64::from(use_stage) - i64::from(omega)
                    + i64::from(def_stage))
                .rem_euclid(i64::from(q)) as u32;
                MveRef::Pred(base + idx)
            }
            _ => {
                let (base, q) = blocks[&v];
                let idx = (i64::from(copy) - i64::from(use_stage) - i64::from(omega)
                    + i64::from(def_stage))
                .rem_euclid(i64::from(q)) as u32;
                MveRef::Reg(base + idx)
            }
        }
    };

    let mut slots: Vec<Vec<Vec<MveInst>>> = vec![vec![Vec::new(); ii as usize]; unroll as usize];
    for copy in 0..unroll {
        for op in body.ops() {
            if op.kind == OpKind::Brtop {
                continue;
            }
            let idx = op.id.index();
            let stage = schedule.stage(idx);
            let cycle = schedule.kernel_cycle(idx) as usize;
            let srcs = op
                .inputs
                .iter()
                .zip(&op.input_omegas)
                .map(|(&v, &w)| reg_of(v, w, stage, copy))
                .collect();
            let guard = op.predicate.map(|p| reg_of(p, 0, stage, copy));
            let dest = op.result.map(|r| reg_of(r, 0, stage, copy));
            slots[copy as usize][cycle].push(MveInst {
                op: op.id,
                kind: op.kind,
                stage,
                dest,
                srcs,
                guard,
            });
        }
    }
    for copy in &mut slots {
        for slot in copy {
            slot.sort_by_key(|inst| inst.op);
        }
    }
    Ok(MveKernel {
        ii,
        stages,
        unroll,
        num_regs,
        num_preds,
        slots,
        gpr_bindings,
        blocks,
        pred_blocks,
    })
}

/// Pretty-prints the expanded kernel: each copy's issue groups, with stage
/// annotations — making the code-size cost of forgoing rotation visible.
pub fn to_asm_mve(kernel: &MveKernel) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "; MVE kernel: II={} stages={} unroll={} regs={} preds={} ({} insts, {} with ramps)",
        kernel.ii,
        kernel.stages,
        kernel.unroll,
        kernel.num_regs,
        kernel.num_preds,
        kernel.kernel_insts(),
        kernel.total_insts(),
    );
    for (u, copy) in kernel.slots.iter().enumerate() {
        let _ = writeln!(s, "copy {u}:");
        for (c, slot) in copy.iter().enumerate() {
            let _ = writeln!(s, "  cycle {c}:");
            if slot.is_empty() {
                let _ = writeln!(s, "      nop");
            }
            for inst in slot {
                let dest = inst.dest.map(|d| format!("{d} = ")).unwrap_or_default();
                let srcs: Vec<String> = inst.srcs.iter().map(|r| r.to_string()).collect();
                let guard = inst.guard.map(|g| format!(" if {g}")).unwrap_or_default();
                let _ = writeln!(
                    s,
                    "      [s{}] {}{} {}{}",
                    inst.stage,
                    dest,
                    inst.kind,
                    srcs.join(", "),
                    guard
                );
            }
        }
    }
    let _ = writeln!(s, "  br loop");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsms_front::compile;
    use lsms_machine::huff_machine;
    use lsms_sched::SlackScheduler;

    fn emit_loop(src: &str) -> MveKernel {
        let unit = compile(src).unwrap();
        let machine = huff_machine();
        let body = unit.loops[0].body.clone();
        let problem = SchedProblem::new(&body, &machine).unwrap();
        let schedule = SlackScheduler::new().run(&problem).unwrap();
        emit_mve(&problem, &schedule).unwrap()
    }

    #[test]
    fn long_lifetimes_force_unroll_and_renaming() {
        let kernel = emit_loop(
            "loop axpy(i = 1..n) {
                 real x[], y[];
                 param real a;
                 y[i] = y[i] + a * x[i];
             }",
        );
        // The load's 13-cycle lifetime at a small II needs several names.
        assert!(kernel.unroll >= 4, "unroll = {}", kernel.unroll);
        assert!(
            kernel.num_regs > kernel.blocks.len() as u32,
            "renaming happened"
        );
        // Every copy contains every non-brtop op exactly once.
        let per_copy: Vec<usize> = kernel
            .slots
            .iter()
            .map(|c| c.iter().map(Vec::len).sum())
            .collect();
        assert!(per_copy.windows(2).all(|w| w[0] == w[1]));
        // Code expansion: kernel alone is unroll x the rotating kernel.
        assert_eq!(kernel.kernel_insts(), kernel.unroll as usize * per_copy[0]);
        assert!(kernel.total_insts() > kernel.kernel_insts());
    }

    #[test]
    fn defs_cycle_through_their_block() {
        let kernel = emit_loop(
            "loop sample(i = 3..n) {
                 real x[], y[];
                 x[i] = x[i-1] + y[i-2];
                 y[i] = y[i-1] + x[i-2];
             }",
        );
        // Pick any renamed value with q >= 2 and check its destination
        // registers differ across adjacent copies.
        let (&value, &(base, q)) = kernel
            .blocks
            .iter()
            .find(|(_, &(_, q))| q >= 2)
            .expect("some renamed value");
        let mut dests = Vec::new();
        for copy in &kernel.slots {
            for slot in copy {
                for inst in slot {
                    if let Some(MveRef::Reg(r)) = inst.dest {
                        if r >= base && r < base + q {
                            dests.push(r);
                        }
                    }
                }
            }
        }
        let _ = value;
        assert!(dests.len() >= 2);
        assert_ne!(dests[0], dests[1], "adjacent copies rename: {dests:?}");
    }

    #[test]
    fn asm_printer_shows_all_copies() {
        let kernel = emit_loop(
            "loop axpy(i = 1..n) {
                 real x[], y[];
                 param real a;
                 y[i] = y[i] + a * x[i];
             }",
        );
        let asm = to_asm_mve(&kernel);
        for u in 0..kernel.unroll {
            assert!(asm.contains(&format!("copy {u}:")));
        }
        assert!(asm.contains("br loop"));
    }

    #[test]
    fn short_loops_need_no_unrolling() {
        let kernel = emit_loop("loop s(i = 1..n) { real x[]; x[i] = 1.5; }");
        assert!(kernel.unroll <= 2, "unroll = {}", kernel.unroll);
    }
}
