//! Dependence arcs.

use std::fmt;

use crate::{OpId, ValueId};

/// The classical dependence kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read-after-write: the sink consumes a value the source produces.
    Flow,
    /// Write-after-read: the sink overwrites storage the source reads.
    Anti,
    /// Write-after-write: the sink overwrites storage the source writes.
    Output,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
        };
        f.write_str(s)
    }
}

/// What carries the dependence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DepVia {
    /// A register (SSA value); the arc's `value` is set. Only these arcs
    /// define lifetimes and participate in the bidirectional lifetime
    /// heuristic (§5.2).
    Register,
    /// A memory location (array element); from dependence analysis.
    Memory,
    /// A scheduling-only constraint (e.g. keeping `brtop` ordered relative
    /// to loop-control updates).
    Control,
}

impl fmt::Display for DepVia {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepVia::Register => "reg",
            DepVia::Memory => "mem",
            DepVia::Control => "ctl",
        };
        f.write_str(s)
    }
}

/// A dependence arc `from → to` with iteration distance `omega`.
///
/// `omega` (ω) is the minimum number of iterations that must separate the
/// two operations (§3.1): an instance of `to` in iteration `i + omega` must
/// follow the instance of `from` in iteration `i` by at least the arc's
/// latency. `omega == 0` is an intra-iteration dependence. When the
/// dependence analyzer can prove the distance exact (the vectorizing
/// literature's *distance*), optimizations such as load/store elimination
/// apply; otherwise ω is a conservative lower bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dep {
    /// Source operation.
    pub from: OpId,
    /// Sink operation.
    pub to: OpId,
    /// Dependence kind.
    pub kind: DepKind,
    /// What carries the dependence.
    pub via: DepVia,
    /// Minimum iteration distance (ω ≥ 0).
    pub omega: u32,
    /// For register flow arcs, the value whose lifetime the arc defines.
    pub value: Option<ValueId>,
}

impl Dep {
    /// True if this arc is a register flow dependence — the only arcs that
    /// stretch operand lifetimes.
    pub fn is_register_flow(&self) -> bool {
        self.kind == DepKind::Flow && self.via == DepVia::Register
    }

    /// True if this is a self-arc (`from == to`), i.e. a *trivial*
    /// recurrence circuit, which imposes no scheduling constraint once
    /// `II ≥ RecMII` (§4).
    pub fn is_self_arc(&self) -> bool {
        self.from == self.to
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_flow_detection() {
        let dep = Dep {
            from: OpId::new(0),
            to: OpId::new(1),
            kind: DepKind::Flow,
            via: DepVia::Register,
            omega: 1,
            value: Some(ValueId::new(0)),
        };
        assert!(dep.is_register_flow());
        assert!(!dep.is_self_arc());

        let mem = Dep {
            via: DepVia::Memory,
            value: None,
            ..dep
        };
        assert!(!mem.is_register_flow());
    }

    #[test]
    fn self_arc_detection() {
        let dep = Dep {
            from: OpId::new(3),
            to: OpId::new(3),
            kind: DepKind::Output,
            via: DepVia::Memory,
            omega: 1,
            value: None,
        };
        assert!(dep.is_self_arc());
    }

    #[test]
    fn display_names() {
        assert_eq!(DepKind::Anti.to_string(), "anti");
        assert_eq!(DepVia::Memory.to_string(), "mem");
    }
}
