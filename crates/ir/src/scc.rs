//! Strongly connected components of the dependence graph.
//!
//! Used to classify loops (Tables 3/4: *Has Recurrence*) and by the
//! recurrence-circuit enumeration in `lsms-sched`: a non-trivial elementary
//! circuit exists exactly when some SCC contains at least two operations
//! (self-arcs form *trivial* circuits that impose no scheduling constraint
//! once `II ≥ RecMII`, §4).

use crate::{LoopBody, OpId};

/// Computes the strongly connected components of the body's dependence
/// graph with Tarjan's algorithm (iterative, so deep graphs cannot overflow
/// the call stack).
///
/// Components are returned in reverse topological order (Tarjan's natural
/// output order); every operation appears in exactly one component.
pub fn tarjan_scc(body: &LoopBody) -> Vec<Vec<OpId>> {
    let n = body.num_ops();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs = Vec::new();

    // Explicit DFS state: (node, iterator position over its successors).
    enum Frame {
        Enter(usize),
        Resume(usize, usize),
    }

    let succs: Vec<Vec<usize>> = (0..n)
        .map(|i| body.deps_from(OpId::new(i)).map(|d| d.to.index()).collect())
        .collect();

    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        let mut work = vec![Frame::Enter(start)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    work.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut i) => {
                    let mut descend = None;
                    while i < succs[v].len() {
                        let w = succs[v][i];
                        i += 1;
                        if index[w] == UNVISITED {
                            descend = Some(w);
                            break;
                        } else if on_stack[w] {
                            lowlink[v] = lowlink[v].min(index[w]);
                        }
                    }
                    if let Some(w) = descend {
                        work.push(Frame::Resume(v, i));
                        work.push(Frame::Enter(w));
                        continue;
                    }
                    if lowlink[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(OpId::new(w));
                            if w == v {
                                break;
                            }
                        }
                        sccs.push(comp);
                    }
                    // Propagate lowlink to the parent, which is the next
                    // Resume frame on the work stack.
                    if let Some(Frame::Resume(p, _)) = work.last() {
                        let p = *p;
                        lowlink[p] = lowlink[p].min(lowlink[v]);
                    }
                }
            }
        }
    }
    sccs
}

/// True when the dependence graph contains a non-trivial recurrence
/// circuit: an SCC with at least two operations.
pub fn has_recurrence(body: &LoopBody) -> bool {
    tarjan_scc(body).iter().any(|scc| scc.len() >= 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LoopBuilder, OpKind, ValueType};

    /// Builds a chain of `n` float adds with flow arcs `i -> i+1` (ω = 0)
    /// plus the extra arcs given as (from, to, omega).
    fn chain(n: usize, extra: &[(usize, usize, u32)]) -> LoopBody {
        let mut b = LoopBuilder::new("chain");
        let a = b.invariant(ValueType::Float, "a");
        let mut ops = Vec::new();
        let mut prev_val = a;
        for _ in 0..n {
            let v = b.new_value(ValueType::Float);
            let o = b.op(OpKind::FAdd, &[prev_val, a], Some(v));
            if let Some(&p) = ops.last() {
                b.flow_dep(p, o, 0);
            }
            ops.push(o);
            prev_val = v;
        }
        for &(f, t, w) in extra {
            b.flow_dep(ops[f], ops[t], w);
        }
        b.finish()
    }

    #[test]
    fn acyclic_chain_has_no_recurrence() {
        let body = chain(5, &[]);
        assert!(!has_recurrence(&body));
        assert_eq!(tarjan_scc(&body).len(), 5);
    }

    #[test]
    fn back_arc_creates_one_component() {
        let body = chain(5, &[(4, 1, 1)]);
        assert!(has_recurrence(&body));
        let sccs = tarjan_scc(&body);
        let big: Vec<_> = sccs.iter().filter(|s| s.len() >= 2).collect();
        assert_eq!(big.len(), 1);
        assert_eq!(big[0].len(), 4); // ops 1..=4 form the circuit
    }

    #[test]
    fn self_arc_is_not_a_recurrence() {
        let body = chain(3, &[(1, 1, 1)]);
        assert!(!has_recurrence(&body));
    }

    #[test]
    fn two_disjoint_circuits() {
        let body = chain(6, &[(1, 0, 1), (5, 4, 2)]);
        let sccs = tarjan_scc(&body);
        assert_eq!(sccs.iter().filter(|s| s.len() == 2).count(), 2);
        assert!(has_recurrence(&body));
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let body = chain(20_000, &[]);
        assert_eq!(tarjan_scc(&body).len(), 20_000);
    }

    #[test]
    fn sccs_partition_the_ops() {
        let body = chain(8, &[(3, 1, 1), (7, 6, 1)]);
        let sccs = tarjan_scc(&body);
        let mut seen = vec![false; body.num_ops()];
        for scc in &sccs {
            for op in scc {
                assert!(!seen[op.index()], "op in two components");
                seen[op.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
